//! One-call paper experiments: configure, prefill, age, run, report.
//!
//! The paper's evaluation (§6) runs each FTL under each workload at each
//! aging state on a 32-GB SSD. [`run_eval`] reproduces one such cell;
//! [`EvalConfig`] controls the scale (full paper scale, or a reduced
//! block count for quick runs — the FTL behaviour is unchanged, only the
//! physical capacity shrinks).

use ftl::{Ftl, FtlConfig, FtlKind, MaintConfig};
use nand3d::{AgingState, FaultPlan};
use ssdsim::{MaintSchedule, SimReport, SsdConfig, SsdSim};
use workloads::StandardWorkload;

/// Scale and length of one evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalConfig {
    /// Blocks per chip (428 reproduces the paper's 32-GB SSD; smaller
    /// values shrink capacity for faster runs).
    pub blocks_per_chip: u32,
    /// Host requests to simulate per run.
    pub requests: u64,
    /// Fraction of the logical space written before measuring (drives
    /// realistic GC behaviour).
    pub prefill_fraction: f64,
    /// Ambient-disturbance probability per NAND operation.
    pub disturbance_prob: f64,
    /// Ambient temperature, °C (the paper evaluates at 30 °C).
    pub ambient_celsius: f64,
    /// Workload/process seed.
    pub seed: u64,
    /// Host platform parameters.
    pub ssd: SsdConfig,
    /// Optional fault-injection plan, installed after prefill so the
    /// measured run (not the setup phase) sees the injected faults.
    pub faults: Option<FaultPlan>,
    /// Optional background maintenance subsystem (retention scrubbing,
    /// wear leveling, OPM re-monitoring), enabled after prefill so the
    /// measured run interleaves maintenance with host traffic.
    pub maint: Option<MaintConfig>,
}

impl EvalConfig {
    /// The paper-scale configuration (428 blocks/chip ≈ 32 GB).
    pub fn paper() -> Self {
        EvalConfig {
            blocks_per_chip: 428,
            requests: 200_000,
            prefill_fraction: 0.9,
            disturbance_prob: 0.002,
            ambient_celsius: 30.0,
            seed: 42,
            ssd: SsdConfig::paper(),
            faults: None,
            maint: None,
        }
    }

    /// A reduced-scale configuration for figure regeneration on a laptop
    /// (≈4.8 GB SSD, same chip/bus topology and FTL behaviour).
    pub fn reduced() -> Self {
        EvalConfig {
            blocks_per_chip: 64,
            requests: 60_000,
            ..EvalConfig::paper()
        }
    }

    /// A tiny smoke-test configuration for doc examples and CI.
    pub fn smoke() -> Self {
        EvalConfig {
            blocks_per_chip: 12,
            requests: 2_000,
            prefill_fraction: 0.5,
            disturbance_prob: 0.0,
            ambient_celsius: 30.0,
            seed: 42,
            ssd: SsdConfig::paper(),
            faults: None,
            maint: None,
        }
    }

    /// The FTL configuration this evaluation scale implies.
    pub fn ftl_config(&self) -> FtlConfig {
        let mut cfg = FtlConfig::paper();
        cfg.nand.geometry.blocks_per_chip = self.blocks_per_chip;
        cfg.seed = self.seed;
        cfg
    }
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig::paper()
    }
}

/// Builds an FTL of `kind`, prefills it, pins the aging state, and runs
/// `workload` under the closed-loop simulator. Fully deterministic for a
/// given [`EvalConfig`].
pub fn run_eval(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
) -> SimReport {
    run_eval_custom(kind, workload, aging, cfg, cfg.ftl_config())
}

/// Like [`run_eval`] but with an explicit FTL configuration — the entry
/// point for ablation studies (μ_TH sweeps, active-block counts, …).
pub fn run_eval_custom(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    ftl_cfg: FtlConfig,
) -> SimReport {
    let mut ftl = Ftl::new(kind, ftl_cfg);
    let mut ssd_cfg = cfg.ssd;
    // Maintenance needs the simulator to offer idle windows: derive the
    // schedule from the FTL-side config unless one was set explicitly.
    if cfg.maint.is_some_and(|m| m.enabled) && !ssd_cfg.maint.enabled {
        ssd_cfg.maint = MaintSchedule::on();
    }
    let mut sim = SsdSim::new(ssd_cfg);

    // Pin the aging state first (the paper pre-cycles blocks and bakes
    // retention before the FTL ever runs, §6.2), then prefill to
    // establish mappings and block occupancy so GC behaves like a used
    // drive. Prefilling *after* aging also means every monitored leader
    // parameter is valid for the measured run — flipping conditions
    // mid-run would (correctly) trip the §4.1.4 safety check on every
    // active h-layer.
    ftl.set_aging(aging);
    ftl.set_ambient_celsius(cfg.ambient_celsius);
    let logical = ftl.logical_pages();
    let prefill = (logical as f64 * cfg.prefill_fraction) as u64;
    sim.prefill(&mut ftl, 0..prefill);
    ftl.set_disturbance_prob(cfg.disturbance_prob);
    if let Some(plan) = &cfg.faults {
        ftl.set_fault_plan(plan);
    }
    if let Some(maint) = cfg.maint {
        ftl.enable_maintenance(maint);
    }
    ftl.reset_stats();

    let stream = workload.build(prefill.max(1024), cfg.seed);
    sim.run(&mut ftl, stream, cfg.requests)
}

/// Runs the three-FTL comparison of Fig. 17 for one workload and aging
/// state. Returns `(pageFTL, vertFTL, cubeFTL)` reports.
pub fn run_fig17_cell(
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
) -> (SimReport, SimReport, SimReport) {
    (
        run_eval(FtlKind::Page, workload, aging, cfg),
        run_eval(FtlKind::Vert, workload, aging, cfg),
        run_eval(FtlKind::Cube, workload, aging, cfg),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_eval_completes_all_requests() {
        let cfg = EvalConfig::smoke();
        let r = run_eval(
            FtlKind::Page,
            StandardWorkload::Mail,
            AgingState::Fresh,
            &cfg,
        );
        assert_eq!(r.completed, cfg.requests);
        assert!(r.iops > 0.0);
        assert!(r.reads > 0 && r.writes > 0);
    }

    #[test]
    fn eval_is_deterministic() {
        let cfg = EvalConfig::smoke();
        let a = run_eval(
            FtlKind::Cube,
            StandardWorkload::Web,
            AgingState::MidLife,
            &cfg,
        );
        let b = run_eval(
            FtlKind::Cube,
            StandardWorkload::Web,
            AgingState::MidLife,
            &cfg,
        );
        assert_eq!(a.iops, b.iops);
        assert_eq!(a.sim_time_us, b.sim_time_us);
    }

    #[test]
    fn cube_beats_page_on_a_write_heavy_workload() {
        let cfg = EvalConfig::smoke();
        let page = run_eval(
            FtlKind::Page,
            StandardWorkload::Oltp,
            AgingState::Fresh,
            &cfg,
        );
        let cube = run_eval(
            FtlKind::Cube,
            StandardWorkload::Oltp,
            AgingState::Fresh,
            &cfg,
        );
        assert!(
            cube.iops > page.iops,
            "cubeFTL {} IOPS vs pageFTL {} IOPS",
            cube.iops,
            page.iops
        );
    }
}
