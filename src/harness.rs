//! One-call paper experiments: configure, prefill, age, run, report.
//!
//! The paper's evaluation (§6) runs each FTL under each workload at each
//! aging state on a 32-GB SSD. [`run_eval`] reproduces one such cell;
//! [`EvalConfig`] controls the scale (full paper scale, or a reduced
//! block count for quick runs — the FTL behaviour is unchanged, only the
//! physical capacity shrinks).

use ftl::{Ftl, FtlConfig, FtlKind, MaintConfig, OrtClusterConfig, RecoveryReport};
use hostq::{split_arrival_budget, split_even_budget, HostQueueConfig, HostQueueFront, QosReport};
use kvsim::{KvAppReport, KvConfig, KvEvent, KvStream, YcsbKind};
use lifetime::{EpochSummary, LifetimeConfig, LifetimeEngine};
use nand3d::{AgingState, FaultPlan, RetryOptConfig};
use ssdarray::{
    ArrayReport, ArrayShard, FrontArray, FrontShard, PageRole, ParityRouter, RebuildPlan,
    ResilienceReport, SsdArray, StripeRouter,
};
use ssdsim::{
    HostOp, HostRequest, MaintSchedule, RebuildOp, RebuildProgress, RebuildSchedule, SimReport,
    SpoEvent, SpoTrigger, SsdConfig, SsdSim, StepOutcome,
};
use std::collections::BTreeSet;
use telemetry::{
    merge_streams, Collector, EventKind, EventMask, MetricRegistry, Series, TraceEvent,
};
use workloads::{
    build_population, shard_seed, StandardWorkload, TenantMix, TenantProfile, Trace, Workload,
    YcsbWorkload,
};

/// Scale and length of one evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalConfig {
    /// Blocks per chip (428 reproduces the paper's 32-GB SSD; smaller
    /// values shrink capacity for faster runs).
    pub blocks_per_chip: u32,
    /// Host requests to simulate per run.
    pub requests: u64,
    /// Fraction of the logical space written before measuring (drives
    /// realistic GC behaviour).
    pub prefill_fraction: f64,
    /// Ambient-disturbance probability per NAND operation.
    pub disturbance_prob: f64,
    /// Ambient temperature, °C (the paper evaluates at 30 °C).
    pub ambient_celsius: f64,
    /// Workload/process seed.
    pub seed: u64,
    /// Host platform parameters.
    pub ssd: SsdConfig,
    /// Optional fault-injection plan, installed after prefill so the
    /// measured run (not the setup phase) sees the injected faults.
    pub faults: Option<FaultPlan>,
    /// Optional background maintenance subsystem (retention scrubbing,
    /// wear leveling, OPM re-monitoring), enabled after prefill so the
    /// measured run interleaves maintenance with host traffic.
    pub maint: Option<MaintConfig>,
    /// Per-chip ORT capacity in h-layer entries (`usize::MAX` = the
    /// paper's unbounded in-DRAM table; smaller values model scarce
    /// controller SRAM with LRU eviction).
    pub ort_capacity: usize,
    /// Cross-block ΔV_Ref cluster seeding for cold ORT lookups
    /// (`--ort-cluster`; disabled by default so goldens are unchanged).
    pub ort_cluster: OrtClusterConfig,
    /// Retry-chain optimization switches (`--retry-opt`; all off by
    /// default).
    pub retry_opt: RetryOptConfig,
}

impl EvalConfig {
    /// The paper-scale configuration (428 blocks/chip ≈ 32 GB).
    pub fn paper() -> Self {
        EvalConfig {
            blocks_per_chip: 428,
            requests: 200_000,
            prefill_fraction: 0.9,
            disturbance_prob: 0.002,
            ambient_celsius: 30.0,
            seed: 42,
            ssd: SsdConfig::paper(),
            faults: None,
            maint: None,
            ort_capacity: usize::MAX,
            ort_cluster: OrtClusterConfig::default(),
            retry_opt: RetryOptConfig::default(),
        }
    }

    /// A reduced-scale configuration for figure regeneration on a laptop
    /// (≈4.8 GB SSD, same chip/bus topology and FTL behaviour).
    pub fn reduced() -> Self {
        EvalConfig {
            blocks_per_chip: 64,
            requests: 60_000,
            ..EvalConfig::paper()
        }
    }

    /// A tiny smoke-test configuration for doc examples and CI.
    pub fn smoke() -> Self {
        EvalConfig {
            blocks_per_chip: 12,
            requests: 2_000,
            prefill_fraction: 0.5,
            disturbance_prob: 0.0,
            ambient_celsius: 30.0,
            seed: 42,
            ssd: SsdConfig::paper(),
            faults: None,
            maint: None,
            ort_capacity: usize::MAX,
            ort_cluster: OrtClusterConfig::default(),
            retry_opt: RetryOptConfig::default(),
        }
    }

    /// The FTL configuration this evaluation scale implies.
    pub fn ftl_config(&self) -> FtlConfig {
        let mut cfg = FtlConfig::paper();
        cfg.nand.geometry.blocks_per_chip = self.blocks_per_chip;
        cfg.seed = self.seed;
        cfg.ort_capacity = self.ort_capacity;
        cfg.ort_cluster = self.ort_cluster;
        cfg.retry_opt = self.retry_opt;
        cfg
    }
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig::paper()
    }
}

/// Builds an FTL of `kind`, prefills it, pins the aging state, and runs
/// `workload` under the closed-loop simulator. Fully deterministic for a
/// given [`EvalConfig`].
pub fn run_eval(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
) -> SimReport {
    run_eval_custom(kind, workload, aging, cfg, cfg.ftl_config())
}

/// Like [`run_eval`] but with an explicit FTL configuration — the entry
/// point for ablation studies (μ_TH sweeps, active-block counts, …).
pub fn run_eval_custom(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    ftl_cfg: FtlConfig,
) -> SimReport {
    run_eval_traced_custom(kind, workload, aging, cfg, ftl_cfg, &TelemetrySpec::off()).0
}

/// Telemetry switches for a traced evaluation run. [`TelemetrySpec::off`]
/// keeps the engine on the zero-cost path: a traced run with telemetry
/// off is byte-identical to its untraced counterpart.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetrySpec {
    /// Event categories to trace (`EventMask::NONE` disables tracing).
    pub events: EventMask,
    /// Time-series sampling interval in virtual µs (`None` disables
    /// sampling).
    pub sample_interval_us: Option<f64>,
}

impl TelemetrySpec {
    /// Everything off (the default).
    pub fn off() -> Self {
        TelemetrySpec {
            events: EventMask::NONE,
            sample_interval_us: None,
        }
    }

    /// Everything on: all event categories, one sample every
    /// `interval_us` of virtual time.
    pub fn all(interval_us: f64) -> Self {
        TelemetrySpec {
            events: EventMask::ALL,
            sample_interval_us: Some(interval_us),
        }
    }
}

impl Default for TelemetrySpec {
    fn default() -> Self {
        TelemetrySpec::off()
    }
}

/// Telemetry artifacts of one traced run.
#[derive(Debug, Clone, Default)]
pub struct TelemetryOutput {
    /// The merged event trace: per shard, the device-side stream merged
    /// with the FTL-side stream in virtual-time order; shard streams
    /// concatenated in shard-index order.
    pub events: Vec<TraceEvent>,
    /// The sampled time series (empty when sampling was off).
    pub series: Series,
}

/// Like [`run_eval`] but with telemetry: returns the report plus the
/// event trace and sampled time series. Telemetry arms *after* prefill,
/// so the trace covers exactly the measured run.
pub fn run_eval_traced(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    tel: &TelemetrySpec,
) -> (SimReport, TelemetryOutput) {
    run_eval_traced_custom(kind, workload, aging, cfg, cfg.ftl_config(), tel)
}

/// The fully general single-device entry point: explicit FTL
/// configuration and telemetry switches. Everything else delegates here.
pub fn run_eval_traced_custom(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    ftl_cfg: FtlConfig,
    tel: &TelemetrySpec,
) -> (SimReport, TelemetryOutput) {
    let mut ssd_cfg = cfg.ssd;
    // Maintenance needs the simulator to offer idle windows: derive the
    // schedule from the FTL-side config unless one was set explicitly.
    if cfg.maint.is_some_and(|m| m.enabled) && !ssd_cfg.maint.enabled {
        ssd_cfg.maint = MaintSchedule::on();
    }
    let mut sim = SsdSim::new(ssd_cfg);
    let mut ftl = setup_ftl(kind, aging, cfg, ftl_cfg, &mut sim);
    ftl.reset_stats();
    // Arm telemetry only now: prefill runs at t = 0 and would otherwise
    // flood the trace with setup writes outside the measured window.
    sim.enable_telemetry(tel.events, 0, tel.sample_interval_us);
    ftl.enable_telemetry(tel.events, 0);

    let logical = ftl.logical_pages();
    let prefill = (logical as f64 * cfg.prefill_fraction) as u64;
    let stream = workload.build(prefill.max(1024), cfg.seed);
    let report = sim.run(&mut ftl, stream, cfg.requests);
    let telemetry = TelemetryOutput {
        events: merge_streams(sim.take_trace(), ftl.take_trace()),
        series: sim.take_series(),
    };
    (report, telemetry)
}

/// Configuration of a sudden-power-off experiment on top of an
/// [`EvalConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpoConfig {
    /// When the power dies.
    pub trigger: SpoTrigger,
    /// Checkpoint interval in host WL programs (0 disables periodic
    /// checkpoints; recovery then scans every block).
    pub ckpt_interval_host_wls: u64,
}

impl SpoConfig {
    /// Cut power after `ops` completed host requests, checkpointing
    /// every 64 host WLs (the CLI default).
    pub fn at_ops(ops: u64) -> Self {
        SpoConfig {
            trigger: SpoTrigger::AtOps(ops),
            ckpt_interval_host_wls: 64,
        }
    }
}

/// Outcome of one [`run_spo_eval`] double-run experiment.
#[derive(Debug, Clone)]
pub struct SpoEvalReport {
    /// The uninterrupted golden run (same seed, same workload, same
    /// checkpoint cadence — the only difference is the power cut).
    pub golden: SimReport,
    /// The truncated run up to the cut (or the full run if the trigger
    /// never fired).
    pub pre_cut: SimReport,
    /// Device state at the cut; `None` if the trigger never fired.
    pub spo: Option<SpoEvent>,
    /// What boot-time recovery did; `None` if the trigger never fired.
    pub recovery: Option<RecoveryReport>,
    /// The post-recovery resume run over the workload remainder.
    pub resumed: Option<SimReport>,
    /// Host-acknowledged LPNs that were mapped (or buffer-resident) at
    /// the cut but unmapped after recovery. **Must be empty** — any
    /// entry is host-visible data loss.
    pub lost_lpns: Vec<u64>,
    /// Checkpoints taken before the cut.
    pub checkpoints_taken: u64,
    /// Total blocks in the array (for bounding recovery scan cost).
    pub total_blocks: u64,
}

impl SpoEvalReport {
    /// Whether the armed trigger actually fired.
    pub fn fired(&self) -> bool {
        self.spo.is_some()
    }
}

fn setup_ftl(
    kind: FtlKind,
    aging: AgingState,
    cfg: &EvalConfig,
    ftl_cfg: FtlConfig,
    sim: &mut SsdSim,
) -> Ftl {
    let mut ftl = Ftl::new(kind, ftl_cfg);
    ftl.set_aging(aging);
    ftl.set_ambient_celsius(cfg.ambient_celsius);
    let logical = ftl.logical_pages();
    let prefill = (logical as f64 * cfg.prefill_fraction) as u64;
    sim.prefill(&mut ftl, 0..prefill);
    ftl.set_disturbance_prob(cfg.disturbance_prob);
    if let Some(plan) = &cfg.faults {
        ftl.set_fault_plan(plan);
    }
    if let Some(maint) = cfg.maint {
        ftl.enable_maintenance(maint);
    }
    ftl
}

/// Runs the double-run SPO experiment: an uninterrupted golden run, then
/// an identical run cut short by `spo.trigger`, the power-cut physics
/// (torn WL programs, interrupted erases), a boot-time recovery
/// ([`Ftl::power_cycle`]) and a resume over the workload remainder.
///
/// The returned report carries the zero-loss audit: every LPN that was
/// host-acknowledged (mapped in the FTL or resident in the PLP-protected
/// buffer) at the cut and is missing after recovery lands in
/// `lost_lpns`.
pub fn run_spo_eval(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    spo: &SpoConfig,
) -> SpoEvalReport {
    let mut ssd_cfg = cfg.ssd;
    if cfg.maint.is_some_and(|m| m.enabled) && !ssd_cfg.maint.enabled {
        ssd_cfg.maint = MaintSchedule::on();
    }

    // Golden run: identical setup and checkpoint cadence, no cut.
    let mut sim = SsdSim::new(ssd_cfg);
    let mut ftl = setup_ftl(kind, aging, cfg, cfg.ftl_config(), &mut sim);
    ftl.enable_checkpointing(spo.ckpt_interval_host_wls);
    ftl.reset_stats();
    let logical = ftl.logical_pages();
    let prefill = (logical as f64 * cfg.prefill_fraction) as u64;
    let stream = workload.build(prefill.max(1024), cfg.seed);
    let golden = sim.run(&mut ftl, stream, cfg.requests);

    // SPO run: same seed, same stream, trigger armed. The stream is
    // held by `&mut` so the unissued remainder survives for the resume.
    let mut sim = SsdSim::new(ssd_cfg);
    let mut ftl = setup_ftl(kind, aging, cfg, cfg.ftl_config(), &mut sim);
    ftl.enable_checkpointing(spo.ckpt_interval_host_wls);
    ftl.reset_stats();
    let g = ftl.geometry();
    let total_blocks = u64::from(g.blocks_per_chip) * ftl.mapping().chips() as u64;
    let mut stream = workload.build(prefill.max(1024), cfg.seed);
    let (pre_cut, event) = sim.run_with_spo(&mut ftl, &mut stream, cfg.requests, spo.trigger);
    let checkpoints_taken = ftl.checkpoints_taken();

    let Some(event) = event else {
        return SpoEvalReport {
            golden,
            pre_cut,
            spo: None,
            recovery: None,
            resumed: None,
            lost_lpns: Vec::new(),
            checkpoints_taken,
            total_blocks,
        };
    };

    // The durable-data ledger at the instant of the cut: everything the
    // FTL has mapped plus everything the PLP capacitor preserves.
    let mut durable: Vec<u64> = (0..logical).filter(|&l| ftl.is_mapped(l)).collect();
    durable.extend(event.buffered_lpns.iter().copied());
    durable.sort_unstable();
    durable.dedup();

    // Physics of the cut: every in-flight flush tears its WL program
    // (and its in-flight GC erase, when one ran).
    for f in &event.interrupted_flushes {
        ftl.power_cut(f.chip, f.lpns, f.did_gc);
    }

    // Boot: rebuild the L2P from checkpoint + OOB scan, quarantine torn
    // WLs, re-erase interrupted blocks, replay the PLP dump. OPM/ORT
    // come back cold by design.
    let (mut ftl, recovery) = ftl.power_cycle(&event.buffered_lpns);

    let lost_lpns: Vec<u64> = durable
        .iter()
        .copied()
        .filter(|&l| !ftl.is_mapped(l))
        .collect();

    // Resume the interrupted workload over the remainder of the stream.
    if let Some(maint) = cfg.maint {
        ftl.enable_maintenance(maint);
    }
    let remaining = cfg.requests.saturating_sub(event.issued);
    let resumed = (remaining > 0).then(|| sim.run(&mut ftl, &mut stream, remaining));

    SpoEvalReport {
        golden,
        pre_cut,
        spo: Some(event),
        recovery: Some(recovery),
        resumed,
        lost_lpns,
        checkpoints_taken,
        total_blocks,
    }
}

/// Scale-out parameters of a sharded-array evaluation on top of an
/// [`EvalConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArrayEvalConfig {
    /// Independent device shards.
    pub shards: usize,
    /// LPN-striping stripe size in pages (trace routing only; synthetic
    /// workloads draw per-shard substreams directly).
    pub stripe_pages: u64,
    /// Worker threads for the engine; 0 means one per shard. Purely a
    /// resource knob — any value yields the same merged report.
    pub threads: usize,
}

impl ArrayEvalConfig {
    /// `shards` shards, 64-page stripes, one thread per shard.
    pub fn new(shards: usize) -> Self {
        ArrayEvalConfig {
            shards,
            stripe_pages: 64,
            threads: 0,
        }
    }

    /// The LPN striper these parameters imply.
    pub fn router(&self) -> StripeRouter {
        StripeRouter::new(self.shards, self.stripe_pages)
    }

    fn engine_threads(&self) -> usize {
        if self.threads == 0 {
            self.shards
        } else {
            self.threads
        }
    }
}

/// Results of one sharded-array evaluation.
#[derive(Debug, Clone)]
pub struct ArrayEvalReport {
    /// The merged array-wide report (shard-order fan-in).
    pub merged: ArrayReport,
    /// Per-shard reports, indexed by shard.
    pub shards: Vec<SimReport>,
}

/// Splits a total request budget over shards: the first `total % shards`
/// shards take one extra request.
fn split_requests(total: u64, shards: usize) -> Vec<u64> {
    let base = total / shards as u64;
    let rem = total % shards as u64;
    (0..shards as u64)
        .map(|s| base + u64::from(s < rem))
        .collect()
}

/// One fully prepared shard: device simulator and prefilled FTL, seeded
/// from the master seed and the shard index.
fn setup_shard(
    kind: FtlKind,
    aging: AgingState,
    cfg: &EvalConfig,
    shard: usize,
) -> (SsdSim, Ftl, u64) {
    let mut ssd_cfg = cfg.ssd;
    if cfg.maint.is_some_and(|m| m.enabled) && !ssd_cfg.maint.enabled {
        ssd_cfg.maint = MaintSchedule::on();
    }
    let mut ftl_cfg = cfg.ftl_config();
    ftl_cfg.seed = shard_seed(cfg.seed, shard);
    let mut sim = SsdSim::new(ssd_cfg);
    let ftl = setup_ftl(kind, aging, cfg, ftl_cfg, &mut sim);
    let logical = ftl.logical_pages();
    let prefill = (logical as f64 * cfg.prefill_fraction) as u64;
    (sim, ftl, prefill)
}

/// Runs one evaluation cell on a sharded array: `arr.shards` independent
/// devices, each prefilled and driven by its own deterministic workload
/// substream (seeded by [`shard_seed`]), executed by the thread-per-shard
/// engine and merged in shard order. Deterministic for a given
/// configuration at any thread count.
pub fn run_array_eval(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    arr: &ArrayEvalConfig,
) -> ArrayEvalReport {
    run_array_eval_traced(kind, workload, aging, cfg, arr, &TelemetrySpec::off()).0
}

/// Like [`run_array_eval`] but with telemetry: every shard's collectors
/// are tagged with its shard index, and after the engine's fan-in
/// sequence point the per-shard streams are drained **in shard-index
/// order** — so the combined trace and series are byte-identical at any
/// worker-thread count.
pub fn run_array_eval_traced(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    arr: &ArrayEvalConfig,
    tel: &TelemetrySpec,
) -> (ArrayEvalReport, TelemetryOutput) {
    assert!(arr.shards >= 1, "need at least one shard");
    let budgets = split_requests(cfg.requests, arr.shards);
    let shards = (0..arr.shards)
        .map(|s| {
            let (mut sim, mut ftl, prefill) = setup_shard(kind, aging, cfg, s);
            ftl.reset_stats();
            sim.enable_telemetry(tel.events, s as u32, tel.sample_interval_us);
            ftl.enable_telemetry(tel.events, s as u32);
            let stream = workload.build(prefill.max(1024), shard_seed(cfg.seed, s));
            ArrayShard {
                sim,
                ftl,
                workload: stream,
                requests: budgets[s],
                spo: None,
                rebuild: None,
            }
        })
        .collect();
    let mut array = SsdArray::new(shards).with_threads(arr.engine_threads());
    let out = array.run();
    // Sequence point: every shard has finished and sits back in its
    // index slot. Drain shard by shard, in shard order, merging each
    // shard's device and FTL streams by virtual time.
    let mut events = Vec::new();
    let mut series = Series::new(tel.sample_interval_us.unwrap_or(0.0));
    for shard in array.shards_mut() {
        events.extend(merge_streams(
            shard.sim.take_trace(),
            shard.ftl.take_trace(),
        ));
        series.extend(&shard.sim.take_series());
    }
    (
        ArrayEvalReport {
            merged: out.report,
            shards: out.shard_reports,
        },
        TelemetryOutput { events, series },
    )
}

/// Folds a trace's LPNs into `logical_pages` (modulo the space, spans
/// clamped at its end) so any recorded trace replays on any geometry.
fn fold_requests(requests: &[HostRequest], logical_pages: u64) -> Vec<HostRequest> {
    requests
        .iter()
        .map(|r| {
            let lpn = r.lpn % logical_pages;
            let span = u64::from(r.n_pages).min(logical_pages - lpn);
            HostRequest {
                op: r.op,
                lpn,
                n_pages: u32::try_from(span).expect("span fits"),
            }
        })
        .collect()
}

/// Replays a recorded [`Trace`] against one prefilled device and reports
/// the run. Trace LPNs are folded into the device's logical space.
pub fn run_trace_eval(
    kind: FtlKind,
    aging: AgingState,
    cfg: &EvalConfig,
    trace: &Trace,
) -> SimReport {
    let mut ssd_cfg = cfg.ssd;
    if cfg.maint.is_some_and(|m| m.enabled) && !ssd_cfg.maint.enabled {
        ssd_cfg.maint = MaintSchedule::on();
    }
    let mut sim = SsdSim::new(ssd_cfg);
    let mut ftl = setup_ftl(kind, aging, cfg, cfg.ftl_config(), &mut sim);
    ftl.reset_stats();
    let logical = ftl.logical_pages();
    let folded = fold_requests(trace.requests(), logical);
    let n = folded.len() as u64;
    sim.run(&mut ftl, folded, n)
}

/// Replays a recorded [`Trace`] against a sharded array: the global
/// trace is folded into the array's striped global space and fanned out
/// through the [`StripeRouter`] (spans split at stripe boundaries), so
/// every shard replays exactly the fragments that map to it.
pub fn run_array_trace_eval(
    kind: FtlKind,
    aging: AgingState,
    cfg: &EvalConfig,
    arr: &ArrayEvalConfig,
    trace: &Trace,
) -> ArrayEvalReport {
    assert!(arr.shards >= 1, "need at least one shard");
    let router = arr.router();

    // Prepare every shard first to learn the shard-local capacity; the
    // striped global space truncates each shard to a whole number of
    // stripes so no fragment can overflow its device.
    let mut prepared: Vec<(SsdSim, Ftl)> = Vec::with_capacity(arr.shards);
    let mut local_limit = u64::MAX;
    for s in 0..arr.shards {
        let (sim, mut ftl, _prefill) = setup_shard(kind, aging, cfg, s);
        ftl.reset_stats();
        local_limit = local_limit.min(ftl.logical_pages());
        prepared.push((sim, ftl));
    }
    let stripes_per_shard = local_limit / arr.stripe_pages;
    assert!(
        stripes_per_shard >= 1,
        "stripe of {} pages exceeds the shard-local space of {} pages",
        arr.stripe_pages,
        local_limit
    );
    let global_pages = stripes_per_shard * arr.stripe_pages * arr.shards as u64;

    let folded = fold_requests(trace.requests(), global_pages);
    let mut per_shard = router.route_stream(folded);

    let shards = prepared
        .into_iter()
        .enumerate()
        .map(|(s, (sim, ftl))| {
            let local: Vec<HostRequest> = std::mem::take(&mut per_shard[s]);
            let requests = local.len() as u64;
            ArrayShard {
                sim,
                ftl,
                workload: local.into_iter(),
                requests,
                spo: None,
                rebuild: None,
            }
        })
        .collect();
    let out = SsdArray::new(shards)
        .with_threads(arr.engine_threads())
        .run();
    ArrayEvalReport {
        merged: out.report,
        shards: out.shard_reports,
    }
}

/// Configuration of an array-wide sudden-power-off experiment: the cut
/// hits **every shard at the same virtual instant** (one wall-clock
/// event taking down the whole enclosure), then each shard runs its own
/// crash recovery.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArraySpoConfig {
    /// Simulated time of the array-wide cut, µs.
    pub cut_at_us: f64,
    /// Checkpoint interval in host WL programs per shard (0 = scan-only
    /// recovery).
    pub ckpt_interval_host_wls: u64,
}

/// Outcome of one [`run_array_spo_eval`] experiment.
#[derive(Debug, Clone)]
pub struct ArraySpoEvalReport {
    /// The merged truncated run up to the cut.
    pub pre_cut: ArrayReport,
    /// Per-shard truncated reports, indexed by shard.
    pub shard_pre_cut: Vec<SimReport>,
    /// Whether each shard's trigger fired (a shard that drained its
    /// budget before the instant never sees the cut).
    pub fired: Vec<bool>,
    /// Per-shard recovery reports (`None` where the cut never landed).
    pub recoveries: Vec<Option<RecoveryReport>>,
    /// Host-acknowledged `(shard, local LPN)` pairs lost across the
    /// array. **Must be empty** — any entry is data loss.
    pub lost_lpns: Vec<(usize, u64)>,
    /// The merged post-recovery resume run, when any work remained.
    pub resumed: Option<ArrayReport>,
    /// Checkpoints taken across all shards before the cut.
    pub checkpoints_taken: u64,
}

impl ArraySpoEvalReport {
    /// Shards whose trigger fired.
    pub fn shards_cut(&self) -> usize {
        self.fired.iter().filter(|&&f| f).count()
    }
}

/// Runs the array-wide SPO experiment: every shard is armed with
/// [`SpoTrigger::AtTimeUs`] at the same virtual instant, the array runs
/// until each shard is cut (or drained), then each shard independently
/// suffers the power-cut physics, boots through crash recovery, and
/// resumes its workload remainder. Merging follows shard order
/// throughout, so the experiment is deterministic at any thread count.
pub fn run_array_spo_eval(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    arr: &ArrayEvalConfig,
    spo: &ArraySpoConfig,
) -> ArraySpoEvalReport {
    assert!(arr.shards >= 1, "need at least one shard");
    assert!(spo.cut_at_us > 0.0, "the cut must be after time zero");
    let budgets = split_requests(cfg.requests, arr.shards);
    let shards = (0..arr.shards)
        .map(|s| {
            let (sim, mut ftl, prefill) = setup_shard(kind, aging, cfg, s);
            ftl.enable_checkpointing(spo.ckpt_interval_host_wls);
            ftl.reset_stats();
            let stream = workload.build(prefill.max(1024), shard_seed(cfg.seed, s));
            ArrayShard {
                sim,
                ftl,
                workload: stream,
                requests: budgets[s],
                spo: Some(SpoTrigger::AtTimeUs(spo.cut_at_us)),
                rebuild: None,
            }
        })
        .collect();
    let mut array = SsdArray::new(shards).with_threads(arr.engine_threads());
    let out = array.run();

    // Sequence point: every shard has stopped. Recover shard by shard,
    // in shard order.
    let mut fired = Vec::with_capacity(arr.shards);
    let mut recoveries = Vec::with_capacity(arr.shards);
    let mut lost_lpns = Vec::new();
    let mut checkpoints_taken = 0;
    let mut resumed_shards = Vec::with_capacity(arr.shards);
    for (s, mut shard) in array.into_shards().into_iter().enumerate() {
        checkpoints_taken += shard.ftl.checkpoints_taken();
        let event = &out.spo_events[s];
        fired.push(event.is_some());
        let remaining = match event {
            Some(event) => {
                // Durable ledger at the instant of this shard's cut:
                // mapped LPNs plus the PLP-protected buffer dump.
                let logical = shard.ftl.logical_pages();
                let mut durable: Vec<u64> =
                    (0..logical).filter(|&l| shard.ftl.is_mapped(l)).collect();
                durable.extend(event.buffered_lpns.iter().copied());
                durable.sort_unstable();
                durable.dedup();

                for f in &event.interrupted_flushes {
                    shard.ftl.power_cut(f.chip, f.lpns, f.did_gc);
                }
                let (mut recovered, recovery) = shard.ftl.power_cycle(&event.buffered_lpns);
                lost_lpns.extend(
                    durable
                        .iter()
                        .copied()
                        .filter(|&l| !recovered.is_mapped(l))
                        .map(|l| (s, l)),
                );
                if let Some(maint) = cfg.maint {
                    recovered.enable_maintenance(maint);
                }
                shard.ftl = recovered;
                recoveries.push(Some(recovery));
                budgets[s].saturating_sub(event.issued)
            }
            None => {
                recoveries.push(None);
                0
            }
        };
        shard.requests = remaining;
        shard.spo = None;
        resumed_shards.push(shard);
    }

    let any_remaining = resumed_shards.iter().any(|s| s.requests > 0);
    let resumed = any_remaining.then(|| {
        SsdArray::new(resumed_shards)
            .with_threads(arr.engine_threads())
            .run()
            .report
    });

    ArraySpoEvalReport {
        pre_cut: out.report,
        shard_pre_cut: out.shard_reports,
        fired,
        recoveries,
        lost_lpns,
        resumed,
        checkpoints_taken,
    }
}

/// A whole-shard failure injection: which shard dies, and when.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailSpec {
    /// The shard that fails.
    pub shard: usize,
    /// Virtual time of the failure, µs (must be positive).
    pub at_us: f64,
}

impl FailSpec {
    /// Parses the CLI form `<shard>@<us>` (e.g. `--fail-shard 1@3000`).
    pub fn parse(s: &str) -> Result<Self, String> {
        let (shard, at) = s
            .split_once('@')
            .ok_or_else(|| format!("expected <shard>@<us>, got '{s}'"))?;
        let shard = shard
            .trim()
            .parse::<usize>()
            .map_err(|e| format!("bad shard id '{shard}': {e}"))?;
        let at_us = at
            .trim()
            .parse::<f64>()
            .map_err(|e| format!("bad failure time '{at}': {e}"))?;
        if !(at_us > 0.0 && at_us.is_finite()) {
            return Err(format!("failure time must be positive, got {at_us}"));
        }
        Ok(FailSpec { shard, at_us })
    }

    /// A seeded failure plan: the victim shard and the cut instant are
    /// drawn deterministically from `seed` (splitmix64), the instant
    /// landing in the 30–70 % band of `makespan_us` (a probe run's
    /// shortest shard makespan) so the failure reliably hits mid-run.
    pub fn seeded(seed: u64, shards: usize, makespan_us: f64) -> Self {
        let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let shard = (z % shards.max(1) as u64) as usize;
        let frac = 0.3 + 0.4 * ((z >> 8) % 1000) as f64 / 1000.0;
        FailSpec {
            shard,
            at_us: (makespan_us * frac).max(1.0),
        }
    }
}

/// Array-resilience switches on top of an [`ArrayEvalConfig`]: rotating
/// cross-shard parity, whole-shard failure injection, hot spares and
/// the background rebuild pacing. Everything off ([`ArrayFailureConfig::off`])
/// routes requests exactly like the plain [`StripeRouter`] and runs a
/// single healthy phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrayFailureConfig {
    /// Rotating cross-shard XOR parity (RAID-5-style, one parity stripe
    /// per row).
    pub parity: bool,
    /// Optional whole-shard failure injection.
    pub fail: Option<FailSpec>,
    /// Hot spares provisioned beyond the array (the first absorbs the
    /// rebuild and the dead shard's redirected writes; additional
    /// spares stand by cold).
    pub spare_shards: usize,
    /// Background rebuild pacing (unit size, host-priority gap).
    pub rebuild: RebuildSchedule,
    /// Optional array-wide sudden-power-off cut during the degraded
    /// phase, µs into that phase — composes the failure with the
    /// existing SPO machinery.
    pub spo_cut_at_us: Option<f64>,
    /// Checkpoint cadence (host WLs) when an SPO cut is composed.
    pub ckpt_interval_host_wls: u64,
}

impl ArrayFailureConfig {
    /// Everything off: plain striping, no failure, no spare.
    pub fn off() -> Self {
        ArrayFailureConfig {
            parity: false,
            fail: None,
            spare_shards: 0,
            rebuild: RebuildSchedule::on(),
            spo_cut_at_us: None,
            ckpt_interval_host_wls: 64,
        }
    }

    /// Whether any resilience feature is engaged.
    pub fn engaged(&self) -> bool {
        self.parity || self.fail.is_some() || self.spare_shards > 0 || self.spo_cut_at_us.is_some()
    }
}

/// The zero-host-acknowledged-loss audit of one failure-injection run.
///
/// "Array-acknowledged" means both legs of a write were durable at the
/// failure instant: the data page on the (now dead) shard *and* its
/// row's parity page on the surviving parity holder. Pages whose data
/// leg was durable but whose parity leg had not yet landed are counted
/// `unprotected` — a real array would not have acknowledged them to the
/// host, so they are not loss.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FailureAudit {
    /// Durable data pages on the failed shard at the failure instant
    /// (mapped or PLP-buffered, within the routed region).
    pub durable_data_pages: u64,
    /// Of those, array-acknowledged (parity leg also durable).
    pub acked_pages: u64,
    /// Of those, data-leg-only durable (array had not acked them yet).
    pub unprotected_pages: u64,
    /// Array-acknowledged pages mapped on the spare after the rebuild.
    pub rebuilt_mapped_pages: u64,
    /// Dead-shard requests with no redirect target (reads with parity
    /// off, writes without a spare).
    pub dropped_requests: u64,
    /// Array-acknowledged pages that are neither on the spare nor
    /// reconstructable from survivors — with parity off, every durable
    /// data page. **Must be 0 with parity on.**
    pub lost_pages: u64,
    /// `lost_pages == 0`.
    pub zero_loss: bool,
}

/// Outcome of one [`run_array_failure_eval`] experiment.
#[derive(Debug, Clone)]
pub struct ArrayFailureReport {
    /// The merged healthy phase (up to the failure instant, or the full
    /// run when no failure is injected).
    pub healthy: ArrayReport,
    /// Per-shard healthy-phase reports, indexed by shard.
    pub shard_healthy: Vec<SimReport>,
    /// The merged degraded phase (survivors plus the spare in the dead
    /// shard's slot), `None` when no failure was injected.
    pub degraded: Option<ArrayReport>,
    /// The merged post-SPO-recovery resume phase, when an SPO cut was
    /// composed and fired.
    pub resumed: Option<ArrayReport>,
    /// Per-participant SPO recovery reports for the composed cut,
    /// indexed like the degraded phase (`None` where no cut landed).
    pub recoveries: Vec<Option<RecoveryReport>>,
    /// Host-acknowledged `(shard id, local LPN)` pairs lost to the
    /// composed SPO cut. **Must be empty.**
    pub spo_lost_lpns: Vec<(usize, u64)>,
    /// Resilience counters (degraded reads, rebuild traffic, loss).
    pub resilience: ResilienceReport,
    /// The spare's combined rebuild progress (reads/writes/curve).
    pub rebuild: RebuildProgress,
    /// The zero-loss audit.
    pub audit: FailureAudit,
    /// Degraded/rebuild trace events emitted at the phase barriers
    /// (timestamps of degraded-phase events are offset by the failure
    /// instant, since each phase's virtual clock restarts at zero).
    pub events: Vec<TraceEvent>,
}

/// Sums two [`RebuildProgress`] snapshots from consecutive phases,
/// shifting the second phase's timestamps by `offset_us`.
fn combine_progress(a: &RebuildProgress, b: &RebuildProgress, offset_us: f64) -> RebuildProgress {
    let mut curve = a.curve.clone();
    curve.extend(
        b.curve
            .iter()
            .map(|&(t, n)| (offset_us + t, a.ops_done() + n)),
    );
    RebuildProgress {
        reads_done: a.reads_done + b.reads_done,
        writes_done: a.writes_done + b.writes_done,
        skipped: a.skipped + b.skipped,
        done_at_us: if b.ops_done() > 0 || b.done_at_us > 0.0 {
            offset_us + b.done_at_us
        } else {
            a.done_at_us
        },
        curve,
    }
}

/// Runs the array-resilience experiment: a global host stream is routed
/// through the rotating-parity router ([`ParityRouter`]; plain striping
/// when parity is off), the array runs healthy until the failure
/// instant (every shard stopped at the same virtual time), then a
/// deterministic barrier computes the dead shard's durable ledger,
/// redirects its unissued remainder (reads become survivor fragment
/// reads for XOR reconstruction; writes and trims move to the hot
/// spare), arms the background rebuild (survivors read fragments, the
/// spare programs reconstructed pages — paced by the idle-window
/// scheduler with a host-priority gap), and runs the degraded phase. An
/// optional SPO cut composes on top, with per-shard crash recovery and
/// a final resume phase.
///
/// Every fan-out is pre-computed at a barrier and every fan-in is in
/// shard order, so the whole report is byte-identical at any worker
/// thread count. Each phase's virtual clock restarts at zero
/// (per-device runs are self-contained); phase-relative times are
/// offset by the failure instant where the report needs one timeline.
pub fn run_array_failure_eval(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    arr: &ArrayEvalConfig,
    fc: &ArrayFailureConfig,
) -> ArrayFailureReport {
    assert!(arr.shards >= 1, "need at least one shard");
    if let Some(f) = &fc.fail {
        assert!(f.shard < arr.shards, "failed shard out of range");
        assert!(f.at_us > 0.0, "the failure must be after time zero");
        assert!(
            fc.parity || fc.spare_shards > 0 || arr.shards >= 1,
            "a failure needs parity or a spare to be survivable"
        );
    }
    let s_total = arr.shards;
    let router = ParityRouter::new(s_total, arr.stripe_pages, fc.parity);

    // Prepare every shard first to learn the shard-local capacity (as
    // in `run_array_trace_eval`): the routed region is whole rows.
    let mut prepared: Vec<(SsdSim, Ftl)> = Vec::with_capacity(s_total);
    let mut local_limit = u64::MAX;
    let mut prefill_local = 0;
    for s in 0..s_total {
        let (sim, mut ftl, prefill) = setup_shard(kind, aging, cfg, s);
        if fc.spo_cut_at_us.is_some() {
            ftl.enable_checkpointing(fc.ckpt_interval_host_wls);
        }
        ftl.reset_stats();
        local_limit = local_limit.min(ftl.logical_pages());
        prefill_local = prefill;
        prepared.push((sim, ftl));
    }
    let p = arr.stripe_pages;
    let rows = local_limit / p;
    assert!(
        rows >= 1,
        "stripe of {p} pages exceeds the shard-local space of {local_limit} pages"
    );
    let d = router.data_shards() as u64;
    let local_used = rows * p;
    let global_data_pages = rows * p * d;

    // Draw the global stream over the prefilled rows (every shard
    // prefills local `0..prefill`, so rows below `prefill/P` are fully
    // resident on data and parity shards alike).
    let hot_rows = (prefill_local / p).clamp(1, rows);
    let hot_global = (hot_rows * p * d).max(1024).min(global_data_pages);
    let stream: Vec<HostRequest> = workload
        .build(hot_global, cfg.seed)
        .take(usize::try_from(cfg.requests).expect("requests fit"))
        .collect();
    let stream = fold_requests(&stream, global_data_pages);

    // Route fragment-by-fragment, keeping the global order: the flat
    // list drives the remainder redirection at the failure barrier, the
    // per-shard vectors drive the healthy phase.
    let routed: Vec<(usize, HostRequest)> = stream.iter().flat_map(|r| router.split(*r)).collect();
    let mut per_shard: Vec<Vec<HostRequest>> = vec![Vec::new(); s_total];
    for &(s, req) in &routed {
        per_shard[s].push(req);
    }
    let budgets: Vec<u64> = per_shard.iter().map(|v| v.len() as u64).collect();

    // ---- Healthy phase: run to the failure instant (or drain). ----
    let trigger = fc.fail.map(|f| SpoTrigger::AtTimeUs(f.at_us));
    let shards: Vec<ArrayShard<Ftl, std::vec::IntoIter<HostRequest>>> = prepared
        .into_iter()
        .enumerate()
        .map(|(s, (sim, ftl))| ArrayShard {
            sim,
            ftl,
            workload: std::mem::take(&mut per_shard[s]).into_iter(),
            requests: budgets[s],
            spo: trigger,
            rebuild: None,
        })
        .collect();
    let mut array = SsdArray::new(shards).with_threads(arr.engine_threads());
    let out = array.run();

    let Some(fail) = fc.fail else {
        return ArrayFailureReport {
            healthy: out.report,
            shard_healthy: out.shard_reports,
            degraded: None,
            resumed: None,
            recoveries: Vec::new(),
            spo_lost_lpns: Vec::new(),
            resilience: ResilienceReport {
                parity: fc.parity,
                ..ResilienceReport::default()
            },
            rebuild: RebuildProgress::default(),
            audit: FailureAudit {
                zero_loss: true,
                ..FailureAudit::default()
            },
            events: Vec::new(),
        };
    };
    let failed = fail.shard;

    // ---- Failure barrier (sequence point: every shard stopped). ----
    let parts: Vec<(SsdSim, Ftl)> = array
        .into_shards()
        .into_iter()
        .map(|sh| (sh.sim, sh.ftl))
        .collect();
    let issued: Vec<u64> = (0..s_total)
        .map(|s| out.spo_events[s].as_ref().map_or(budgets[s], |e| e.issued))
        .collect();
    let buffered: Vec<BTreeSet<u64>> = (0..s_total)
        .map(|s| {
            out.spo_events[s]
                .as_ref()
                .map_or_else(BTreeSet::new, |e| e.buffered_lpns.iter().copied().collect())
        })
        .collect();

    // The dead shard's durable ledger over the routed region, split by
    // page role; live parity stripes (any survivor data in the row)
    // join the rebuild so the spare restores full redundancy.
    let mut durable_data: Vec<u64> = Vec::new();
    let mut parity_locals: Vec<u64> = Vec::new();
    for l in 0..local_used {
        let durable = parts[failed].1.is_mapped(l) || buffered[failed].contains(&l);
        match router.page_at(failed, l) {
            PageRole::Data(_) if durable => durable_data.push(l),
            PageRole::Parity { .. } => {
                let live = (0..s_total)
                    .filter(|&t| t != failed)
                    .any(|t| parts[t].1.is_mapped(l) || buffered[t].contains(&l));
                if live {
                    parity_locals.push(l);
                }
            }
            _ => {}
        }
    }
    // Array-acknowledged = both legs durable at the failure instant.
    let acked: Vec<u64> = if fc.parity {
        durable_data
            .iter()
            .copied()
            .filter(|&l| {
                let holder = router.parity_shard(l / p);
                parts[holder].1.is_mapped(l) || buffered[holder].contains(&l)
            })
            .collect()
    } else {
        Vec::new()
    };

    // ---- Redirect the dead shard's unissued remainder. ----
    let spare = (fc.spare_shards > 0).then_some(s_total);
    let mut ids: Vec<usize> = (0..s_total).collect();
    match spare {
        Some(id) => ids[failed] = id,
        None => {
            ids.remove(failed);
        }
    }
    let pos_of = |id: usize| {
        ids.iter()
            .position(|&x| x == id)
            .expect("participant shard")
    };
    let n_part = ids.len();
    let mut phase_b: Vec<Vec<HostRequest>> = vec![Vec::new(); n_part];
    let mut cursors = vec![0u64; s_total];
    let mut degraded_reads = 0u64;
    let mut degraded_fragment_reads = 0u64;
    let mut per_frag = vec![0u64; s_total + usize::from(spare.is_some())];
    let mut redirected_writes = 0u64;
    let mut dropped_requests = 0u64;
    let mut degraded_read_events: Vec<(u64, u32)> = Vec::new();
    for &(s, req) in &routed {
        if cursors[s] < issued[s] {
            cursors[s] += 1; // already issued in the healthy phase
            continue;
        }
        cursors[s] += 1;
        if s != failed {
            phase_b[pos_of(s)].push(req);
            continue;
        }
        match req.op {
            HostOp::Read if fc.parity => {
                // Degraded read: every survivor serves its fragment at
                // the same local index; XOR reconstructs the data.
                degraded_reads += u64::from(req.n_pages);
                for t in (0..s_total).filter(|&t| t != failed) {
                    phase_b[pos_of(t)].push(HostRequest {
                        op: HostOp::Read,
                        lpn: req.lpn,
                        n_pages: req.n_pages,
                    });
                    degraded_fragment_reads += u64::from(req.n_pages);
                    per_frag[t] += u64::from(req.n_pages);
                }
                degraded_read_events.push((req.lpn, (s_total - 1) as u32));
            }
            HostOp::Read => dropped_requests += 1,
            HostOp::Write | HostOp::Trim => {
                if let Some(id) = spare {
                    // The spare takes over the dead slot; the fragment's
                    // parity update already sits in its holder's stream.
                    phase_b[pos_of(id)].push(req);
                    redirected_writes += 1;
                } else {
                    dropped_requests += 1;
                }
            }
        }
    }

    // ---- Rebuild plan: survivors read, the spare programs. ----
    let mut rebuild_set: Vec<u64> = durable_data.clone();
    rebuild_set.extend(parity_locals.iter().copied());
    rebuild_set.sort_unstable();
    let do_rebuild = fc.parity && spare.is_some() && !rebuild_set.is_empty();

    // ---- Degraded phase: survivors + the spare in the dead slot. ----
    let b_budgets: Vec<u64> = phase_b.iter().map(|v| v.len() as u64).collect();
    let spo_b = fc.spo_cut_at_us.map(SpoTrigger::AtTimeUs);
    let mut parts_opt: Vec<Option<(SsdSim, Ftl)>> = parts.into_iter().map(Some).collect();
    let mut b_shards = Vec::with_capacity(n_part);
    for (pos, &id) in ids.iter().enumerate() {
        let (sim, ftl) = if id < s_total {
            parts_opt[id].take().expect("survivor present")
        } else {
            // The hot spare: same geometry, its own seed, no prefill —
            // a blank standby device.
            let mut spare_cfg = cfg.clone();
            spare_cfg.prefill_fraction = 0.0;
            let (sim, mut ftl, _) = setup_shard(kind, aging, &spare_cfg, id);
            if fc.spo_cut_at_us.is_some() {
                ftl.enable_checkpointing(fc.ckpt_interval_host_wls);
            }
            ftl.reset_stats();
            (sim, ftl)
        };
        let reqs: Vec<HostRequest> = std::mem::take(&mut phase_b[pos]);
        let rebuild = do_rebuild.then(|| RebuildPlan {
            sched: fc.rebuild,
            ops: if id == s_total {
                rebuild_set.iter().map(|&l| RebuildOp::Write(l)).collect()
            } else {
                rebuild_set.iter().map(|&l| RebuildOp::Read(l)).collect()
            },
        });
        b_shards.push(ArrayShard {
            sim,
            ftl,
            workload: reqs.into_iter(),
            requests: b_budgets[pos],
            spo: spo_b,
            rebuild,
        });
    }
    let mut b_array = SsdArray::new(b_shards).with_threads(arr.engine_threads());
    let b_out = b_array.run();
    let mut final_shards = b_array.into_shards();
    let b_prog: Vec<RebuildProgress> = final_shards
        .iter()
        .map(|sh| sh.sim.rebuild_progress().clone())
        .collect();
    let offset_us = b_out.report.sim_time_us;

    // ---- Composed SPO cut: per-shard crash recovery + resume. ----
    let mut recoveries: Vec<Option<RecoveryReport>> = vec![None; n_part];
    let mut spo_lost_lpns: Vec<(usize, u64)> = Vec::new();
    let mut resumed = None;
    let mut c_prog: Vec<RebuildProgress> = vec![RebuildProgress::default(); n_part];
    if fc.spo_cut_at_us.is_some() && b_out.spo_events.iter().any(Option::is_some) {
        let mut c_shards = Vec::with_capacity(n_part);
        for (pos, mut shard) in final_shards.into_iter().enumerate() {
            let id = ids[pos];
            // Carry unfinished rebuild work across the cut — the next
            // run_begin would otherwise discard it.
            let pending = shard.sim.take_rebuild_pending();
            let remaining = match &b_out.spo_events[pos] {
                Some(event) => {
                    let logical = shard.ftl.logical_pages();
                    let mut durable: Vec<u64> =
                        (0..logical).filter(|&l| shard.ftl.is_mapped(l)).collect();
                    durable.extend(event.buffered_lpns.iter().copied());
                    durable.sort_unstable();
                    durable.dedup();
                    for f in &event.interrupted_flushes {
                        shard.ftl.power_cut(f.chip, f.lpns, f.did_gc);
                    }
                    let (mut recovered, recovery) = shard.ftl.power_cycle(&event.buffered_lpns);
                    spo_lost_lpns.extend(
                        durable
                            .iter()
                            .copied()
                            .filter(|&l| !recovered.is_mapped(l))
                            .map(|l| (id, l)),
                    );
                    if let Some(maint) = cfg.maint {
                        recovered.enable_maintenance(maint);
                    }
                    shard.ftl = recovered;
                    recoveries[pos] = Some(recovery);
                    b_budgets[pos].saturating_sub(event.issued)
                }
                None => 0,
            };
            shard.requests = remaining;
            shard.spo = None;
            shard.rebuild = (!pending.is_empty()).then_some(RebuildPlan {
                sched: fc.rebuild,
                ops: pending,
            });
            c_shards.push(shard);
        }
        if c_shards
            .iter()
            .any(|s| s.requests > 0 || s.rebuild.is_some())
        {
            let mut c_array = SsdArray::new(c_shards).with_threads(arr.engine_threads());
            let c_out = c_array.run();
            resumed = Some(c_out.report);
            final_shards = c_array.into_shards();
            c_prog = final_shards
                .iter()
                .map(|sh| sh.sim.rebuild_progress().clone())
                .collect();
        } else {
            final_shards = c_shards;
        }
    }

    // ---- Combined rebuild progress and the zero-loss audit. ----
    let progress: Vec<RebuildProgress> = (0..n_part)
        .map(|pos| combine_progress(&b_prog[pos], &c_prog[pos], offset_us))
        .collect();
    let spare_progress = spare
        .map(|id| progress[pos_of(id)].clone())
        .unwrap_or_default();
    let rebuild_reads: u64 = ids
        .iter()
        .enumerate()
        .filter(|&(_, &id)| id < s_total)
        .map(|(pos, _)| progress[pos].reads_done)
        .sum();
    let mut per_shard_rebuild_reads = vec![0u64; s_total + usize::from(spare.is_some())];
    for (pos, &id) in ids.iter().enumerate() {
        if id < s_total {
            per_shard_rebuild_reads[id] = progress[pos].reads_done;
        }
    }

    let spare_ftl = spare.map(|id| &final_shards[pos_of(id)].ftl);
    let rebuilt_mapped_pages = spare_ftl.map_or(0, |f| {
        acked.iter().filter(|&&l| f.is_mapped(l)).count() as u64
    });
    // A page survives if the spare holds it, or if it is still
    // reconstructable: the parity leg (and every survivor data leg)
    // lives on an alive shard. Survivor durability after the composed
    // SPO cut is audited separately through `spo_lost_lpns`.
    let lost_pages = if fc.parity {
        acked
            .iter()
            .filter(|&&l| {
                let on_spare = spare_ftl.is_some_and(|f| f.is_mapped(l));
                let holder = router.parity_shard(l / p);
                let holder_alive = ids.contains(&holder);
                !(on_spare || holder_alive)
            })
            .count() as u64
    } else {
        durable_data.len() as u64
    };
    let audit = FailureAudit {
        durable_data_pages: durable_data.len() as u64,
        acked_pages: acked.len() as u64,
        unprotected_pages: durable_data.len() as u64 - acked.len() as u64,
        rebuilt_mapped_pages,
        dropped_requests,
        lost_pages,
        zero_loss: lost_pages == 0,
    };

    let resilience = ResilienceReport {
        parity: fc.parity,
        failed_shard: Some(failed as u32),
        fail_at_us: fail.at_us,
        spare_shard: spare.map(|id| id as u32),
        degraded_reads,
        degraded_fragment_reads,
        rebuild_pages: spare_progress.writes_done,
        rebuild_reads,
        rebuild_time_us: spare_progress.done_at_us,
        redirected_writes,
        lost_pages,
        per_shard_degraded_reads: per_frag,
        per_shard_rebuild_reads,
    };

    // ---- Barrier-level trace events (degraded/rebuild categories). ----
    let mut collector =
        Collector::enabled(EventMask::DEGRADED.union(EventMask::REBUILD), failed as u32);
    collector.emit(
        fail.at_us,
        EventKind::ShardFail {
            failed: failed as u32,
            phase: "inject",
            detail: audit.durable_data_pages,
        },
    );
    collector.emit(
        fail.at_us,
        EventKind::ShardFail {
            failed: failed as u32,
            phase: "detect",
            detail: degraded_reads + redirected_writes,
        },
    );
    for &(lpn, fragments) in &degraded_read_events {
        collector.emit(fail.at_us, EventKind::DegradedRead { lpn, fragments });
    }
    if let Some(id) = spare {
        for &(t, ops) in &spare_progress.curve {
            collector.emit(
                fail.at_us + t,
                EventKind::RebuildUnit {
                    spare: id as u32,
                    action: "write",
                    pages: ops,
                },
            );
        }
        for (pos, &sid) in ids.iter().enumerate() {
            if sid < s_total && progress[pos].reads_done > 0 {
                collector.emit(
                    fail.at_us + progress[pos].done_at_us,
                    EventKind::RebuildUnit {
                        spare: sid as u32,
                        action: "read",
                        pages: progress[pos].reads_done,
                    },
                );
            }
        }
        if spare_progress.writes_done > 0 {
            collector.emit(
                fail.at_us + spare_progress.done_at_us,
                EventKind::ShardFail {
                    failed: failed as u32,
                    phase: "restored",
                    detail: rebuilt_mapped_pages,
                },
            );
        }
    }

    ArrayFailureReport {
        healthy: out.report,
        shard_healthy: out.shard_reports,
        degraded: Some(b_out.report),
        resumed,
        recoveries,
        spo_lost_lpns,
        resilience,
        rebuild: spare_progress,
        audit,
        events: collector.take(),
    }
}

/// Multi-queue QoS front-end switches on top of an [`EvalConfig`].
///
/// With one queue and one tenant ([`QosSpec::off`], or `--queues 1
/// --tenants 1`) the spec is *not engaged*: evaluation routes through
/// the exact legacy closed-loop path, so all pre-existing goldens
/// reproduce byte-for-byte by construction.
#[derive(Debug, Clone, PartialEq)]
pub struct QosSpec {
    /// Submission/completion queue pairs (`--queues`).
    pub queues: u32,
    /// Tenant population size (`--tenants`).
    pub tenants: u32,
    /// DWRR weight cycle over tenant ids (`--tenant-weights`).
    pub weights: Vec<u32>,
    /// Per-tenant submission queue depth bound (`--qos-sq-depth`).
    pub sq_depth: usize,
    /// Aggregate mean inter-arrival time, µs (`--qos-arrival-us`).
    pub arrival_interval_us: f64,
    /// Equal per-tenant arrival rates instead of weight-proportional
    /// ones (`--qos-equal-arrivals`): offered load is uniform while
    /// service stays weight-differentiated, so overload sheds
    /// best-effort tenants while the protected class keeps up.
    pub equal_arrivals: bool,
    /// Read-latency SLO, µs (`--qos-slo-read-us`).
    pub slo_read_us: Option<f64>,
    /// Write-latency SLO, µs (`--qos-slo-write-us`).
    pub slo_write_us: Option<f64>,
    /// Tenant stream personality override. `None` = every tenant runs
    /// the evaluation cell's [`StandardWorkload`].
    pub mix: Option<TenantMix>,
    /// Optional recorded trace replayed by tenant 0 instead of its
    /// synthetic stream (`--qos-trace`; single-device runs only).
    pub trace: Option<Trace>,
}

impl QosSpec {
    /// The disengaged spec (legacy single-stream behaviour).
    pub fn off() -> Self {
        QosSpec {
            queues: 1,
            tenants: 1,
            weights: vec![1],
            sq_depth: 16,
            arrival_interval_us: 2.0,
            equal_arrivals: false,
            slo_read_us: None,
            slo_write_us: None,
            mix: None,
            trace: None,
        }
    }

    /// Whether the multi-queue front-end is engaged. Disengaged runs
    /// take the legacy closed-loop path untouched.
    pub fn engaged(&self) -> bool {
        self.queues > 1 || self.tenants > 1
    }

    /// The front configuration this spec implies.
    fn front_config(&self) -> HostQueueConfig {
        HostQueueConfig {
            queues: self.queues,
            sq_depth: self.sq_depth,
            arrival_interval_us: self.arrival_interval_us,
            weighted_arrivals: !self.equal_arrivals,
            slo_read_us: self.slo_read_us,
            slo_write_us: self.slo_write_us,
        }
    }

    /// Splits the run's request budget into per-tenant arrival budgets,
    /// matching the arrival-rate mode.
    fn budgets(&self, total: u64, profiles: &[TenantProfile]) -> Vec<u64> {
        if self.equal_arrivals {
            split_even_budget(total, profiles.len())
        } else {
            split_arrival_budget(total, profiles)
        }
    }

    /// Builds the tenant population for one evaluation cell.
    fn population(&self, workload: StandardWorkload, seed: u64) -> Vec<TenantProfile> {
        let mix = self.mix.unwrap_or(TenantMix::Standard(workload));
        build_population(self.tenants, &self.weights, Some(mix), seed)
    }

    /// Builds tenant streams over `space` pages, honouring the tenant-0
    /// trace override.
    fn streams(&self, profiles: &[TenantProfile], space: u64) -> Vec<Box<dyn Workload + Send>> {
        profiles
            .iter()
            .map(|p| -> Box<dyn Workload + Send> {
                match (&self.trace, p.id) {
                    (Some(trace), 0) => {
                        let folded = fold_requests(trace.requests(), space);
                        Box::new(Trace::from_requests(trace.label(), folded).replay())
                    }
                    _ => p.build_stream(space),
                }
            })
            .collect()
    }
}

impl Default for QosSpec {
    fn default() -> Self {
        QosSpec::off()
    }
}

/// Results of one QoS evaluation: the device report plus the per-tenant
/// outcome. `qos.tenants` is empty when the spec was not engaged.
#[derive(Debug, Clone)]
pub struct QosEvalReport {
    /// The device-side report.
    pub sim: SimReport,
    /// Per-tenant QoS outcomes (empty when disengaged).
    pub qos: QosReport,
}

/// Runs one evaluation cell through the multi-queue QoS front-end: the
/// tenant population arrives open-loop, per-tenant submission queues
/// shed beyond their depth bound, and the Q8.8 DWRR scheduler dispatches
/// to the device. A disengaged spec routes through the exact legacy
/// closed-loop path ([`run_eval_traced_custom`]).
pub fn run_qos_eval(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    qos: &QosSpec,
    tel: &TelemetrySpec,
) -> (QosEvalReport, TelemetryOutput) {
    if !qos.engaged() {
        let (sim, telemetry) =
            run_eval_traced_custom(kind, workload, aging, cfg, cfg.ftl_config(), tel);
        return (
            QosEvalReport {
                sim,
                qos: QosReport::default(),
            },
            telemetry,
        );
    }
    let mut ssd_cfg = cfg.ssd;
    if cfg.maint.is_some_and(|m| m.enabled) && !ssd_cfg.maint.enabled {
        ssd_cfg.maint = MaintSchedule::on();
    }
    let mut sim = SsdSim::new(ssd_cfg);
    let mut ftl = setup_ftl(kind, aging, cfg, cfg.ftl_config(), &mut sim);
    ftl.reset_stats();
    sim.enable_telemetry(tel.events, 0, tel.sample_interval_us);
    ftl.enable_telemetry(tel.events, 0);

    let logical = ftl.logical_pages();
    let prefill = (logical as f64 * cfg.prefill_fraction) as u64;
    let space = prefill.max(1024);
    let profiles = qos.population(workload, cfg.seed);
    let streams = qos.streams(&profiles, space);
    let budgets = qos.budgets(cfg.requests, &profiles);
    let mut front = HostQueueFront::new(qos.front_config(), profiles, streams, budgets);
    front.enable_telemetry(tel.events, 0);

    sim.run_front_begin(u64::MAX);
    while sim.run_step_front(&mut ftl, &mut front, u64::MAX) == StepOutcome::Running {}
    let report = sim.run_front_end(&ftl);
    let qos_report = front.report();
    let telemetry = TelemetryOutput {
        events: merge_streams(
            merge_streams(sim.take_trace(), ftl.take_trace()),
            front.take_trace(),
        ),
        series: sim.take_series(),
    };
    (
        QosEvalReport {
            sim: report,
            qos: qos_report,
        },
        telemetry,
    )
}

/// Results of one sharded QoS evaluation.
#[derive(Debug, Clone)]
pub struct ArrayQosEvalReport {
    /// The merged array-wide device report.
    pub merged: ArrayReport,
    /// Per-shard device reports, indexed by shard.
    pub shards: Vec<SimReport>,
    /// The merged per-tenant QoS outcome (empty when disengaged).
    pub qos: QosReport,
}

/// Runs one QoS evaluation cell on a sharded array. Tenant `t` routes
/// to shard `t % shards` (global tenant ids are preserved on each
/// shard); every shard runs its own front over its tenant subset, and
/// fan-in merges device reports, QoS outcomes and telemetry strictly in
/// shard order — byte-identical at any worker-thread count. A
/// disengaged spec routes through the legacy array path.
pub fn run_array_qos_eval(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    arr: &ArrayEvalConfig,
    qos: &QosSpec,
    tel: &TelemetrySpec,
) -> (ArrayQosEvalReport, TelemetryOutput) {
    assert!(arr.shards >= 1, "need at least one shard");
    if !qos.engaged() {
        let (r, telemetry) = run_array_eval_traced(kind, workload, aging, cfg, arr, tel);
        return (
            ArrayQosEvalReport {
                merged: r.merged,
                shards: r.shards,
                qos: QosReport::default(),
            },
            telemetry,
        );
    }
    assert!(
        qos.trace.is_none(),
        "per-tenant trace replay is single-device only"
    );
    let all_profiles = qos.population(workload, cfg.seed);
    let budgets = qos.budgets(cfg.requests, &all_profiles);
    let shards = (0..arr.shards)
        .map(|s| {
            let (mut sim, mut ftl, prefill) = setup_shard(kind, aging, cfg, s);
            ftl.reset_stats();
            sim.enable_telemetry(tel.events, s as u32, tel.sample_interval_us);
            ftl.enable_telemetry(tel.events, s as u32);
            let space = prefill.max(1024);
            // This shard's tenant subset, with global ids intact.
            let (profiles, shard_budgets): (Vec<_>, Vec<_>) = all_profiles
                .iter()
                .zip(&budgets)
                .filter(|(p, _)| p.id as usize % arr.shards == s)
                .map(|(p, b)| (*p, *b))
                .unzip();
            assert!(
                !profiles.is_empty(),
                "shard {s} has no tenants: use at least as many tenants as shards"
            );
            let streams = profiles.iter().map(|p| p.build_stream(space)).collect();
            let mut front =
                HostQueueFront::new(qos.front_config(), profiles, streams, shard_budgets);
            front.enable_telemetry(tel.events, s as u32);
            FrontShard {
                sim,
                ftl,
                front,
                requests: u64::MAX,
            }
        })
        .collect();
    let mut array = FrontArray::new(shards).with_threads(arr.engine_threads());
    let out = array.run();
    // Sequence point: shards sit back in index order. Drain QoS reports
    // and telemetry shard by shard.
    let mut qos_reports = Vec::new();
    let mut events = Vec::new();
    let mut series = Series::new(tel.sample_interval_us.unwrap_or(0.0));
    for shard in array.shards_mut() {
        qos_reports.push(shard.front.report());
        events.extend(merge_streams(
            merge_streams(shard.sim.take_trace(), shard.ftl.take_trace()),
            shard.front.take_trace(),
        ));
        series.extend(&shard.sim.take_series());
    }
    (
        ArrayQosEvalReport {
            merged: out.report,
            shards: out.shard_reports,
            qos: QosReport::merge(qos_reports),
        },
        TelemetryOutput { events, series },
    )
}

/// Per-epoch seed of a lifetime campaign's workload stream. Epoch 0
/// uses the master seed unchanged — a disengaged campaign therefore
/// reproduces the corresponding plain evaluation byte-for-byte — and
/// later epochs draw fresh domain-separated substreams, so the device
/// does not replay the identical request sequence at every age.
fn epoch_seed(seed: u64, epoch: u32) -> u64 {
    if epoch == 0 {
        seed
    } else {
        // Domain separator: ASCII "LIFETIME".
        shard_seed(seed ^ 0x4C49_4645_5449_4D45, epoch as usize)
    }
}

/// Outcome of one fast-forward aging campaign on a single device: the
/// workload phases bracketing each aging step, from fresh (epoch 0) to
/// end-of-life (the last epoch).
#[derive(Debug, Clone)]
pub struct LifetimeEvalReport {
    /// Per-epoch workload reports; index 0 is the fresh device. FTL
    /// counters are reset at each epoch boundary, so every report's
    /// `ftl` block covers exactly its own epoch.
    pub epochs: Vec<SimReport>,
    /// Per-step aging summaries (`epochs.len() − 1` entries; step `k`
    /// sits between epoch `k − 1` and epoch `k`).
    pub summaries: Vec<EpochSummary>,
    /// AGING trace events emitted at the epoch barriers. Each phase's
    /// virtual clock restarts at zero; barrier timestamps are offset by
    /// the cumulative end times of the preceding epochs, giving one
    /// concatenated campaign timeline.
    pub events: Vec<TraceEvent>,
}

impl LifetimeEvalReport {
    /// Read retries per completed read of epoch `e` — the campaign's
    /// headline drift metric.
    pub fn retry_rate(&self, e: usize) -> f64 {
        let r = &self.epochs[e];
        if r.reads == 0 {
            0.0
        } else {
            r.ftl.read_retries as f64 / r.reads as f64
        }
    }
}

/// Runs one fast-forward aging campaign on a single device: the FTL is
/// built and prefilled once, then alternates workload epochs with aging
/// steps. Each step walks every block at a barrier (no host traffic in
/// flight) and advances its virtual age — P/E cycles scaled by the
/// similarity-model wear-rate spread and the resident data's pattern
/// stress, retention months shaped by the early-retention-loss curve —
/// so OPM re-monitoring, retry chains and background maintenance race
/// real drift across epochs instead of meeting a pre-baked aged state.
///
/// Fully deterministic: the engine draws nothing from an RNG stream,
/// and with [`LifetimeConfig::off`] the single epoch reproduces
/// [`run_eval`] byte-for-byte.
pub fn run_lifetime_eval(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    life: &LifetimeConfig,
) -> LifetimeEvalReport {
    run_lifetime_eval_mixed(
        kind,
        &[EpochWorkload::Std(workload)],
        aging,
        cfg,
        life,
        &KvSpec::off(),
    )
}

/// Like [`run_lifetime_eval`] but with a per-epoch workload override:
/// epoch `e` runs `phases[e % phases.len()]`, so a campaign can model
/// phase-varying load (e.g. YCSB-A churn epochs followed by YCSB-C
/// read-back epochs). KV phases draw their engine shape from `kv`
/// (pass [`KvSpec::off`] for defaults). With a single `Std` phase this
/// is exactly [`run_lifetime_eval`] — the stream construction per
/// epoch is identical.
pub fn run_lifetime_eval_mixed(
    kind: FtlKind,
    phases: &[EpochWorkload],
    aging: AgingState,
    cfg: &EvalConfig,
    life: &LifetimeConfig,
    kv: &KvSpec,
) -> LifetimeEvalReport {
    assert!(!phases.is_empty(), "need at least one workload phase");
    life.validate();
    let mut ssd_cfg = cfg.ssd;
    if cfg.maint.is_some_and(|m| m.enabled) && !ssd_cfg.maint.enabled {
        ssd_cfg.maint = MaintSchedule::on();
    }
    let mut sim = SsdSim::new(ssd_cfg);
    let mut ftl = setup_ftl(kind, aging, cfg, cfg.ftl_config(), &mut sim);
    if life.steps() > 0 {
        ftl.enable_lifetime_aging();
    }
    let logical = ftl.logical_pages();
    let space = ((logical as f64 * cfg.prefill_fraction) as u64).max(1024);
    let mut engine = LifetimeEngine::new(*life);
    let mut collector = Collector::enabled(EventMask::AGING, 0);
    let epochs = life.epochs.max(1);
    let mut reports = Vec::with_capacity(epochs as usize);
    let mut summaries = Vec::with_capacity(life.steps() as usize);
    let mut t_offset = 0.0;
    for e in 0..epochs {
        if e > 0 {
            // Aging barrier: the previous epoch has fully drained.
            let s = ftl.advance_lifetime_epoch(&mut engine);
            collector.emit(
                t_offset,
                EventKind::EpochAdvance {
                    epoch: e,
                    pe_add: s.pe_added,
                    retention_add_months: s.retention_added_months,
                    blocks: s.blocks_aged,
                },
            );
            summaries.push(s);
        }
        ftl.reset_stats();
        let stream = phases[e as usize % phases.len()].build(kv, space, epoch_seed(cfg.seed, e));
        let report = sim.run(&mut ftl, stream, cfg.requests);
        t_offset += report.sim_time_us;
        reports.push(report);
    }
    LifetimeEvalReport {
        epochs: reports,
        summaries,
        events: collector.take(),
    }
}

/// Like [`run_lifetime_eval`] but replaying a recorded [`Trace`] in
/// every epoch (LPNs folded into the device's logical space, as in
/// [`run_trace_eval`]): the same recorded request sequence is measured
/// at each age point, isolating the aging drift from workload drift.
/// With [`LifetimeConfig::off`] the single epoch reproduces
/// [`run_trace_eval`] byte-for-byte.
pub fn run_lifetime_trace_eval(
    kind: FtlKind,
    aging: AgingState,
    cfg: &EvalConfig,
    life: &LifetimeConfig,
    trace: &Trace,
) -> LifetimeEvalReport {
    life.validate();
    let mut ssd_cfg = cfg.ssd;
    if cfg.maint.is_some_and(|m| m.enabled) && !ssd_cfg.maint.enabled {
        ssd_cfg.maint = MaintSchedule::on();
    }
    let mut sim = SsdSim::new(ssd_cfg);
    let mut ftl = setup_ftl(kind, aging, cfg, cfg.ftl_config(), &mut sim);
    if life.steps() > 0 {
        ftl.enable_lifetime_aging();
    }
    let logical = ftl.logical_pages();
    let folded = fold_requests(trace.requests(), logical);
    let n = folded.len() as u64;
    let mut engine = LifetimeEngine::new(*life);
    let mut collector = Collector::enabled(EventMask::AGING, 0);
    let epochs = life.epochs.max(1);
    let mut reports = Vec::with_capacity(epochs as usize);
    let mut summaries = Vec::with_capacity(life.steps() as usize);
    let mut t_offset = 0.0;
    for e in 0..epochs {
        if e > 0 {
            let s = ftl.advance_lifetime_epoch(&mut engine);
            collector.emit(
                t_offset,
                EventKind::EpochAdvance {
                    epoch: e,
                    pe_add: s.pe_added,
                    retention_add_months: s.retention_added_months,
                    blocks: s.blocks_aged,
                },
            );
            summaries.push(s);
        }
        ftl.reset_stats();
        let report = sim.run(&mut ftl, folded.clone(), n);
        t_offset += report.sim_time_us;
        reports.push(report);
    }
    LifetimeEvalReport {
        epochs: reports,
        summaries,
        events: collector.take(),
    }
}

/// Outcome of one fast-forward aging campaign on a sharded array.
#[derive(Debug, Clone)]
pub struct LifetimeArrayEvalReport {
    /// Per-epoch array reports; index 0 is the fresh array.
    pub epochs: Vec<ArrayEvalReport>,
    /// Per-step, per-shard aging summaries (`summaries[k][s]` is shard
    /// `s` of the step between epoch `k` and epoch `k + 1`).
    pub summaries: Vec<Vec<EpochSummary>>,
    /// AGING trace events, emitted shard-major at each barrier with
    /// timestamps offset onto the concatenated campaign timeline.
    pub events: Vec<TraceEvent>,
}

/// Runs one fast-forward aging campaign on a sharded array. Every shard
/// carries its own [`LifetimeEngine`] seeded from the shard index, and
/// every aging step runs at a barrier (all shards drained) in shard
/// order on the caller's thread — so the campaign is byte-identical at
/// any worker-thread count. With [`LifetimeConfig::off`] the single
/// epoch reproduces [`run_array_eval`] byte-for-byte.
pub fn run_lifetime_array_eval(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    arr: &ArrayEvalConfig,
    life: &LifetimeConfig,
) -> LifetimeArrayEvalReport {
    run_lifetime_array_eval_mixed(
        kind,
        &[EpochWorkload::Std(workload)],
        aging,
        cfg,
        arr,
        life,
        &KvSpec::off(),
    )
}

/// Like [`run_lifetime_array_eval`] but with a per-epoch workload
/// override (see [`run_lifetime_eval_mixed`]): epoch `e` runs
/// `phases[e % phases.len()]` on every shard, each shard stream seeded
/// `shard_seed(epoch_seed(seed, e), s)` exactly as the single-phase
/// runner does.
#[allow(clippy::too_many_arguments)]
pub fn run_lifetime_array_eval_mixed(
    kind: FtlKind,
    phases: &[EpochWorkload],
    aging: AgingState,
    cfg: &EvalConfig,
    arr: &ArrayEvalConfig,
    life: &LifetimeConfig,
    kv: &KvSpec,
) -> LifetimeArrayEvalReport {
    assert!(!phases.is_empty(), "need at least one workload phase");
    assert!(arr.shards >= 1, "need at least one shard");
    life.validate();
    let budgets = split_requests(cfg.requests, arr.shards);
    let mut spaces = Vec::with_capacity(arr.shards);
    let mut parts: Vec<(SsdSim, Ftl)> = (0..arr.shards)
        .map(|s| {
            let (sim, mut ftl, prefill) = setup_shard(kind, aging, cfg, s);
            if life.steps() > 0 {
                ftl.enable_lifetime_aging();
            }
            spaces.push(prefill.max(1024));
            (sim, ftl)
        })
        .collect();
    // One engine per shard, seeded from the shard index: shard
    // campaigns are independent, so neither the fan-out order nor the
    // thread count can matter.
    let mut engines: Vec<LifetimeEngine> = (0..arr.shards)
        .map(|s| {
            let mut lc = *life;
            lc.seed = shard_seed(life.seed, s);
            LifetimeEngine::new(lc)
        })
        .collect();
    let epochs = life.epochs.max(1);
    let mut reports = Vec::with_capacity(epochs as usize);
    let mut summaries = Vec::new();
    let mut events = Vec::new();
    let mut t_offset = 0.0;
    for e in 0..epochs {
        if e > 0 {
            // Aging barrier (sequence point: every shard stopped):
            // walk the shards in index order on this thread.
            let mut step = Vec::with_capacity(arr.shards);
            for (s, (_, ftl)) in parts.iter_mut().enumerate() {
                let sum = ftl.advance_lifetime_epoch(&mut engines[s]);
                let mut c = Collector::enabled(EventMask::AGING, s as u32);
                c.emit(
                    t_offset,
                    EventKind::EpochAdvance {
                        epoch: e,
                        pe_add: sum.pe_added,
                        retention_add_months: sum.retention_added_months,
                        blocks: sum.blocks_aged,
                    },
                );
                events.extend(c.take());
                step.push(sum);
            }
            summaries.push(step);
        }
        let shards: Vec<_> = parts
            .drain(..)
            .enumerate()
            .map(|(s, (sim, mut ftl))| {
                ftl.reset_stats();
                let stream = phases[e as usize % phases.len()].build(
                    kv,
                    spaces[s],
                    shard_seed(epoch_seed(cfg.seed, e), s),
                );
                ArrayShard {
                    sim,
                    ftl,
                    workload: stream,
                    requests: budgets[s],
                    spo: None,
                    rebuild: None,
                }
            })
            .collect();
        let mut array = SsdArray::new(shards).with_threads(arr.engine_threads());
        let out = array.run();
        t_offset += out.report.sim_time_us;
        reports.push(ArrayEvalReport {
            merged: out.report,
            shards: out.shard_reports,
        });
        parts = array
            .into_shards()
            .into_iter()
            .map(|sh| (sh.sim, sh.ftl))
            .collect();
    }
    LifetimeArrayEvalReport {
        epochs: reports,
        summaries,
        events,
    }
}

// ---------------------------------------------------------------------
// KV application evaluation (kvsim) and device-trace capture
// ---------------------------------------------------------------------

/// Switchboard for the KV application layer on top of an [`EvalConfig`]:
/// which YCSB workload drives the [`kvsim`] LSM engine, and the engine's
/// shape. [`KvSpec::off`] (no workload) leaves every runner byte-identical
/// to its plain counterpart.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvSpec {
    /// The YCSB workload driving the engine; `None` disengages the KV
    /// layer entirely.
    pub workload: Option<YcsbKind>,
    /// Key-space size (clamped by the engine to fit the device).
    pub keys: u64,
    /// Value payload per entry, bytes.
    pub value_bytes: u32,
    /// Memtable flush threshold, entries (SST run size follows it).
    pub memtable_entries: u32,
    /// L0 run count that triggers an L0→L1 compaction.
    pub l0_files: u32,
    /// Size ratio between adjacent levels.
    pub fanout: u32,
    /// Total level count.
    pub max_levels: u32,
}

impl KvSpec {
    /// Disengaged: runners delegate to their plain counterparts.
    pub fn off() -> Self {
        let d = KvConfig::default_shape();
        KvSpec {
            workload: None,
            keys: d.keys,
            value_bytes: d.value_bytes,
            memtable_entries: d.memtable_entries,
            l0_files: d.l0_files,
            fanout: d.fanout,
            max_levels: d.max_levels,
        }
    }

    /// The default engine shape under `kind`.
    pub fn with_workload(kind: YcsbKind) -> Self {
        KvSpec {
            workload: Some(kind),
            ..KvSpec::off()
        }
    }

    /// Whether the KV layer is active.
    pub fn engaged(&self) -> bool {
        self.workload.is_some()
    }

    /// The engine configuration this spec describes.
    pub fn kv_config(&self) -> KvConfig {
        KvConfig {
            keys: self.keys,
            value_bytes: self.value_bytes,
            memtable_entries: self.memtable_entries,
            sst_entries: self.memtable_entries,
            l0_files: self.l0_files,
            fanout: self.fanout,
            max_levels: self.max_levels,
            wal_pages: KvConfig::default_shape().wal_pages,
        }
    }
}

impl Default for KvSpec {
    fn default() -> Self {
        KvSpec::off()
    }
}

/// Outcome of one single-device KV evaluation.
#[derive(Debug, Clone)]
pub struct KvEvalReport {
    /// The device-level report.
    pub sim: SimReport,
    /// App-level results (`None` when the KV layer was disengaged).
    pub app: Option<KvAppReport>,
    /// KV maintenance events (flushes, compactions) as shard-tagged
    /// trace events, timestamped by measured-op ordinal. Always
    /// collected when the KV layer is engaged, independent of the
    /// telemetry mask (mirroring `ArrayFailureReport::events`).
    pub events: Vec<TraceEvent>,
    /// The captured device-level request stream, when capture was on.
    pub captured: Option<Trace>,
}

/// Outcome of one sharded-array KV evaluation.
#[derive(Debug, Clone)]
pub struct ArrayKvEvalReport {
    /// The array-merged device report.
    pub merged: ArrayReport,
    /// Per-shard device reports, in shard order.
    pub shards: Vec<SimReport>,
    /// Per-shard app-level results, in shard order (empty when the KV
    /// layer was disengaged).
    pub apps: Vec<KvAppReport>,
    /// KV maintenance events across all shards, shard-major.
    pub events: Vec<TraceEvent>,
}

/// Converts the engine's maintenance log into shard-tagged trace events
/// (timestamp = measured-op ordinal; the KV layer has no device clock).
fn kv_trace_events(events: &[KvEvent], shard: u32) -> Vec<TraceEvent> {
    let mut c = Collector::enabled(EventMask::KV, shard);
    for e in events {
        c.emit(
            e.op_index as f64,
            EventKind::KvMaint {
                op_index: e.op_index,
                action: e.action,
                level: e.level,
                pages_in: e.pages_in,
                pages_out: e.pages_out,
            },
        );
    }
    c.take()
}

/// An iterator adaptor that (optionally) records every yielded request,
/// so any run's device-level LPN stream can be exported as a replayable
/// [`Trace`]. With recording off it is a zero-cost pass-through.
#[derive(Debug)]
pub struct TraceRecorder<W> {
    inner: W,
    recording: bool,
    recorded: Vec<HostRequest>,
}

impl<W> TraceRecorder<W> {
    /// Wraps `inner`; records only when `recording` is set.
    pub fn new(inner: W, recording: bool) -> Self {
        TraceRecorder {
            inner,
            recording,
            recorded: Vec::new(),
        }
    }

    /// The wrapped stream (for post-run report extraction).
    pub fn inner(&self) -> &W {
        &self.inner
    }

    /// The recorded stream as a labelled trace.
    pub fn into_trace(self, label: impl Into<String>) -> Trace {
        Trace::from_requests(label, self.recorded)
    }
}

impl<W: Iterator<Item = HostRequest>> Iterator for TraceRecorder<W> {
    type Item = HostRequest;

    fn next(&mut self) -> Option<HostRequest> {
        let req = self.inner.next();
        if self.recording {
            if let Some(r) = req {
                self.recorded.push(r);
            }
        }
        req
    }
}

/// Like [`run_eval_traced`] but also captures the device-level request
/// stream the workload produced, as a replayable [`Trace`] labelled with
/// the workload name. The run itself is byte-identical to the untraced
/// one — the recorder only observes.
pub fn run_eval_capture(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    tel: &TelemetrySpec,
) -> (SimReport, TelemetryOutput, Trace) {
    let mut ssd_cfg = cfg.ssd;
    if cfg.maint.is_some_and(|m| m.enabled) && !ssd_cfg.maint.enabled {
        ssd_cfg.maint = MaintSchedule::on();
    }
    let mut sim = SsdSim::new(ssd_cfg);
    let mut ftl = setup_ftl(kind, aging, cfg, cfg.ftl_config(), &mut sim);
    ftl.reset_stats();
    sim.enable_telemetry(tel.events, 0, tel.sample_interval_us);
    ftl.enable_telemetry(tel.events, 0);
    let logical = ftl.logical_pages();
    let prefill = (logical as f64 * cfg.prefill_fraction) as u64;
    let mut stream = TraceRecorder::new(workload.build(prefill.max(1024), cfg.seed), true);
    let report = sim.run(&mut ftl, &mut stream, cfg.requests);
    let telemetry = TelemetryOutput {
        events: merge_streams(sim.take_trace(), ftl.take_trace()),
        series: sim.take_series(),
    };
    let trace = stream.into_trace(workload.label());
    (report, telemetry, trace)
}

/// Like [`run_trace_eval`] but also re-captures the folded stream as it
/// was actually issued to the device. Replaying a captured trace and
/// capturing it again yields a byte-identical export — the round-trip
/// identity the trace tooling is tested against.
pub fn run_trace_eval_capture(
    kind: FtlKind,
    aging: AgingState,
    cfg: &EvalConfig,
    trace: &Trace,
) -> (SimReport, Trace) {
    let mut ssd_cfg = cfg.ssd;
    if cfg.maint.is_some_and(|m| m.enabled) && !ssd_cfg.maint.enabled {
        ssd_cfg.maint = MaintSchedule::on();
    }
    let mut sim = SsdSim::new(ssd_cfg);
    let mut ftl = setup_ftl(kind, aging, cfg, cfg.ftl_config(), &mut sim);
    ftl.reset_stats();
    let logical = ftl.logical_pages();
    let folded = fold_requests(trace.requests(), logical);
    let n = folded.len() as u64;
    let mut stream = TraceRecorder::new(folded.into_iter(), true);
    let report = sim.run(&mut ftl, &mut stream, n);
    (report, stream.into_trace(trace.label()))
}

/// Runs one single-device evaluation with the KV application layer.
/// Disengaged (`kv.workload == None`) and without capture this is
/// byte-identical to [`run_eval_traced`]. Engaged, the device is driven
/// by a [`KvStream`] — a real miniature LSM engine under the chosen YCSB
/// workload — and the report carries the app-level results and the
/// engine's maintenance events. `capture` additionally records the
/// device-level request stream as a replayable trace.
pub fn run_kv_eval(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    kv: &KvSpec,
    tel: &TelemetrySpec,
    capture: bool,
) -> (KvEvalReport, TelemetryOutput) {
    let Some(kv_kind) = kv.workload else {
        if capture {
            let (sim, t, trace) = run_eval_capture(kind, workload, aging, cfg, tel);
            return (
                KvEvalReport {
                    sim,
                    app: None,
                    events: Vec::new(),
                    captured: Some(trace),
                },
                t,
            );
        }
        let (sim, t) = run_eval_traced_custom(kind, workload, aging, cfg, cfg.ftl_config(), tel);
        return (
            KvEvalReport {
                sim,
                app: None,
                events: Vec::new(),
                captured: None,
            },
            t,
        );
    };
    let mut ssd_cfg = cfg.ssd;
    if cfg.maint.is_some_and(|m| m.enabled) && !ssd_cfg.maint.enabled {
        ssd_cfg.maint = MaintSchedule::on();
    }
    let mut sim = SsdSim::new(ssd_cfg);
    let mut ftl = setup_ftl(kind, aging, cfg, cfg.ftl_config(), &mut sim);
    ftl.reset_stats();
    sim.enable_telemetry(tel.events, 0, tel.sample_interval_us);
    ftl.enable_telemetry(tel.events, 0);
    let logical = ftl.logical_pages();
    let prefill = (logical as f64 * cfg.prefill_fraction) as u64;
    let mut stream = TraceRecorder::new(
        KvStream::new(kv.kv_config(), kv_kind, prefill.max(1024), cfg.seed),
        capture,
    );
    let report = sim.run(&mut ftl, &mut stream, cfg.requests);
    let kv_events = kv_trace_events(stream.inner().events(), 0);
    let mut telemetry = TelemetryOutput {
        events: merge_streams(sim.take_trace(), ftl.take_trace()),
        series: sim.take_series(),
    };
    if tel.events.contains(EventMask::KV) {
        telemetry.events.extend(kv_events.iter().cloned());
    }
    let app = stream.inner().report();
    let captured = capture.then(|| stream.into_trace(kv_kind.label()));
    (
        KvEvalReport {
            sim: report,
            app: Some(app),
            events: kv_events,
            captured,
        },
        telemetry,
    )
}

/// Runs one sharded-array evaluation with the KV application layer: one
/// independent LSM engine per shard, seeded by [`shard_seed`], executed
/// by the thread-per-shard engine. Disengaged this is byte-identical to
/// [`run_array_eval_traced`]. Deterministic at any worker-thread count:
/// every stream is a pure function of its shard seed, and all fan-in
/// (reports, app results, telemetry) drains in shard-index order after
/// the engine's sequence point.
pub fn run_array_kv_eval(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    arr: &ArrayEvalConfig,
    kv: &KvSpec,
    tel: &TelemetrySpec,
) -> (ArrayKvEvalReport, TelemetryOutput) {
    let Some(kv_kind) = kv.workload else {
        let (r, t) = run_array_eval_traced(kind, workload, aging, cfg, arr, tel);
        return (
            ArrayKvEvalReport {
                merged: r.merged,
                shards: r.shards,
                apps: Vec::new(),
                events: Vec::new(),
            },
            t,
        );
    };
    assert!(arr.shards >= 1, "need at least one shard");
    let budgets = split_requests(cfg.requests, arr.shards);
    let shards: Vec<ArrayShard<Ftl, KvStream>> = (0..arr.shards)
        .map(|s| {
            let (mut sim, mut ftl, prefill) = setup_shard(kind, aging, cfg, s);
            ftl.reset_stats();
            sim.enable_telemetry(tel.events, s as u32, tel.sample_interval_us);
            ftl.enable_telemetry(tel.events, s as u32);
            let stream = KvStream::new(
                kv.kv_config(),
                kv_kind,
                prefill.max(1024),
                shard_seed(cfg.seed, s),
            );
            ArrayShard {
                sim,
                ftl,
                workload: stream,
                requests: budgets[s],
                spo: None,
                rebuild: None,
            }
        })
        .collect();
    let mut array = SsdArray::new(shards).with_threads(arr.engine_threads());
    let out = array.run();
    // Sequence point: drain everything in shard-index order.
    let mut tel_events = Vec::new();
    let mut series = Series::new(tel.sample_interval_us.unwrap_or(0.0));
    let mut apps = Vec::with_capacity(arr.shards);
    let mut events = Vec::new();
    for (s, shard) in array.shards_mut().iter_mut().enumerate() {
        tel_events.extend(merge_streams(
            shard.sim.take_trace(),
            shard.ftl.take_trace(),
        ));
        series.extend(&shard.sim.take_series());
        apps.push(shard.workload.report());
        events.extend(kv_trace_events(shard.workload.events(), s as u32));
    }
    if tel.events.contains(EventMask::KV) {
        tel_events.extend(events.iter().cloned());
    }
    (
        ArrayKvEvalReport {
            merged: out.report,
            shards: out.shard_reports,
            apps,
            events,
        },
        TelemetryOutput {
            events: tel_events,
            series,
        },
    )
}

/// Registers the app-level results of one KV stream under `prefix`
/// (e.g. `"kv."` or `"kv.shard0."`): raw engine counters, derived
/// gauges (app-WA, p99 page costs) and throughput against the device's
/// virtual clock.
pub fn register_kv_metrics(
    reg: &mut MetricRegistry,
    prefix: &str,
    app: &KvAppReport,
    sim_time_us: f64,
) {
    let s = &app.stats;
    reg.counter(&format!("{prefix}ops"), s.ops);
    reg.counter(&format!("{prefix}reads"), s.reads);
    reg.counter(&format!("{prefix}updates"), s.updates);
    reg.counter(&format!("{prefix}inserts"), s.inserts);
    reg.counter(&format!("{prefix}rmws"), s.rmws);
    reg.counter(&format!("{prefix}read_hits"), s.read_hits);
    reg.counter(&format!("{prefix}user_bytes"), s.user_bytes);
    reg.counter(&format!("{prefix}flushes"), s.flushes);
    reg.counter(&format!("{prefix}compactions"), s.compactions);
    reg.counter(&format!("{prefix}sst_pages_written"), s.sst_pages_written);
    reg.counter(
        &format!("{prefix}compaction_pages_written"),
        s.compaction_pages_written,
    );
    reg.counter(
        &format!("{prefix}compaction_pages_read"),
        s.compaction_pages_read,
    );
    reg.counter(&format!("{prefix}wal_pages_written"), s.wal_pages_written);
    reg.counter(&format!("{prefix}probe_pages_read"), s.probe_pages_read);
    reg.counter(&format!("{prefix}keys"), app.keys);
    reg.counter(&format!("{prefix}load_sst_pages"), app.load_sst_pages);
    reg.counter(
        &format!("{prefix}compaction_debt_pages"),
        app.compaction_debt_pages,
    );
    reg.gauge(&format!("{prefix}app_wa"), app.app_wa());
    reg.gauge(
        &format!("{prefix}read_p99_pages"),
        app.read_p99_pages as f64,
    );
    reg.gauge(
        &format!("{prefix}update_p99_pages"),
        app.update_p99_pages as f64,
    );
    let ops_per_sec = if sim_time_us > 0.0 {
        s.ops as f64 / (sim_time_us / 1e6)
    } else {
        0.0
    };
    reg.gauge(&format!("{prefix}ops_per_sec"), ops_per_sec);
}

/// One phase of a mixed-workload lifetime campaign: either a §6.1
/// block-level generator or a KV application workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochWorkload {
    /// A standard block-level generator.
    Std(StandardWorkload),
    /// The kvsim LSM engine under a YCSB workload.
    Kv(YcsbKind),
}

impl EpochWorkload {
    /// Parses a phase name: the six standard workload labels
    /// (case-insensitive) or any [`YcsbKind`] spelling (`a`, `ycsb_a`,
    /// …).
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "mail" => Some(EpochWorkload::Std(StandardWorkload::Mail)),
            "web" => Some(EpochWorkload::Std(StandardWorkload::Web)),
            "proxy" => Some(EpochWorkload::Std(StandardWorkload::Proxy)),
            "oltp" => Some(EpochWorkload::Std(StandardWorkload::Oltp)),
            "rocks" => Some(EpochWorkload::Std(StandardWorkload::Rocks)),
            "mongo" => Some(EpochWorkload::Std(StandardWorkload::Mongo)),
            _ => YcsbKind::parse(s).map(EpochWorkload::Kv),
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            EpochWorkload::Std(w) => w.label(),
            EpochWorkload::Kv(kind) => kind.label(),
        }
    }

    /// Builds the phase's stream over `space` pages. `Std` phases build
    /// exactly what the single-phase runners build; `Kv` phases take
    /// their engine shape from `kv`.
    fn build(self, kv: &KvSpec, space: u64, seed: u64) -> Box<dyn Workload + Send> {
        match self {
            EpochWorkload::Std(w) => w.build(space, seed),
            EpochWorkload::Kv(kind) => {
                Box::new(YcsbWorkload::with_config(kv.kv_config(), kind, space, seed))
            }
        }
    }
}

impl std::fmt::Display for EpochWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Runs the three-FTL comparison of Fig. 17 for one workload and aging
/// state. Returns `(pageFTL, vertFTL, cubeFTL)` reports.
pub fn run_fig17_cell(
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
) -> (SimReport, SimReport, SimReport) {
    (
        run_eval(FtlKind::Page, workload, aging, cfg),
        run_eval(FtlKind::Vert, workload, aging, cfg),
        run_eval(FtlKind::Cube, workload, aging, cfg),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_eval_completes_all_requests() {
        let cfg = EvalConfig::smoke();
        let r = run_eval(
            FtlKind::Page,
            StandardWorkload::Mail,
            AgingState::Fresh,
            &cfg,
        );
        assert_eq!(r.completed, cfg.requests);
        assert!(r.iops > 0.0);
        assert!(r.reads > 0 && r.writes > 0);
    }

    #[test]
    fn eval_is_deterministic() {
        let cfg = EvalConfig::smoke();
        let a = run_eval(
            FtlKind::Cube,
            StandardWorkload::Web,
            AgingState::MidLife,
            &cfg,
        );
        let b = run_eval(
            FtlKind::Cube,
            StandardWorkload::Web,
            AgingState::MidLife,
            &cfg,
        );
        assert_eq!(a.iops, b.iops);
        assert_eq!(a.sim_time_us, b.sim_time_us);
    }

    #[test]
    fn cube_beats_page_on_a_write_heavy_workload() {
        let cfg = EvalConfig::smoke();
        let page = run_eval(
            FtlKind::Page,
            StandardWorkload::Oltp,
            AgingState::Fresh,
            &cfg,
        );
        let cube = run_eval(
            FtlKind::Cube,
            StandardWorkload::Oltp,
            AgingState::Fresh,
            &cfg,
        );
        assert!(
            cube.iops > page.iops,
            "cubeFTL {} IOPS vs pageFTL {} IOPS",
            cube.iops,
            page.iops
        );
    }
}
