//! One-call paper experiments: configure, prefill, age, run, report.
//!
//! The paper's evaluation (§6) runs each FTL under each workload at each
//! aging state on a 32-GB SSD. [`run_eval`] reproduces one such cell;
//! [`EvalConfig`] controls the scale (full paper scale, or a reduced
//! block count for quick runs — the FTL behaviour is unchanged, only the
//! physical capacity shrinks).

use ftl::{Ftl, FtlConfig, FtlKind, MaintConfig, RecoveryReport};
use nand3d::{AgingState, FaultPlan};
use ssdsim::{MaintSchedule, SimReport, SpoEvent, SpoTrigger, SsdConfig, SsdSim};
use workloads::StandardWorkload;

/// Scale and length of one evaluation run.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalConfig {
    /// Blocks per chip (428 reproduces the paper's 32-GB SSD; smaller
    /// values shrink capacity for faster runs).
    pub blocks_per_chip: u32,
    /// Host requests to simulate per run.
    pub requests: u64,
    /// Fraction of the logical space written before measuring (drives
    /// realistic GC behaviour).
    pub prefill_fraction: f64,
    /// Ambient-disturbance probability per NAND operation.
    pub disturbance_prob: f64,
    /// Ambient temperature, °C (the paper evaluates at 30 °C).
    pub ambient_celsius: f64,
    /// Workload/process seed.
    pub seed: u64,
    /// Host platform parameters.
    pub ssd: SsdConfig,
    /// Optional fault-injection plan, installed after prefill so the
    /// measured run (not the setup phase) sees the injected faults.
    pub faults: Option<FaultPlan>,
    /// Optional background maintenance subsystem (retention scrubbing,
    /// wear leveling, OPM re-monitoring), enabled after prefill so the
    /// measured run interleaves maintenance with host traffic.
    pub maint: Option<MaintConfig>,
}

impl EvalConfig {
    /// The paper-scale configuration (428 blocks/chip ≈ 32 GB).
    pub fn paper() -> Self {
        EvalConfig {
            blocks_per_chip: 428,
            requests: 200_000,
            prefill_fraction: 0.9,
            disturbance_prob: 0.002,
            ambient_celsius: 30.0,
            seed: 42,
            ssd: SsdConfig::paper(),
            faults: None,
            maint: None,
        }
    }

    /// A reduced-scale configuration for figure regeneration on a laptop
    /// (≈4.8 GB SSD, same chip/bus topology and FTL behaviour).
    pub fn reduced() -> Self {
        EvalConfig {
            blocks_per_chip: 64,
            requests: 60_000,
            ..EvalConfig::paper()
        }
    }

    /// A tiny smoke-test configuration for doc examples and CI.
    pub fn smoke() -> Self {
        EvalConfig {
            blocks_per_chip: 12,
            requests: 2_000,
            prefill_fraction: 0.5,
            disturbance_prob: 0.0,
            ambient_celsius: 30.0,
            seed: 42,
            ssd: SsdConfig::paper(),
            faults: None,
            maint: None,
        }
    }

    /// The FTL configuration this evaluation scale implies.
    pub fn ftl_config(&self) -> FtlConfig {
        let mut cfg = FtlConfig::paper();
        cfg.nand.geometry.blocks_per_chip = self.blocks_per_chip;
        cfg.seed = self.seed;
        cfg
    }
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig::paper()
    }
}

/// Builds an FTL of `kind`, prefills it, pins the aging state, and runs
/// `workload` under the closed-loop simulator. Fully deterministic for a
/// given [`EvalConfig`].
pub fn run_eval(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
) -> SimReport {
    run_eval_custom(kind, workload, aging, cfg, cfg.ftl_config())
}

/// Like [`run_eval`] but with an explicit FTL configuration — the entry
/// point for ablation studies (μ_TH sweeps, active-block counts, …).
pub fn run_eval_custom(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    ftl_cfg: FtlConfig,
) -> SimReport {
    let mut ftl = Ftl::new(kind, ftl_cfg);
    let mut ssd_cfg = cfg.ssd;
    // Maintenance needs the simulator to offer idle windows: derive the
    // schedule from the FTL-side config unless one was set explicitly.
    if cfg.maint.is_some_and(|m| m.enabled) && !ssd_cfg.maint.enabled {
        ssd_cfg.maint = MaintSchedule::on();
    }
    let mut sim = SsdSim::new(ssd_cfg);

    // Pin the aging state first (the paper pre-cycles blocks and bakes
    // retention before the FTL ever runs, §6.2), then prefill to
    // establish mappings and block occupancy so GC behaves like a used
    // drive. Prefilling *after* aging also means every monitored leader
    // parameter is valid for the measured run — flipping conditions
    // mid-run would (correctly) trip the §4.1.4 safety check on every
    // active h-layer.
    ftl.set_aging(aging);
    ftl.set_ambient_celsius(cfg.ambient_celsius);
    let logical = ftl.logical_pages();
    let prefill = (logical as f64 * cfg.prefill_fraction) as u64;
    sim.prefill(&mut ftl, 0..prefill);
    ftl.set_disturbance_prob(cfg.disturbance_prob);
    if let Some(plan) = &cfg.faults {
        ftl.set_fault_plan(plan);
    }
    if let Some(maint) = cfg.maint {
        ftl.enable_maintenance(maint);
    }
    ftl.reset_stats();

    let stream = workload.build(prefill.max(1024), cfg.seed);
    sim.run(&mut ftl, stream, cfg.requests)
}

/// Configuration of a sudden-power-off experiment on top of an
/// [`EvalConfig`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpoConfig {
    /// When the power dies.
    pub trigger: SpoTrigger,
    /// Checkpoint interval in host WL programs (0 disables periodic
    /// checkpoints; recovery then scans every block).
    pub ckpt_interval_host_wls: u64,
}

impl SpoConfig {
    /// Cut power after `ops` completed host requests, checkpointing
    /// every 64 host WLs (the CLI default).
    pub fn at_ops(ops: u64) -> Self {
        SpoConfig {
            trigger: SpoTrigger::AtOps(ops),
            ckpt_interval_host_wls: 64,
        }
    }
}

/// Outcome of one [`run_spo_eval`] double-run experiment.
#[derive(Debug, Clone)]
pub struct SpoEvalReport {
    /// The uninterrupted golden run (same seed, same workload, same
    /// checkpoint cadence — the only difference is the power cut).
    pub golden: SimReport,
    /// The truncated run up to the cut (or the full run if the trigger
    /// never fired).
    pub pre_cut: SimReport,
    /// Device state at the cut; `None` if the trigger never fired.
    pub spo: Option<SpoEvent>,
    /// What boot-time recovery did; `None` if the trigger never fired.
    pub recovery: Option<RecoveryReport>,
    /// The post-recovery resume run over the workload remainder.
    pub resumed: Option<SimReport>,
    /// Host-acknowledged LPNs that were mapped (or buffer-resident) at
    /// the cut but unmapped after recovery. **Must be empty** — any
    /// entry is host-visible data loss.
    pub lost_lpns: Vec<u64>,
    /// Checkpoints taken before the cut.
    pub checkpoints_taken: u64,
    /// Total blocks in the array (for bounding recovery scan cost).
    pub total_blocks: u64,
}

impl SpoEvalReport {
    /// Whether the armed trigger actually fired.
    pub fn fired(&self) -> bool {
        self.spo.is_some()
    }
}

fn setup_ftl(
    kind: FtlKind,
    aging: AgingState,
    cfg: &EvalConfig,
    ftl_cfg: FtlConfig,
    sim: &mut SsdSim,
) -> Ftl {
    let mut ftl = Ftl::new(kind, ftl_cfg);
    ftl.set_aging(aging);
    ftl.set_ambient_celsius(cfg.ambient_celsius);
    let logical = ftl.logical_pages();
    let prefill = (logical as f64 * cfg.prefill_fraction) as u64;
    sim.prefill(&mut ftl, 0..prefill);
    ftl.set_disturbance_prob(cfg.disturbance_prob);
    if let Some(plan) = &cfg.faults {
        ftl.set_fault_plan(plan);
    }
    if let Some(maint) = cfg.maint {
        ftl.enable_maintenance(maint);
    }
    ftl
}

/// Runs the double-run SPO experiment: an uninterrupted golden run, then
/// an identical run cut short by `spo.trigger`, the power-cut physics
/// (torn WL programs, interrupted erases), a boot-time recovery
/// ([`Ftl::power_cycle`]) and a resume over the workload remainder.
///
/// The returned report carries the zero-loss audit: every LPN that was
/// host-acknowledged (mapped in the FTL or resident in the PLP-protected
/// buffer) at the cut and is missing after recovery lands in
/// `lost_lpns`.
pub fn run_spo_eval(
    kind: FtlKind,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    spo: &SpoConfig,
) -> SpoEvalReport {
    let mut ssd_cfg = cfg.ssd;
    if cfg.maint.is_some_and(|m| m.enabled) && !ssd_cfg.maint.enabled {
        ssd_cfg.maint = MaintSchedule::on();
    }

    // Golden run: identical setup and checkpoint cadence, no cut.
    let mut sim = SsdSim::new(ssd_cfg);
    let mut ftl = setup_ftl(kind, aging, cfg, cfg.ftl_config(), &mut sim);
    ftl.enable_checkpointing(spo.ckpt_interval_host_wls);
    ftl.reset_stats();
    let logical = ftl.logical_pages();
    let prefill = (logical as f64 * cfg.prefill_fraction) as u64;
    let stream = workload.build(prefill.max(1024), cfg.seed);
    let golden = sim.run(&mut ftl, stream, cfg.requests);

    // SPO run: same seed, same stream, trigger armed. The stream is
    // held by `&mut` so the unissued remainder survives for the resume.
    let mut sim = SsdSim::new(ssd_cfg);
    let mut ftl = setup_ftl(kind, aging, cfg, cfg.ftl_config(), &mut sim);
    ftl.enable_checkpointing(spo.ckpt_interval_host_wls);
    ftl.reset_stats();
    let g = ftl.geometry();
    let total_blocks = u64::from(g.blocks_per_chip) * ftl.mapping().chips() as u64;
    let mut stream = workload.build(prefill.max(1024), cfg.seed);
    let (pre_cut, event) = sim.run_with_spo(&mut ftl, &mut stream, cfg.requests, spo.trigger);
    let checkpoints_taken = ftl.checkpoints_taken();

    let Some(event) = event else {
        return SpoEvalReport {
            golden,
            pre_cut,
            spo: None,
            recovery: None,
            resumed: None,
            lost_lpns: Vec::new(),
            checkpoints_taken,
            total_blocks,
        };
    };

    // The durable-data ledger at the instant of the cut: everything the
    // FTL has mapped plus everything the PLP capacitor preserves.
    let mut durable: Vec<u64> = (0..logical).filter(|&l| ftl.is_mapped(l)).collect();
    durable.extend(event.buffered_lpns.iter().copied());
    durable.sort_unstable();
    durable.dedup();

    // Physics of the cut: every in-flight flush tears its WL program
    // (and its in-flight GC erase, when one ran).
    for f in &event.interrupted_flushes {
        ftl.power_cut(f.chip, f.lpns, f.did_gc);
    }

    // Boot: rebuild the L2P from checkpoint + OOB scan, quarantine torn
    // WLs, re-erase interrupted blocks, replay the PLP dump. OPM/ORT
    // come back cold by design.
    let (mut ftl, recovery) = ftl.power_cycle(&event.buffered_lpns);

    let lost_lpns: Vec<u64> = durable
        .iter()
        .copied()
        .filter(|&l| !ftl.is_mapped(l))
        .collect();

    // Resume the interrupted workload over the remainder of the stream.
    if let Some(maint) = cfg.maint {
        ftl.enable_maintenance(maint);
    }
    let remaining = cfg.requests.saturating_sub(event.issued);
    let resumed = (remaining > 0).then(|| sim.run(&mut ftl, &mut stream, remaining));

    SpoEvalReport {
        golden,
        pre_cut,
        spo: Some(event),
        recovery: Some(recovery),
        resumed,
        lost_lpns,
        checkpoints_taken,
        total_blocks,
    }
}

/// Runs the three-FTL comparison of Fig. 17 for one workload and aging
/// state. Returns `(pageFTL, vertFTL, cubeFTL)` reports.
pub fn run_fig17_cell(
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
) -> (SimReport, SimReport, SimReport) {
    (
        run_eval(FtlKind::Page, workload, aging, cfg),
        run_eval(FtlKind::Vert, workload, aging, cfg),
        run_eval(FtlKind::Cube, workload, aging, cfg),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_eval_completes_all_requests() {
        let cfg = EvalConfig::smoke();
        let r = run_eval(
            FtlKind::Page,
            StandardWorkload::Mail,
            AgingState::Fresh,
            &cfg,
        );
        assert_eq!(r.completed, cfg.requests);
        assert!(r.iops > 0.0);
        assert!(r.reads > 0 && r.writes > 0);
    }

    #[test]
    fn eval_is_deterministic() {
        let cfg = EvalConfig::smoke();
        let a = run_eval(
            FtlKind::Cube,
            StandardWorkload::Web,
            AgingState::MidLife,
            &cfg,
        );
        let b = run_eval(
            FtlKind::Cube,
            StandardWorkload::Web,
            AgingState::MidLife,
            &cfg,
        );
        assert_eq!(a.iops, b.iops);
        assert_eq!(a.sim_time_us, b.sim_time_us);
    }

    #[test]
    fn cube_beats_page_on_a_write_heavy_workload() {
        let cfg = EvalConfig::smoke();
        let page = run_eval(
            FtlKind::Page,
            StandardWorkload::Oltp,
            AgingState::Fresh,
            &cfg,
        );
        let cube = run_eval(
            FtlKind::Cube,
            StandardWorkload::Oltp,
            AgingState::Fresh,
            &cfg,
        );
        assert!(
            cube.iops > page.iops,
            "cubeFTL {} IOPS vs pageFTL {} IOPS",
            cube.iops,
            page.iops
        );
    }
}
