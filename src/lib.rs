//! # cubeftl — a reproduction of "Exploiting Process Similarity of 3D
//! Flash Memory for High Performance SSDs" (MICRO 2019)
//!
//! This workspace re-implements the paper's full stack:
//!
//! * [`nand3d`] — a behavioral 3D TLC NAND model with the paper's two
//!   process characteristics: horizontal intra-layer **similarity** and
//!   vertical inter-layer **variability**, plus micro-operation-level
//!   ISPP programming and read-retry engines.
//! * [`ftl`] — the PS-aware **cubeFTL** (OPM + WAM + safety check) and
//!   the `pageFTL` / `vertFTL` / `cubeFTL-` comparison points.
//! * [`ssdsim`] — a closed-loop SSD timing simulator (buses, chips,
//!   write buffer, queueing) standing in for the paper's FlashBench
//!   platform.
//! * [`workloads`] — the six evaluation workloads (Filebench
//!   Mail/Web/Proxy/OLTP, YCSB-A over LSM and B-tree engine models).
//!
//! The [`harness`] module glues these together into one-call paper
//! experiments; `crates/bench` hosts one binary per paper figure.
//!
//! # Quickstart
//!
//! ```
//! use cubeftl::harness::{EvalConfig, run_eval};
//! use cubeftl::{AgingState, FtlKind, StandardWorkload};
//!
//! let cfg = EvalConfig::smoke();
//! let report = run_eval(FtlKind::Cube, StandardWorkload::Mail, AgingState::Fresh, &cfg);
//! assert!(report.iops > 0.0);
//! ```

pub use ftl::{
    Checkpoint, CheckpointError, Ftl, FtlConfig, FtlKind, MaintConfig, Opm, OrtClusterConfig,
    ProgramOrder, RecoveryReport, Wam,
};
pub use lifetime::{
    block_pattern_stress, page_state_fraction, AgingPlan, EpochDelta, EpochSummary, LifetimeConfig,
    LifetimeEngine,
};

pub use hostq::{
    split_arrival_budget, split_even_budget, ClassSummary, DwrrScheduler, HostQueueConfig,
    HostQueueFront, QosReport, TenantSummary,
};
pub use kvsim::{
    splitmix64, IntZipf, KvAppReport, KvConfig, KvEvent, KvOp, KvStats, KvStream, LsmTree,
    SplitMix, YcsbGen, YcsbKind,
};
pub use nand3d::{
    AgingState, BlockId, FaultCounters, FaultKind, FaultPlan, FlashArray, Geometry, NandChip,
    NandConfig, OobStatus, ProgramParams, ReadParams, RetryOptConfig, TargetedFault, WlAddr, WlOob,
};
pub use ssdarray::{
    page_fingerprint, xor_parity, ArrayReport, ArrayRunOutcome, ArrayShard, FrontArray, FrontShard,
    PageRole, ParityRouter, RebuildPlan, ResilienceReport, SsdArray, StripeRouter,
};
pub use ssdsim::{
    ChipStats, FrontRequest, FtlDriver, FtlStats, HostFront, HostRequest, LatencyRecorder,
    MaintSchedule, MaintWork, RebuildOp, RebuildProgress, RebuildSchedule, SimReport, SpoEvent,
    SpoTrigger, SsdConfig, SsdSim, StepOutcome,
};
pub use telemetry::{
    events_to_ndjson, merge_streams, EventKind, EventMask, LogHistogram, MetricRegistry, SampleRow,
    Series, TraceEvent,
};
pub use workloads::{
    build_population, shard_seed, tenant_seed, StandardWorkload, TenantClass, TenantMix,
    TenantProfile, Trace, TraceReplay, UniformTenantWorkload, Workload, YcsbWorkload,
};

pub mod harness;
