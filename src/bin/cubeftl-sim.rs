//! `cubeftl-sim` — run one SSD simulation from the command line.
//!
//! ```text
//! cubeftl-sim [--ftl page|vert|cube|cube-|all] [--workload mail|web|proxy|oltp|rocks|mongo]
//!             [--aging fresh|midlife|eol] [--requests N] [--blocks N] [--seed N] [--temp C]
//!             [--fault-seed N] [--fault-rate CLASS=RATE]...
//!             [--maint] [--maint-gap-us F] [--maint-scrub-months F] [--maint-scrub-ber F]
//!             [--maint-remonitor-pe N] [--maint-wear-limit N] [--maint-scrub-batch N]
//!             [--spo-at N | --spo-at-us T | --spo-rate P] [--spo-seed N] [--ckpt-interval N]
//!             [--shards N] [--array-stripe PAGES] [--array-threads N]
//!             [--array-parity] [--fail-shard ID@US | --fail-seed N] [--spare-shards N]
//!             [--rebuild-batch PAGES] [--rebuild-gap-us T]
//!             [--ort-capacity N] [--ort-cluster on|off] [--retry-opt on|off] [--trace-file PATH]
//!             [--queues N] [--tenants N] [--tenant-weights A,B,C] [--qos-sq-depth N]
//!             [--qos-arrival-us T] [--qos-equal-arrivals] [--qos-slo-read-us T]
//!             [--qos-slo-write-us T] [--qos-trace PATH]
//!             [--lifetime-epochs N] [--lifetime-pe N] [--lifetime-months F] [--lifetime-exp Q]
//!             [--lifetime-variation F] [--lifetime-pattern-wear on|off] [--lifetime-seed N]
//!             [--lifetime-workloads W1,W2,...]
//!             [--kv a|b|c|d|f] [--kv-keys N] [--kv-value-bytes N] [--kv-memtable-entries N]
//!             [--kv-l0-files N] [--kv-fanout N] [--kv-levels N]
//!             [--capture-trace-out PATH]
//!             [--trace-out PATH] [--trace-events SPEC] [--metrics-out PATH]
//!             [--series-out PATH] [--sample-interval-us T]
//! ```
//!
//! `--fault-rate` enables seeded fault injection (repeatable); CLASS is one
//! of `ispp-outlier`, `ber-spike`, `stuck-retry`, `uncorrectable`, `abort`.
//!
//! `--maint` enables the background maintenance subsystem (retention
//! scrubbing, wear leveling, OPM re-monitoring) with default thresholds;
//! any `--maint-*` knob implies `--maint`. `--maint-gap-us` is the
//! host-priority gap: a chip must have been idle that long before a
//! background op may be dispatched on it.
//!
//! `--spo-at N` arms a sudden power-off after N completed host requests
//! (`--spo-at-us` cuts at a simulated time instead, `--spo-rate` draws a
//! seeded per-request Bernoulli cut). The run then becomes the double-run
//! crash experiment: an uninterrupted golden run, the cut, the power-cut
//! physics (torn WL programs, interrupted erases), a boot-time recovery
//! that rebuilds the L2P map from the last checkpoint plus an OOB scan
//! (the OPM/ORT boot cold and re-monitor on first touch), and a resumed
//! run over the workload remainder. `--ckpt-interval` sets the periodic
//! L2P checkpoint cadence in host WL programs (default 64; 0 disables,
//! forcing a full-array OOB rebuild).
//!
//! `--shards N` (N > 1) runs a sharded multi-device array: host LPNs are
//! striped across N independent devices (`--array-stripe` pages per
//! stripe unit), each with its own FTL, chips and seeded workload
//! substream, executed on `--array-threads` worker threads (default: one
//! per shard) and merged deterministically — the same seed produces a
//! byte-identical merged report at any thread count. Combined with a
//! power cut, the array demands `--spo-at-us`: every shard is cut at the
//! same virtual instant and recovered independently.
//!
//! `--array-parity` adds RAID-5-style rotating cross-shard XOR parity to
//! the array (one parity page per stripe row, rotated left-symmetric).
//! `--fail-shard ID@US` kills a whole shard at a virtual instant (or
//! `--fail-seed N` derives a deterministic failure plan from a seed);
//! the surviving shards serve degraded reads by fan-out reconstruction
//! while a background rebuild — paced by the idle-window scheduler,
//! `--rebuild-batch` pages per unit with a `--rebuild-gap-us` host
//! priority gap — repopulates a blank spare (`--spare-shards 1`). Adding
//! `--spo-at-us` composes an array-wide power cut into the degraded
//! phase. The run exits non-zero unless the audit proves zero
//! host-acknowledged loss.
//!
//! `--ort-capacity N` bounds the per-chip offset-reuse table to N entries
//! with LRU eviction (default: unbounded); hit/miss/eviction counters
//! show up in the per-FTL output. `--ort-cluster on` enables the
//! cross-block ΔV_Ref cluster (§4.2.2 closure): ORT misses seed their
//! starting offset from an EWMA of recently decoded offsets on the same
//! chip and h-layer, instead of starting at offset 0. `--retry-opt on`
//! enables the retry-chain optimizations (P/E+retention-conditioned
//! offset prediction, speculative double-stepping, early-terminated
//! uncorrectable scans). Both default to off, which reproduces the
//! pre-cluster pipeline byte-for-byte. `--trace-file PATH` replays a trace
//! instead of a synthetic workload — either the native `# cubeftl trace
//! v1` format or an MSR-Cambridge-style CSV (byte offsets folded into
//! the simulated address space at 16-KB page granularity).
//!
//! `--queues N` / `--tenants N` (either > 1) engage the NVMe-style
//! multi-queue QoS front-end (`crates/hostq`): the closed loop is
//! replaced by a population of seeded open-loop tenants spread over N
//! submission/completion queue pairs and scheduled by an integer
//! deficit-weighted-round-robin arbiter. `--tenant-weights A,B,C` cycles
//! DWRR weights over tenant ids (the largest weight is the *protected*
//! class, the smallest *best-effort*); `--qos-sq-depth` bounds each
//! tenant's submission queue (beyond it arrivals are deterministically
//! shed); `--qos-arrival-us` sets the aggregate mean inter-arrival gap
//! (rates are weight-proportional per tenant, or uniform with
//! `--qos-equal-arrivals`);
//! `--qos-slo-read-us`/`--qos-slo-write-us` arm per-op latency SLOs
//! (violations counted per tenant); `--qos-trace PATH` replays a
//! recorded trace as tenant 0's stream instead of its synthetic
//! generator (single-device runs only). With `--shards`, tenant `t`
//! routes to shard `t % shards` and results merge in shard order — the
//! per-tenant outcome is byte-identical at any `--array-threads` count.
//! With `--queues 1 --tenants 1` (the default) the front-end is
//! disengaged and runs take the legacy closed-loop path untouched.
//!
//! `--lifetime-epochs N` (N > 1, or any other `--lifetime-*` knob)
//! engages the fast-forward aging campaign (`crates/lifetime`): the
//! device is built and prefilled once, then alternates N workload
//! epochs with N − 1 aging steps. Each step advances every block's
//! virtual age at a barrier — `--lifetime-pe` P/E cycles per step
//! (scaled per block by the similarity model's wear-rate spread,
//! `--lifetime-variation` jitter, and with `--lifetime-pattern-wear on`
//! the resident data's cell-state composition) plus `--lifetime-months`
//! retention months per step shaped by the concave early-retention-loss
//! curve (`--lifetime-exp`, q ≤ 1; smaller front-loads the loss). The
//! output is one row per epoch: the IOPS/retry/WA drift curve from
//! fresh to end-of-life. Unset knobs default to the standard campaign
//! (5 epochs to the paper's 2K P/E + 12 months end-of-life point).
//! Combines with `--maint` (maintenance races the drift), `--shards`
//! (each shard ages under its own seeded engine, byte-identical at any
//! `--array-threads` count) and single-device `--trace-file` (the
//! recorded trace replays at every age point); it cannot be combined
//! with SPO cuts, the QoS front-end, array resilience, or the
//! telemetry output files.
//!
//! `--kv KIND` replaces the synthetic workload with the kvsim
//! application layer (`crates/kvsim`): a real miniature LSM-tree KV
//! engine (memtable → SST flush → leveled compaction, group-commit WAL)
//! driven by a YCSB-style generator — KIND is one of `a` (50/50
//! read/update, zipfian), `b` (95/5), `c` (read-only), `d`
//! (read-latest with inserts), `f` (read-modify-write). The device
//! sees the engine's actual flush/compaction/probe traffic, and the
//! output adds app-level results: KV ops/s, read/update p99 page
//! costs, app-level write amplification (SST+WAL pages per user page)
//! and outstanding compaction debt. The `--kv-*` knobs shape the
//! engine (key count, value size, memtable/SST entries, L0 trigger,
//! level fanout and count); the key count is clamped to fit the
//! device. Combines with `--shards` (one independent engine per
//! shard, byte-identical at any `--array-threads` count) and the
//! telemetry files (`kv.*` metrics, `kv` trace events); it cannot be
//! combined with `--trace-file`, the QoS front-end, SPO cuts, or
//! array resilience. Without `--kv` every run is byte-identical to
//! the pre-KV binary.
//!
//! `--capture-trace-out PATH` records the device-level request stream
//! of a single-device run (synthetic, `--kv`, or `--trace-file`
//! replay) as an MSR-style CSV that `--trace-file` replays
//! byte-identically. Capture observes without perturbing: the run's
//! report is unchanged. Requires a single `--ftl` kind.
//!
//! `--lifetime-workloads W1,W2,...` overrides the lifetime campaign's
//! workload per epoch: epoch `e` runs phase `e mod N` of the list.
//! Each phase is a standard workload name (`mail`, `web`, `proxy`,
//! `oltp`, `rocks`, `mongo`) or a YCSB KV kind (`a`..`f`, driving the
//! kvsim engine shaped by the `--kv-*` knobs) — e.g.
//! `--lifetime-workloads a,a,c` ages the device under update-heavy
//! churn and then reads it back. The flag engages the campaign like
//! any other `--lifetime-*` knob.
//!
//! The telemetry flags export deterministic, virtual-timestamped run
//! data (see `crates/telemetry`): `--trace-out PATH` writes the
//! structured event trace as NDJSON, filtered by `--trace-events SPEC`
//! (`all`, `none`, or a comma list of `host,ispp,retry,gc,maint,ckpt,
//! spo,opm,hostq,slo`; default `all`); `--series-out PATH` writes a time series
//! sampled every `--sample-interval-us T` of virtual time (CSV when the
//! path ends in `.csv`, NDJSON otherwise); `--metrics-out PATH` writes
//! the end-of-run metric registry (named counters, gauges and latency
//! histograms) as NDJSON. Trace and series output require a single
//! `--ftl` kind and the standard run modes (no `--trace-file`, no SPO);
//! double runs produce byte-identical files at any `--array-threads`.
//!
//! Examples:
//!
//! ```sh
//! cargo run --release --bin cubeftl-sim -- --workload rocks --aging eol --ftl all
//! cargo run --release --bin cubeftl-sim -- --ftl cube --workload oltp --requests 100000
//! cargo run --release --bin cubeftl-sim -- --ftl cube --fault-rate ber-spike=0.01 --fault-rate abort=0.005
//! cargo run --release --bin cubeftl-sim -- --ftl cube --aging eol --maint --maint-gap-us 500
//! cargo run --release --bin cubeftl-sim -- --ftl cube --spo-at 40000 --ckpt-interval 128
//! cargo run --release --bin cubeftl-sim -- --ftl cube --shards 4 --array-stripe 64
//! cargo run --release --bin cubeftl-sim -- --ftl cube --shards 4 --spo-at-us 80000
//! cargo run --release --bin cubeftl-sim -- --ftl cube --shards 4 --array-parity --fail-shard 1@30000 --spare-shards 1
//! cargo run --release --bin cubeftl-sim -- --ftl cube --trace-file tests/data/sample_trace.csv
//! cargo run --release --bin cubeftl-sim -- --ftl cube --queues 4 --tenants 64 --tenant-weights 8,4,2,1
//! cargo run --release --bin cubeftl-sim -- --ftl cube --shards 4 --queues 8 --tenants 32 --qos-slo-read-us 5000
//! cargo run --release --bin cubeftl-sim -- --ftl cube --maint --lifetime-epochs 5 --lifetime-pe 500
//! cargo run --release --bin cubeftl-sim -- --ftl cube --trace-out run.ndjson --trace-events ispp,retry,gc
//! cargo run --release --bin cubeftl-sim -- --ftl cube --series-out run.csv --sample-interval-us 5000 --metrics-out metrics.ndjson
//! ```

use cubeftl::harness::{
    register_kv_metrics, run_array_eval, run_array_eval_traced, run_array_failure_eval,
    run_array_kv_eval, run_array_qos_eval, run_array_spo_eval, run_array_trace_eval,
    run_eval_traced, run_kv_eval, run_lifetime_array_eval_mixed, run_lifetime_eval_mixed,
    run_lifetime_trace_eval, run_qos_eval, run_spo_eval, run_trace_eval, run_trace_eval_capture,
    ArrayEvalConfig, ArrayFailureConfig, ArraySpoConfig, EpochWorkload, EvalConfig, FailSpec,
    KvSpec, QosSpec, SpoConfig, TelemetrySpec,
};
use cubeftl::{
    events_to_ndjson, AgingState, ArrayReport, EventMask, FaultKind, FaultPlan, FtlKind,
    KvAppReport, LifetimeConfig, MaintConfig, MetricRegistry, OrtClusterConfig, QosReport,
    RetryOptConfig, SimReport, SpoTrigger, StandardWorkload, Trace, YcsbKind,
};
use std::process::ExitCode;

/// Page size the simulator models (bus transfer is per 16-KB page);
/// byte-addressed trace files are converted at this granularity.
const PAGE_BYTES: u64 = 16 * 1024;

fn parse_ftl(s: &str) -> Option<Vec<FtlKind>> {
    Some(match s {
        "page" => vec![FtlKind::Page],
        "vert" => vec![FtlKind::Vert],
        "cube" => vec![FtlKind::Cube],
        "cube-" | "cube_minus" => vec![FtlKind::CubeMinus],
        "all" => FtlKind::ALL.to_vec(),
        _ => return None,
    })
}

fn parse_workload(s: &str) -> Option<StandardWorkload> {
    Some(match s {
        "mail" => StandardWorkload::Mail,
        "web" => StandardWorkload::Web,
        "proxy" => StandardWorkload::Proxy,
        "oltp" => StandardWorkload::Oltp,
        "rocks" => StandardWorkload::Rocks,
        "mongo" => StandardWorkload::Mongo,
        _ => return None,
    })
}

fn parse_aging(s: &str) -> Option<AgingState> {
    Some(match s {
        "fresh" => AgingState::Fresh,
        "midlife" | "mid" => AgingState::MidLife,
        "eol" | "endoflife" => AgingState::EndOfLife,
        _ => return None,
    })
}

fn parse_fault_class(s: &str) -> Option<FaultKind> {
    Some(match s {
        "ispp-outlier" => FaultKind::IsppLoopOutlier,
        "ber-spike" => FaultKind::BerSpike,
        "stuck-retry" => FaultKind::StuckRetry,
        "uncorrectable" => FaultKind::UncorrectableRead,
        "abort" => FaultKind::ProgramAbort,
        _ => return None,
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cubeftl-sim [--ftl page|vert|cube|cube-|all] [--workload mail|web|proxy|oltp|rocks|mongo]\n\
         \x20                  [--aging fresh|midlife|eol] [--requests N] [--blocks N] [--seed N] [--temp C]\n\
         \x20                  [--fault-seed N] [--fault-rate CLASS=RATE]...\n\
         \x20                  [--maint] [--maint-gap-us F] [--maint-scrub-months F] [--maint-scrub-ber F]\n\
         \x20                  [--maint-remonitor-pe N] [--maint-wear-limit N] [--maint-scrub-batch N]\n\
         \x20                  [--spo-at N | --spo-at-us T | --spo-rate P] [--spo-seed N] [--ckpt-interval N]\n\
         \x20                  [--shards N] [--array-stripe PAGES] [--array-threads N]\n\
         \x20                  [--array-parity] [--fail-shard ID@US | --fail-seed N] [--spare-shards N]\n\
         \x20                  [--rebuild-batch PAGES] [--rebuild-gap-us T]\n\
         \x20                  [--ort-capacity N] [--ort-cluster on|off] [--retry-opt on|off]\n\
         \x20                  [--trace-file PATH]\n\
         \x20                  [--queues N] [--tenants N] [--tenant-weights A,B,C] [--qos-sq-depth N]\n\
         \x20                  [--qos-arrival-us T] [--qos-equal-arrivals] [--qos-slo-read-us T]\n\
         \x20                  [--qos-slo-write-us T] [--qos-trace PATH]\n\
         \x20                  [--lifetime-epochs N] [--lifetime-pe N] [--lifetime-months F]\n\
         \x20                  [--lifetime-exp Q] [--lifetime-variation F]\n\
         \x20                  [--lifetime-pattern-wear on|off] [--lifetime-seed N]\n\
         \x20                  [--lifetime-workloads W1,W2,...]\n\
         \x20                  [--kv a|b|c|d|f] [--kv-keys N] [--kv-value-bytes N]\n\
         \x20                  [--kv-memtable-entries N] [--kv-l0-files N] [--kv-fanout N]\n\
         \x20                  [--kv-levels N] [--capture-trace-out PATH]\n\
         \x20                  [--trace-out PATH] [--trace-events SPEC] [--metrics-out PATH]\n\
         \x20                  [--series-out PATH] [--sample-interval-us T]\n\
         \x20 CLASS: ispp-outlier|ber-spike|stuck-retry|uncorrectable|abort\n\
         \x20 SPEC:  all|none|comma list of host,ispp,retry,gc,maint,ckpt,spo,opm,hostq,slo,kv\n\
         \x20 W:     mail|web|proxy|oltp|rocks|mongo or a YCSB KV kind a|b|c|d|f"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kinds = vec![FtlKind::Cube];
    let mut workload = StandardWorkload::Rocks;
    let mut aging = AgingState::Fresh;
    let mut cfg = EvalConfig::reduced();
    let mut celsius: Option<f64> = None;
    let mut fault_seed: Option<u64> = None;
    let mut fault_rates: Vec<(FaultKind, f64)> = Vec::new();
    let mut maint: Option<MaintConfig> = None;
    let mut maint_gap_us: Option<f64> = None;
    let mut spo_trigger: Option<SpoTrigger> = None;
    let mut spo_seed: Option<u64> = None;
    let mut ckpt_interval: u64 = 64;
    let mut shards: usize = 1;
    let mut stripe_pages: u64 = 64;
    let mut array_threads: usize = 0;
    let mut array_parity = false;
    let mut fail_spec: Option<FailSpec> = None;
    let mut fail_seed: Option<u64> = None;
    let mut spare_shards: usize = 0;
    let mut rebuild_batch: Option<u32> = None;
    let mut rebuild_gap_us: Option<f64> = None;
    let mut trace_file: Option<String> = None;
    let mut qos = QosSpec::off();
    let mut qos_trace_file: Option<String> = None;
    // Any --lifetime-* knob engages the fast-forward aging campaign,
    // starting from the standard fresh→end-of-life shape.
    let mut life: Option<LifetimeConfig> = None;
    let mut lifetime_phases: Option<Vec<EpochWorkload>> = None;
    // The KV application layer: --kv picks the workload, the --kv-*
    // knobs shape the engine (inert without a KV workload anywhere).
    let mut kv = KvSpec::off();
    let mut kv_knob_seen = false;
    let mut capture_out: Option<String> = None;
    // QoS knobs are inert with one queue and one tenant; reject that
    // combination instead of silently ignoring the flags.
    let mut qos_knob_seen = false;
    let mut trace_out: Option<String> = None;
    let mut trace_events: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    let mut series_out: Option<String> = None;
    let mut sample_interval_us: Option<f64> = None;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        // Valueless flags advance by one; everything else consumes a value.
        match flag {
            "--maint" => {
                maint.get_or_insert_with(MaintConfig::default_on);
                i += 1;
                continue;
            }
            "--qos-equal-arrivals" => {
                qos.equal_arrivals = true;
                qos_knob_seen = true;
                i += 1;
                continue;
            }
            "--array-parity" => {
                array_parity = true;
                i += 1;
                continue;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => {}
        }
        let value = args.get(i + 1);
        match (flag, value) {
            ("--ftl", Some(v)) => match parse_ftl(v) {
                Some(k) => kinds = k,
                None => return usage(),
            },
            ("--workload", Some(v)) => match parse_workload(v) {
                Some(w) => workload = w,
                None => return usage(),
            },
            ("--aging", Some(v)) => match parse_aging(v) {
                Some(a) => aging = a,
                None => return usage(),
            },
            ("--requests", Some(v)) => match v.parse() {
                Ok(n) => cfg.requests = n,
                Err(_) => return usage(),
            },
            ("--blocks", Some(v)) => match v.parse() {
                Ok(n) => cfg.blocks_per_chip = n,
                Err(_) => return usage(),
            },
            ("--seed", Some(v)) => match v.parse() {
                Ok(n) => cfg.seed = n,
                Err(_) => return usage(),
            },
            ("--temp", Some(v)) => match v.parse() {
                Ok(c) => celsius = Some(c),
                Err(_) => return usage(),
            },
            ("--fault-seed", Some(v)) => match v.parse() {
                Ok(n) => fault_seed = Some(n),
                Err(_) => return usage(),
            },
            ("--fault-rate", Some(v)) => {
                let Some((class, rate)) = v.split_once('=') else {
                    return usage();
                };
                match (parse_fault_class(class), rate.parse::<f64>()) {
                    (Some(kind), Ok(rate)) if (0.0..=1.0).contains(&rate) => {
                        fault_rates.push((kind, rate));
                    }
                    _ => return usage(),
                }
            }
            ("--maint-gap-us", Some(v)) => match v.parse::<f64>() {
                Ok(g) if g >= 0.0 => {
                    maint.get_or_insert_with(MaintConfig::default_on);
                    maint_gap_us = Some(g);
                }
                _ => return usage(),
            },
            ("--maint-scrub-months", Some(v)) => match v.parse::<f64>() {
                Ok(m) if m > 0.0 => {
                    maint
                        .get_or_insert_with(MaintConfig::default_on)
                        .scrub_retention_min_months = m;
                }
                _ => return usage(),
            },
            ("--maint-scrub-ber", Some(v)) => match v.parse::<f64>() {
                Ok(b) if b > 0.0 => {
                    maint
                        .get_or_insert_with(MaintConfig::default_on)
                        .scrub_ber_threshold = b;
                }
                _ => return usage(),
            },
            ("--maint-remonitor-pe", Some(v)) => match v.parse::<u32>() {
                Ok(n) => {
                    maint
                        .get_or_insert_with(MaintConfig::default_on)
                        .remonitor_pe_budget = n;
                }
                Err(_) => return usage(),
            },
            ("--maint-wear-limit", Some(v)) => match v.parse::<u32>() {
                Ok(n) if n > 0 => {
                    maint
                        .get_or_insert_with(MaintConfig::default_on)
                        .wear_spread_limit = n;
                }
                _ => return usage(),
            },
            ("--maint-scrub-batch", Some(v)) => match v.parse::<u32>() {
                Ok(n) if n > 0 => {
                    maint
                        .get_or_insert_with(MaintConfig::default_on)
                        .scrub_batch_pages = n;
                }
                _ => return usage(),
            },
            ("--spo-at", Some(v)) => match v.parse::<u64>() {
                Ok(n) if n > 0 => spo_trigger = Some(SpoTrigger::AtOps(n)),
                _ => return usage(),
            },
            ("--spo-at-us", Some(v)) => match v.parse::<f64>() {
                Ok(t) if t > 0.0 => spo_trigger = Some(SpoTrigger::AtTimeUs(t)),
                _ => return usage(),
            },
            ("--spo-rate", Some(v)) => match v.parse::<f64>() {
                // Seed is patched in after the parse loop (the flag
                // order must not matter).
                Ok(p) if (0.0..=1.0).contains(&p) => {
                    spo_trigger = Some(SpoTrigger::Seeded { seed: 0, rate: p });
                }
                _ => return usage(),
            },
            ("--spo-seed", Some(v)) => match v.parse::<u64>() {
                Ok(n) => spo_seed = Some(n),
                Err(_) => return usage(),
            },
            ("--ckpt-interval", Some(v)) => match v.parse::<u64>() {
                Ok(n) => ckpt_interval = n,
                Err(_) => return usage(),
            },
            ("--shards", Some(v)) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => shards = n,
                _ => return usage(),
            },
            ("--array-stripe", Some(v)) => match v.parse::<u64>() {
                Ok(n) if n >= 1 => stripe_pages = n,
                _ => return usage(),
            },
            ("--array-threads", Some(v)) => match v.parse::<usize>() {
                Ok(n) => array_threads = n,
                Err(_) => return usage(),
            },
            ("--fail-shard", Some(v)) => match FailSpec::parse(v) {
                Ok(f) => fail_spec = Some(f),
                Err(e) => {
                    eprintln!("--fail-shard: {e}");
                    return ExitCode::FAILURE;
                }
            },
            ("--fail-seed", Some(v)) => match v.parse::<u64>() {
                Ok(n) => fail_seed = Some(n),
                Err(_) => return usage(),
            },
            ("--spare-shards", Some(v)) => match v.parse::<usize>() {
                Ok(n) => spare_shards = n,
                Err(_) => return usage(),
            },
            ("--rebuild-batch", Some(v)) => match v.parse::<u32>() {
                Ok(n) if n >= 1 => rebuild_batch = Some(n),
                _ => return usage(),
            },
            ("--rebuild-gap-us", Some(v)) => match v.parse::<f64>() {
                Ok(t) if t >= 0.0 && t.is_finite() => rebuild_gap_us = Some(t),
                _ => return usage(),
            },
            ("--ort-capacity", Some(v)) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => cfg.ort_capacity = n,
                _ => return usage(),
            },
            ("--ort-cluster", Some(v)) => match v.as_str() {
                "on" => cfg.ort_cluster = OrtClusterConfig::on(),
                "off" => cfg.ort_cluster = OrtClusterConfig::default(),
                _ => return usage(),
            },
            ("--retry-opt", Some(v)) => match v.as_str() {
                "on" => cfg.retry_opt = RetryOptConfig::on(),
                "off" => cfg.retry_opt = RetryOptConfig::default(),
                _ => return usage(),
            },
            ("--trace-file", Some(v)) => trace_file = Some(v.clone()),
            ("--queues", Some(v)) => match v.parse::<u32>() {
                Ok(n) if n >= 1 => qos.queues = n,
                _ => return usage(),
            },
            ("--tenants", Some(v)) => match v.parse::<u32>() {
                Ok(n) if n >= 1 => qos.tenants = n,
                _ => return usage(),
            },
            ("--tenant-weights", Some(v)) => {
                let weights: Option<Vec<u32>> = v
                    .split(',')
                    .map(|w| w.trim().parse::<u32>().ok().filter(|&w| w >= 1))
                    .collect();
                match weights {
                    Some(w) if !w.is_empty() => {
                        qos.weights = w;
                        qos_knob_seen = true;
                    }
                    _ => return usage(),
                }
            }
            ("--qos-sq-depth", Some(v)) => match v.parse::<usize>() {
                Ok(n) if n >= 1 => {
                    qos.sq_depth = n;
                    qos_knob_seen = true;
                }
                _ => return usage(),
            },
            ("--qos-arrival-us", Some(v)) => match v.parse::<f64>() {
                Ok(t) if t > 0.0 && t.is_finite() => {
                    qos.arrival_interval_us = t;
                    qos_knob_seen = true;
                }
                _ => return usage(),
            },
            ("--qos-slo-read-us", Some(v)) => match v.parse::<f64>() {
                Ok(t) if t > 0.0 && t.is_finite() => {
                    qos.slo_read_us = Some(t);
                    qos_knob_seen = true;
                }
                _ => return usage(),
            },
            ("--qos-slo-write-us", Some(v)) => match v.parse::<f64>() {
                Ok(t) if t > 0.0 && t.is_finite() => {
                    qos.slo_write_us = Some(t);
                    qos_knob_seen = true;
                }
                _ => return usage(),
            },
            ("--qos-trace", Some(v)) => {
                qos_trace_file = Some(v.clone());
                qos_knob_seen = true;
            }
            ("--lifetime-epochs", Some(v)) => match v.parse::<u32>() {
                Ok(n) if n >= 1 => life.get_or_insert_with(LifetimeConfig::campaign).epochs = n,
                _ => return usage(),
            },
            ("--lifetime-pe", Some(v)) => match v.parse::<u32>() {
                Ok(n) => {
                    life.get_or_insert_with(LifetimeConfig::campaign)
                        .pe_per_epoch = n
                }
                Err(_) => return usage(),
            },
            ("--lifetime-months", Some(v)) => match v.parse::<f64>() {
                Ok(m) if m >= 0.0 && m.is_finite() => {
                    life.get_or_insert_with(LifetimeConfig::campaign)
                        .months_per_epoch = m;
                }
                _ => return usage(),
            },
            ("--lifetime-exp", Some(v)) => match v.parse::<f64>() {
                Ok(q) if q > 0.0 && q <= 1.0 => {
                    life.get_or_insert_with(LifetimeConfig::campaign)
                        .early_retention_exp = q;
                }
                _ => return usage(),
            },
            ("--lifetime-variation", Some(v)) => match v.parse::<f64>() {
                Ok(s) if (0.0..=1.0).contains(&s) => {
                    life.get_or_insert_with(LifetimeConfig::campaign)
                        .variation_strength = s;
                }
                _ => return usage(),
            },
            ("--lifetime-pattern-wear", Some(v)) => match v.as_str() {
                "on" => {
                    life.get_or_insert_with(LifetimeConfig::campaign)
                        .pattern_wear = true
                }
                "off" => {
                    life.get_or_insert_with(LifetimeConfig::campaign)
                        .pattern_wear = false
                }
                _ => return usage(),
            },
            ("--lifetime-seed", Some(v)) => match v.parse::<u64>() {
                Ok(n) => life.get_or_insert_with(LifetimeConfig::campaign).seed = n,
                Err(_) => return usage(),
            },
            ("--lifetime-workloads", Some(v)) => {
                let phases: Option<Vec<EpochWorkload>> = v
                    .split(',')
                    .map(|p| EpochWorkload::parse(p.trim()))
                    .collect();
                match phases {
                    Some(p) if !p.is_empty() => {
                        life.get_or_insert_with(LifetimeConfig::campaign);
                        lifetime_phases = Some(p);
                    }
                    _ => {
                        eprintln!(
                            "--lifetime-workloads: each phase is mail|web|proxy|oltp|rocks|mongo \
                             or a YCSB KV kind (a|b|c|d|f)"
                        );
                        return ExitCode::FAILURE;
                    }
                }
            }
            ("--kv", Some(v)) => match YcsbKind::parse(v) {
                Some(k) => kv.workload = Some(k),
                None => return usage(),
            },
            ("--kv-keys", Some(v)) => match v.parse::<u64>() {
                Ok(n) if n >= 1 => {
                    kv.keys = n;
                    kv_knob_seen = true;
                }
                _ => return usage(),
            },
            ("--kv-value-bytes", Some(v)) => match v.parse::<u32>() {
                Ok(n) if n >= 1 => {
                    kv.value_bytes = n;
                    kv_knob_seen = true;
                }
                _ => return usage(),
            },
            ("--kv-memtable-entries", Some(v)) => match v.parse::<u32>() {
                Ok(n) if n >= 1 => {
                    kv.memtable_entries = n;
                    kv_knob_seen = true;
                }
                _ => return usage(),
            },
            ("--kv-l0-files", Some(v)) => match v.parse::<u32>() {
                Ok(n) if n >= 2 => {
                    kv.l0_files = n;
                    kv_knob_seen = true;
                }
                _ => return usage(),
            },
            ("--kv-fanout", Some(v)) => match v.parse::<u32>() {
                Ok(n) if n >= 2 => {
                    kv.fanout = n;
                    kv_knob_seen = true;
                }
                _ => return usage(),
            },
            ("--kv-levels", Some(v)) => match v.parse::<u32>() {
                Ok(n) if n >= 2 => {
                    kv.max_levels = n;
                    kv_knob_seen = true;
                }
                _ => return usage(),
            },
            ("--capture-trace-out", Some(v)) => capture_out = Some(v.clone()),
            ("--trace-out", Some(v)) => trace_out = Some(v.clone()),
            ("--trace-events", Some(v)) => trace_events = Some(v.clone()),
            ("--metrics-out", Some(v)) => metrics_out = Some(v.clone()),
            ("--series-out", Some(v)) => series_out = Some(v.clone()),
            ("--sample-interval-us", Some(v)) => match v.parse::<f64>() {
                Ok(t) if t > 0.0 && t.is_finite() => sample_interval_us = Some(t),
                _ => return usage(),
            },
            _ => return usage(),
        }
        i += 2;
    }

    if fault_seed.is_some() && fault_rates.is_empty() {
        // A seed alone injects nothing; require at least one rate.
        return usage();
    }
    if !fault_rates.is_empty() {
        let mut plan = FaultPlan::seeded(fault_seed.unwrap_or(cfg.seed));
        for (kind, rate) in fault_rates {
            plan = plan.with_rate(kind, rate);
        }
        cfg.faults = Some(plan);
    }
    if let Some(m) = maint {
        cfg.maint = Some(m);
        cfg.ssd.maint = cubeftl::MaintSchedule::on();
        if let Some(g) = maint_gap_us {
            cfg.ssd.maint.min_gap_us = g;
        }
    }
    if let Some(SpoTrigger::Seeded { seed, .. }) = &mut spo_trigger {
        *seed = spo_seed.unwrap_or(cfg.seed);
    } else if spo_seed.is_some() {
        // A seed alone arms nothing; it only parameterizes --spo-rate.
        return usage();
    }

    if trace_events.is_some() && trace_out.is_none() {
        eprintln!("--trace-events only filters --trace-out; add --trace-out PATH");
        return ExitCode::FAILURE;
    }
    if series_out.is_some() != sample_interval_us.is_some() {
        eprintln!("--series-out and --sample-interval-us must be given together");
        return ExitCode::FAILURE;
    }
    let events = match &trace_events {
        Some(spec) => match EventMask::parse(spec) {
            Ok(m) => m,
            Err(e) => {
                eprintln!("--trace-events: {e}");
                return ExitCode::FAILURE;
            }
        },
        // --trace-out alone traces every category.
        None => EventMask::ALL,
    };
    let tel = TelemetrySpec {
        events: if trace_out.is_some() {
            events
        } else {
            EventMask::NONE
        },
        sample_interval_us,
    };
    let telemetry_on = trace_out.is_some() || series_out.is_some() || metrics_out.is_some();
    if telemetry_on && kinds.len() > 1 {
        eprintln!("telemetry output files cover one run: use a single --ftl kind");
        return ExitCode::FAILURE;
    }

    println!(
        "workload {workload}, {aging}, {} blocks/chip, {} requests, seed {}{}{}{}\n",
        cfg.blocks_per_chip,
        cfg.requests,
        cfg.seed,
        celsius.map(|c| format!(", {c} °C")).unwrap_or_default(),
        cfg.faults
            .as_ref()
            .map(|p| format!(", faults on (seed {})", p.seed))
            .unwrap_or_default(),
        cfg.maint
            .map(|_| format!(", maint on (gap {} µs)", cfg.ssd.maint.min_gap_us))
            .unwrap_or_default()
    );
    if let Some(c) = celsius {
        cfg.ambient_celsius = c;
    }
    let trace = match &trace_file {
        Some(path) => match load_trace(path) {
            Ok(t) => {
                println!("trace {path}: {} requests ({})", t.len(), t.label());
                Some(t)
            }
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    if trace.is_some() && spo_trigger.is_some() {
        eprintln!("--trace-file cannot be combined with a sudden power-off");
        return ExitCode::FAILURE;
    }
    if qos_knob_seen && !qos.engaged() {
        eprintln!("QoS flags need the front-end engaged: pass --queues > 1 or --tenants > 1");
        return ExitCode::FAILURE;
    }
    if qos.engaged() {
        if trace.is_some() {
            eprintln!(
                "--trace-file replays a single closed-loop stream; with the QoS \
                 front-end use --qos-trace PATH (replayed as tenant 0)"
            );
            return ExitCode::FAILURE;
        }
        if spo_trigger.is_some() {
            eprintln!("the QoS front-end cannot be combined with a sudden power-off");
            return ExitCode::FAILURE;
        }
        if shards > 1 {
            if qos_trace_file.is_some() {
                eprintln!("--qos-trace replays on one device: drop --shards");
                return ExitCode::FAILURE;
            }
            if (qos.tenants as usize) < shards {
                eprintln!("every shard needs a tenant: use --tenants >= --shards");
                return ExitCode::FAILURE;
            }
        }
        if let Some(path) = &qos_trace_file {
            match load_trace(path) {
                Ok(t) => {
                    println!(
                        "qos trace {path}: {} requests ({}) as tenant 0",
                        t.len(),
                        t.label()
                    );
                    qos.trace = Some(t);
                }
                Err(e) => {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    }
    let resilience_engaged = array_parity
        || fail_spec.is_some()
        || fail_seed.is_some()
        || spare_shards > 0
        || rebuild_batch.is_some()
        || rebuild_gap_us.is_some();
    if resilience_engaged {
        if shards <= 1 {
            eprintln!(
                "array resilience flags (--array-parity/--fail-shard/--fail-seed/\
                 --spare-shards/--rebuild-*) need an array: pass --shards > 1"
            );
            return ExitCode::FAILURE;
        }
        if fail_spec.is_some() && fail_seed.is_some() {
            eprintln!("--fail-shard and --fail-seed are exclusive: pick one");
            return ExitCode::FAILURE;
        }
        if let Some(f) = &fail_spec {
            if f.shard >= shards {
                eprintln!(
                    "--fail-shard {}: the array has shards 0..{}",
                    f.shard, shards
                );
                return ExitCode::FAILURE;
            }
        }
        if qos.engaged() {
            eprintln!("array resilience cannot be combined with the QoS front-end");
            return ExitCode::FAILURE;
        }
        if trace.is_some() {
            eprintln!("array resilience cannot be combined with --trace-file");
            return ExitCode::FAILURE;
        }
        if series_out.is_some() {
            eprintln!(
                "failure runs emit barrier-stamped events, not sampled series: \
                 use --trace-out/--metrics-out (drop --series-out)"
            );
            return ExitCode::FAILURE;
        }
    }
    if telemetry_on && (trace.is_some() || (spo_trigger.is_some() && !resilience_engaged)) {
        eprintln!(
            "telemetry output (--trace-out/--series-out/--metrics-out) is only \
             available in the standard run modes (no --trace-file, no SPO)"
        );
        return ExitCode::FAILURE;
    }

    let phases_have_kv = lifetime_phases
        .as_deref()
        .is_some_and(|p| p.iter().any(|w| matches!(w, EpochWorkload::Kv(_))));
    if kv_knob_seen && kv.workload.is_none() && !phases_have_kv {
        eprintln!(
            "KV engine knobs (--kv-*) shape the kvsim engine: pass --kv KIND \
             or a KV phase in --lifetime-workloads"
        );
        return ExitCode::FAILURE;
    }
    if kv.workload.is_some() {
        if trace.is_some() {
            eprintln!("--kv generates its own device traffic: drop --trace-file");
            return ExitCode::FAILURE;
        }
        if qos.engaged() {
            eprintln!("--kv cannot be combined with the QoS front-end");
            return ExitCode::FAILURE;
        }
        if spo_trigger.is_some() {
            eprintln!("--kv cannot be combined with a sudden power-off");
            return ExitCode::FAILURE;
        }
        if resilience_engaged {
            eprintln!("--kv cannot be combined with array resilience");
            return ExitCode::FAILURE;
        }
        if life.is_some() {
            eprintln!(
                "in lifetime mode the per-epoch workload comes from \
                 --lifetime-workloads (e.g. --lifetime-workloads a,a,c); drop --kv"
            );
            return ExitCode::FAILURE;
        }
    }
    if capture_out.is_some() {
        if shards > 1 {
            eprintln!("--capture-trace-out records one device's stream: drop --shards");
            return ExitCode::FAILURE;
        }
        if qos.engaged() || spo_trigger.is_some() || resilience_engaged || life.is_some() {
            eprintln!(
                "--capture-trace-out is only available in the standard \
                 single-device run modes (synthetic, --kv, or --trace-file replay)"
            );
            return ExitCode::FAILURE;
        }
        if kinds.len() > 1 {
            eprintln!("--capture-trace-out covers one run: use a single --ftl kind");
            return ExitCode::FAILURE;
        }
    }

    if let Some(life) = life {
        if spo_trigger.is_some() {
            eprintln!("a lifetime campaign cannot be combined with a sudden power-off");
            return ExitCode::FAILURE;
        }
        if qos.engaged() {
            eprintln!("a lifetime campaign cannot be combined with the QoS front-end");
            return ExitCode::FAILURE;
        }
        if resilience_engaged {
            eprintln!("a lifetime campaign cannot be combined with array resilience");
            return ExitCode::FAILURE;
        }
        if telemetry_on {
            eprintln!(
                "telemetry output files are not available in lifetime mode \
                 (the campaign prints one drift row per epoch)"
            );
            return ExitCode::FAILURE;
        }
        if trace.is_some() && shards > 1 {
            eprintln!("--trace-file lifetime replay is single-device: drop --shards");
            return ExitCode::FAILURE;
        }
        if trace.is_some() && lifetime_phases.is_some() {
            eprintln!("--trace-file replays one recorded stream: drop --lifetime-workloads");
            return ExitCode::FAILURE;
        }
        let phases = lifetime_phases.unwrap_or_else(|| vec![EpochWorkload::Std(workload)]);
        return run_lifetime(
            kinds,
            &phases,
            aging,
            &cfg,
            &life,
            &kv,
            shards,
            stripe_pages,
            array_threads,
            &trace,
        );
    }

    if shards > 1 {
        let arr = ArrayEvalConfig {
            shards,
            stripe_pages,
            threads: array_threads,
        };
        if resilience_engaged {
            let mut fc = ArrayFailureConfig::off();
            fc.parity = array_parity;
            fc.fail = fail_spec;
            fc.spare_shards = spare_shards;
            if let Some(b) = rebuild_batch {
                fc.rebuild.batch_pages = b;
            }
            if let Some(g) = rebuild_gap_us {
                fc.rebuild.gap_us = g;
            }
            fc.ckpt_interval_host_wls = ckpt_interval;
            if let Some(trigger) = spo_trigger {
                let SpoTrigger::AtTimeUs(cut_at_us) = trigger else {
                    eprintln!(
                        "--shards cuts the whole array at one virtual instant: \
                         use --spo-at-us (not --spo-at or --spo-rate)"
                    );
                    return ExitCode::FAILURE;
                };
                fc.spo_cut_at_us = Some(cut_at_us);
            }
            return run_array_failure(
                kinds,
                workload,
                aging,
                &cfg,
                &arr,
                fc,
                fail_seed,
                &trace_out,
                &metrics_out,
            );
        }
        if let Some(trigger) = spo_trigger {
            let SpoTrigger::AtTimeUs(cut_at_us) = trigger else {
                eprintln!(
                    "--shards cuts the whole array at one virtual instant: \
                     use --spo-at-us (not --spo-at or --spo-rate)"
                );
                return ExitCode::FAILURE;
            };
            return run_array_spo(kinds, workload, aging, &cfg, &arr, cut_at_us, ckpt_interval);
        }
        println!(
            "array: {} shards, stripe {} pages, {} worker threads\n",
            arr.shards,
            arr.stripe_pages,
            if arr.threads == 0 {
                arr.shards
            } else {
                arr.threads
            }
        );
        if qos.engaged() {
            println!(
                "qos: {} queues, {} tenants (weights {:?}), sq depth {}, arrival {} µs\n",
                qos.queues, qos.tenants, qos.weights, qos.sq_depth, qos.arrival_interval_us
            );
            print_table_header();
            for kind in kinds {
                let (mut r, tel_out) =
                    run_array_qos_eval(kind, workload, aging, &cfg, &arr, &qos, &tel);
                print_array_row(&mut r.merged, cfg.maint.is_some(), cfg.faults.is_some());
                print_qos_summary(&r.qos);
                let write =
                    write_telemetry(&trace_out, &series_out, &metrics_out, &tel_out, || {
                        let mut reg = MetricRegistry::new();
                        r.merged.register_metrics(&mut reg, "array");
                        r.qos.register_metrics(&mut reg);
                        reg
                    });
                if let Err(e) = write {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            return ExitCode::SUCCESS;
        }
        if kv.workload.is_some() {
            print_kv_banner(&kv);
            print_table_header();
            for kind in kinds {
                let (mut r, tel_out) =
                    run_array_kv_eval(kind, workload, aging, &cfg, &arr, &kv, &tel);
                print_array_row(&mut r.merged, cfg.maint.is_some(), cfg.faults.is_some());
                print_kv_array_summary(&r.apps, r.merged.sim_time_us);
                let write =
                    write_telemetry(&trace_out, &series_out, &metrics_out, &tel_out, || {
                        let mut reg = MetricRegistry::new();
                        r.merged.register_metrics(&mut reg, "array");
                        for (s, app) in r.apps.iter().enumerate() {
                            register_kv_metrics(
                                &mut reg,
                                &format!("kv.shard{s}."),
                                app,
                                r.merged.sim_time_us,
                            );
                        }
                        reg
                    });
                if let Err(e) = write {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            return ExitCode::SUCCESS;
        }
        print_table_header();
        for kind in kinds {
            let (mut r, tel_out) = match &trace {
                Some(t) => (
                    run_array_trace_eval(kind, aging, &cfg, &arr, t),
                    Default::default(),
                ),
                None => run_array_eval_traced(kind, workload, aging, &cfg, &arr, &tel),
            };
            print_array_row(&mut r.merged, cfg.maint.is_some(), cfg.faults.is_some());
            let write = write_telemetry(&trace_out, &series_out, &metrics_out, &tel_out, || {
                let mut reg = MetricRegistry::new();
                r.merged.register_metrics(&mut reg, "array");
                reg
            });
            if let Err(e) = write {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    if qos.engaged() {
        println!(
            "qos: {} queues, {} tenants (weights {:?}), sq depth {}, arrival {} µs\n",
            qos.queues, qos.tenants, qos.weights, qos.sq_depth, qos.arrival_interval_us
        );
        print_table_header();
        for kind in kinds {
            let (mut r, tel_out) = run_qos_eval(kind, workload, aging, &cfg, &qos, &tel);
            print_report_row(&mut r.sim, cfg.maint.is_some(), cfg.faults.is_some());
            print_qos_summary(&r.qos);
            let write = write_telemetry(&trace_out, &series_out, &metrics_out, &tel_out, || {
                let mut reg = MetricRegistry::new();
                r.sim.register_metrics(&mut reg, "ssd");
                r.qos.register_metrics(&mut reg);
                reg
            });
            if let Err(e) = write {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    if let Some(trace) = &trace {
        print_table_header();
        for kind in kinds {
            if let Some(path) = &capture_out {
                let (mut r, captured) = run_trace_eval_capture(kind, aging, &cfg, trace);
                print_report_row(&mut r, cfg.maint.is_some(), cfg.faults.is_some());
                if let Err(e) = write_capture(path, &captured) {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            } else {
                let mut r = run_trace_eval(kind, aging, &cfg, trace);
                print_report_row(&mut r, cfg.maint.is_some(), cfg.faults.is_some());
            }
        }
        return ExitCode::SUCCESS;
    }

    if let Some(trigger) = spo_trigger {
        return run_spo(kinds, workload, aging, &cfg, trigger, ckpt_interval);
    }
    if kv.workload.is_some() {
        print_kv_banner(&kv);
    }
    print_table_header();
    for kind in kinds {
        if kv.workload.is_some() || capture_out.is_some() {
            let (mut r, tel_out) = run_kv_eval(
                kind,
                workload,
                aging,
                &cfg,
                &kv,
                &tel,
                capture_out.is_some(),
            );
            print_report_row(&mut r.sim, cfg.maint.is_some(), cfg.faults.is_some());
            if let Some(app) = &r.app {
                print_kv_summary(app, r.sim.sim_time_us);
            }
            if let (Some(path), Some(c)) = (&capture_out, &r.captured) {
                if let Err(e) = write_capture(path, c) {
                    eprintln!("{e}");
                    return ExitCode::FAILURE;
                }
            }
            let write = write_telemetry(&trace_out, &series_out, &metrics_out, &tel_out, || {
                let mut reg = MetricRegistry::new();
                r.sim.register_metrics(&mut reg, "ssd");
                if let Some(app) = &r.app {
                    register_kv_metrics(&mut reg, "kv.", app, r.sim.sim_time_us);
                }
                reg
            });
            if let Err(e) = write {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
            continue;
        }
        let (mut r, tel_out) = run_eval_traced(kind, workload, aging, &cfg, &tel);
        print_report_row(&mut r, cfg.maint.is_some(), cfg.faults.is_some());
        let write = write_telemetry(&trace_out, &series_out, &metrics_out, &tel_out, || {
            let mut reg = MetricRegistry::new();
            r.register_metrics(&mut reg, "ssd");
            reg
        });
        if let Err(e) = write {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Writes a captured device-level stream as a replayable MSR-style CSV.
fn write_capture(path: &str, trace: &Trace) -> Result<(), String> {
    std::fs::write(path, trace.to_msr_csv(PAGE_BYTES))
        .map_err(|e| format!("cannot write {path}: {e}"))?;
    println!("capture: {} requests -> {path}", trace.len());
    Ok(())
}

/// The KV engagement banner: workload and engine shape.
fn print_kv_banner(kv: &KvSpec) {
    let Some(kind) = kv.workload else { return };
    let c = kv.kv_config();
    println!(
        "kv: {} over {} keys ({}-byte values), memtable {} entries, \
         L0 trigger {}, fanout {}, {} levels\n",
        kind.label(),
        c.keys,
        c.value_bytes,
        c.memtable_entries,
        c.l0_files,
        c.fanout,
        c.max_levels,
    );
}

/// The app-level KV outcome lines under a report row.
fn print_kv_summary(app: &KvAppReport, sim_time_us: f64) {
    let s = &app.stats;
    let ops_per_sec = if sim_time_us > 0.0 {
        s.ops as f64 / (sim_time_us / 1e6)
    } else {
        0.0
    };
    println!(
        "{:<10} kv: {} ({} keys): {} ops ({} rd / {} upd / {} ins / {} rmw) at {:.0} ops/s",
        "", // aligned under the FTL column
        app.kind.label(),
        app.keys,
        s.ops,
        s.reads,
        s.updates,
        s.inserts,
        s.rmws,
        ops_per_sec,
    );
    println!(
        "{:<10} kv: app-WA {:.2}, rd p99 {} pages, upd p99 {} pages, \
         {} flushes, {} compactions, debt {} pages",
        "", // aligned under the FTL column
        app.app_wa(),
        app.read_p99_pages,
        app.update_p99_pages,
        s.flushes,
        s.compactions,
        app.compaction_debt_pages,
    );
}

/// The per-shard KV outcome of an array run: one line per shard plus
/// the aggregate.
fn print_kv_array_summary(apps: &[KvAppReport], sim_time_us: f64) {
    if apps.is_empty() {
        return;
    }
    let ops: u64 = apps.iter().map(|a| a.stats.ops).sum();
    let ops_per_sec = if sim_time_us > 0.0 {
        ops as f64 / (sim_time_us / 1e6)
    } else {
        0.0
    };
    let was: Vec<String> = apps.iter().map(|a| format!("{:.2}", a.app_wa())).collect();
    println!(
        "{:<10} kv: {} total ops across {} engines at {:.0} ops/s, per-shard app-WA [{}]",
        "", // aligned under the FTL column
        ops,
        apps.len(),
        ops_per_sec,
        was.join(", "),
    );
}

/// Writes the requested telemetry files; `None` paths are skipped. The
/// metric registry is built lazily — only when `--metrics-out` asked
/// for it.
fn write_telemetry(
    trace_out: &Option<String>,
    series_out: &Option<String>,
    metrics_out: &Option<String>,
    tel: &cubeftl::harness::TelemetryOutput,
    registry: impl FnOnce() -> MetricRegistry,
) -> Result<(), String> {
    let write = |path: &str, contents: &str| {
        std::fs::write(path, contents).map_err(|e| format!("cannot write {path}: {e}"))
    };
    if let Some(path) = trace_out {
        write(path, &events_to_ndjson(&tel.events))?;
        println!("trace: {} events -> {path}", tel.events.len());
    }
    if let Some(path) = series_out {
        let body = if path.ends_with(".csv") {
            tel.series.to_csv()
        } else {
            tel.series.to_ndjson()
        };
        write(path, &body)?;
        println!("series: {} samples -> {path}", tel.series.rows.len());
    }
    if let Some(path) = metrics_out {
        let reg = registry();
        write(path, &reg.to_ndjson())?;
        println!("metrics: {} entries -> {path}", reg.entries().len());
    }
    Ok(())
}

/// Loads a trace file: the native `cubeftl trace v1` line format, or an
/// MSR-Cambridge-style CSV (byte offsets converted to 16-KB pages; LPNs
/// are folded into the simulated address space at run time).
fn load_trace(path: &str) -> Result<Trace, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace {path}: {e}"))?;
    if text.lines().next().map(str::trim) == Some(workloads::trace::TRACE_HEADER) {
        text.parse().map_err(|e| format!("{path}: {e}"))
    } else {
        Trace::from_msr_csv(&text, PAGE_BYTES, 1 << 40).map_err(|e| format!("{path}: {e}"))
    }
}

fn print_table_header() {
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>9} {:>9} {:>6} {:>6}",
        "FTL",
        "IOPS",
        "p50 rd (ms)",
        "p99 rd (ms)",
        "p90 wr (ms)",
        "GC runs",
        "retries",
        "WA(h)",
        "WA(t)"
    );
}

fn fmt_wa(w: Option<f64>) -> String {
    w.map(|w| format!("{w:.2}"))
        .unwrap_or_else(|| "-".to_owned())
}

/// The per-FTL detail lines shared by every table mode.
fn print_detail_lines(
    ftl: &cubeftl::FtlStats,
    max_queue_depth: usize,
    mean_busy: f64,
    background_ops: u64,
    maint_on: bool,
    faults_on: bool,
) {
    println!(
        "{:<10} chips: max queue depth {}, mean busy {:.1}%{}",
        "", // aligned under the FTL column
        max_queue_depth,
        mean_busy * 100.0,
        if maint_on {
            format!(
                ", {} background ops ({} scrubs, {} re-monitors, {} wear moves)",
                background_ops, ftl.scrub_blocks, ftl.remonitored_layers, ftl.wear_level_moves,
            )
        } else {
            String::new()
        }
    );
    if let Some(rate) = ftl.ort_hit_rate() {
        println!(
            "{:<10} ORT: {:.1}% hit rate ({} hits, {} misses, {} evictions)",
            "", // aligned under the FTL column
            rate * 100.0,
            ftl.ort_hits,
            ftl.ort_misses,
            ftl.ort_evictions,
        );
    }
    if ftl.cluster_seeds > 0 {
        println!(
            "{:<10} cluster: {} seeded cold reads ({} exact, {} refined), {} early terminations",
            "", // aligned under the FTL column
            ftl.cluster_seeds,
            ftl.cluster_hits,
            ftl.cluster_mispredicts,
            ftl.early_terminations,
        );
    }
    if faults_on {
        println!(
            "{:<10} recoveries: {} safety re-programs, {} demotions, {} aborts, \
             {} stuck retries, {} uncorrectable",
            "", // aligned under the FTL column
            ftl.safety_reprograms,
            ftl.safety_demotions,
            ftl.program_aborts,
            ftl.stuck_retry_recoveries,
            ftl.uncorrectable_recoveries,
        );
    }
}

fn print_report_row(r: &mut cubeftl::SimReport, maint_on: bool, faults_on: bool) {
    println!(
        "{:<10} {:>10.0} {:>12.3} {:>12.3} {:>12.3} {:>9} {:>9} {:>6} {:>6}",
        r.ftl_name,
        r.iops,
        r.read_latency.percentile(50.0) / 1000.0,
        r.read_latency.percentile(99.0) / 1000.0,
        r.write_latency.percentile(90.0) / 1000.0,
        r.ftl.gc_runs,
        r.ftl.read_retries,
        fmt_wa(r.wa_host()),
        fmt_wa(r.wa_total()),
    );
    print_latency_split(&r.read_latency, &r.write_latency);
    let (mqd, busy, bg) = (
        r.max_queue_depth(),
        r.mean_busy_fraction(),
        r.background_ops(),
    );
    print_detail_lines(&r.ftl, mqd, busy, bg, maint_on, faults_on);
}

/// The read-vs-write tail split: the headline table keeps its historic
/// columns (p50/p99 read, p90 write); this detail line carries the full
/// p99/p999 split for both directions.
fn print_latency_split(read: &cubeftl::LatencyRecorder, write: &cubeftl::LatencyRecorder) {
    println!(
        "{:<10} latency: rd p99 {:.3} / p999 {:.3} ms, wr p99 {:.3} / p999 {:.3} ms",
        "", // aligned under the FTL column
        read.percentile(99.0) / 1000.0,
        read.percentile(99.9) / 1000.0,
        write.percentile(99.0) / 1000.0,
        write.percentile(99.9) / 1000.0,
    );
}

fn print_array_row(m: &mut ArrayReport, maint_on: bool, faults_on: bool) {
    println!(
        "{:<10} {:>10.0} {:>12.3} {:>12.3} {:>12.3} {:>9} {:>9} {:>6} {:>6}",
        m.ftl_name,
        m.iops,
        m.read_latency.percentile(50.0) / 1000.0,
        m.read_latency.percentile(99.0) / 1000.0,
        m.write_latency.percentile(90.0) / 1000.0,
        m.ftl.gc_runs,
        m.ftl.read_retries,
        fmt_wa(m.wa_host()),
        fmt_wa(m.wa_total()),
    );
    print_latency_split(&m.read_latency, &m.write_latency);
    let per_shard: Vec<String> = m.per_shard_iops.iter().map(|i| format!("{i:.0}")).collect();
    println!(
        "{:<10} shards: [{}] IOPS, makespan {:.1} ms, {} requests total",
        "", // aligned under the FTL column
        per_shard.join(", "),
        m.sim_time_us / 1000.0,
        m.completed,
    );
    let mqd = m.chip_stats.iter().map(|c| c.max_queue_depth).max();
    let busy = if m.chip_stats.is_empty() {
        0.0
    } else {
        m.chip_stats
            .iter()
            .map(|c| c.busy_fraction(m.sim_time_us))
            .sum::<f64>()
            / m.chip_stats.len() as f64
    };
    let bg = m.chip_stats.iter().map(|c| c.maint_ops).sum();
    print_detail_lines(&m.ftl, mqd.unwrap_or(0), busy, bg, maint_on, faults_on);
}

/// The per-tenant QoS outcome: population totals, per-class aggregates,
/// and a per-tenant table bounded to the
/// [`QosReport::MAX_TENANT_DETAIL`] lowest global ids (the rest is
/// covered by the class rows).
fn print_qos_summary(qos: &QosReport) {
    if qos.tenants.is_empty() {
        return;
    }
    let total = qos.total();
    let offered = total.admitted + total.shed;
    let shed_pct = if offered > 0 {
        total.shed as f64 / offered as f64 * 100.0
    } else {
        0.0
    };
    println!(
        "{:<10} qos: {} tenants, {} admitted, {} shed ({:.1}%), {} SLO violations",
        "", // aligned under the FTL column
        qos.tenants.len(),
        total.admitted,
        total.shed,
        shed_pct,
        total.violations,
    );
    for (class, s) in qos.by_class() {
        println!(
            "{:<10}   {:<11} {:>5} tenants {:>9} done {:>7} shed  rd p99 {:>9.3} ms  \
             wr p99 {:>9.3} ms  {:>5} viol",
            "",
            class.label(),
            s.tenants,
            s.completed,
            s.shed,
            s.read_latency.percentile(99.0) / 1000.0,
            s.write_latency.percentile(99.0) / 1000.0,
            s.violations,
        );
    }
    println!(
        "{:<10}   {:>6} {:>4} {:<11} {:>9} {:>7} {:>9} {:>12} {:>12} {:>5}",
        "",
        "tenant",
        "wt",
        "class",
        "admitted",
        "shed",
        "completed",
        "rd p99 (ms)",
        "wr p99 (ms)",
        "viol"
    );
    for t in qos.tenants.iter().take(QosReport::MAX_TENANT_DETAIL) {
        println!(
            "{:<10}   {:>6} {:>4} {:<11} {:>9} {:>7} {:>9} {:>12.3} {:>12.3} {:>5}",
            "",
            t.id,
            t.weight,
            t.class.label(),
            t.admitted,
            t.shed,
            t.completed,
            t.read_latency.percentile(99.0) / 1000.0,
            t.write_latency.percentile(99.0) / 1000.0,
            t.violations,
        );
    }
    if qos.tenants.len() > QosReport::MAX_TENANT_DETAIL {
        println!(
            "{:<10}   ... {} more tenants folded into the class aggregates",
            "",
            qos.tenants.len() - QosReport::MAX_TENANT_DETAIL,
        );
    }
}

/// One row of the lifetime drift table: the per-epoch metrics the
/// campaign exists to expose (throughput, retry pressure, write
/// amplification), keyed by the cumulative age behind the epoch.
#[allow(clippy::too_many_arguments)]
fn print_lifetime_row(
    name: &str,
    epoch: usize,
    pe: u64,
    months: f64,
    iops: f64,
    reads: u64,
    ftl: &cubeftl::FtlStats,
    wa_host: Option<f64>,
    wa_total: Option<f64>,
) {
    let retry_rate = if reads == 0 {
        0.0
    } else {
        ftl.read_retries as f64 / reads as f64
    };
    println!(
        "{:<10} {:>5} {:>8} {:>8.1} {:>10.0} {:>9} {:>11.4} {:>9} {:>6} {:>6}",
        name,
        epoch,
        pe,
        months,
        iops,
        ftl.read_retries,
        retry_rate,
        ftl.gc_runs,
        fmt_wa(wa_host),
        fmt_wa(wa_total),
    );
}

/// The fast-forward aging campaign: one drift row per epoch, from the
/// fresh device to end-of-life, with the applied aging step between
/// consecutive rows.
#[allow(clippy::too_many_arguments)]
fn run_lifetime(
    kinds: Vec<FtlKind>,
    phases: &[EpochWorkload],
    aging: AgingState,
    cfg: &EvalConfig,
    life: &LifetimeConfig,
    kv: &KvSpec,
    shards: usize,
    stripe_pages: u64,
    array_threads: usize,
    trace: &Option<Trace>,
) -> ExitCode {
    println!(
        "lifetime campaign: {} epochs × {} requests, +{} P/E and +{} months per step \
         (exp {}), variation {}, pattern wear {}, seed {}",
        life.epochs.max(1),
        cfg.requests,
        life.pe_per_epoch,
        life.months_per_epoch,
        life.early_retention_exp,
        life.variation_strength,
        if life.pattern_wear { "on" } else { "off" },
        life.seed,
    );
    if phases.len() > 1 {
        let names: Vec<&str> = phases.iter().map(|p| p.label()).collect();
        println!("phases (cycled per epoch): {}", names.join(", "));
    }
    println!();
    for kind in kinds {
        println!(
            "{:<10} {:>5} {:>8} {:>8} {:>10} {:>9} {:>11} {:>9} {:>6} {:>6}",
            "FTL",
            "epoch",
            "+P/E",
            "+months",
            "IOPS",
            "retries",
            "retry/read",
            "GC runs",
            "WA(h)",
            "WA(t)"
        );
        // Cumulative nominal age behind each epoch row.
        let mut pe: u64 = 0;
        let mut months: f64 = 0.0;
        if shards > 1 {
            let arr = ArrayEvalConfig {
                shards,
                stripe_pages,
                threads: array_threads,
            };
            let r = run_lifetime_array_eval_mixed(kind, phases, aging, cfg, &arr, life, kv);
            for (e, rep) in r.epochs.iter().enumerate() {
                if e > 0 {
                    pe += u64::from(life.pe_per_epoch);
                    months += r.summaries[e - 1]
                        .first()
                        .map_or(0.0, |s| s.retention_added_months);
                }
                let m = &rep.merged;
                print_lifetime_row(
                    &m.ftl_name,
                    e,
                    pe,
                    months,
                    m.iops,
                    m.reads,
                    &m.ftl,
                    m.wa_host(),
                    m.wa_total(),
                );
            }
        } else {
            let r = match trace {
                Some(t) => run_lifetime_trace_eval(kind, aging, cfg, life, t),
                None => run_lifetime_eval_mixed(kind, phases, aging, cfg, life, kv),
            };
            for (e, rep) in r.epochs.iter().enumerate() {
                if e > 0 {
                    let s = &r.summaries[e - 1];
                    pe += u64::from(life.pe_per_epoch);
                    months += s.retention_added_months;
                }
                print_lifetime_row(
                    &rep.ftl_name,
                    e,
                    pe,
                    months,
                    rep.iops,
                    rep.reads,
                    &rep.ftl,
                    rep.wa_host(),
                    rep.wa_total(),
                );
            }
            print_lifetime_drift(&r.epochs);
        }
        println!();
    }
    ExitCode::SUCCESS
}

/// The campaign verdict line: retry and WA drift from the fresh epoch
/// to end-of-life.
fn print_lifetime_drift(epochs: &[SimReport]) {
    let (Some(fresh), Some(eol)) = (epochs.first(), epochs.last()) else {
        return;
    };
    let rate = |r: &SimReport| {
        if r.reads == 0 {
            0.0
        } else {
            r.ftl.read_retries as f64 / r.reads as f64
        }
    };
    println!(
        "{:<10} drift: retry/read {:.4} -> {:.4}, WA(h) {} -> {}, IOPS {:.0} -> {:.0}",
        "", // aligned under the FTL column
        rate(fresh),
        rate(eol),
        fmt_wa(fresh.wa_host()),
        fmt_wa(eol.wa_host()),
        fresh.iops,
        eol.iops,
    );
}

/// The array resilience experiment: rotating parity, an optional
/// whole-shard failure (explicit `--fail-shard` or a seeded plan),
/// degraded reads on the survivors, and a deterministic background
/// rebuild onto the spare — optionally composed with an array-wide SPO
/// cut mid-rebuild. Exits non-zero if the audit finds any
/// host-acknowledged loss.
#[allow(clippy::too_many_arguments)]
fn run_array_failure(
    kinds: Vec<FtlKind>,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    arr: &ArrayEvalConfig,
    mut fc: ArrayFailureConfig,
    fail_seed: Option<u64>,
    trace_out: &Option<String>,
    metrics_out: &Option<String>,
) -> ExitCode {
    println!(
        "array resilience: parity {}, {} spare shard(s), rebuild batch {} pages / gap {:.0} µs{}\n",
        if fc.parity { "on" } else { "off" },
        fc.spare_shards,
        fc.rebuild.batch_pages,
        fc.rebuild.gap_us,
        fc.spo_cut_at_us
            .map(|t| format!(", SPO cut at {:.1} ms into the degraded phase", t / 1000.0))
            .unwrap_or_default(),
    );
    let mut lost = false;
    for kind in kinds {
        if let Some(seed) = fail_seed {
            // The seeded plan needs the healthy makespan; probe it with a
            // plain array run (deterministic, so the plan is too). The
            // failure lands inside every shard's run: use the shortest.
            let probe = run_array_eval(kind, workload, aging, cfg, arr);
            let makespan = probe
                .shards
                .iter()
                .map(|s| s.sim_time_us)
                .fold(f64::INFINITY, f64::min);
            let f = FailSpec::seeded(seed, arr.shards, makespan);
            println!(
                "seeded failure plan (seed {seed}): shard {} dies at {:.1} ms",
                f.shard,
                f.at_us / 1000.0
            );
            fc.fail = Some(f);
        }
        let r = run_array_failure_eval(kind, workload, aging, cfg, arr, &fc);
        println!("{}:", r.healthy.ftl_name);
        match (&fc.fail, r.resilience.failed_shard) {
            (Some(f), Some(s)) => {
                println!(
                    "  failure  shard {s} died at {:.1} ms; {} requests completed before, \
                     {} durable data pages on the dead shard ({} array-acked, {} unprotected)",
                    f.at_us / 1000.0,
                    r.healthy.completed,
                    r.audit.durable_data_pages,
                    r.audit.acked_pages,
                    r.audit.unprotected_pages,
                );
            }
            _ => {
                println!(
                    "  failure  none injected; healthy run: {} requests at {:.0} aggregate IOPS",
                    r.healthy.completed, r.healthy.iops,
                );
            }
        }
        if let Some(d) = &r.degraded {
            println!(
                "  degraded {} requests on the survivors: {} degraded reads \
                 ({} survivor fragment reads), {} writes redirected, {} dropped",
                d.completed,
                r.resilience.degraded_reads,
                r.resilience.degraded_fragment_reads,
                r.resilience.redirected_writes,
                r.audit.dropped_requests,
            );
        }
        if let Some(spare) = r.resilience.spare_shard {
            println!(
                "  rebuild  {} pages onto spare shard {spare} in {:.1} ms \
                 ({} survivor reads, idle-window paced)",
                r.resilience.rebuild_pages,
                r.resilience.rebuild_time_us / 1000.0,
                r.resilience.rebuild_reads,
            );
        }
        if let Some(cut) = fc.spo_cut_at_us {
            let fired = r.recoveries.iter().flatten().count();
            let torn: u64 = r
                .recoveries
                .iter()
                .flatten()
                .map(|rec| rec.torn_wls_quarantined)
                .sum();
            let replayed: u64 = r
                .recoveries
                .iter()
                .flatten()
                .map(|rec| rec.oob_records_replayed)
                .sum();
            println!(
                "  spo      composed cut at {:.1} ms hit {fired} shard(s): \
                 {torn} torn WLs quarantined, {replayed} OOB records replayed",
                cut / 1000.0,
            );
            if let Some(res) = &r.resumed {
                println!(
                    "  resumed  {} remaining requests at {:.0} aggregate IOPS",
                    res.completed, res.iops,
                );
            }
        }
        if r.audit.zero_loss && r.spo_lost_lpns.is_empty() {
            println!(
                "  audit    zero host-acknowledged loss: {}/{} acked pages rebuilt and mapped\n",
                r.audit.rebuilt_mapped_pages, r.audit.acked_pages,
            );
        } else {
            lost = true;
            println!(
                "  audit    LOST {} host-acknowledged pages, {} SPO-lost LPNs{}\n",
                r.audit.lost_pages,
                r.spo_lost_lpns.len(),
                if fc.parity {
                    ""
                } else {
                    " — parity off, the dead shard is unrecoverable"
                },
            );
        }
        let tel_out = cubeftl::harness::TelemetryOutput {
            events: r.events.clone(),
            series: Default::default(),
        };
        let write = write_telemetry(trace_out, &None, metrics_out, &tel_out, || {
            let mut reg = MetricRegistry::new();
            r.healthy.register_metrics(&mut reg, "array");
            if let Some(d) = &r.degraded {
                d.register_metrics(&mut reg, "degraded");
            }
            r.resilience.register_metrics(&mut reg, "array");
            reg
        });
        if let Err(e) = write {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    }
    if lost {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The array-wide crash experiment: every shard cut at the same virtual
/// instant, recovered independently, merged in shard order. Exits
/// non-zero if any shard lost host-acknowledged data.
fn run_array_spo(
    kinds: Vec<FtlKind>,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    arr: &ArrayEvalConfig,
    cut_at_us: f64,
    ckpt_interval: u64,
) -> ExitCode {
    let spo = ArraySpoConfig {
        cut_at_us,
        ckpt_interval_host_wls: ckpt_interval,
    };
    println!(
        "array-wide sudden power-off armed: every shard cut at {:.1} ms, \
         checkpoint every {} host WLs\n",
        cut_at_us / 1000.0,
        if ckpt_interval == 0 {
            "∞ (disabled)".to_owned()
        } else {
            ckpt_interval.to_string()
        }
    );
    let mut lost = false;
    for kind in kinds {
        let r = run_array_spo_eval(kind, workload, aging, cfg, arr, &spo);
        println!("{}:", r.pre_cut.ftl_name);
        println!(
            "  cut      {}/{} shards hit at {:.1} ms; {} requests completed before the cut, \
             {} checkpoints taken",
            r.shards_cut(),
            arr.shards,
            cut_at_us / 1000.0,
            r.pre_cut.completed,
            r.checkpoints_taken,
        );
        let torn: u64 = r
            .recoveries
            .iter()
            .flatten()
            .map(|rec| rec.torn_wls_quarantined)
            .sum();
        let demoted: u64 = r
            .recoveries
            .iter()
            .flatten()
            .map(|rec| rec.layers_demoted)
            .sum();
        let replayed: u64 = r
            .recoveries
            .iter()
            .flatten()
            .map(|rec| rec.oob_records_replayed)
            .sum();
        println!(
            "  recovery {} torn WLs quarantined, {} h-layers demoted, \
             {} OOB records replayed across the array",
            torn, demoted, replayed,
        );
        if let Some(res) = &r.resumed {
            println!(
                "  resumed  {} remaining requests at {:.0} aggregate IOPS",
                res.completed, res.iops,
            );
        } else {
            println!("  resumed  nothing left to replay");
        }
        if r.lost_lpns.is_empty() {
            println!("  audit    zero host-acknowledged data loss on any shard\n");
        } else {
            lost = true;
            println!(
                "  audit    LOST {} host-acknowledged (shard, LPN) pairs: {:?}\n",
                r.lost_lpns.len(),
                &r.lost_lpns[..r.lost_lpns.len().min(16)]
            );
        }
    }
    if lost {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// The double-run crash experiment: golden run, cut, recovery, resume.
/// Exits non-zero if any host-acknowledged write is lost.
fn run_spo(
    kinds: Vec<FtlKind>,
    workload: StandardWorkload,
    aging: AgingState,
    cfg: &EvalConfig,
    trigger: SpoTrigger,
    ckpt_interval: u64,
) -> ExitCode {
    let spo = SpoConfig {
        trigger,
        ckpt_interval_host_wls: ckpt_interval,
    };
    println!(
        "sudden power-off armed: {trigger:?}, checkpoint every {} host WLs\n",
        if ckpt_interval == 0 {
            "∞ (disabled)".to_owned()
        } else {
            ckpt_interval.to_string()
        }
    );
    let mut lost = false;
    for kind in kinds {
        let r = run_spo_eval(kind, workload, aging, cfg, &spo);
        println!("{}:", r.golden.ftl_name);
        let Some(event) = &r.spo else {
            println!(
                "  trigger never fired ({} requests completed in {:.1} ms); \
                 run matches the golden run\n",
                r.pre_cut.completed,
                r.pre_cut.sim_time_us / 1000.0
            );
            continue;
        };
        let rec = r.recovery.as_ref().expect("recovery ran when SPO fired");
        println!(
            "  cut      at {:.1} ms: {} issued, {} acked ({} acked writes, {} in PLP buffer), \
             {} checkpoints taken",
            event.at_us / 1000.0,
            event.issued,
            event.completed,
            event.acked_write_lpns.len(),
            event.buffered_lpns.len(),
            r.checkpoints_taken,
        );
        println!(
            "  recovery in {:.3} ms: checkpoint {}, {}/{} blocks scanned ({} probed), \
             {} OOB records replayed",
            rec.nand_us / 1000.0,
            if rec.checkpoint_loaded {
                format!(
                    "seq {} loaded ({} entries)",
                    rec.checkpoint_seq, rec.ckpt_entries_restored
                )
            } else {
                "none".to_owned()
            },
            rec.blocks_scanned,
            r.total_blocks,
            rec.blocks_probed,
            rec.oob_records_replayed,
        );
        println!(
            "  physics  {} torn WLs quarantined, {} h-layers demoted, \
             {} interrupted erases redone, {} PLP pages replayed",
            rec.torn_wls_quarantined,
            rec.layers_demoted,
            rec.interrupted_erases_redone,
            rec.plp_pages_replayed,
        );
        if let Some(res) = &r.resumed {
            println!(
                "  resumed  {} remaining requests at {:.0} IOPS \
                 (golden full run: {:.0} IOPS)",
                res.completed, res.iops, r.golden.iops,
            );
        } else {
            println!("  resumed  nothing left to replay (cut after the last request)");
        }
        if r.lost_lpns.is_empty() {
            println!("  audit    zero host-acknowledged data loss\n");
        } else {
            lost = true;
            println!(
                "  audit    LOST {} host-acknowledged LPNs: {:?}\n",
                r.lost_lpns.len(),
                &r.lost_lpns[..r.lost_lpns.len().min(16)]
            );
        }
    }
    if lost {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
