//! `cubeftl-sim` — run one SSD simulation from the command line.
//!
//! ```text
//! cubeftl-sim [--ftl page|vert|cube|cube-|all] [--workload mail|web|proxy|oltp|rocks|mongo]
//!             [--aging fresh|midlife|eol] [--requests N] [--blocks N] [--seed N] [--temp C]
//!             [--fault-seed N] [--fault-rate CLASS=RATE]...
//!             [--maint] [--maint-gap-us F] [--maint-scrub-months F] [--maint-scrub-ber F]
//!             [--maint-remonitor-pe N] [--maint-wear-limit N] [--maint-scrub-batch N]
//! ```
//!
//! `--fault-rate` enables seeded fault injection (repeatable); CLASS is one
//! of `ispp-outlier`, `ber-spike`, `stuck-retry`, `uncorrectable`, `abort`.
//!
//! `--maint` enables the background maintenance subsystem (retention
//! scrubbing, wear leveling, OPM re-monitoring) with default thresholds;
//! any `--maint-*` knob implies `--maint`. `--maint-gap-us` is the
//! host-priority gap: a chip must have been idle that long before a
//! background op may be dispatched on it.
//!
//! Examples:
//!
//! ```sh
//! cargo run --release --bin cubeftl-sim -- --workload rocks --aging eol --ftl all
//! cargo run --release --bin cubeftl-sim -- --ftl cube --workload oltp --requests 100000
//! cargo run --release --bin cubeftl-sim -- --ftl cube --fault-rate ber-spike=0.01 --fault-rate abort=0.005
//! cargo run --release --bin cubeftl-sim -- --ftl cube --aging eol --maint --maint-gap-us 500
//! ```

use cubeftl::harness::{run_eval, EvalConfig};
use cubeftl::{AgingState, FaultKind, FaultPlan, FtlKind, MaintConfig, StandardWorkload};
use std::process::ExitCode;

fn parse_ftl(s: &str) -> Option<Vec<FtlKind>> {
    Some(match s {
        "page" => vec![FtlKind::Page],
        "vert" => vec![FtlKind::Vert],
        "cube" => vec![FtlKind::Cube],
        "cube-" | "cube_minus" => vec![FtlKind::CubeMinus],
        "all" => FtlKind::ALL.to_vec(),
        _ => return None,
    })
}

fn parse_workload(s: &str) -> Option<StandardWorkload> {
    Some(match s {
        "mail" => StandardWorkload::Mail,
        "web" => StandardWorkload::Web,
        "proxy" => StandardWorkload::Proxy,
        "oltp" => StandardWorkload::Oltp,
        "rocks" => StandardWorkload::Rocks,
        "mongo" => StandardWorkload::Mongo,
        _ => return None,
    })
}

fn parse_aging(s: &str) -> Option<AgingState> {
    Some(match s {
        "fresh" => AgingState::Fresh,
        "midlife" | "mid" => AgingState::MidLife,
        "eol" | "endoflife" => AgingState::EndOfLife,
        _ => return None,
    })
}

fn parse_fault_class(s: &str) -> Option<FaultKind> {
    Some(match s {
        "ispp-outlier" => FaultKind::IsppLoopOutlier,
        "ber-spike" => FaultKind::BerSpike,
        "stuck-retry" => FaultKind::StuckRetry,
        "uncorrectable" => FaultKind::UncorrectableRead,
        "abort" => FaultKind::ProgramAbort,
        _ => return None,
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cubeftl-sim [--ftl page|vert|cube|cube-|all] [--workload mail|web|proxy|oltp|rocks|mongo]\n\
         \x20                  [--aging fresh|midlife|eol] [--requests N] [--blocks N] [--seed N] [--temp C]\n\
         \x20                  [--fault-seed N] [--fault-rate CLASS=RATE]...\n\
         \x20                  [--maint] [--maint-gap-us F] [--maint-scrub-months F] [--maint-scrub-ber F]\n\
         \x20                  [--maint-remonitor-pe N] [--maint-wear-limit N] [--maint-scrub-batch N]\n\
         \x20 CLASS: ispp-outlier|ber-spike|stuck-retry|uncorrectable|abort"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kinds = vec![FtlKind::Cube];
    let mut workload = StandardWorkload::Rocks;
    let mut aging = AgingState::Fresh;
    let mut cfg = EvalConfig::reduced();
    let mut celsius: Option<f64> = None;
    let mut fault_seed: Option<u64> = None;
    let mut fault_rates: Vec<(FaultKind, f64)> = Vec::new();
    let mut maint: Option<MaintConfig> = None;
    let mut maint_gap_us: Option<f64> = None;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        // Valueless flags advance by one; everything else consumes a value.
        match flag {
            "--maint" => {
                maint.get_or_insert_with(MaintConfig::default_on);
                i += 1;
                continue;
            }
            "--help" | "-h" => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => {}
        }
        let value = args.get(i + 1);
        match (flag, value) {
            ("--ftl", Some(v)) => match parse_ftl(v) {
                Some(k) => kinds = k,
                None => return usage(),
            },
            ("--workload", Some(v)) => match parse_workload(v) {
                Some(w) => workload = w,
                None => return usage(),
            },
            ("--aging", Some(v)) => match parse_aging(v) {
                Some(a) => aging = a,
                None => return usage(),
            },
            ("--requests", Some(v)) => match v.parse() {
                Ok(n) => cfg.requests = n,
                Err(_) => return usage(),
            },
            ("--blocks", Some(v)) => match v.parse() {
                Ok(n) => cfg.blocks_per_chip = n,
                Err(_) => return usage(),
            },
            ("--seed", Some(v)) => match v.parse() {
                Ok(n) => cfg.seed = n,
                Err(_) => return usage(),
            },
            ("--temp", Some(v)) => match v.parse() {
                Ok(c) => celsius = Some(c),
                Err(_) => return usage(),
            },
            ("--fault-seed", Some(v)) => match v.parse() {
                Ok(n) => fault_seed = Some(n),
                Err(_) => return usage(),
            },
            ("--fault-rate", Some(v)) => {
                let Some((class, rate)) = v.split_once('=') else {
                    return usage();
                };
                match (parse_fault_class(class), rate.parse::<f64>()) {
                    (Some(kind), Ok(rate)) if (0.0..=1.0).contains(&rate) => {
                        fault_rates.push((kind, rate));
                    }
                    _ => return usage(),
                }
            }
            ("--maint-gap-us", Some(v)) => match v.parse::<f64>() {
                Ok(g) if g >= 0.0 => {
                    maint.get_or_insert_with(MaintConfig::default_on);
                    maint_gap_us = Some(g);
                }
                _ => return usage(),
            },
            ("--maint-scrub-months", Some(v)) => match v.parse::<f64>() {
                Ok(m) if m > 0.0 => {
                    maint
                        .get_or_insert_with(MaintConfig::default_on)
                        .scrub_retention_min_months = m;
                }
                _ => return usage(),
            },
            ("--maint-scrub-ber", Some(v)) => match v.parse::<f64>() {
                Ok(b) if b > 0.0 => {
                    maint
                        .get_or_insert_with(MaintConfig::default_on)
                        .scrub_ber_threshold = b;
                }
                _ => return usage(),
            },
            ("--maint-remonitor-pe", Some(v)) => match v.parse::<u32>() {
                Ok(n) => {
                    maint
                        .get_or_insert_with(MaintConfig::default_on)
                        .remonitor_pe_budget = n;
                }
                Err(_) => return usage(),
            },
            ("--maint-wear-limit", Some(v)) => match v.parse::<u32>() {
                Ok(n) if n > 0 => {
                    maint
                        .get_or_insert_with(MaintConfig::default_on)
                        .wear_spread_limit = n;
                }
                _ => return usage(),
            },
            ("--maint-scrub-batch", Some(v)) => match v.parse::<u32>() {
                Ok(n) if n > 0 => {
                    maint
                        .get_or_insert_with(MaintConfig::default_on)
                        .scrub_batch_pages = n;
                }
                _ => return usage(),
            },
            _ => return usage(),
        }
        i += 2;
    }

    if fault_seed.is_some() && fault_rates.is_empty() {
        // A seed alone injects nothing; require at least one rate.
        return usage();
    }
    if !fault_rates.is_empty() {
        let mut plan = FaultPlan::seeded(fault_seed.unwrap_or(cfg.seed));
        for (kind, rate) in fault_rates {
            plan = plan.with_rate(kind, rate);
        }
        cfg.faults = Some(plan);
    }
    if let Some(m) = maint {
        cfg.maint = Some(m);
        cfg.ssd.maint = cubeftl::MaintSchedule::on();
        if let Some(g) = maint_gap_us {
            cfg.ssd.maint.min_gap_us = g;
        }
    }

    println!(
        "workload {workload}, {aging}, {} blocks/chip, {} requests, seed {}{}{}{}\n",
        cfg.blocks_per_chip,
        cfg.requests,
        cfg.seed,
        celsius.map(|c| format!(", {c} °C")).unwrap_or_default(),
        cfg.faults
            .as_ref()
            .map(|p| format!(", faults on (seed {})", p.seed))
            .unwrap_or_default(),
        cfg.maint
            .map(|_| format!(", maint on (gap {} µs)", cfg.ssd.maint.min_gap_us))
            .unwrap_or_default()
    );
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>9} {:>9} {:>6} {:>6}",
        "FTL",
        "IOPS",
        "p50 rd (ms)",
        "p99 rd (ms)",
        "p90 wr (ms)",
        "GC runs",
        "retries",
        "WA(h)",
        "WA(t)"
    );
    let faults_on = cfg.faults.is_some();
    let maint_on = cfg.maint.is_some();
    if let Some(c) = celsius {
        cfg.ambient_celsius = c;
    }
    let fmt_wa = |w: Option<f64>| {
        w.map(|w| format!("{w:.2}"))
            .unwrap_or_else(|| "-".to_owned())
    };
    for kind in kinds {
        let mut r = run_eval(kind, workload, aging, &cfg);
        println!(
            "{:<10} {:>10.0} {:>12.3} {:>12.3} {:>12.3} {:>9} {:>9} {:>6} {:>6}",
            r.ftl_name,
            r.iops,
            r.read_latency.percentile(50.0) / 1000.0,
            r.read_latency.percentile(99.0) / 1000.0,
            r.write_latency.percentile(90.0) / 1000.0,
            r.ftl.gc_runs,
            r.ftl.read_retries,
            fmt_wa(r.wa_host()),
            fmt_wa(r.wa_total()),
        );
        println!(
            "{:<10} chips: max queue depth {}, mean busy {:.1}%{}",
            "", // aligned under the FTL column
            r.max_queue_depth(),
            r.mean_busy_fraction() * 100.0,
            if maint_on {
                format!(
                    ", {} background ops ({} scrubs, {} re-monitors, {} wear moves)",
                    r.background_ops(),
                    r.ftl.scrub_blocks,
                    r.ftl.remonitored_layers,
                    r.ftl.wear_level_moves,
                )
            } else {
                String::new()
            }
        );
        if faults_on {
            println!(
                "{:<10} recoveries: {} safety re-programs, {} demotions, {} aborts, \
                 {} stuck retries, {} uncorrectable",
                "", // aligned under the FTL column
                r.ftl.safety_reprograms,
                r.ftl.safety_demotions,
                r.ftl.program_aborts,
                r.ftl.stuck_retry_recoveries,
                r.ftl.uncorrectable_recoveries,
            );
        }
    }
    ExitCode::SUCCESS
}
