//! `cubeftl-sim` — run one SSD simulation from the command line.
//!
//! ```text
//! cubeftl-sim [--ftl page|vert|cube|cube-|all] [--workload mail|web|proxy|oltp|rocks|mongo]
//!             [--aging fresh|midlife|eol] [--requests N] [--blocks N] [--seed N] [--temp C]
//!             [--fault-seed N] [--fault-rate CLASS=RATE]...
//! ```
//!
//! `--fault-rate` enables seeded fault injection (repeatable); CLASS is one
//! of `ispp-outlier`, `ber-spike`, `stuck-retry`, `uncorrectable`, `abort`.
//!
//! Examples:
//!
//! ```sh
//! cargo run --release --bin cubeftl-sim -- --workload rocks --aging eol --ftl all
//! cargo run --release --bin cubeftl-sim -- --ftl cube --workload oltp --requests 100000
//! cargo run --release --bin cubeftl-sim -- --ftl cube --fault-rate ber-spike=0.01 --fault-rate abort=0.005
//! ```

use cubeftl::harness::{run_eval, EvalConfig};
use cubeftl::{AgingState, FaultKind, FaultPlan, FtlKind, StandardWorkload};
use std::process::ExitCode;

fn parse_ftl(s: &str) -> Option<Vec<FtlKind>> {
    Some(match s {
        "page" => vec![FtlKind::Page],
        "vert" => vec![FtlKind::Vert],
        "cube" => vec![FtlKind::Cube],
        "cube-" | "cube_minus" => vec![FtlKind::CubeMinus],
        "all" => FtlKind::ALL.to_vec(),
        _ => return None,
    })
}

fn parse_workload(s: &str) -> Option<StandardWorkload> {
    Some(match s {
        "mail" => StandardWorkload::Mail,
        "web" => StandardWorkload::Web,
        "proxy" => StandardWorkload::Proxy,
        "oltp" => StandardWorkload::Oltp,
        "rocks" => StandardWorkload::Rocks,
        "mongo" => StandardWorkload::Mongo,
        _ => return None,
    })
}

fn parse_aging(s: &str) -> Option<AgingState> {
    Some(match s {
        "fresh" => AgingState::Fresh,
        "midlife" | "mid" => AgingState::MidLife,
        "eol" | "endoflife" => AgingState::EndOfLife,
        _ => return None,
    })
}

fn parse_fault_class(s: &str) -> Option<FaultKind> {
    Some(match s {
        "ispp-outlier" => FaultKind::IsppLoopOutlier,
        "ber-spike" => FaultKind::BerSpike,
        "stuck-retry" => FaultKind::StuckRetry,
        "uncorrectable" => FaultKind::UncorrectableRead,
        "abort" => FaultKind::ProgramAbort,
        _ => return None,
    })
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: cubeftl-sim [--ftl page|vert|cube|cube-|all] [--workload mail|web|proxy|oltp|rocks|mongo]\n\
         \x20                  [--aging fresh|midlife|eol] [--requests N] [--blocks N] [--seed N] [--temp C]\n\
         \x20                  [--fault-seed N] [--fault-rate CLASS=RATE]...\n\
         \x20 CLASS: ispp-outlier|ber-spike|stuck-retry|uncorrectable|abort"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut kinds = vec![FtlKind::Cube];
    let mut workload = StandardWorkload::Rocks;
    let mut aging = AgingState::Fresh;
    let mut cfg = EvalConfig::reduced();
    let mut celsius: Option<f64> = None;
    let mut fault_seed: Option<u64> = None;
    let mut fault_rates: Vec<(FaultKind, f64)> = Vec::new();

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = args.get(i + 1);
        match (flag, value) {
            ("--ftl", Some(v)) => match parse_ftl(v) {
                Some(k) => kinds = k,
                None => return usage(),
            },
            ("--workload", Some(v)) => match parse_workload(v) {
                Some(w) => workload = w,
                None => return usage(),
            },
            ("--aging", Some(v)) => match parse_aging(v) {
                Some(a) => aging = a,
                None => return usage(),
            },
            ("--requests", Some(v)) => match v.parse() {
                Ok(n) => cfg.requests = n,
                Err(_) => return usage(),
            },
            ("--blocks", Some(v)) => match v.parse() {
                Ok(n) => cfg.blocks_per_chip = n,
                Err(_) => return usage(),
            },
            ("--seed", Some(v)) => match v.parse() {
                Ok(n) => cfg.seed = n,
                Err(_) => return usage(),
            },
            ("--temp", Some(v)) => match v.parse() {
                Ok(c) => celsius = Some(c),
                Err(_) => return usage(),
            },
            ("--fault-seed", Some(v)) => match v.parse() {
                Ok(n) => fault_seed = Some(n),
                Err(_) => return usage(),
            },
            ("--fault-rate", Some(v)) => {
                let Some((class, rate)) = v.split_once('=') else {
                    return usage();
                };
                match (parse_fault_class(class), rate.parse::<f64>()) {
                    (Some(kind), Ok(rate)) if (0.0..=1.0).contains(&rate) => {
                        fault_rates.push((kind, rate));
                    }
                    _ => return usage(),
                }
            }
            ("--help", _) | ("-h", _) => {
                usage();
                return ExitCode::SUCCESS;
            }
            _ => return usage(),
        }
        i += 2;
    }

    if fault_seed.is_some() && fault_rates.is_empty() {
        // A seed alone injects nothing; require at least one rate.
        return usage();
    }
    if !fault_rates.is_empty() {
        let mut plan = FaultPlan::seeded(fault_seed.unwrap_or(cfg.seed));
        for (kind, rate) in fault_rates {
            plan = plan.with_rate(kind, rate);
        }
        cfg.faults = Some(plan);
    }

    println!(
        "workload {workload}, {aging}, {} blocks/chip, {} requests, seed {}{}{}\n",
        cfg.blocks_per_chip,
        cfg.requests,
        cfg.seed,
        celsius.map(|c| format!(", {c} °C")).unwrap_or_default(),
        cfg.faults
            .as_ref()
            .map(|p| format!(", faults on (seed {})", p.seed))
            .unwrap_or_default()
    );
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>12} {:>9} {:>9} {:>6}",
        "FTL", "IOPS", "p50 rd (ms)", "p99 rd (ms)", "p90 wr (ms)", "GC runs", "retries", "WA"
    );
    let faults_on = cfg.faults.is_some();
    if let Some(c) = celsius {
        cfg.ambient_celsius = c;
    }
    for kind in kinds {
        let mut r = run_eval(kind, workload, aging, &cfg);
        println!(
            "{:<10} {:>10.0} {:>12.3} {:>12.3} {:>12.3} {:>9} {:>9} {:>6}",
            r.ftl_name,
            r.iops,
            r.read_latency.percentile(50.0) / 1000.0,
            r.read_latency.percentile(99.0) / 1000.0,
            r.write_latency.percentile(90.0) / 1000.0,
            r.ftl.gc_runs,
            r.ftl.read_retries,
            r.write_amplification()
                .map(|w| format!("{w:.2}"))
                .unwrap_or_else(|| "-".to_owned()),
        );
        if faults_on {
            println!(
                "{:<10} recoveries: {} safety re-programs, {} demotions, {} aborts, \
                 {} stuck retries, {} uncorrectable",
                "", // aligned under the FTL column
                r.ftl.safety_reprograms,
                r.ftl.safety_demotions,
                r.ftl.program_aborts,
                r.ftl.stuck_retry_recoveries,
                r.ftl.uncorrectable_recoveries,
            );
        }
    }
    ExitCode::SUCCESS
}
