//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! This workspace builds in hermetic environments with no crates.io
//! access, so the external `rand` crate is replaced by this vendored
//! stub. It reimplements exactly the surface the workspace uses —
//! [`Rng`], [`SeedableRng`] and [`rngs::StdRng`] — on top of a
//! deterministic xoshiro256** core seeded through SplitMix64 (the same
//! construction rand's `SmallRng` historically used).
//!
//! Determinism is a hard requirement of the simulator (same seed ⇒
//! identical `SimReport`), and this implementation is deterministic by
//! construction on every platform: no OS entropy, no thread-local state.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from an RNG (subset of rand's
/// `Standard` distribution).
pub trait Sample {
    /// Draws one uniform value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Sample for u64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Sample for u32 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can parameterize [`Rng::gen_range`] (subset of rand's
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is fair game.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// The subset of rand's `Rng` trait the workspace uses.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T` (rand's `Standard` distribution).
    #[inline]
    fn gen<T: Sample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform sample from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// The subset of rand's `SeedableRng` trait the workspace uses.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for rand's
    /// `StdRng`. Not cryptographic — statistical quality only, which is
    /// all the simulator needs.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full state, as
            // recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    /// Alias: the workspace never needs a distinct small generator.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn f64_uniform_in_unit_interval_with_flat_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / f64::from(n);
        assert!((0.49..0.51).contains(&mean), "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10u32..=20);
            assert!((10..=20).contains(&v));
            let w = rng.gen_range(5usize..8);
            assert!((5..8).contains(&w));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bernoulli_rate_is_flat() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        let rate = hits as f64 / 20_000.0;
        assert!((0.23..0.27).contains(&rate), "rate {rate}");
    }
}
