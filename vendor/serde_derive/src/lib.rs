//! No-op derive macros backing the vendored `serde` stub.
//!
//! The stub's `Serialize`/`Deserialize` traits carry blanket impls, so
//! the derives have nothing to emit — they only need to exist so that
//! `#[derive(Serialize, Deserialize)]` attributes across the workspace
//! keep compiling in hermetic (registry-free) builds.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
