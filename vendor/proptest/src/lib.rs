//! Offline stand-in for the `proptest` crate.
//!
//! Hermetic builds have no crates.io access, so the real proptest is
//! replaced by this vendored subset: a [`Strategy`](strategy::Strategy)
//! trait over deterministic RNG sampling, the combinators the workspace
//! actually uses (ranges, tuples, `prop_map`, `prop::collection::vec`,
//! `prop::bool::ANY`, [`strategy::Just`]), and a [`proptest!`] macro
//! that runs each property over a fixed number of seeded cases.
//!
//! Differences from real proptest, by design:
//! - no shrinking — a failing case reports its case index and seed so it
//!   can be replayed, but is not minimized;
//! - cases are fully deterministic: the per-test seed is derived from
//!   the test's name, so a given binary always exercises the same
//!   inputs (set `PROPTEST_CASES` to change the case count).

pub mod strategy {
    //! Value-generation strategies (deterministic subset).

    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// A recipe for producing values of `Self::Value` from a seeded RNG.
    pub trait Strategy {
        /// The type of value this strategy yields.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
}

pub mod prop {
    //! Namespaced strategy constructors (`prop::collection`, `prop::bool`).

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::Range;

        /// Strategy for `Vec`s with lengths drawn from a range.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            elem: S,
            len: Range<usize>,
        }

        /// Vectors of `elem`-generated values with a length in `len`.
        pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { elem, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
                let n = rng.gen_range(self.len.clone());
                (0..n).map(|_| self.elem.generate(rng)).collect()
            }
        }
    }

    pub mod bool {
        //! Boolean strategies.

        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;

        /// Strategy yielding uniformly random booleans.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Uniform `true`/`false`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;

            fn generate(&self, rng: &mut StdRng) -> bool {
                rng.gen::<bool>()
            }
        }
    }
}

pub mod test_runner {
    //! Deterministic case driver behind the [`proptest!`](crate::proptest) macro.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Default number of cases per property (override with `PROPTEST_CASES`).
    pub const DEFAULT_CASES: u32 = 32;

    fn case_count() -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(DEFAULT_CASES)
    }

    /// FNV-1a, so each property gets a distinct but stable seed stream.
    fn stable_hash(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `body` over the deterministic case seeds for `name`,
    /// panicking with the case index and seed on the first failure.
    pub fn run<F>(name: &str, mut body: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), String>,
    {
        let base = stable_hash(name);
        for case in 0..case_count() {
            let seed = base ^ u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let mut rng = StdRng::seed_from_u64(seed);
            if let Err(msg) = body(&mut rng) {
                panic!("proptest '{name}' failed at case {case} (seed {seed:#x}): {msg}");
            }
        }
    }
}

pub mod prelude {
    //! `use proptest::prelude::*;` — everything the macro and call sites need.

    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                ::std::stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Fails the current property case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                left,
                right
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Fails the current property case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                left
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if left == right {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over deterministic seeded cases.
#[macro_export]
macro_rules! proptest {
    ($(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(::std::stringify!($name), |proptest_rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), proptest_rng);)+
                #[allow(unreachable_code, clippy::redundant_closure_call)]
                (|| -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                })()
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_are_deterministic_per_test_name() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = (0u32..100, 0.0f64..1.0).prop_map(|(a, b)| (a, b));
        let mut r1 = StdRng::seed_from_u64(5);
        let mut r2 = StdRng::seed_from_u64(5);
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }

    proptest! {
        /// The macro itself: ranges respect bounds, vec lengths respect
        /// bounds, assertions thread through.
        #[test]
        fn macro_generates_in_bounds(
            x in 3u32..17,
            v in prop::collection::vec(0u8..4, 1..9),
            flag in prop::bool::ANY,
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&e| e < 4));
            prop_assert_eq!(flag, flag);
            prop_assert_ne!(x, 17);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_info() {
        crate::test_runner::run("always_fails", |_rng| Err("boom".to_string()));
    }
}
