//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Hermetic builds have no crates.io access, so the real criterion is
//! replaced by this vendored subset. It keeps the exact API the bench
//! crates use — [`Criterion`], [`BenchmarkGroup`], [`Bencher`],
//! [`BatchSize`], [`Throughput`], [`criterion_group!`]/[`criterion_main!`]
//! — but measures with a simple fixed-iteration wall-clock loop and
//! prints one `name: <ns>/iter` line per benchmark. No statistics, no
//! warm-up model, no HTML reports; good enough to keep benches compiling
//! and to give coarse relative numbers.

use std::hint::black_box as std_black_box;
use std::time::Instant;

/// Re-export so call sites may use `criterion::black_box` as well as
/// `std::hint::black_box`.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched iterations size their batches (subset).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Run exactly this many iterations per setup invocation.
    NumIterations(u64),
    /// Small per-iteration state; stub treats it as 256 iterations.
    SmallInput,
    /// Large per-iteration state; stub treats it as 16 iterations.
    LargeInput,
}

impl BatchSize {
    fn iterations(self) -> u64 {
        match self {
            BatchSize::NumIterations(n) => n.max(1),
            BatchSize::SmallInput => 256,
            BatchSize::LargeInput => 16,
        }
    }
}

/// Units the measured time is normalized against (printed only).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per benchmark iteration.
    Elements(u64),
    /// Bytes processed per benchmark iteration.
    Bytes(u64),
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed_ns: u128,
}

impl Bencher {
    fn new(iters: u64) -> Self {
        Bencher {
            iters,
            elapsed_ns: 0,
        }
    }

    /// Times `routine` over the configured iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std_black_box(routine());
        }
        self.elapsed_ns += start.elapsed().as_nanos();
    }

    /// Times `routine` against a mutable state built by `setup`, in
    /// batches of `size` iterations per setup invocation.
    pub fn iter_batched_ref<S, O, FS, FR>(
        &mut self,
        mut setup: FS,
        mut routine: FR,
        size: BatchSize,
    ) where
        FS: FnMut() -> S,
        FR: FnMut(&mut S) -> O,
    {
        let batch = size.iterations();
        let mut remaining = self.iters;
        while remaining > 0 {
            let n = remaining.min(batch);
            let mut state = setup();
            let start = Instant::now();
            for _ in 0..n {
                std_black_box(routine(&mut state));
            }
            self.elapsed_ns += start.elapsed().as_nanos();
            remaining -= n;
        }
    }

    /// Like [`Bencher::iter_batched_ref`] but consuming the state by value.
    pub fn iter_batched<S, O, FS, FR>(&mut self, mut setup: FS, mut routine: FR, size: BatchSize)
    where
        FS: FnMut() -> S,
        FR: FnMut(S) -> O,
    {
        let batch = size.iterations();
        let mut remaining = self.iters;
        while remaining > 0 {
            let n = remaining.min(batch);
            for _ in 0..n {
                let state = setup();
                let start = Instant::now();
                std_black_box(routine(state));
                self.elapsed_ns += start.elapsed().as_nanos();
            }
            remaining -= n;
        }
    }
}

fn run_once(
    name: &str,
    samples: u64,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher::new(samples.max(1));
    f(&mut b);
    let per_iter = b.elapsed_ns as f64 / b.iters as f64;
    match throughput {
        Some(Throughput::Elements(n)) if per_iter > 0.0 => {
            let rate = n as f64 / (per_iter / 1e9);
            println!("{name}: {per_iter:.0} ns/iter ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if per_iter > 0.0 => {
            let rate = n as f64 / (per_iter / 1e9);
            println!("{name}: {per_iter:.0} ns/iter ({rate:.0} B/s)");
        }
        _ => println!("{name}: {per_iter:.0} ns/iter"),
    }
}

/// Top-level benchmark registry (stub: runs benches immediately).
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 32 }
    }
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_once(name, self.sample_size, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size,
            throughput: None,
        }
    }
}

/// A named group of benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: u64,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count used for each benchmark in the group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    /// Records the per-iteration workload for rate reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_once(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group (stub: nothing buffered, so a no-op).
    pub fn finish(self) {}
}

/// Declares a benchmark entry point: `criterion_group!(benches, fn_a, fn_b)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups: `criterion_main!(benches)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("stub/add", |b| b.iter(|| black_box(2u64) + 2));
        let mut group = c.benchmark_group("stub/group");
        group.sample_size(10);
        group.throughput(Throughput::Elements(4));
        group.bench_function("batched", |b| {
            b.iter_batched_ref(
                || 0u64,
                |acc| {
                    *acc += 1;
                    *acc
                },
                BatchSize::NumIterations(8),
            )
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_and_bencher_run_to_completion() {
        benches();
    }

    #[test]
    fn batch_sizes_are_positive() {
        assert_eq!(BatchSize::NumIterations(0).iterations(), 1);
        assert_eq!(BatchSize::SmallInput.iterations(), 256);
        assert_eq!(BatchSize::LargeInput.iterations(), 16);
    }
}
