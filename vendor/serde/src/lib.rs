//! Offline stand-in for `serde`.
//!
//! The workspace uses serde only as a *capability marker*: data-model
//! types derive `Serialize`/`Deserialize` so later PRs can externalize
//! reports, and one trait bound (`T: serde::Serialize`) asserts the
//! capability in tests. No serialization is actually performed anywhere
//! yet, so in hermetic (registry-free) builds the real crate is replaced
//! by this stub: marker traits with blanket impls, plus no-op derive
//! macros from the vendored `serde_derive`.
//!
//! When a PR introduces real serialization, this stub is the place to
//! grow an actual data-model implementation (or to swap the vendored
//! sources for the real crates).

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`. Blanket-implemented: every
/// type is "serializable" as far as trait bounds are concerned.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

#[cfg(test)]
mod tests {
    #[test]
    fn blanket_impls_satisfy_bounds() {
        fn takes_serialize<T: crate::Serialize>() {}
        fn takes_deserialize<T: for<'de> crate::Deserialize<'de>>() {}
        takes_serialize::<u32>();
        takes_serialize::<Vec<String>>();
        takes_deserialize::<u32>();
    }

    #[test]
    fn derives_compile_on_structs_and_enums() {
        #[derive(crate::Serialize, crate::Deserialize)]
        struct S {
            _a: u32,
        }
        #[derive(crate::Serialize, crate::Deserialize)]
        #[allow(dead_code)]
        enum E {
            _A,
            _B(u8),
        }
        let _ = S { _a: 1 };
        let _ = E::_B(2);
    }
}
