//! Quickstart: build a small PS-aware SSD stack, write and read through
//! cubeFTL, and look at the monitored NAND parameters that make it fast.
//!
//! Run with: `cargo run --release --example quickstart`

use cubeftl::{FtlConfig, FtlDriver, NandChip, NandConfig, ProgramParams};
use ftl::Ftl;
use nand3d::WlData;
use ssdsim::HostContext;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Level 1: a raw 3D NAND chip -----------------------------------
    // The device model exposes the micro-operation behaviour the paper
    // builds on: program a leader WL, read its monitored ISPP statistics,
    // and reuse them to program a follower WL of the same h-layer faster.
    let mut chip = NandChip::new(NandConfig::small(), 7);
    let block = cubeftl::BlockId(0);
    chip.erase(block)?;

    let leader = chip.geometry().wl_addr(block, 3, 0);
    let leader_report = chip.program_wl(leader, WlData::host(0), &ProgramParams::default())?;
    println!(
        "leader WL  {leader}: tPROG = {:.1} µs (default parameters)",
        leader_report.latency_us
    );

    // Thanks to the horizontal intra-layer similarity, the leader's
    // [L_min, L_max] intervals tell us exactly which verify steps the
    // followers can skip (§4.1.1).
    let mut params = ProgramParams::default();
    for (state, interval) in leader_report.loop_intervals.iter().enumerate() {
        params.n_skip[state] = interval.safe_skip();
    }
    let follower = chip.geometry().wl_addr(block, 3, 1);
    let follower_report = chip.program_wl(follower, WlData::host(3), &params)?;
    println!(
        "follower WL {follower}: tPROG = {:.1} µs ({:.1}% faster, same reliability)",
        follower_report.latency_us,
        100.0 * (1.0 - follower_report.latency_us / leader_report.latency_us)
    );

    // --- Level 2: the full FTL ------------------------------------------
    // cubeFTL packages the same trick (plus V_Start/V_Final shrinking,
    // the mixed program order and the ORT) behind a page-level FTL.
    let mut ftl = Ftl::cube(FtlConfig::small());
    let ctx = HostContext {
        buffer_utilization: 0.95, // a write burst: the WAM picks follower WLs
        now_us: 0.0,
    };
    let mut total_us = 0.0;
    for i in 0..32u64 {
        let w = ftl.write_wl(0, [i * 3, i * 3 + 1, i * 3 + 2], &ctx);
        total_us += w.nand_us;
    }
    println!(
        "\ncubeFTL burst: 32 WLs in {:.1} ms ({} served by follower WLs)",
        total_us / 1000.0,
        ftl.stats().follower_wl_programs
    );

    let read = ftl.read_page(17, &ctx).expect("just written");
    println!(
        "read lpn 17 from chip {}: {:.1} µs, {} retries",
        read.chip, read.nand_us, read.retries
    );
    Ok(())
}
