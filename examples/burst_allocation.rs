//! Demonstrates the WL Allocation Manager's adaptive behaviour (§5.2):
//! calm writes are served by slow leader WLs (banking the fast
//! followers), and bursts are served from the banked follower pool.
//!
//! Run with: `cargo run --release --example burst_allocation`

use cubeftl::{FtlConfig, FtlDriver};
use ftl::Ftl;
use ssdsim::HostContext;

fn phase(ftl: &mut Ftl, label: &str, mu: f64, wls: u64, start_lpn: u64) -> u64 {
    let before = ftl.stats().follower_wl_programs;
    let mut total_us = 0.0;
    for i in 0..wls {
        let lpn = start_lpn + i * 3;
        let ctx = HostContext {
            buffer_utilization: mu,
            now_us: 0.0,
        };
        total_us += ftl
            .write_wl((i % 2) as usize, [lpn, lpn + 1, lpn + 2], &ctx)
            .nand_us;
    }
    let followers = ftl.stats().follower_wl_programs - before;
    println!(
        "{label:<28} μ = {mu:<4}  {wls} WLs in {:>7.2} ms   followers used: {followers:>3}/{wls}",
        total_us / 1000.0
    );
    followers
}

fn main() {
    let cfg = FtlConfig::small();
    let mut ftl = Ftl::cube(cfg);

    println!("cubeFTL's WAM (μ_TH = {}):\n", cfg.mu_threshold);
    // Calm traffic: leaders are spent, followers banked for later.
    let calm = phase(&mut ftl, "calm phase (background)", 0.2, 24, 0);
    // Burst: the banked followers serve it at reduced tPROG.
    let burst = phase(&mut ftl, "burst phase (write spike)", 0.97, 24, 300);
    // Back to calm.
    phase(&mut ftl, "calm again", 0.2, 12, 600);

    println!(
        "\nburst used {}x more follower WLs than the calm phase —",
        if calm == 0 {
            burst
        } else {
            burst / calm.max(1)
        }
    );
    println!("that asymmetry is what keeps the write buffer draining fast under pressure");
    println!("(compare cubeFTL vs cubeFTL- in Fig. 18: `cargo run -p bench --bin fig18`).");
}
