//! Runs the paper's Rocks scenario (RocksDB under YCSB-A, modelled as an
//! LSM-tree block stream) against all four FTLs at the end-of-life aging
//! state, reporting IOPS and latency percentiles.
//!
//! Run with: `cargo run --release --example ycsb_rocksdb`

use cubeftl::harness::{run_eval, EvalConfig};
use cubeftl::{AgingState, FtlKind, StandardWorkload};

fn main() {
    let mut cfg = EvalConfig::reduced();
    cfg.requests = 40_000;
    println!(
        "Rocks (YCSB-A over an LSM model), {} requests, {} blocks/chip, 2K P/E + 1-year retention\n",
        cfg.requests, cfg.blocks_per_chip
    );

    println!(
        "{:<10} {:>9} {:>12} {:>12} {:>12} {:>10}",
        "FTL", "IOPS", "p50 rd (ms)", "p99 rd (ms)", "p90 wr (ms)", "retries"
    );
    let mut page_iops = None;
    for kind in FtlKind::ALL {
        let r = run_eval(kind, StandardWorkload::Rocks, AgingState::EndOfLife, &cfg);
        let base = *page_iops.get_or_insert(r.iops);
        println!(
            "{:<10} {:>9.0} {:>12.3} {:>12.3} {:>12.3} {:>10}  ({:+.0}% IOPS vs pageFTL)",
            r.ftl_name,
            r.iops,
            r.read_latency.percentile(50.0) / 1000.0,
            r.read_latency.percentile(99.0) / 1000.0,
            r.write_latency.percentile(90.0) / 1000.0,
            r.ftl.read_retries,
            (r.iops / base - 1.0) * 100.0,
        );
    }
    println!("\ncubeFTL wins on both ends: follower WLs absorb the LSM's flush/compaction");
    println!("bursts, and the per-h-layer ORT removes most read retries of the aged chips.");
}
