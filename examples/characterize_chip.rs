//! Reproduces the paper's §3 characterization workflow on the simulated
//! chips: measure retention BER per WL and compute the ΔH (intra-layer)
//! and ΔV (inter-layer) variability metrics.
//!
//! Run with: `cargo run --release --example characterize_chip`

use cubeftl::{BlockId, NandChip, NandConfig};
use nand3d::{delta_h, delta_v};

fn main() {
    let chip = NandChip::new(NandConfig::paper(), 2019);
    let g = *chip.geometry();
    let process = chip.process();
    let rel = chip.reliability();

    println!(
        "chip: {} blocks x {} h-layers x {} WLs x {} pages",
        g.blocks_per_chip, g.hlayers_per_block, g.wls_per_hlayer, g.pages_per_wl
    );

    // --- Intra-layer similarity (paper §3.2) ---------------------------
    println!("\nintra-layer similarity at 2K P/E + 1-year retention (block 5):");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10} {:>7}",
        "h-layer", "WL1", "WL2", "WL3", "WL4", "dH"
    );
    let block = BlockId(5);
    let mut worst_dh: f64 = 0.0;
    for h in (0..g.hlayers_per_block).step_by(8) {
        let bers: Vec<f64> = (0..g.wls_per_hlayer)
            .map(|v| rel.ber(process, g.wl_addr(block, h, v), 2000, 12.0))
            .collect();
        let dh = delta_h(&bers);
        worst_dh = worst_dh.max(dh);
        println!(
            "{:<8} {:>10.3e} {:>10.3e} {:>10.3e} {:>10.3e} {:>7.3}",
            h, bers[0], bers[1], bers[2], bers[3], dh
        );
    }
    println!("worst dH observed: {worst_dh:.3} (paper: virtually 1 everywhere)");

    // --- Inter-layer variability (paper §3.3) --------------------------
    println!("\ninter-layer variability (leading WLs of block 5):");
    for (label, pe, months) in [
        ("fresh", 0u32, 0.0f64),
        ("2K P/E + 1 month", 2000, 1.0),
        ("2K P/E + 1 year", 2000, 12.0),
    ] {
        let bers: Vec<f64> = (0..g.hlayers_per_block)
            .map(|h| rel.ber(process, g.wl_addr(block, h, 0), pe, months))
            .collect();
        println!("  {label:<18} dV = {:.2}", delta_v(&bers));
    }

    // --- tPROG per h-layer (paper Fig. 5(d)) ---------------------------
    println!("\ndefault tPROG of the leading WL per h-layer (µs):");
    let engine = chip.ispp();
    let env = chip.env();
    for h in (0..g.hlayers_per_block).step_by(8) {
        let chars = engine.characterize(process, g.wl_addr(block, h, 0), env, 0);
        println!("  h-layer {h:>2}: {:.1}", engine.default_tprog_us(&chars));
    }
}
