//! Crash consistency: L2P checkpoints and the boot-time recovery report.
//!
//! A real SSD cannot keep its FTL state across a sudden power-off (SPO);
//! everything the controller needs must be rebuilt from flash. This
//! module provides the two durable artifacts the rebuild consumes:
//!
//! * a **checkpoint** — a periodic serialization of the L2P map plus the
//!   per-block erase counters into a reserved metadata region (encoded
//!   here as a deterministic little-endian byte blob, see
//!   [`Checkpoint::encode`]), and
//! * the **per-WL OOB records** ([`nand3d::WlOob`]) deposited on every
//!   program, which recovery replays in sequence order for the blocks
//!   programmed after the last checkpoint.
//!
//! What is deliberately *not* persisted: the OPM's monitored loop
//! windows/`BER_EP1` margins and the ORT's ΔV_Ref offsets (§4.1, §4.2).
//! Those are re-derived on first touch per h-layer after boot — programs
//! fall back to conservative full-verify parameters and reads to the
//! full retry search until each h-layer's leader WL is re-monitored —
//! which is exactly the post-boot warm-up curve the `spo` bench plots.

use crate::mapping::Ppn;

/// Magic prefix of the checkpoint blob ("CKP1").
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"CKP1";

/// Sentinel chip index marking an unmapped LPN in the encoded L2P table.
const UNMAPPED_CHIP: u32 = u32::MAX;

/// Nominal program latency charged per metadata page when a checkpoint
/// is flushed to the reserved region (full-verify TLC page program; the
/// metadata region is not parameter-optimized).
pub const CKPT_PAGE_PROGRAM_US: f64 = 703.0;

/// Nominal latency charged per OOB probe/scan read during recovery
/// (spare-area read at default references, no retry search).
pub const OOB_READ_US: f64 = 61.0;

/// A decoded checkpoint: everything the FTL persists about its own state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    /// FTL sequence number at capture time: recovery scans only blocks
    /// whose OOB program sequence exceeds this.
    pub seq: u64,
    /// Full L2P table, index = LPN.
    pub l2p: Vec<Option<Ppn>>,
    /// Per chip, per block erase counters (wear-leveling state).
    pub erase_counts: Vec<Vec<u32>>,
}

/// Why a checkpoint blob failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointError {
    /// Blob is shorter than the fixed header.
    Truncated,
    /// Magic prefix mismatch: not a checkpoint.
    BadMagic,
    /// Header-declared dimensions disagree with the blob length.
    LengthMismatch,
}

impl Checkpoint {
    /// Serializes the checkpoint into its on-flash byte layout:
    ///
    /// ```text
    /// magic "CKP1"                       4 bytes
    /// seq                                u64 LE
    /// logical_pages                      u64 LE
    /// chips                              u32 LE
    /// blocks_per_chip                    u32 LE
    /// l2p[lpn] = (chip u32, page u32)    8 bytes each, chip=u32::MAX ⇒ unmapped
    /// erase_counts[chip][block]          u32 LE each
    /// ```
    pub fn encode(&self) -> Vec<u8> {
        let chips = self.erase_counts.len() as u32;
        let blocks = self.erase_counts.first().map_or(0, Vec::len) as u32;
        let mut out = Vec::with_capacity(
            4 + 8 + 8 + 4 + 4 + self.l2p.len() * 8 + (chips * blocks) as usize * 4,
        );
        out.extend_from_slice(&CHECKPOINT_MAGIC);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&(self.l2p.len() as u64).to_le_bytes());
        out.extend_from_slice(&chips.to_le_bytes());
        out.extend_from_slice(&blocks.to_le_bytes());
        for entry in &self.l2p {
            match entry {
                Some(ppn) => {
                    out.extend_from_slice(&ppn.chip.to_le_bytes());
                    out.extend_from_slice(&ppn.page.to_le_bytes());
                }
                None => {
                    out.extend_from_slice(&UNMAPPED_CHIP.to_le_bytes());
                    out.extend_from_slice(&0u32.to_le_bytes());
                }
            }
        }
        for per_chip in &self.erase_counts {
            for &count in per_chip {
                out.extend_from_slice(&count.to_le_bytes());
            }
        }
        out
    }

    /// Deserializes a blob produced by [`Checkpoint::encode`].
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] for truncated input, a bad magic
    /// prefix, or a length that disagrees with the declared dimensions.
    pub fn decode(bytes: &[u8]) -> Result<Self, CheckpointError> {
        if bytes.len() < 28 {
            return Err(CheckpointError::Truncated);
        }
        if bytes[0..4] != CHECKPOINT_MAGIC {
            return Err(CheckpointError::BadMagic);
        }
        let u64_at = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let u32_at = |at: usize| u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
        let seq = u64_at(4);
        let logical_pages = u64_at(12) as usize;
        let chips = u32_at(20) as usize;
        let blocks = u32_at(24) as usize;
        let expected = 28 + logical_pages * 8 + chips * blocks * 4;
        if bytes.len() != expected {
            return Err(CheckpointError::LengthMismatch);
        }
        let mut l2p = Vec::with_capacity(logical_pages);
        let mut at = 28;
        for _ in 0..logical_pages {
            let chip = u32_at(at);
            let page = u32_at(at + 4);
            l2p.push((chip != UNMAPPED_CHIP).then_some(Ppn { chip, page }));
            at += 8;
        }
        let mut erase_counts = Vec::with_capacity(chips);
        for _ in 0..chips {
            let mut per_chip = Vec::with_capacity(blocks);
            for _ in 0..blocks {
                per_chip.push(u32_at(at));
                at += 4;
            }
            erase_counts.push(per_chip);
        }
        Ok(Checkpoint {
            seq,
            l2p,
            erase_counts,
        })
    }

    /// Number of metadata pages a blob of this checkpoint occupies, given
    /// the page size in bytes (what the periodic flush charges latency
    /// for).
    pub fn pages(&self, page_bytes: usize) -> u64 {
        let len = self.encode_len();
        (len as u64).div_ceil(page_bytes.max(1) as u64)
    }

    fn encode_len(&self) -> usize {
        let chips = self.erase_counts.len();
        let blocks = self.erase_counts.first().map_or(0, Vec::len);
        28 + self.l2p.len() * 8 + chips * blocks * 4
    }
}

/// What boot-time recovery did and what it cost, returned by
/// `Ftl::power_cycle`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RecoveryReport {
    /// Whether a checkpoint blob was found and decoded.
    pub checkpoint_loaded: bool,
    /// Sequence number of the loaded checkpoint (0 if none).
    pub checkpoint_seq: u64,
    /// Checkpoint L2P entries restored as-is.
    pub ckpt_entries_restored: u64,
    /// Checkpoint L2P entries dropped because their block was erased (or
    /// torn) after the checkpoint was taken.
    pub stale_ckpt_entries_dropped: u64,
    /// Blocks whose metadata page was probed (one OOB read each).
    pub blocks_probed: u64,
    /// Blocks fully OOB-scanned because they were programmed since the
    /// checkpoint.
    pub blocks_scanned: u64,
    /// OOB records replayed into the L2P map, in sequence order.
    pub oob_records_replayed: u64,
    /// Torn (partially programmed) WLs quarantined via the §4.1.4 path.
    pub torn_wls_quarantined: u64,
    /// H-layers demoted to conservative parameters because they held a
    /// torn WL.
    pub layers_demoted: u64,
    /// Blocks whose in-flight erase was interrupted and that were
    /// re-erased during recovery.
    pub interrupted_erases_redone: u64,
    /// Buffered host pages re-written from the power-loss-protection
    /// dump during recovery.
    pub plp_pages_replayed: u64,
    /// `(block, h-layer)` keys excluded from cross-block cluster seeding
    /// at boot (torn WLs and re-opened write points); always 0 with the
    /// cluster disabled.
    pub cluster_keys_quarantined: u64,
    /// Total NAND time the recovery consumed (probe + scan reads,
    /// re-erases, PLP re-programs), µs.
    pub nand_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            seq: 0xDEAD_BEEF,
            l2p: vec![
                Some(Ppn { chip: 0, page: 12 }),
                None,
                Some(Ppn { chip: 3, page: 0 }),
            ],
            erase_counts: vec![vec![1, 2, 3], vec![0, 9, 4]],
        }
    }

    #[test]
    fn checkpoint_roundtrip() {
        let ckpt = sample();
        let blob = ckpt.encode();
        assert_eq!(blob.len(), 28 + 3 * 8 + 6 * 4);
        assert_eq!(Checkpoint::decode(&blob), Ok(ckpt));
    }

    #[test]
    fn decode_rejects_corruption() {
        let blob = sample().encode();
        assert_eq!(
            Checkpoint::decode(&blob[..10]),
            Err(CheckpointError::Truncated)
        );
        assert_eq!(
            Checkpoint::decode(&blob[..blob.len() - 1]),
            Err(CheckpointError::LengthMismatch)
        );
        let mut bad = blob;
        bad[0] = b'X';
        assert_eq!(Checkpoint::decode(&bad), Err(CheckpointError::BadMagic));
    }

    #[test]
    fn empty_checkpoint_roundtrip() {
        let ckpt = Checkpoint {
            seq: 0,
            l2p: Vec::new(),
            erase_counts: Vec::new(),
        };
        assert_eq!(Checkpoint::decode(&ckpt.encode()), Ok(ckpt));
    }

    #[test]
    fn page_count_rounds_up() {
        let ckpt = sample();
        assert_eq!(ckpt.pages(16), 5); // 76 bytes / 16 = 4.75 → 5
        assert_eq!(ckpt.pages(76), 1);
        assert_eq!(ckpt.pages(75), 2);
    }
}
