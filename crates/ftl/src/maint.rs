//! Background maintenance services: retention scrubbing, wear leveling
//! and periodic OPM re-monitoring.
//!
//! The paper's monitored parameters are only valid while the leader-WL
//! measurements stay representative — `ΔV` grows from 1.6 fresh to 2.3
//! at 2K P/E + 1-year retention (§3), and §4.1.4 prescribes re-monitoring
//! after anomalies. This module supplies the *time-driven* counterpart to
//! that event-driven safety net: during chip idle windows (offered by the
//! simulator's [`MaintSchedule`](ssdsim::MaintSchedule)) the FTL
//!
//! 1. **scrubs** blocks by retention age — samples BER via a leader-WL
//!    read (refreshing the ORT `ΔV_Ref` entry in place) and migrates the
//!    block's pages to fresh WLs before they drift uncorrectable,
//! 2. **wear-levels** — steers GC victim selection and free-block
//!    allocation toward cold blocks and recycles the coldest closed block
//!    when the erase-count spread exceeds a bound, and
//! 3. **re-monitors** h-layers whose OPM parameters are older than a
//!    P/E-count or retention-time budget, so VFY-skip/`MaxLoop` margins
//!    track aging instead of drifting optimistic.
//!
//! All services are deterministic: cursors walk blocks in address order
//! and every decision derives from simulated state, never wall-clock.

/// Tuning knobs of the background maintenance services.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MaintConfig {
    /// Master switch; [`MaintConfig::off`] disables every service.
    pub enabled: bool,
    /// Retention age (months, temperature-unadjusted) at which a block
    /// qualifies for a scrub refresh regardless of its sampled BER.
    pub scrub_retention_min_months: f64,
    /// Sampled leader-WL BER above which a block is refreshed even
    /// before it reaches the retention-age bar.
    pub scrub_ber_threshold: f64,
    /// Re-monitor an h-layer once the block has seen this many P/E
    /// cycles since its parameters were recorded.
    pub remonitor_pe_budget: u32,
    /// Re-monitor an h-layer once its block's data is older than this
    /// many months.
    pub remonitor_retention_budget_months: f64,
    /// Whether wear-aware GC victim selection, wear-aware free-block
    /// allocation and cold-block recycling are active.
    pub wear_leveling: bool,
    /// Target bound on the hot/cold erase-count spread; the wear-level
    /// service recycles cold blocks while the spread exceeds it.
    pub wear_spread_limit: u32,
    /// Most valid pages a single maintenance dispatch migrates. A block
    /// refresh larger than this spreads over several idle windows, so a
    /// host request never queues behind a whole-block migration.
    pub scrub_batch_pages: u32,
}

impl MaintConfig {
    /// Maintenance disabled (the seed behaviour).
    pub fn off() -> Self {
        MaintConfig {
            enabled: false,
            scrub_retention_min_months: f64::INFINITY,
            scrub_ber_threshold: f64::INFINITY,
            remonitor_pe_budget: u32::MAX,
            remonitor_retention_budget_months: f64::INFINITY,
            wear_leveling: false,
            wear_spread_limit: u32::MAX,
            scrub_batch_pages: u32::MAX,
        }
    }

    /// All three services on, with defaults sized for the paper's aging
    /// states: a 6-month scrub bar (EndOfLife data at 12 months
    /// qualifies, MidLife at 1 month does not), a BER escape hatch one
    /// decade under typical ECC limits, and re-monitoring budgets of
    /// 50 P/E cycles or 6 months.
    pub fn default_on() -> Self {
        MaintConfig {
            enabled: true,
            scrub_retention_min_months: 6.0,
            scrub_ber_threshold: 1e-3,
            remonitor_pe_budget: 50,
            remonitor_retention_budget_months: 6.0,
            wear_leveling: true,
            wear_spread_limit: 8,
            scrub_batch_pages: 12,
        }
    }
}

impl Default for MaintConfig {
    fn default() -> Self {
        MaintConfig::off()
    }
}

/// Per-chip progress of the maintenance services (owned by
/// [`Ftl`](crate::Ftl) when maintenance is enabled).
#[derive(Debug, Clone)]
pub(crate) struct MaintState {
    pub(crate) config: MaintConfig,
    /// Next block each chip's scrubber examines.
    pub(crate) scrub_cursor: Vec<u32>,
    /// Whether the block under `scrub_cursor` is mid-refresh (a bounded
    /// migration batch ran out before the block was clean); the next
    /// scrub window resumes it without re-sampling its BER.
    pub(crate) scrub_resume: Vec<bool>,
    /// Next block each chip's OPM re-monitor examines.
    pub(crate) remonitor_cursor: Vec<u32>,
    /// Round-robin position over the three services per chip, so one
    /// hungry service cannot starve the others of idle windows.
    pub(crate) next_service: Vec<u8>,
}

impl MaintState {
    pub(crate) fn new(config: MaintConfig, chips: usize) -> Self {
        MaintState {
            config,
            scrub_cursor: vec![0; chips],
            scrub_resume: vec![false; chips],
            remonitor_cursor: vec![0; chips],
            next_service: vec![0; chips],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_config_disables_everything() {
        let c = MaintConfig::off();
        assert!(!c.enabled);
        assert!(!c.wear_leveling);
        assert_eq!(MaintConfig::default(), c);
    }

    #[test]
    fn default_on_orders_thresholds_sanely() {
        let c = MaintConfig::default_on();
        assert!(c.enabled && c.wear_leveling);
        // MidLife (1 month) must not qualify for scrubbing; EndOfLife
        // (12 months) must.
        assert!(c.scrub_retention_min_months > 1.0);
        assert!(c.scrub_retention_min_months < 12.0);
        assert!(c.scrub_ber_threshold.is_finite());
        assert!(c.wear_spread_limit >= 1);
    }
}
