//! Latency prediction from process similarity (extension).
//!
//! The paper's conclusion (§8) observes that "the horizontal similarity
//! guarantees accurate I/O response times, \[so\] it can be used to build
//! SSDs with a highly deterministic latency as a solution to the
//! long-tail problem". This module implements that idea on top of the
//! OPM: once an h-layer's leader has been monitored, the tPROG of each
//! of its follower WLs and the tREAD of its pages are *predictable
//! before issuing the command* — the FTL can use the forecast for
//! deadline-aware scheduling.
//!
//! [`LatencyPredictor`] reconstructs the device's latency equation from
//! monitored values only (never from ground truth), so its accuracy is
//! a direct measurement of how exploitable the process similarity is.

use crate::cube::opm::Opm;
use nand3d::{IsppEngine, NandTiming, ProgramReport, WlAddr, NUM_PROGRAM_STATES};
use serde::{Deserialize, Serialize};

/// A latency forecast with the information it was built from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Forecast {
    /// Predicted latency, µs.
    pub latency_us: f64,
    /// Whether the forecast is backed by leader monitoring (`false`
    /// means a default-parameter fallback estimate).
    pub monitored: bool,
}

/// Predicts per-operation NAND latencies from OPM state.
#[derive(Debug, Clone)]
pub struct LatencyPredictor {
    timing: NandTiming,
    delta_v_ispp_mv: f64,
}

impl LatencyPredictor {
    /// A predictor sharing the device's timing parameters (these are
    /// data-sheet constants, not monitored state).
    pub fn new(engine: &IsppEngine) -> Self {
        LatencyPredictor {
            timing: engine_timing(engine),
            delta_v_ispp_mv: engine.ispp_model().delta_v_ispp_mv,
        }
    }

    /// Predicts the tPROG of programming `wl` as a follower of its
    /// h-layer, from the leader's monitored report stored in `opm`.
    ///
    /// Mirrors the device's Eq. (1) accounting: pulses = the leader's
    /// observed final loop minus the loops the window adjustment removes;
    /// verifies = the per-state completion widths (everything before
    /// `L_min` is skipped).
    pub fn follower_tprog(&self, opm: &Opm, chip: usize, wl: WlAddr) -> Forecast {
        let Some(params) = opm.follower_params(chip, wl) else {
            return Forecast {
                latency_us: self.default_tprog_estimate(),
                monitored: false,
            };
        };
        let leader = params.leader_intervals;
        let r_start = (params.v_start_up_mv / self.delta_v_ispp_mv).floor() as u8;
        let r_final = (params.v_final_down_mv / self.delta_v_ispp_mv).floor() as u8;

        // Mirror the device's window accounting (data-sheet behaviour):
        // raising V_Start shifts every completion loop down; lowering
        // V_Final compresses the top states into the reduced window.
        let mut lmax = [0u8; NUM_PROGRAM_STATES];
        for (l, iv) in lmax.iter_mut().zip(leader) {
            *l = iv.lmax.saturating_sub(r_start).max(1);
        }
        let window = leader[NUM_PROGRAM_STATES - 1]
            .lmax
            .saturating_sub(r_start)
            .saturating_sub(r_final)
            .max(1);
        for s in (0..NUM_PROGRAM_STATES).rev() {
            let cap = window
                .saturating_sub((NUM_PROGRAM_STATES - 1 - s) as u8)
                .max(1);
            if lmax[s] > cap {
                lmax[s] = cap;
            }
        }

        let pulses = u32::from(window);
        let mut verifies = 0u32;
        for (l, n_skip) in lmax.iter().zip(params.n_skip) {
            let skip = u32::from(n_skip).saturating_sub(u32::from(r_start));
            verifies += u32::from(*l).saturating_sub(skip).max(1);
        }
        Forecast {
            latency_us: f64::from(pulses) * self.timing.t_pgm_us
                + f64::from(verifies) * self.timing.t_vfy_us
                + self.timing.t_set_features_us,
            monitored: true,
        }
    }

    /// Predicts the tREAD of a page on `wl`'s h-layer. With a warm ORT
    /// entry the read decodes at its first attempt, so the forecast is
    /// the base read latency; the prediction interval is one retry wide
    /// (the residual ambient drift of §4.2).
    pub fn read_tread(&self, opm: &Opm, chip: usize, wl: WlAddr) -> Forecast {
        // The ORT stores the last working offset; reads starting there
        // are first-try under process similarity. Peek so a forecast
        // neither perturbs LRU recency nor counts as a lookup.
        let _ = opm.peek_offset(chip, wl);
        Forecast {
            latency_us: self.timing.t_read_us,
            monitored: true,
        }
    }

    /// The conservative estimate for unmonitored WLs (default-parameter
    /// program of a nominal WL).
    pub fn default_tprog_estimate(&self) -> f64 {
        // MaxLoop pulses, every state verified until its completion —
        // the data-sheet "typical" value.
        11.0 * self.timing.t_pgm_us + 50.0 * self.timing.t_vfy_us
    }

    /// Prediction error of a forecast against a measured report.
    pub fn error_fraction(forecast: &Forecast, report: &ProgramReport) -> f64 {
        (forecast.latency_us - report.latency_us).abs() / report.latency_us
    }
}

fn engine_timing(engine: &IsppEngine) -> NandTiming {
    // The engine does not expose timing directly; reconstruct from the
    // calibrated model it was built from.
    let _ = engine;
    NandTiming::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::opm::Opm;
    use nand3d::{BlockId, NandChip, NandConfig, ProgramParams, WlData};

    fn setup() -> (NandChip, Opm, LatencyPredictor) {
        let config = NandConfig::small();
        let chip = NandChip::new(config, 11);
        let opm = Opm::new(&config.geometry, 1);
        let predictor = LatencyPredictor::new(chip.ispp());
        (chip, opm, predictor)
    }

    #[test]
    fn follower_tprog_is_predicted_exactly_without_disturbance() {
        // §8: the horizontal similarity guarantees accurate response
        // times. With stable conditions the forecast must be *exact*.
        let (mut chip, mut opm, predictor) = setup();
        let g = *chip.geometry();
        for b in 0..4u32 {
            chip.erase(BlockId(b)).unwrap();
            for h in 0..g.hlayers_per_block {
                let leader = g.wl_addr(BlockId(b), h, 0);
                let report = chip
                    .program_wl(leader, WlData::host(0), &ProgramParams::default())
                    .unwrap();
                opm.record_leader(0, leader, &report, chip.ispp());

                let follower = g.wl_addr(BlockId(b), h, 1);
                let forecast = predictor.follower_tprog(&opm, 0, follower);
                assert!(forecast.monitored);
                let params = opm
                    .follower_params(0, follower)
                    .unwrap()
                    .to_program_params();
                let actual = chip.program_wl(follower, WlData::host(3), &params).unwrap();
                let err = LatencyPredictor::error_fraction(&forecast, &actual);
                assert!(
                    err < 0.01,
                    "b{b} h{h}: forecast {:.1} vs actual {:.1} ({err:.3})",
                    forecast.latency_us,
                    actual.latency_us
                );
            }
        }
    }

    #[test]
    fn unmonitored_layers_fall_back_to_default_estimate() {
        let (chip, opm, predictor) = setup();
        let g = *chip.geometry();
        let f = predictor.follower_tprog(&opm, 0, g.wl_addr(BlockId(0), 0, 1));
        assert!(!f.monitored);
        assert!((f.latency_us - 703.0).abs() < 1.0);
    }

    #[test]
    fn read_forecast_is_base_latency_with_warm_ort() {
        let (chip, opm, predictor) = setup();
        let g = *chip.geometry();
        let f = predictor.read_tread(&opm, 0, g.wl_addr(BlockId(0), 2, 1));
        assert!((f.latency_us - 80.0).abs() < 1e-9);
    }

    #[test]
    fn disturbance_is_the_only_source_of_misprediction() {
        // Under ambient disturbances the §4.1.4 safety check fires; the
        // prediction error across many WLs must stay bounded by the
        // (rare) disturbed programs.
        let (mut chip, mut opm, predictor) = setup();
        chip.env_mut().set_disturbance_prob(0.05);
        let g = *chip.geometry();
        let mut errors = Vec::new();
        for b in 0..6u32 {
            chip.erase(BlockId(b)).unwrap();
            for h in 0..g.hlayers_per_block {
                let leader = g.wl_addr(BlockId(b), h, 0);
                let report = chip
                    .program_wl(leader, WlData::host(0), &ProgramParams::default())
                    .unwrap();
                opm.record_leader(0, leader, &report, chip.ispp());
                let follower = g.wl_addr(BlockId(b), h, 1);
                let forecast = predictor.follower_tprog(&opm, 0, follower);
                let params = opm
                    .follower_params(0, follower)
                    .unwrap()
                    .to_program_params();
                let actual = chip.program_wl(follower, WlData::host(3), &params).unwrap();
                errors.push(LatencyPredictor::error_fraction(&forecast, &actual));
            }
        }
        let exact = errors.iter().filter(|e| **e < 0.01).count();
        assert!(
            exact as f64 / errors.len() as f64 > 0.80,
            "only {exact}/{} forecasts exact",
            errors.len()
        );
    }
}
