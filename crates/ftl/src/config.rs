//! FTL configuration.

use nand3d::{NandConfig, RetryOptConfig};

/// Cross-block offset cluster configuration (§4.2.2): when enabled, an
/// ORT miss is answered from the per-chip, per-h-layer average of
/// recently decoded `ΔV_Ref` offsets instead of the cold default 0.
/// Off by default — the conservative setting preserves every pre-cluster
/// golden bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OrtClusterConfig {
    /// Master switch (`--ort-cluster on|off`).
    pub enabled: bool,
    /// Decode samples an h-layer must accumulate before its cluster
    /// average seeds cold blocks. Low thresholds warm up faster; higher
    /// ones resist early-outlier skew.
    pub min_samples: u32,
}

impl OrtClusterConfig {
    /// The enabled configuration with the default warm-up threshold.
    pub fn on() -> Self {
        OrtClusterConfig {
            enabled: true,
            min_samples: 2,
        }
    }
}

impl Default for OrtClusterConfig {
    fn default() -> Self {
        OrtClusterConfig {
            enabled: false,
            min_samples: 2,
        }
    }
}

/// Configuration shared by every FTL variant.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FtlConfig {
    /// NAND chip configuration.
    pub nand: NandConfig,
    /// Number of chips the FTL manages.
    pub chips: usize,
    /// Fraction of physical capacity reserved as over-provisioning
    /// (not addressable by the host).
    pub overprovision: f64,
    /// Garbage collection starts when a chip's free-block count drops to
    /// this threshold.
    pub gc_free_block_threshold: usize,
    /// Write-buffer utilization threshold `μ_TH` above which cubeFTL's
    /// WAM prefers follower WLs (§5.2; the paper suggests 0.9).
    pub mu_threshold: f64,
    /// Active blocks per chip for the WAM (§5.2: the paper uses two).
    pub active_blocks_per_chip: usize,
    /// Per-chip capacity of the optimal read-reference table, in h-layer
    /// entries; LRU eviction beyond that. `usize::MAX` models the
    /// paper's full in-DRAM table (§5.1).
    pub ort_capacity: usize,
    /// Cross-block offset cluster (§4.2.2 closure); off by default.
    pub ort_cluster: OrtClusterConfig,
    /// Park-et-al-style retry-chain optimizations (speculative stepping,
    /// cold-read offset prediction, early termination); off by default.
    pub retry_opt: RetryOptConfig,
    /// Seed for per-chip process variation.
    pub seed: u64,
}

impl FtlConfig {
    /// The paper's evaluation configuration: 8 chips of the §6.1
    /// geometry, ~12.5% over-provisioning.
    pub fn paper() -> Self {
        FtlConfig {
            nand: NandConfig::paper(),
            chips: 8,
            overprovision: 0.125,
            gc_free_block_threshold: 4,
            mu_threshold: 0.9,
            active_blocks_per_chip: 2,
            ort_capacity: usize::MAX,
            ort_cluster: OrtClusterConfig::default(),
            retry_opt: RetryOptConfig::default(),
            seed: 42,
        }
    }

    /// A small configuration for tests and examples (2 chips of the
    /// small geometry).
    pub fn small() -> Self {
        FtlConfig {
            nand: NandConfig::small(),
            chips: 2,
            overprovision: 0.25,
            gc_free_block_threshold: 2,
            mu_threshold: 0.9,
            active_blocks_per_chip: 2,
            ort_capacity: usize::MAX,
            ort_cluster: OrtClusterConfig::default(),
            retry_opt: RetryOptConfig::default(),
            seed: 42,
        }
    }

    /// Host-visible logical pages across all chips.
    pub fn logical_pages(&self) -> u64 {
        let physical = self.nand.geometry.pages_per_chip() * self.chips as u64;
        (physical as f64 * (1.0 - self.overprovision)).floor() as u64
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if the configuration cannot support an FTL (no chips, no
    /// over-provisioning headroom, or a GC threshold the geometry cannot
    /// satisfy).
    pub fn validate(&self) {
        assert!(self.chips > 0, "need at least one chip");
        assert!(
            (0.01..0.9).contains(&self.overprovision),
            "over-provisioning must be in (0.01, 0.9)"
        );
        assert!(
            (0.0..=1.0).contains(&self.mu_threshold),
            "μ_TH must be a fraction"
        );
        assert!(
            (self.gc_free_block_threshold as u32) < self.nand.geometry.blocks_per_chip / 2,
            "GC threshold leaves no usable blocks"
        );
        assert!(
            self.active_blocks_per_chip >= 1
                && self.active_blocks_per_chip <= self.gc_free_block_threshold.max(1),
            "active blocks must leave GC headroom"
        );
        assert!(self.ort_capacity >= 1, "ORT needs at least one entry");
    }
}

impl Default for FtlConfig {
    fn default() -> Self {
        FtlConfig::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_validates() {
        FtlConfig::paper().validate();
        FtlConfig::small().validate();
    }

    #[test]
    fn logical_pages_respect_overprovisioning() {
        let cfg = FtlConfig::paper();
        let physical = cfg.nand.geometry.pages_per_chip() * cfg.chips as u64;
        assert!(cfg.logical_pages() < physical);
        assert!(cfg.logical_pages() > physical / 2);
    }

    #[test]
    #[should_panic(expected = "at least one chip")]
    fn zero_chips_rejected() {
        FtlConfig {
            chips: 0,
            ..FtlConfig::small()
        }
        .validate();
    }
}
