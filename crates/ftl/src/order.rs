//! Program orders for a 3D NAND block (paper §4.1.3, Fig. 12).
//!
//! 3D NAND separates WLs on the same h-layer with select-line transistors,
//! so unlike 2D NAND a block's WLs can be programmed in any of several
//! orders without cell-to-cell interference (Fig. 13 confirms the three
//! orders are reliability-equivalent):
//!
//! * **horizontal-first** — the conventional order: finish each h-layer
//!   before moving down. After each leader, only 3 follower WLs are
//!   available.
//! * **vertical-first** — walk each v-layer top to bottom.
//! * **mixed order (MOS)** — program all leaders (v-layer 0) first, then
//!   the followers; every WL outside the first v-layer becomes a fast
//!   follower, maximizing the pool the WAM can serve bursts from.

use nand3d::{BlockId, Geometry, WlAddr};
use serde::{Deserialize, Serialize};

/// The order in which a block's WLs are programmed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProgramOrder {
    /// Conventional: h-layer by h-layer (Fig. 12(a)).
    HorizontalFirst,
    /// V-layer by v-layer (Fig. 12(b)).
    VerticalFirst,
    /// Mixed order scheme: all leaders first, then followers
    /// (Fig. 12(c)).
    Mixed,
}

impl ProgramOrder {
    /// All three orders, in the paper's presentation order.
    pub const ALL: [ProgramOrder; 3] = [
        ProgramOrder::HorizontalFirst,
        ProgramOrder::VerticalFirst,
        ProgramOrder::Mixed,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ProgramOrder::HorizontalFirst => "horizontal-first",
            ProgramOrder::VerticalFirst => "vertical-first",
            ProgramOrder::Mixed => "mixed (MOS)",
        }
    }

    /// The `i`-th WL of `block` under this order
    /// (`i < geometry.wls_per_block()`).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn wl_at(self, geometry: &Geometry, block: BlockId, i: u32) -> WlAddr {
        assert!(i < geometry.wls_per_block(), "WL index {i} out of range");
        let hs = u32::from(geometry.hlayers_per_block);
        let vs = u32::from(geometry.wls_per_hlayer);
        let (h, v) = match self {
            ProgramOrder::HorizontalFirst => (i / vs, i % vs),
            ProgramOrder::VerticalFirst => (i % hs, i / hs),
            ProgramOrder::Mixed => {
                if i < hs {
                    // All leaders first (v = 0, descending h-layers).
                    (i, 0)
                } else {
                    // Then followers, h-layer major.
                    let j = i - hs;
                    (j / (vs - 1), 1 + j % (vs - 1))
                }
            }
        };
        geometry.wl_addr(block, h as u16, v as u16)
    }

    /// Iterates over the whole block in this order.
    pub fn sequence<'g>(
        self,
        geometry: &'g Geometry,
        block: BlockId,
    ) -> impl Iterator<Item = WlAddr> + 'g {
        (0..geometry.wls_per_block()).map(move |i| self.wl_at(geometry, block, i))
    }

    /// Number of follower WLs immediately available after the first `i`
    /// WLs have been programmed (i.e. WLs whose h-layer leader is already
    /// programmed).
    pub fn available_followers(self, geometry: &Geometry, programmed: u32) -> u32 {
        let mut leaders_done = vec![false; geometry.hlayers_per_block as usize];
        let mut available = 0u32;
        let mut used_followers = 0u32;
        for i in 0..programmed.min(geometry.wls_per_block()) {
            let wl = self.wl_at(geometry, BlockId(0), i);
            if wl.is_leader() {
                leaders_done[wl.h.0 as usize] = true;
            } else {
                used_followers += 1;
            }
        }
        for (h, done) in leaders_done.iter().enumerate() {
            if *done {
                let _ = h;
                available += u32::from(geometry.wls_per_hlayer) - 1;
            }
        }
        available - used_followers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn geometry() -> Geometry {
        Geometry::small() // 8 h-layers × 4 WLs
    }

    #[test]
    fn every_order_is_a_permutation() {
        let g = geometry();
        for order in ProgramOrder::ALL {
            let seq: Vec<WlAddr> = order.sequence(&g, BlockId(0)).collect();
            assert_eq!(seq.len(), g.wls_per_block() as usize);
            let distinct: HashSet<_> = seq.iter().collect();
            assert_eq!(distinct.len(), seq.len(), "{order:?} repeats WLs");
        }
    }

    #[test]
    fn horizontal_first_walks_layers() {
        let g = geometry();
        let seq: Vec<WlAddr> = ProgramOrder::HorizontalFirst
            .sequence(&g, BlockId(0))
            .take(5)
            .collect();
        assert_eq!((seq[0].h.0, seq[0].v.0), (0, 0));
        assert_eq!((seq[3].h.0, seq[3].v.0), (0, 3));
        assert_eq!((seq[4].h.0, seq[4].v.0), (1, 0));
    }

    #[test]
    fn vertical_first_walks_vlayers() {
        let g = geometry();
        let seq: Vec<WlAddr> = ProgramOrder::VerticalFirst
            .sequence(&g, BlockId(0))
            .collect();
        assert_eq!((seq[0].h.0, seq[0].v.0), (0, 0));
        assert_eq!((seq[7].h.0, seq[7].v.0), (7, 0));
        assert_eq!((seq[8].h.0, seq[8].v.0), (0, 1));
    }

    #[test]
    fn mixed_programs_all_leaders_first() {
        let g = geometry();
        let seq: Vec<WlAddr> = ProgramOrder::Mixed.sequence(&g, BlockId(0)).collect();
        let hs = g.hlayers_per_block as usize;
        assert!(seq[..hs].iter().all(|wl| wl.is_leader()));
        assert!(seq[hs..].iter().all(|wl| !wl.is_leader()));
    }

    #[test]
    fn mixed_maximizes_follower_pool() {
        // §4.1.3: under MOS, once the leaders are programmed every
        // remaining WL is a fast follower; under horizontal-first only 3
        // per completed h-layer.
        let g = geometry();
        let after_leaders = g.hlayers_per_block as u32;
        let mixed = ProgramOrder::Mixed.available_followers(&g, after_leaders);
        let horizontal = ProgramOrder::HorizontalFirst.available_followers(&g, after_leaders);
        assert_eq!(
            mixed,
            (u32::from(g.wls_per_hlayer) - 1) * u32::from(g.hlayers_per_block)
        );
        assert!(mixed > horizontal);
    }

    #[test]
    fn followers_only_after_their_leader() {
        // In every order, a follower WL must come after the leader of its
        // h-layer (the OPM needs the leader's monitored parameters).
        let g = geometry();
        for order in ProgramOrder::ALL {
            let mut leader_seen = vec![false; g.hlayers_per_block as usize];
            for wl in order.sequence(&g, BlockId(0)) {
                if wl.is_leader() {
                    leader_seen[wl.h.0 as usize] = true;
                } else {
                    assert!(
                        leader_seen[wl.h.0 as usize],
                        "{order:?}: follower {wl} before its leader"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_rejected() {
        let g = geometry();
        ProgramOrder::Mixed.wl_at(&g, BlockId(0), g.wls_per_block());
    }
}
