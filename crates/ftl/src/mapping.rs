//! Page-level address translation (L2P/P2L) and per-block validity
//! accounting.

use nand3d::Geometry;
use serde::{Deserialize, Serialize};

/// A physical page number: chip index plus the page's flat index within
/// the chip (see [`Geometry::page_flat`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Ppn {
    /// Chip holding the page.
    pub chip: u32,
    /// Flat per-chip page index.
    pub page: u32,
}

const UNMAPPED: u64 = u64::MAX;

/// Bidirectional page mapping with per-block valid-page counts.
///
/// The L2P direction serves host reads; the P2L direction and the valid
/// counts serve garbage collection (victim selection and migration).
#[derive(Debug, Clone)]
pub struct Mapping {
    geometry: Geometry,
    chips: usize,
    /// Logical page → physical page.
    l2p: Vec<Option<Ppn>>,
    /// Per chip: flat physical page → logical page (or `UNMAPPED`).
    p2l: Vec<Vec<u64>>,
    /// Per chip, per block: number of valid (mapped) pages.
    valid: Vec<Vec<u32>>,
}

impl Mapping {
    /// A mapping for `logical_pages` host pages over `chips` chips of
    /// `geometry`.
    pub fn new(geometry: Geometry, chips: usize, logical_pages: u64) -> Self {
        let pages_per_chip = geometry.pages_per_chip() as usize;
        Mapping {
            geometry,
            chips,
            l2p: vec![None; logical_pages as usize],
            p2l: vec![vec![UNMAPPED; pages_per_chip]; chips],
            valid: vec![vec![0; geometry.blocks_per_chip as usize]; chips],
        }
    }

    /// Number of host-visible logical pages.
    pub fn logical_pages(&self) -> u64 {
        self.l2p.len() as u64
    }

    /// Current physical location of `lpn`, or `None` if never written or
    /// trimmed.
    #[inline]
    pub fn lookup(&self, lpn: u64) -> Option<Ppn> {
        self.l2p.get(lpn as usize).copied().flatten()
    }

    /// The logical page stored at `ppn`, or `None` if the physical page
    /// is free or stale.
    #[inline]
    pub fn reverse(&self, ppn: Ppn) -> Option<u64> {
        let l = self.p2l[ppn.chip as usize][ppn.page as usize];
        (l != UNMAPPED).then_some(l)
    }

    /// Valid pages in `block` of `chip`.
    #[inline]
    pub fn valid_in_block(&self, chip: usize, block: u32) -> u32 {
        self.valid[chip][block as usize]
    }

    fn block_of_page(&self, page_flat: u32) -> u32 {
        page_flat / self.geometry.pages_per_block()
    }

    /// Maps `lpn` to `ppn`, invalidating any previous location. Returns
    /// the previous location.
    ///
    /// # Panics
    ///
    /// Panics if `lpn` is out of range or `ppn` already holds live data.
    pub fn map(&mut self, lpn: u64, ppn: Ppn) -> Option<Ppn> {
        assert!((lpn as usize) < self.l2p.len(), "lpn {lpn} out of range");
        assert!(
            self.p2l[ppn.chip as usize][ppn.page as usize] == UNMAPPED,
            "physical page already mapped"
        );
        let old = self.unmap(lpn);
        self.l2p[lpn as usize] = Some(ppn);
        self.p2l[ppn.chip as usize][ppn.page as usize] = lpn;
        let b = self.block_of_page(ppn.page) as usize;
        self.valid[ppn.chip as usize][b] += 1;
        old
    }

    /// Unmaps `lpn` (TRIM or overwrite), returning its old location.
    pub fn unmap(&mut self, lpn: u64) -> Option<Ppn> {
        let old = self.l2p.get_mut(lpn as usize)?.take()?;
        self.p2l[old.chip as usize][old.page as usize] = UNMAPPED;
        let b = self.block_of_page(old.page) as usize;
        self.valid[old.chip as usize][b] -= 1;
        Some(old)
    }

    /// Iterates over the logical pages still valid in `block` of `chip`
    /// together with their physical flat indices.
    pub fn valid_pages_of_block(
        &self,
        chip: usize,
        block: u32,
    ) -> impl Iterator<Item = (u64, u32)> + '_ {
        let per_block = self.geometry.pages_per_block();
        let first = block * per_block;
        (first..first + per_block).filter_map(move |p| {
            let l = self.p2l[chip][p as usize];
            (l != UNMAPPED).then_some((l, p))
        })
    }

    /// Asserts that a freshly erased block has no valid pages and clears
    /// its reverse mappings.
    ///
    /// # Panics
    ///
    /// Panics if the block still holds valid pages.
    pub fn assert_block_clean(&mut self, chip: usize, block: u32) {
        assert_eq!(
            self.valid[chip][block as usize], 0,
            "erasing block with valid pages"
        );
        let per_block = self.geometry.pages_per_block();
        let first = (block * per_block) as usize;
        for p in first..first + per_block as usize {
            self.p2l[chip][p] = UNMAPPED;
        }
    }

    /// A snapshot of the full L2P table (index = LPN), the payload a
    /// periodic checkpoint serializes.
    pub fn l2p_snapshot(&self) -> Vec<Option<Ppn>> {
        self.l2p.clone()
    }

    /// Total valid pages across all chips (live data).
    pub fn total_valid(&self) -> u64 {
        self.valid
            .iter()
            .flat_map(|v| v.iter())
            .map(|&c| u64::from(c))
            .sum()
    }

    /// Number of chips.
    pub fn chips(&self) -> usize {
        self.chips
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapping() -> Mapping {
        Mapping::new(Geometry::small(), 2, 100)
    }

    #[test]
    fn map_lookup_roundtrip() {
        let mut m = mapping();
        let ppn = Ppn { chip: 1, page: 17 };
        assert_eq!(m.map(5, ppn), None);
        assert_eq!(m.lookup(5), Some(ppn));
        assert_eq!(m.reverse(ppn), Some(5));
        assert_eq!(m.valid_in_block(1, 0), 1);
    }

    #[test]
    fn remap_invalidates_old_location() {
        let mut m = mapping();
        let a = Ppn { chip: 0, page: 3 };
        let b = Ppn { chip: 0, page: 99 };
        m.map(7, a);
        assert_eq!(m.map(7, b), Some(a));
        assert_eq!(m.lookup(7), Some(b));
        assert_eq!(m.reverse(a), None);
        // page 3 is in block 0, page 99 is in block 99/96=1
        assert_eq!(m.valid_in_block(0, 0), 0);
        assert_eq!(m.valid_in_block(0, 1), 1);
    }

    #[test]
    fn unmap_clears_both_directions() {
        let mut m = mapping();
        let ppn = Ppn { chip: 0, page: 42 };
        m.map(1, ppn);
        assert_eq!(m.unmap(1), Some(ppn));
        assert_eq!(m.lookup(1), None);
        assert_eq!(m.reverse(ppn), None);
        assert_eq!(m.unmap(1), None);
        assert_eq!(m.total_valid(), 0);
    }

    #[test]
    fn valid_pages_of_block_enumerates() {
        let mut m = mapping();
        m.map(1, Ppn { chip: 0, page: 0 });
        m.map(2, Ppn { chip: 0, page: 5 });
        m.map(3, Ppn { chip: 0, page: 96 }); // next block
        let pages: Vec<_> = m.valid_pages_of_block(0, 0).collect();
        assert_eq!(pages, vec![(1, 0), (2, 5)]);
    }

    #[test]
    #[should_panic(expected = "already mapped")]
    fn double_map_same_ppn_rejected() {
        let mut m = mapping();
        m.map(1, Ppn { chip: 0, page: 9 });
        m.map(2, Ppn { chip: 0, page: 9 });
    }

    #[test]
    #[should_panic(expected = "valid pages")]
    fn erase_with_valid_pages_rejected() {
        let mut m = mapping();
        m.map(1, Ppn { chip: 0, page: 0 });
        m.assert_block_clean(0, 0);
    }

    #[test]
    fn clean_block_can_be_reused() {
        let mut m = mapping();
        let ppn = Ppn { chip: 0, page: 0 };
        m.map(1, ppn);
        m.unmap(1);
        m.assert_block_clean(0, 0);
        m.map(2, ppn);
        assert_eq!(m.lookup(2), Some(ppn));
    }
}
