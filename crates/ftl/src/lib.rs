//! # ftl — flash translation layers for 3D NAND SSDs
//!
//! The core contribution of the reproduced paper (*"Exploiting Process
//! Similarity of 3D Flash Memory for High Performance SSDs"*, MICRO
//! 2019): a page-level FTL family sharing mapping, allocation and garbage
//! collection, differing in how much they know about the 3D NAND process:
//!
//! * [`Ftl::page`] — **pageFTL**: the PS-unaware baseline. Default NAND
//!   parameters, horizontal-first program order, default read references.
//! * [`Ftl::vert`] — **vertFTL** (after Hung et al. \[13\]): an offline,
//!   conservative per-layer `V_Final`-only reduction (~8% tPROG).
//! * [`Ftl::cube`] — **cubeFTL**: the PS-aware FTL of §5. Its Optimal
//!   Parameter Manager ([`Opm`]) monitors every leader-WL program and
//!   reuses `[L_min, L_max]` and `BER_EP1` for follower WLs of the same
//!   h-layer (VFY skipping + window shrinking, §4.1), maintains the
//!   optimal read-reference table (ORT, §4.2), and runs the §4.1.4
//!   safety check. Its WL Allocation Manager ([`Wam`]) serves bursty
//!   writes from fast follower WLs using the mixed-order scheme (§5.2).
//! * [`Ftl::cube_minus`] — **cubeFTL-**: cubeFTL with the WAM disabled
//!   (horizontal-first allocation), the ablation of §6.3.
//!
//! All four implement [`ssdsim::FtlDriver`] and run unmodified under the
//! `ssdsim` engine.
//!
//! # Example
//!
//! ```
//! use ftl::{Ftl, FtlConfig};
//! use ssdsim::{FtlDriver, HostContext};
//!
//! let mut ftl = Ftl::cube(FtlConfig::small());
//! let ctx = HostContext { buffer_utilization: 0.0, now_us: 0.0 };
//! let w = ftl.write_wl(0, [0, 1, 2], &ctx);
//! assert!(w.nand_us > 0.0);
//! let r = ftl.read_page(1, &ctx).expect("page was written");
//! assert_eq!(r.chip, 0);
//! ```

pub mod base;
pub mod config;
pub mod cube;
pub mod gc;
pub mod maint;
pub mod mapping;
pub mod order;
pub mod predictor;
pub mod recovery;

pub use base::{Ftl, FtlKind};
pub use config::{FtlConfig, OrtClusterConfig};
pub use cube::opm::{LeaderParams, OffsetLookup, Opm};
pub use cube::wam::{Wam, WlChoice};
pub use maint::MaintConfig;
pub use mapping::{Mapping, Ppn};
pub use order::ProgramOrder;
pub use predictor::{Forecast, LatencyPredictor};
pub use recovery::{Checkpoint, CheckpointError, RecoveryReport};
