//! The FTL family: one shared page-level engine, four parameter policies.
//!
//! [`Ftl`] owns the flash array, the page mapping, the free-block pools
//! and the garbage collector. A [`FtlKind`] selects how WLs are
//! allocated and parameterized:
//!
//! | kind | allocation | program params | read params |
//! |---|---|---|---|
//! | [`FtlKind::Page`] | horizontal-first | device defaults | default references |
//! | [`FtlKind::Vert`] | horizontal-first | offline conservative `V_Final` −1 step (all WLs) | default references |
//! | [`FtlKind::CubeMinus`] | horizontal-first | OPM (leaders default, followers optimized) | ORT |
//! | [`FtlKind::Cube`] | WAM (mixed order, `μ`-driven) | OPM | ORT |

use crate::config::FtlConfig;
use crate::cube::opm::Opm;
use crate::cube::wam::{Wam, WlChoice};
use crate::gc::select_victim;
use crate::mapping::{Mapping, Ppn};
use crate::order::ProgramOrder;
use nand3d::{
    AgingState, BlockId, FaultCounters, FaultPlan, FlashArray, Geometry, PageAddr, ProgramParams,
    ReadFaultKind, ReadParams, WlData,
};
use ssdsim::{FtlDriver, FtlStats, HostContext, PageRead, WlWrite};
use std::collections::VecDeque;

/// Which FTL variant an [`Ftl`] instance behaves as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FtlKind {
    /// `pageFTL` — the PS-unaware baseline (§6.1).
    Page,
    /// `vertFTL` — offline conservative `V_Final`-only adjustment, after
    /// Hung et al. \[13\] (§6.1).
    Vert,
    /// `cubeFTL-` — cubeFTL with the WAM disabled (§6.3).
    CubeMinus,
    /// `cubeFTL` — the full PS-aware FTL (§5).
    Cube,
}

impl FtlKind {
    /// All four variants in the paper's comparison order.
    pub const ALL: [FtlKind; 4] = [
        FtlKind::Page,
        FtlKind::Vert,
        FtlKind::CubeMinus,
        FtlKind::Cube,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            FtlKind::Page => "pageFTL",
            FtlKind::Vert => "vertFTL",
            FtlKind::CubeMinus => "cubeFTL-",
            FtlKind::Cube => "cubeFTL",
        }
    }

    /// Whether the variant uses the OPM (PS-aware parameters).
    pub fn ps_aware(self) -> bool {
        matches!(self, FtlKind::Cube | FtlKind::CubeMinus)
    }
}

/// Sequential (horizontal-first) write point for the non-WAM variants.
#[derive(Debug, Clone, Copy)]
struct SeqAlloc {
    block: BlockId,
    next: u32,
}

/// A page-level FTL over a [`FlashArray`]. See the
/// [crate docs](crate) for the four variants.
#[derive(Debug)]
pub struct Ftl {
    kind: FtlKind,
    config: FtlConfig,
    array: FlashArray,
    mapping: Mapping,
    /// Per chip: erased blocks ready for allocation.
    free_blocks: Vec<VecDeque<BlockId>>,
    /// Per chip: whether each block is in the free pool.
    is_free: Vec<Vec<bool>>,
    /// Per chip: sequential write point (Page / Vert / CubeMinus).
    seq: Vec<Option<SeqAlloc>>,
    /// WAM (Cube only).
    wam: Option<Wam>,
    /// OPM (Cube and CubeMinus).
    opm: Option<Opm>,
    stats: FtlStats,
    /// Re-entrancy guard: GC's own writes must not trigger GC.
    in_gc: bool,
}

impl Ftl {
    /// Creates an FTL of the given kind.
    pub fn new(kind: FtlKind, config: FtlConfig) -> Self {
        config.validate();
        let g = config.nand.geometry;
        let array = FlashArray::new(config.nand, config.chips, config.seed);
        let mapping = Mapping::new(g, config.chips, config.logical_pages());
        let free_blocks = (0..config.chips)
            .map(|_| (0..g.blocks_per_chip).map(BlockId).collect())
            .collect();
        let is_free = vec![vec![true; g.blocks_per_chip as usize]; config.chips];
        Ftl {
            kind,
            array,
            mapping,
            free_blocks,
            is_free,
            seq: vec![None; config.chips],
            wam: (kind == FtlKind::Cube).then(|| {
                Wam::with_active_blocks(
                    g,
                    config.chips,
                    config.mu_threshold,
                    config.active_blocks_per_chip,
                )
            }),
            opm: kind.ps_aware().then(|| Opm::new(&g, config.chips)),
            stats: FtlStats::default(),
            in_gc: false,
            config,
        }
    }

    /// A `pageFTL` (PS-unaware baseline).
    pub fn page(config: FtlConfig) -> Self {
        Ftl::new(FtlKind::Page, config)
    }

    /// A `vertFTL` (conservative offline `V_Final` adjustment).
    pub fn vert(config: FtlConfig) -> Self {
        Ftl::new(FtlKind::Vert, config)
    }

    /// The full PS-aware `cubeFTL`.
    pub fn cube(config: FtlConfig) -> Self {
        Ftl::new(FtlKind::Cube, config)
    }

    /// `cubeFTL-`: cubeFTL with the WAM disabled (§6.3 ablation).
    pub fn cube_minus(config: FtlConfig) -> Self {
        Ftl::new(FtlKind::CubeMinus, config)
    }

    /// The variant this instance runs as.
    pub fn kind(&self) -> FtlKind {
        self.kind
    }

    /// The configuration.
    pub fn config(&self) -> &FtlConfig {
        &self.config
    }

    /// Host-visible logical page count.
    pub fn logical_pages(&self) -> u64 {
        self.mapping.logical_pages()
    }

    /// Pins every chip to an aging state (§6.2 evaluation conditions).
    pub fn set_aging(&mut self, state: AgingState) {
        self.array.set_aging(state);
    }

    /// Pins every chip to raw (P/E, retention-months) conditions — for
    /// aging sweeps beyond the three named states.
    pub fn set_aging_raw(&mut self, pe: u32, retention_months: f64) {
        for chip in self.array.iter_mut() {
            chip.env_mut().set_aging_raw(pe, retention_months);
        }
    }

    /// Sets the ambient temperature of every chip, °C (30 °C is the
    /// paper's evaluation reference).
    pub fn set_ambient_celsius(&mut self, celsius: f64) {
        self.array.set_ambient_celsius(celsius);
    }

    /// Sets the ambient-disturbance probability on every chip (exercises
    /// the §4.1.4 safety check and §4.2 ORT mispredictions).
    pub fn set_disturbance_prob(&mut self, p: f64) {
        self.array.set_disturbance_prob(p);
    }

    /// Installs a fault-injection plan on every chip (each chip draws a
    /// distinct deterministic fault stream derived from the plan seed).
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.array.set_fault_plan(plan);
    }

    /// Array-wide totals of injected faults.
    pub fn fault_counters(&self) -> FaultCounters {
        self.array.fault_counters()
    }

    /// Clears the measurement counters (call after prefill, before a
    /// measured run).
    pub fn reset_stats(&mut self) {
        self.stats = FtlStats::default();
    }

    /// The underlying flash array (for characterization experiments).
    pub fn array(&self) -> &FlashArray {
        &self.array
    }

    fn geometry(&self) -> Geometry {
        self.config.nand.geometry
    }

    /// Pops a free block on `chip`, updating the free-pool bitmap.
    fn pop_free_block(&mut self, chip: usize) -> Option<BlockId> {
        let b = self.free_blocks[chip].pop_front()?;
        self.is_free[chip][b.0 as usize] = false;
        Some(b)
    }

    /// Selects the next WL to program on `chip` according to the
    /// variant's allocation policy.
    fn select_wl(&mut self, chip: usize, mu: f64) -> WlChoice {
        if let Some(wam) = &mut self.wam {
            // Split borrows: the WAM needs an allocator closure over the
            // free pool.
            let free = &mut self.free_blocks[chip];
            let is_free = &mut self.is_free[chip];
            return wam.select(chip, mu, || {
                let b = free.pop_front()?;
                is_free[b.0 as usize] = false;
                Some(b)
            });
        }
        // Sequential horizontal-first write point.
        let g = self.geometry();
        let per_block = g.wls_per_block();
        loop {
            match &mut self.seq[chip] {
                Some(sa) if sa.next < per_block => {
                    let wl = ProgramOrder::HorizontalFirst.wl_at(&g, sa.block, sa.next);
                    sa.next += 1;
                    return if wl.is_leader() {
                        WlChoice::Leader(wl)
                    } else {
                        WlChoice::Follower(wl)
                    };
                }
                _ => {
                    let b = self
                        .pop_free_block(chip)
                        .expect("GC must maintain free blocks");
                    self.seq[chip] = Some(SeqAlloc { block: b, next: 0 });
                }
            }
        }
    }

    /// The program parameters the variant applies to `choice`.
    fn program_params(&self, chip: usize, choice: &WlChoice) -> ProgramParams {
        match self.kind {
            FtlKind::Page => ProgramParams::default(),
            FtlKind::Vert => {
                // Offline, conservative: spend only the always-safe guard
                // step, on V_Final only (Hung et al. [13] adjust V_Final).
                ProgramParams {
                    v_final_down_mv: self.config.nand.model.ispp.delta_v_ispp_mv,
                    ..ProgramParams::default()
                }
            }
            FtlKind::Cube | FtlKind::CubeMinus => {
                if choice.is_leader() {
                    // Leaders are monitored with default parameters
                    // (footnote 4).
                    ProgramParams::default()
                } else {
                    let opm = self.opm.as_ref().expect("PS-aware kinds have an OPM");
                    opm.follower_params(chip, choice.addr())
                        .map(|p| p.to_program_params())
                        .unwrap_or_default()
                }
            }
        }
    }

    /// Programs one WL (with §4.1.4 safety handling for PS-aware kinds)
    /// and maps `lpns` onto it. Returns the NAND latency spent.
    fn program_and_map(&mut self, chip: usize, lpns: [u64; 3], mu: f64) -> (f64, bool) {
        let mut latency = 0.0;
        let g = self.geometry();
        let mut choice = self.select_wl(chip, mu);
        let mut attempts = 0u32;
        let leader = choice.is_leader();
        loop {
            attempts += 1;
            let params = self.program_params(chip, &choice);
            let wl = choice.addr();
            let report = self
                .array
                .chip_mut(chip)
                .expect("chip index validated by simulator")
                .program_wl(wl, WlData::from_pages(lpns), &params)
                .expect("allocator hands out erased WLs");
            latency += report.latency_us;

            if report.aborted {
                // Program suspend/abort: the WL holds no valid data (it
                // stays free on the chip side), so re-issue the same pages
                // on the next WL the allocator hands out.
                self.stats.program_aborts += 1;
                assert!(
                    attempts < 64,
                    "fault plan aborts every program attempt on chip {chip}"
                );
                choice = self.select_wl(chip, mu);
                continue;
            }

            if let Some(opm) = &mut self.opm {
                let engine_report = &report;
                if choice.is_leader() {
                    // Record monitored parameters for this h-layer's
                    // followers.
                    let engine = self.array.chip(chip).expect("valid chip").ispp();
                    opm.record_leader(chip, wl, engine_report, engine);
                }
                if opm.safety_check(chip, wl, engine_report) && attempts < 4 {
                    // §4.1.4: the WL is considered improperly programmed;
                    // re-program the same data on the following WL with
                    // fresh monitoring (default parameters). The h-layer's
                    // monitored parameters are demoted (discarded) until a
                    // new leader re-monitors it.
                    let newly_demoted = opm.demote_layer(chip, wl);
                    self.stats.safety_reprograms += 1;
                    self.stats.safety_demotions += u64::from(newly_demoted);
                    // Re-monitor: force default params by treating the
                    // retry as a leader-style program.
                    choice = WlChoice::Leader(self.select_wl(chip, mu).addr());
                    continue;
                }
            }

            // Success: map the live pages.
            for (i, lpn) in lpns.iter().enumerate() {
                if *lpn == WlData::PAD {
                    continue;
                }
                let page = PageAddr {
                    wl,
                    page: nand3d::PageIndex(i as u8),
                };
                self.mapping.map(
                    *lpn,
                    Ppn {
                        chip: chip as u32,
                        page: g.page_flat(page) as u32,
                    },
                );
            }
            if !choice.is_leader() {
                self.stats.follower_wl_programs += 1;
            }
            self.stats.host_wl_programs += u64::from(!self.in_gc);
            return (latency, leader);
        }
    }

    /// Runs garbage collection on `chip` until the free pool is above the
    /// threshold. Returns the NAND latency spent.
    fn run_gc(&mut self, chip: usize, mu: f64) -> f64 {
        let mut latency = 0.0;
        let g = self.geometry();
        let per_block = g.pages_per_block();
        // Bound the work per invocation: GC latency is charged to the
        // triggering write, and unbounded rounds would stall the host.
        let mut rounds = 0;
        while self.free_blocks[chip].len() <= self.config.gc_free_block_threshold && rounds < 16 {
            rounds += 1;
            let victim = {
                let active: Vec<BlockId> = self.active_blocks(chip);
                let is_free = &self.is_free[chip];
                let candidates = (0..g.blocks_per_chip)
                    .map(BlockId)
                    .filter(|b| !is_free[b.0 as usize] && !active.contains(b));
                select_victim(&self.mapping, chip, candidates, per_block)
            };
            let Some(victim) = victim else {
                // No block holds any garbage (e.g. right after a unique
                // prefill): collecting would only shuffle valid pages
                // between blocks without freeing anything. Keep writing
                // into the remaining free pool; overwrites will create
                // reclaimable garbage before it runs out (guaranteed by
                // the over-provisioning: unique data can never fill the
                // physical space).
                break;
            };
            // Profitability check: migrating the victim consumes free WLs
            // for its valid pages; require at least one WL of net gain or
            // GC cannot make forward progress.
            let reclaimable = per_block - self.mapping.valid_in_block(chip, victim.0);
            if reclaimable < u32::from(g.pages_per_wl) {
                break;
            }

            // Migrate the victim's valid pages.
            let valid: Vec<u64> = self
                .mapping
                .valid_pages_of_block(chip, victim.0)
                .map(|(lpn, _)| lpn)
                .collect();
            self.stats.gc_page_moves += valid.len() as u64;
            for lpn in &valid {
                // Read the page (through the variant's read policy: the
                // ORT benefits GC reads too).
                latency += self
                    .read_mapped(*lpn)
                    .expect("valid page must be mapped")
                    .nand_us;
            }
            for group in valid.chunks(3) {
                let mut lpns = [WlData::PAD; 3];
                lpns[..group.len()].copy_from_slice(group);
                let (t, _) = self.program_and_map(chip, lpns, mu);
                latency += t;
            }

            // All pages moved: erase and return to the pool.
            self.mapping.assert_block_clean(chip, victim.0);
            latency += self
                .array
                .chip_mut(chip)
                .expect("valid chip")
                .erase(victim)
                .expect("victim in range");
            if let Some(opm) = &mut self.opm {
                opm.invalidate_block(chip, victim.0);
            }
            self.free_blocks[chip].push_back(victim);
            self.is_free[chip][victim.0 as usize] = true;
            self.stats.erases += 1;
            self.stats.gc_runs += 1;
        }
        latency
    }

    /// Blocks currently open for writing on `chip`.
    fn active_blocks(&self, chip: usize) -> Vec<BlockId> {
        match &self.wam {
            Some(wam) => wam.active_blocks(chip).collect(),
            None => self.seq[chip].iter().map(|sa| sa.block).collect(),
        }
    }

    /// Reads the mapped location of `lpn` with the variant's read policy.
    fn read_mapped(&mut self, lpn: u64) -> Option<PageRead> {
        let ppn = self.mapping.lookup(lpn)?;
        let g = self.geometry();
        let page = g.page_unflat(ppn.page as usize);
        let chip = ppn.chip as usize;
        let params = match &self.opm {
            Some(opm) => ReadParams::from_offset(opm.read_offset(chip, page.wl)),
            None => ReadParams::default(),
        };
        let report = self
            .array
            .chip_mut(chip)
            .expect("mapped chip exists")
            .read_page(page, params)
            .expect("mapped page is readable");
        debug_assert_eq!(report.data, lpn, "mapping returned wrong data");
        self.stats.nand_reads += 1;
        self.stats.read_retries += u64::from(report.retries);
        match report.fault {
            // Stale cached ΔV_Ref: the extra retry found a working offset,
            // and the ORT update below refreshes the cached entry.
            Some(ReadFaultKind::StuckRetry) => self.stats.stuck_retry_recoveries += 1,
            // First attempt uncorrectable: recovered via a full offset
            // scan (charged as MAX_OFFSET_INDEX + 1 retries).
            Some(ReadFaultKind::Uncorrectable) => self.stats.uncorrectable_recoveries += 1,
            None => {}
        }
        if let Some(opm) = &mut self.opm {
            opm.update_read_offset(chip, page.wl, report.final_offset);
        }
        Some(PageRead {
            chip,
            nand_us: report.latency_us,
            retries: report.retries,
        })
    }

    /// Reference to the OPM (PS-aware kinds only); exposed for
    /// experiments.
    pub fn opm(&self) -> Option<&Opm> {
        self.opm.as_ref()
    }
}

impl FtlDriver for Ftl {
    fn write_wl(&mut self, chip: usize, lpns: [u64; 3], ctx: &HostContext) -> WlWrite {
        let mut nand_us = 0.0;
        let mut did_gc = false;
        if !self.in_gc && self.free_blocks[chip].len() <= self.config.gc_free_block_threshold {
            self.in_gc = true;
            nand_us += self.run_gc(chip, ctx.buffer_utilization);
            self.in_gc = false;
            did_gc = true;
        }
        let (t, leader) = self.program_and_map(chip, lpns, ctx.buffer_utilization);
        nand_us += t;
        WlWrite {
            nand_us,
            did_gc,
            leader,
        }
    }

    fn read_page(&mut self, lpn: u64, _ctx: &HostContext) -> Option<PageRead> {
        self.read_mapped(lpn)
    }

    fn trim(&mut self, lpn: u64) {
        if self.mapping.unmap(lpn).is_some() {
            self.stats.host_trims += 1;
        }
    }

    fn stats(&self) -> FtlStats {
        self.stats
    }

    fn name(&self) -> &str {
        self.kind.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(mu: f64) -> HostContext {
        HostContext {
            buffer_utilization: mu,
            now_us: 0.0,
        }
    }

    fn write_all<F: FtlDriver>(
        ftl: &mut F,
        lpns: impl Iterator<Item = u64>,
        chips: usize,
        mu: f64,
    ) {
        let mut batch = [WlData::PAD; 3];
        let mut n = 0;
        let mut chip = 0;
        for lpn in lpns {
            batch[n] = lpn;
            n += 1;
            if n == 3 {
                ftl.write_wl(chip, batch, &ctx(mu));
                chip = (chip + 1) % chips;
                batch = [WlData::PAD; 3];
                n = 0;
            }
        }
        if n > 0 {
            ftl.write_wl(chip, batch, &ctx(mu));
        }
    }

    #[test]
    fn write_then_read_roundtrip_all_kinds() {
        for kind in FtlKind::ALL {
            let cfg = FtlConfig::small();
            let mut ftl = Ftl::new(kind, cfg);
            write_all(&mut ftl, 0..300, cfg.chips, 0.5);
            for lpn in 0..300 {
                let r = ftl
                    .read_page(lpn, &ctx(0.0))
                    .unwrap_or_else(|| panic!("{}: lpn {lpn} unmapped", kind.name()));
                assert!(r.nand_us > 0.0);
            }
            assert!(ftl.read_page(100_000_000, &ctx(0.0)).is_none());
        }
    }

    #[test]
    fn overwrites_remap_to_latest() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube(cfg);
        write_all(&mut ftl, 0..30, cfg.chips, 0.5);
        write_all(&mut ftl, 0..30, cfg.chips, 0.5);
        for lpn in 0..30 {
            assert!(ftl.read_page(lpn, &ctx(0.0)).is_some());
        }
    }

    #[test]
    fn gc_reclaims_space_under_sustained_overwrites() {
        let cfg = FtlConfig::small();
        for kind in FtlKind::ALL {
            let mut ftl = Ftl::new(kind, cfg);
            let working_set = 200u64;
            // Write far more data than physical capacity / 3 to force GC.
            let total = cfg.nand.geometry.pages_per_chip() * cfg.chips as u64 * 3;
            write_all(
                &mut ftl,
                (0..total).map(|i| i % working_set),
                cfg.chips,
                0.5,
            );
            let stats = ftl.stats();
            assert!(stats.gc_runs > 0, "{}: GC never ran", kind.name());
            assert!(stats.erases > 0);
            // All data still readable after GC.
            for lpn in 0..working_set {
                assert!(
                    ftl.read_page(lpn, &ctx(0.0)).is_some(),
                    "{}: lost lpn {lpn}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn cube_writes_followers_under_bursts() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube(cfg);
        // Calm phase banks leaders; burst phase must hit followers.
        write_all(&mut ftl, 0..120, cfg.chips, 0.2);
        let calm_followers = ftl.stats().follower_wl_programs;
        write_all(&mut ftl, 120..240, cfg.chips, 0.95);
        let burst_followers = ftl.stats().follower_wl_programs - calm_followers;
        assert!(
            burst_followers > 30,
            "burst should be served by followers, got {burst_followers}"
        );
    }

    #[test]
    fn cube_is_faster_than_page_on_average() {
        // The core claim: PS-aware programming shortens tPROG (§6).
        let cfg = FtlConfig::small();
        let mut total = std::collections::HashMap::new();
        for kind in [FtlKind::Page, FtlKind::Cube] {
            let mut ftl = Ftl::new(kind, cfg);
            let mut t = 0.0;
            let mut batch = [WlData::PAD; 3];
            let mut n = 0;
            let mut chip = 0;
            for lpn in 0..600u64 {
                batch[n] = lpn;
                n += 1;
                if n == 3 {
                    // High μ so cubeFTL uses its follower pool.
                    t += ftl.write_wl(chip, batch, &ctx(0.95)).nand_us;
                    chip = (chip + 1) % cfg.chips;
                    batch = [WlData::PAD; 3];
                    n = 0;
                }
            }
            total.insert(kind.name(), t);
        }
        let page = total["pageFTL"];
        let cube = total["cubeFTL"];
        let reduction = 1.0 - cube / page;
        assert!(
            (0.10..0.40).contains(&reduction),
            "cube vs page write-time reduction {reduction:.3}"
        );
    }

    #[test]
    fn vert_is_mildly_faster_than_page() {
        let cfg = FtlConfig::small();
        let mut times = Vec::new();
        for kind in [FtlKind::Page, FtlKind::Vert] {
            let mut ftl = Ftl::new(kind, cfg);
            let mut t = 0.0;
            for i in 0..100u64 {
                let lpns = [i * 3, i * 3 + 1, i * 3 + 2];
                t += ftl
                    .write_wl((i % cfg.chips as u64) as usize, lpns, &ctx(0.5))
                    .nand_us;
            }
            times.push(t);
        }
        let reduction = 1.0 - times[1] / times[0];
        assert!(
            (0.04..0.12).contains(&reduction),
            "vertFTL reduction {reduction:.3}, expected ≈8% (§6.2)"
        );
    }

    #[test]
    fn cube_reads_need_fewer_retries_when_aged() {
        let cfg = FtlConfig::small();
        let mut retries = std::collections::HashMap::new();
        for kind in [FtlKind::Page, FtlKind::Cube] {
            let mut ftl = Ftl::new(kind, cfg);
            write_all(&mut ftl, 0..600, cfg.chips, 0.5);
            ftl.set_aging(AgingState::EndOfLife);
            ftl.reset_stats();
            // Re-read everything twice: the second pass benefits from the
            // ORT populated by the first.
            for _ in 0..2 {
                for lpn in 0..600 {
                    ftl.read_page(lpn, &ctx(0.0)).unwrap();
                }
            }
            retries.insert(kind.name(), ftl.stats().read_retries);
        }
        let page = retries["pageFTL"] as f64;
        let cube = retries["cubeFTL"] as f64;
        assert!(
            cube < page * 0.6,
            "cubeFTL retries {cube} vs pageFTL {page}: expected ≥40% fewer"
        );
    }

    #[test]
    fn safety_reprograms_occur_under_disturbance() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube(cfg);
        ftl.set_disturbance_prob(0.05);
        write_all(&mut ftl, (0..3000).map(|i| i % 700), cfg.chips, 0.95);
        assert!(
            ftl.stats().safety_reprograms > 0,
            "disturbances must trigger the §4.1.4 safety path"
        );
        // Data integrity preserved despite re-programs.
        for lpn in 0..700 {
            assert!(ftl.read_page(lpn, &ctx(0.0)).is_some());
        }
    }

    #[test]
    fn stats_reset_clears_counters() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::page(cfg);
        write_all(&mut ftl, 0..30, cfg.chips, 0.5);
        assert!(ftl.stats().host_wl_programs > 0);
        ftl.reset_stats();
        assert_eq!(ftl.stats().host_wl_programs, 0);
    }

    #[test]
    fn names_match_paper() {
        let cfg = FtlConfig::small();
        assert_eq!(Ftl::page(cfg).name(), "pageFTL");
        assert_eq!(Ftl::vert(cfg).name(), "vertFTL");
        assert_eq!(Ftl::cube(cfg).name(), "cubeFTL");
        assert_eq!(Ftl::cube_minus(cfg).name(), "cubeFTL-");
    }

    #[test]
    fn targeted_ber_spike_triggers_one_safety_reprogram_and_remonitor() {
        use nand3d::FaultKind;
        let cfg = FtlConfig::small();
        // cubeFTL- allocates sequentially (horizontal-first), so chip 0's
        // first block programs WL (b0,h0,v0) leader, then (b0,h0,v1)
        // follower. Spike the follower's post-program BER 4× — past the
        // §4.1.4 safety factor of 3×.
        let mut ftl = Ftl::cube_minus(cfg);
        let plan = FaultPlan::seeded(7).with_target(0, 0, 1, FaultKind::BerSpike);
        ftl.set_fault_plan(&plan);

        ftl.write_wl(0, [0, 1, 2], &ctx(0.5)); // leader (b0,h0,v0)
        ftl.write_wl(0, [3, 4, 5], &ctx(0.5)); // follower (b0,h0,v1) — spiked
        ftl.write_wl(0, [6, 7, 8], &ctx(0.5)); // follower (b0,h0,v3)

        let stats = ftl.stats();
        assert_eq!(stats.safety_reprograms, 1, "exactly one §4.1.4 re-program");
        assert_eq!(stats.safety_demotions, 1, "the h-layer was demoted once");
        assert_eq!(stats.host_wl_programs, 3, "re-program is not a host WL");
        assert_eq!(ftl.fault_counters().ber_spikes, 1);
        // The re-program on the next WL ran leader-style with default
        // parameters and re-monitored the layer: it is no longer demoted.
        let g = cfg.nand.geometry;
        let wl = g.wl_addr(BlockId(0), 0, 1);
        let opm = ftl.opm().expect("cubeFTL- has an OPM");
        assert!(!opm.is_demoted(0, wl), "re-monitor lifts the demotion");
        assert!(
            opm.follower_params(0, wl).is_some(),
            "fresh monitored parameters recorded by the re-program"
        );
        // All data (including the re-programmed WL) reads back.
        for lpn in 0..9 {
            assert!(ftl.read_page(lpn, &ctx(0.0)).is_some(), "lost lpn {lpn}");
        }
    }

    #[test]
    fn targeted_abort_reissues_on_next_wl() {
        use nand3d::FaultKind;
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube_minus(cfg);
        let plan = FaultPlan::seeded(7).with_target(0, 0, 1, FaultKind::ProgramAbort);
        ftl.set_fault_plan(&plan);

        ftl.write_wl(0, [0, 1, 2], &ctx(0.5));
        ftl.write_wl(0, [3, 4, 5], &ctx(0.5)); // aborted once, re-issued
        let stats = ftl.stats();
        assert_eq!(stats.program_aborts, 1);
        assert_eq!(stats.host_wl_programs, 2);
        assert_eq!(ftl.fault_counters().program_aborts, 1);
        for lpn in 0..6 {
            assert!(ftl.read_page(lpn, &ctx(0.0)).is_some(), "lost lpn {lpn}");
        }
    }

    #[test]
    fn read_faults_are_recovered_and_counted() {
        use nand3d::FaultKind;
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube(cfg);
        write_all(&mut ftl, 0..300, cfg.chips, 0.5);
        let plan = FaultPlan::seeded(11)
            .with_rate(FaultKind::StuckRetry, 0.05)
            .with_rate(FaultKind::UncorrectableRead, 0.05);
        ftl.set_fault_plan(&plan);
        ftl.reset_stats();
        for lpn in 0..300 {
            // read_mapped debug-asserts the page data matches the LPN, so
            // a faulted read returning wrong data would panic here.
            assert!(ftl.read_page(lpn, &ctx(0.0)).is_some());
        }
        let stats = ftl.stats();
        let counters = ftl.fault_counters();
        assert!(stats.stuck_retry_recoveries > 0, "no stuck retries seen");
        assert!(stats.uncorrectable_recoveries > 0, "no uncorrectables seen");
        // No GC ran, so every injected read fault maps to one recovery.
        assert_eq!(stats.stuck_retry_recoveries, counters.stuck_retries);
        assert_eq!(stats.uncorrectable_recoveries, counters.uncorrectable_reads);
        // Uncorrectable recoveries pay a full offset scan.
        assert!(stats.read_retries >= stats.uncorrectable_recoveries * 8);
    }

    #[test]
    fn fault_injection_is_deterministic() {
        use nand3d::FaultKind;
        let run = || {
            let cfg = FtlConfig::small();
            let mut ftl = Ftl::cube(cfg);
            let plan = FaultPlan::seeded(99)
                .with_rate(FaultKind::IsppLoopOutlier, 0.02)
                .with_rate(FaultKind::BerSpike, 0.02)
                .with_rate(FaultKind::ProgramAbort, 0.01)
                .with_rate(FaultKind::StuckRetry, 0.02)
                .with_rate(FaultKind::UncorrectableRead, 0.02);
            ftl.set_fault_plan(&plan);
            write_all(&mut ftl, (0..1200).map(|i| i % 400), cfg.chips, 0.7);
            for lpn in 0..400 {
                ftl.read_page(lpn, &ctx(0.0)).unwrap();
            }
            (ftl.stats(), ftl.fault_counters())
        };
        let (s1, c1) = run();
        let (s2, c2) = run();
        assert_eq!(s1, s2, "stats must not depend on anything but the seed");
        assert_eq!(c1, c2, "fault draws must be reproducible");
        assert!(c1.total() > 0, "the plan should actually inject faults");
    }

    #[test]
    fn trim_unmaps() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::page(cfg);
        write_all(&mut ftl, 0..3, cfg.chips, 0.5);
        assert!(ftl.read_page(0, &ctx(0.0)).is_some());
        ftl.trim(0);
        assert!(ftl.read_page(0, &ctx(0.0)).is_none());
    }
}
