//! The FTL family: one shared page-level engine, four parameter policies.
//!
//! [`Ftl`] owns the flash array, the page mapping, the free-block pools
//! and the garbage collector. A [`FtlKind`] selects how WLs are
//! allocated and parameterized:
//!
//! | kind | allocation | program params | read params |
//! |---|---|---|---|
//! | [`FtlKind::Page`] | horizontal-first | device defaults | default references |
//! | [`FtlKind::Vert`] | horizontal-first | offline conservative `V_Final` −1 step (all WLs) | default references |
//! | [`FtlKind::CubeMinus`] | horizontal-first | OPM (leaders default, followers optimized) | ORT |
//! | [`FtlKind::Cube`] | WAM (mixed order, `μ`-driven) | OPM | ORT |

use crate::config::FtlConfig;
use crate::cube::opm::Opm;
use crate::cube::wam::{Wam, WlChoice};
use crate::gc::{select_victim, select_victim_wear_aware};
use crate::maint::{MaintConfig, MaintState};
use crate::mapping::{Mapping, Ppn};
use crate::order::ProgramOrder;
use crate::recovery::{Checkpoint, RecoveryReport, CKPT_PAGE_PROGRAM_US, OOB_READ_US};
use lifetime::{block_pattern_stress, page_state_fraction, EpochSummary, LifetimeEngine};
use nand3d::{
    AgingState, BlockId, FaultCounters, FaultPlan, FlashArray, Geometry, OobStatus, PageAddr,
    PageState, ProgramParams, ReadFaultKind, ReadParams, WlAddr, WlData, WlOob,
};
use ssdsim::{FtlDriver, FtlStats, HostContext, MaintWork, PageRead, WlWrite};
use std::collections::VecDeque;
use telemetry::{Collector, EventKind, EventMask, MetricRegistry, TraceEvent};

/// Which FTL variant an [`Ftl`] instance behaves as.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FtlKind {
    /// `pageFTL` — the PS-unaware baseline (§6.1).
    Page,
    /// `vertFTL` — offline conservative `V_Final`-only adjustment, after
    /// Hung et al. \[13\] (§6.1).
    Vert,
    /// `cubeFTL-` — cubeFTL with the WAM disabled (§6.3).
    CubeMinus,
    /// `cubeFTL` — the full PS-aware FTL (§5).
    Cube,
}

impl FtlKind {
    /// All four variants in the paper's comparison order.
    pub const ALL: [FtlKind; 4] = [
        FtlKind::Page,
        FtlKind::Vert,
        FtlKind::CubeMinus,
        FtlKind::Cube,
    ];

    /// Display name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            FtlKind::Page => "pageFTL",
            FtlKind::Vert => "vertFTL",
            FtlKind::CubeMinus => "cubeFTL-",
            FtlKind::Cube => "cubeFTL",
        }
    }

    /// Whether the variant uses the OPM (PS-aware parameters).
    pub fn ps_aware(self) -> bool {
        matches!(self, FtlKind::Cube | FtlKind::CubeMinus)
    }
}

/// Sequential (horizontal-first) write point for the non-WAM variants.
#[derive(Debug, Clone, Copy)]
struct SeqAlloc {
    block: BlockId,
    next: u32,
}

/// Page size used to charge checkpoint-flush latency (the paper's
/// platform uses 16-KB pages).
const CKPT_PAGE_BYTES: usize = 16 * 1024;

/// Periodic L2P-checkpointing state (crash consistency; see
/// [`crate::recovery`]).
#[derive(Debug)]
struct CkptState {
    /// Host WLs between checkpoint flushes.
    interval_host_wls: u64,
    /// Host WLs programmed since the last flush.
    host_wls_since: u64,
    /// Last flushed blob (the content of the reserved metadata region).
    blob: Option<Vec<u8>>,
    /// Checkpoints flushed so far.
    taken: u64,
    /// Cumulative metadata pages programmed into the region (the region
    /// is a ring: every `pages_per_block` of these recycles one block).
    pages_written: u64,
    /// Real chip-0 block backing the metadata region (allocated from
    /// the free pool at the first flush with headroom). Its ring
    /// erases are real, so its wear is visible to — and managed by —
    /// wear leveling and scrubbing like any other block. Empty while
    /// the region runs virtual (pool pressure, or pre-promotion
    /// recovery state).
    region: Vec<BlockId>,
}

/// A page-level FTL over a [`FlashArray`]. See the
/// [crate docs](crate) for the four variants.
#[derive(Debug)]
pub struct Ftl {
    kind: FtlKind,
    config: FtlConfig,
    array: FlashArray,
    mapping: Mapping,
    /// Per chip: erased blocks ready for allocation.
    free_blocks: Vec<VecDeque<BlockId>>,
    /// Per chip: whether each block is in the free pool.
    is_free: Vec<Vec<bool>>,
    /// Per chip: sequential write point (Page / Vert / CubeMinus).
    seq: Vec<Option<SeqAlloc>>,
    /// WAM (Cube only).
    wam: Option<Wam>,
    /// OPM (Cube and CubeMinus).
    opm: Option<Opm>,
    stats: FtlStats,
    /// Re-entrancy guard: GC's own writes must not trigger GC.
    in_gc: bool,
    /// Background maintenance services (when enabled).
    maint: Option<MaintState>,
    /// Whether the current write originates from a maintenance migration
    /// (excluded from host counters, like GC's own writes).
    in_maint: bool,
    /// Monotonic operation sequence number stamped on every OOB record
    /// and tagged erase (the total order crash recovery replays in).
    seq_counter: u64,
    /// Per chip: the block GC erased most recently (what an SPO cutting
    /// a GC-carrying flush interrupts mid-erase).
    last_gc_erase: Vec<Option<BlockId>>,
    /// Periodic L2P checkpointing, when enabled.
    ckpt: Option<CkptState>,
    /// Structured event trace sink (inert unless enabled).
    trace: Collector,
    /// Virtual time of the current host call, µs — stamps trace events
    /// emitted from internal helpers that carry no [`HostContext`].
    tel_now_us: f64,
}

// The array front-end runs one Ftl per shard on worker threads.
const _: fn() = || {
    fn assert_send<T: Send>() {}
    assert_send::<Ftl>();
};

impl Ftl {
    /// Creates an FTL of the given kind.
    pub fn new(kind: FtlKind, config: FtlConfig) -> Self {
        config.validate();
        let g = config.nand.geometry;
        let mut array = FlashArray::new(config.nand, config.chips, config.seed);
        for chip in array.iter_mut() {
            chip.set_retry_opt(config.retry_opt);
        }
        let mapping = Mapping::new(g, config.chips, config.logical_pages());
        let free_blocks = (0..config.chips)
            .map(|_| (0..g.blocks_per_chip).map(BlockId).collect())
            .collect();
        let is_free = vec![vec![true; g.blocks_per_chip as usize]; config.chips];
        Ftl {
            kind,
            array,
            mapping,
            free_blocks,
            is_free,
            seq: vec![None; config.chips],
            wam: (kind == FtlKind::Cube).then(|| {
                Wam::with_active_blocks(
                    g,
                    config.chips,
                    config.mu_threshold,
                    config.active_blocks_per_chip,
                )
            }),
            opm: kind.ps_aware().then(|| {
                let mut opm = Opm::with_ort_capacity(&g, config.chips, config.ort_capacity);
                opm.set_cluster(config.ort_cluster);
                opm
            }),
            stats: FtlStats::default(),
            in_gc: false,
            maint: None,
            in_maint: false,
            seq_counter: 0,
            last_gc_erase: vec![None; config.chips],
            ckpt: None,
            trace: Collector::disabled(),
            tel_now_us: 0.0,
            config,
        }
    }

    /// A `pageFTL` (PS-unaware baseline).
    pub fn page(config: FtlConfig) -> Self {
        Ftl::new(FtlKind::Page, config)
    }

    /// A `vertFTL` (conservative offline `V_Final` adjustment).
    pub fn vert(config: FtlConfig) -> Self {
        Ftl::new(FtlKind::Vert, config)
    }

    /// The full PS-aware `cubeFTL`.
    pub fn cube(config: FtlConfig) -> Self {
        Ftl::new(FtlKind::Cube, config)
    }

    /// `cubeFTL-`: cubeFTL with the WAM disabled (§6.3 ablation).
    pub fn cube_minus(config: FtlConfig) -> Self {
        Ftl::new(FtlKind::CubeMinus, config)
    }

    /// The variant this instance runs as.
    pub fn kind(&self) -> FtlKind {
        self.kind
    }

    /// The configuration.
    pub fn config(&self) -> &FtlConfig {
        &self.config
    }

    /// Host-visible logical page count.
    pub fn logical_pages(&self) -> u64 {
        self.mapping.logical_pages()
    }

    /// Pins every chip to an aging state (§6.2 evaluation conditions).
    pub fn set_aging(&mut self, state: AgingState) {
        self.array.set_aging(state);
    }

    /// Pins every chip to raw (P/E, retention-months) conditions — for
    /// aging sweeps beyond the three named states.
    pub fn set_aging_raw(&mut self, pe: u32, retention_months: f64) {
        for chip in self.array.iter_mut() {
            chip.env_mut().set_aging_raw(pe, retention_months);
        }
    }

    /// Engages per-block lifetime aging on every chip (idempotent):
    /// each block's current age is captured into per-block vectors that
    /// become authoritative, replacing the fixed aged-state presets;
    /// [`Ftl::advance_lifetime_epoch`] then steps individual blocks and
    /// erases rejuvenate retention (never wear) per block.
    pub fn enable_lifetime_aging(&mut self) {
        for chip in self.array.iter_mut() {
            chip.env_mut().enable_lifetime_aging();
        }
    }

    /// Applies one epoch barrier of `engine`'s aging plan to every
    /// block of every chip: the P/E fast-forward is scaled by the
    /// block's h-layer similarity-model aging sensitivity, the engine's
    /// seeded per-block variation, and (when enabled) the STAR
    /// data-pattern stress of the pages it holds; the retention
    /// fast-forward is added to data-holding blocks only (free blocks
    /// hold nothing to lose charge from). The walk is chip-major then
    /// block-ordered and draws from no RNG, so campaigns are identical
    /// at any worker-thread count.
    pub fn advance_lifetime_epoch(&mut self, engine: &mut LifetimeEngine) -> EpochSummary {
        let k = engine.begin_step();
        let g = self.geometry();
        let blocks = g.blocks_per_chip as usize;
        let pattern_on = engine.config().pattern_wear;
        let pattern_strength = engine.config().pattern_wear_strength;
        let mut summary = EpochSummary {
            step: k,
            retention_added_months: engine.plan().step_delta(k).retention_months,
            mean_pattern_stress: 1.0,
            ..EpochSummary::default()
        };
        let mut stress_sum = 0.0;
        let mut stress_n = 0u64;
        for chip in 0..self.config.chips {
            // Immutable pass: per-block sensitivity (mean of the
            // similarity model's h-layer aging sensitivities, 1.0 =
            // nominal) and resident-data pattern stress.
            let c = self.array.chip(chip).expect("valid chip");
            let mut info = Vec::with_capacity(blocks);
            for b in 0..blocks {
                let block = BlockId(b as u32);
                let sens_norm = (0..g.hlayers_per_block)
                    .map(|h| c.process().aging_sensitivity(block, h))
                    .sum::<f64>()
                    / f64::from(g.hlayers_per_block);
                let stress = if pattern_on {
                    let mut fractions = Vec::new();
                    for w in 0..g.wls_per_block() {
                        let wl = ProgramOrder::HorizontalFirst.wl_at(&g, block, w);
                        if c.wl_state(wl) != PageState::Written {
                            continue;
                        }
                        if let Some(oob) = c.wl_oob(wl) {
                            fractions.extend(
                                oob.lpns
                                    .iter()
                                    .filter(|&&lpn| lpn != WlData::PAD)
                                    .map(|&lpn| page_state_fraction(lpn)),
                            );
                        }
                    }
                    block_pattern_stress(fractions.into_iter(), pattern_strength)
                } else {
                    1.0
                };
                info.push((sens_norm, stress));
            }
            let free = self.is_free[chip].clone();
            let env = self.array.chip_mut(chip).expect("valid chip").env_mut();
            env.enable_lifetime_aging();
            for (b, &(sens, stress)) in info.iter().enumerate() {
                let d = engine.block_delta(k, chip, b, sens, stress);
                let months = if free[b] { 0.0 } else { d.retention_months };
                env.advance_block_age(b, d.pe, months);
                summary.blocks_aged += 1;
                summary.pe_added += u64::from(d.pe);
                if !free[b] {
                    stress_sum += stress;
                    stress_n += 1;
                }
            }
        }
        if stress_n > 0 {
            summary.mean_pattern_stress = stress_sum / stress_n as f64;
        }
        summary
    }

    /// The real blocks currently backing the checkpoint metadata region
    /// (empty when checkpointing is off or the region runs virtual).
    pub fn ckpt_region(&self) -> Vec<BlockId> {
        self.ckpt
            .as_ref()
            .map(|c| c.region.clone())
            .unwrap_or_default()
    }

    /// Sets the ambient temperature of every chip, °C (30 °C is the
    /// paper's evaluation reference).
    pub fn set_ambient_celsius(&mut self, celsius: f64) {
        self.array.set_ambient_celsius(celsius);
    }

    /// Sets the ambient-disturbance probability on every chip (exercises
    /// the §4.1.4 safety check and §4.2 ORT mispredictions).
    pub fn set_disturbance_prob(&mut self, p: f64) {
        self.array.set_disturbance_prob(p);
    }

    /// Installs a fault-injection plan on every chip (each chip draws a
    /// distinct deterministic fault stream derived from the plan seed).
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        self.array.set_fault_plan(plan);
    }

    /// Array-wide totals of injected faults.
    pub fn fault_counters(&self) -> FaultCounters {
        self.array.fault_counters()
    }

    /// Clears the measurement counters (call after prefill, before a
    /// measured run). Buffered trace events are discarded too, so a
    /// collector enabled before prefill starts the measured run clean.
    pub fn reset_stats(&mut self) {
        self.stats = FtlStats::default();
        if let Some(opm) = &mut self.opm {
            opm.reset_ort_counters();
        }
        self.trace.reset();
    }

    /// Enables structured event tracing for the categories in `mask`,
    /// tagging every event with `shard` (0 for a single device). Events
    /// are virtual-timestamped with the `now_us` of the host call they
    /// occur under, so the trace is deterministic.
    pub fn enable_telemetry(&mut self, mask: EventMask, shard: u32) {
        self.trace = if mask.is_empty() {
            Collector::disabled()
        } else {
            Collector::enabled(mask, shard)
        };
    }

    /// Drains the buffered trace events (time-ordered; sequence numbers
    /// continue across calls).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take()
    }

    /// Advances the trace clock to `now_us` — for out-of-band entry
    /// points ([`Ftl::power_cut`], [`Ftl::take_checkpoint`]) invoked
    /// outside a [`HostContext`]-carrying call.
    pub fn set_trace_now(&mut self, now_us: f64) {
        self.tel_now_us = now_us;
    }

    /// Registers the FTL's physical-layer counters — per-chip NAND
    /// command totals, array-wide injected-fault totals and the current
    /// free-pool size — under `prefix` (e.g. `nand.chip0.programs`,
    /// `nand.free_blocks`). The logical FTL counters live in
    /// [`FtlStats::register_metrics`].
    pub fn register_metrics(&self, reg: &mut MetricRegistry, prefix: &str) {
        self.array.register_metrics(reg, prefix);
        reg.gauge(
            &format!("{prefix}.free_blocks"),
            FtlDriver::free_blocks(self) as f64,
        );
    }

    /// The underlying flash array (for characterization experiments).
    pub fn array(&self) -> &FlashArray {
        &self.array
    }

    /// Enables (or disables) the background maintenance subsystem:
    /// retention scrubbing, wear leveling and periodic OPM re-monitoring,
    /// performed one bounded unit at a time via
    /// [`FtlDriver::maintenance_step`] during chip idle windows. Enabling
    /// also turns on per-block retention tracking so scrubbed blocks
    /// actually rejuvenate (an erase resets the block's retention clock).
    pub fn enable_maintenance(&mut self, config: MaintConfig) {
        if config.enabled {
            self.maint = Some(MaintState::new(config, self.config.chips));
            self.array.set_block_retention_tracking(true);
        } else {
            self.maint = None;
            self.array.set_block_retention_tracking(false);
        }
    }

    /// The active maintenance configuration, if the subsystem is enabled.
    pub fn maint_config(&self) -> Option<MaintConfig> {
        self.maint.as_ref().map(|m| m.config)
    }

    /// Whether the wear-leveling service steers victim selection and
    /// free-block allocation.
    fn wear_leveling_on(&self) -> bool {
        self.maint.as_ref().is_some_and(|m| m.config.wear_leveling)
    }

    /// Live erase counts of every block on `chip`.
    fn erase_counts(&self, chip: usize) -> Vec<u32> {
        let env = self.array.chip(chip).expect("valid chip").env();
        (0..self.geometry().blocks_per_chip as usize)
            .map(|b| env.erase_count(b))
            .collect()
    }

    /// The NAND geometry this FTL was configured with.
    pub fn geometry(&self) -> Geometry {
        self.config.nand.geometry
    }

    /// Pops a free block on `chip`, updating the free-pool bitmap. With
    /// wear leveling active, the least-worn free block is allocated first
    /// (cold blocks absorb new writes); otherwise FIFO order.
    fn pop_free_block(&mut self, chip: usize) -> Option<BlockId> {
        let b = if self.wear_leveling_on() {
            let wear = self.erase_counts(chip);
            let i = self.free_blocks[chip]
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| (wear[b.0 as usize], b.0))?
                .0;
            self.free_blocks[chip].remove(i)?
        } else {
            self.free_blocks[chip].pop_front()?
        };
        self.is_free[chip][b.0 as usize] = false;
        Some(b)
    }

    /// Selects the next WL to program on `chip` according to the
    /// variant's allocation policy.
    fn select_wl(&mut self, chip: usize, mu: f64) -> WlChoice {
        // Split borrows: the WAM needs an allocator closure over the free
        // pool, so the wear snapshot is taken before self.wam is borrowed.
        let wear = (self.wam.is_some() && self.wear_leveling_on()).then(|| self.erase_counts(chip));
        if let Some(wam) = &mut self.wam {
            let free = &mut self.free_blocks[chip];
            let is_free = &mut self.is_free[chip];
            return wam.select(chip, mu, || {
                let b = match &wear {
                    Some(w) => {
                        let i = free
                            .iter()
                            .enumerate()
                            .min_by_key(|(_, b)| (w[b.0 as usize], b.0))?
                            .0;
                        free.remove(i)?
                    }
                    None => free.pop_front()?,
                };
                is_free[b.0 as usize] = false;
                Some(b)
            });
        }
        // Sequential horizontal-first write point.
        let g = self.geometry();
        let per_block = g.wls_per_block();
        loop {
            match &mut self.seq[chip] {
                Some(sa) if sa.next < per_block => {
                    let wl = ProgramOrder::HorizontalFirst.wl_at(&g, sa.block, sa.next);
                    sa.next += 1;
                    return if wl.is_leader() {
                        WlChoice::Leader(wl)
                    } else {
                        WlChoice::Follower(wl)
                    };
                }
                _ => {
                    let b = self
                        .pop_free_block(chip)
                        .expect("GC must maintain free blocks");
                    self.seq[chip] = Some(SeqAlloc { block: b, next: 0 });
                }
            }
        }
    }

    /// The program parameters the variant applies to `choice`.
    fn program_params(&self, chip: usize, choice: &WlChoice) -> ProgramParams {
        match self.kind {
            FtlKind::Page => ProgramParams::default(),
            FtlKind::Vert => {
                // Offline, conservative: spend only the always-safe guard
                // step, on V_Final only (Hung et al. [13] adjust V_Final).
                ProgramParams {
                    v_final_down_mv: self.config.nand.model.ispp.delta_v_ispp_mv,
                    ..ProgramParams::default()
                }
            }
            FtlKind::Cube | FtlKind::CubeMinus => {
                if choice.is_leader() {
                    // Leaders are monitored with default parameters
                    // (footnote 4).
                    ProgramParams::default()
                } else {
                    let opm = self.opm.as_ref().expect("PS-aware kinds have an OPM");
                    opm.follower_params(chip, choice.addr())
                        .map(|p| p.to_program_params())
                        .unwrap_or_default()
                }
            }
        }
    }

    /// Programs one WL (with §4.1.4 safety handling for PS-aware kinds)
    /// and maps `lpns` onto it. Returns the NAND latency spent.
    fn program_and_map(&mut self, chip: usize, lpns: [u64; 3], mu: f64) -> (f64, bool) {
        let mut latency = 0.0;
        let g = self.geometry();
        let mut choice = self.select_wl(chip, mu);
        let mut attempts = 0u32;
        let leader = choice.is_leader();
        loop {
            attempts += 1;
            let params = self.program_params(chip, &choice);
            let wl = choice.addr();
            let report = self
                .array
                .chip_mut(chip)
                .expect("chip index validated by simulator")
                .program_wl(wl, WlData::from_pages(lpns), &params)
                .expect("allocator hands out erased WLs");
            latency += report.latency_us;
            if self.trace.wants(EventMask::ISPP) {
                self.trace.emit(
                    self.tel_now_us,
                    EventKind::IsppProgram {
                        chip: chip as u32,
                        leader: choice.is_leader(),
                        pulses: report.pulses,
                        verifies: report.verifies,
                        margin_excess_loops: report.margin_excess_loops,
                        latency_us: report.latency_us,
                        aborted: report.aborted,
                    },
                );
            }

            if report.aborted {
                // Program suspend/abort: the WL holds no valid data (it
                // stays free on the chip side), so re-issue the same pages
                // on the next WL the allocator hands out.
                self.stats.program_aborts += 1;
                assert!(
                    attempts < 64,
                    "fault plan aborts every program attempt on chip {chip}"
                );
                choice = self.select_wl(chip, mu);
                continue;
            }

            if let Some(opm) = &mut self.opm {
                let engine_report = &report;
                // Leaders are always monitored. A follower whose h-layer
                // has no monitored parameters (and is not §4.1.4-demoted)
                // also ran with full-verify defaults — after a crash this
                // is the "re-monitor on first touch" path that rebuilds
                // the cold OPM one layer at a time.
                if choice.is_leader()
                    || (opm.follower_params(chip, wl).is_none() && !opm.is_demoted(chip, wl))
                {
                    let engine = self.array.chip(chip).expect("valid chip").ispp();
                    opm.record_leader(chip, wl, engine_report, engine);
                    if self.trace.wants(EventMask::OPM) {
                        self.trace.emit(
                            self.tel_now_us,
                            EventKind::Opm {
                                chip: chip as u32,
                                layer: wl.block.0 * u32::from(g.hlayers_per_block)
                                    + u32::from(wl.h.0),
                                action: "monitor",
                            },
                        );
                    }
                }
                if opm.safety_check(chip, wl, engine_report) && attempts < 4 {
                    // §4.1.4: the WL is considered improperly programmed;
                    // re-program the same data on the following WL with
                    // fresh monitoring (default parameters). The h-layer's
                    // monitored parameters are demoted (discarded) until a
                    // new leader re-monitors it.
                    let newly_demoted = opm.demote_layer(chip, wl);
                    self.stats.safety_reprograms += 1;
                    self.stats.safety_demotions += u64::from(newly_demoted);
                    if self.trace.wants(EventMask::OPM) {
                        self.trace.emit(
                            self.tel_now_us,
                            EventKind::Opm {
                                chip: chip as u32,
                                layer: wl.block.0 * u32::from(g.hlayers_per_block)
                                    + u32::from(wl.h.0),
                                action: "demote",
                            },
                        );
                    }
                    // Re-monitor: force default params by treating the
                    // retry as a leader-style program.
                    choice = WlChoice::Leader(self.select_wl(chip, mu).addr());
                    continue;
                }
            }

            // Success: map the live pages and deposit the OOB record
            // recovery replays (LPNs + sequence number + status tag).
            self.seq_counter += 1;
            self.array
                .chip_mut(chip)
                .expect("valid chip")
                .write_oob(
                    wl,
                    WlOob {
                        lpns,
                        seq: self.seq_counter,
                        status: OobStatus::Complete,
                    },
                )
                .expect("WL was just programmed");
            for (i, lpn) in lpns.iter().enumerate() {
                if *lpn == WlData::PAD {
                    continue;
                }
                let page = PageAddr {
                    wl,
                    page: nand3d::PageIndex(i as u8),
                };
                self.mapping.map(
                    *lpn,
                    Ppn {
                        chip: chip as u32,
                        page: g.page_flat(page) as u32,
                    },
                );
            }
            if !choice.is_leader() {
                self.stats.follower_wl_programs += 1;
            }
            self.stats.host_wl_programs += u64::from(!self.in_gc && !self.in_maint);
            return (latency, leader);
        }
    }

    /// Runs garbage collection on `chip` until the free pool is above the
    /// threshold. Returns the NAND latency spent.
    fn run_gc(&mut self, chip: usize, mu: f64) -> f64 {
        let mut latency = 0.0;
        let g = self.geometry();
        let per_block = g.pages_per_block();
        // Bound the work per invocation: GC latency is charged to the
        // triggering write, and unbounded rounds would stall the host.
        let mut rounds = 0;
        while self.free_blocks[chip].len() <= self.config.gc_free_block_threshold && rounds < 16 {
            rounds += 1;
            let victim = {
                let wear_limit = self
                    .maint
                    .as_ref()
                    .filter(|m| m.config.wear_leveling)
                    .map(|m| m.config.wear_spread_limit);
                let wear = wear_limit.map(|_| self.erase_counts(chip));
                let active: Vec<BlockId> = self.active_blocks(chip);
                let is_free = &self.is_free[chip];
                let candidates = (0..g.blocks_per_chip).map(BlockId).filter(|b| {
                    !is_free[b.0 as usize]
                        && !active.contains(b)
                        && !self.ckpt_region_contains(chip, *b)
                });
                match (wear_limit, &wear) {
                    (Some(limit), Some(w)) => select_victim_wear_aware(
                        &self.mapping,
                        chip,
                        candidates,
                        per_block,
                        |b| w[b.0 as usize],
                        limit,
                    ),
                    _ => select_victim(&self.mapping, chip, candidates, per_block),
                }
            };
            let Some(victim) = victim else {
                // No block holds any garbage (e.g. right after a unique
                // prefill): collecting would only shuffle valid pages
                // between blocks without freeing anything. Keep writing
                // into the remaining free pool; overwrites will create
                // reclaimable garbage before it runs out (guaranteed by
                // the over-provisioning: unique data can never fill the
                // physical space).
                break;
            };
            // Profitability check: migrating the victim consumes free WLs
            // for its valid pages; require at least one WL of net gain or
            // GC cannot make forward progress.
            let reclaimable = per_block - self.mapping.valid_in_block(chip, victim.0);
            if reclaimable < u32::from(g.pages_per_wl) {
                break;
            }

            // Migrate the victim's valid pages.
            let valid: Vec<u64> = self
                .mapping
                .valid_pages_of_block(chip, victim.0)
                .map(|(lpn, _)| lpn)
                .collect();
            if self.in_maint {
                self.stats.maint_gc_page_moves += valid.len() as u64;
            } else {
                self.stats.gc_page_moves += valid.len() as u64;
            }
            for lpn in &valid {
                // Read the page (through the variant's read policy: the
                // ORT benefits GC reads too).
                latency += self
                    .read_mapped(*lpn)
                    .expect("valid page must be mapped")
                    .nand_us;
            }
            for group in valid.chunks(3) {
                let mut lpns = [WlData::PAD; 3];
                lpns[..group.len()].copy_from_slice(group);
                let (t, _) = self.program_and_map(chip, lpns, mu);
                latency += t;
            }

            // All pages moved: erase (stamped with the operation sequence
            // so recovery can tell the block changed hands) and return it
            // to the pool.
            self.mapping.assert_block_clean(chip, victim.0);
            self.seq_counter += 1;
            latency += self
                .array
                .chip_mut(chip)
                .expect("valid chip")
                .erase_tagged(victim, self.seq_counter)
                .expect("victim in range");
            self.last_gc_erase[chip] = Some(victim);
            if let Some(opm) = &mut self.opm {
                opm.invalidate_block(chip, victim.0);
            }
            self.free_blocks[chip].push_back(victim);
            self.is_free[chip][victim.0 as usize] = true;
            self.stats.erases += 1;
            self.stats.gc_runs += 1;
            if self.trace.wants(EventMask::GC) {
                self.trace.emit(
                    self.tel_now_us,
                    EventKind::GcVictim {
                        chip: chip as u32,
                        block: victim.0,
                        moved_wls: (valid.len() as u32).div_ceil(3),
                        wear_aware: self.wear_leveling_on(),
                    },
                );
            }
        }
        latency
    }

    /// Whether `block` currently backs the checkpoint metadata region
    /// on `chip`. Region blocks hold no mapped pages (their content is
    /// the checkpoint blob), so victim selection would otherwise see
    /// them as maximally profitable and erase the live checkpoint.
    fn ckpt_region_contains(&self, chip: usize, block: BlockId) -> bool {
        chip == 0
            && self
                .ckpt
                .as_ref()
                .is_some_and(|c| c.region.contains(&block))
    }

    /// Blocks currently open for writing on `chip`.
    fn active_blocks(&self, chip: usize) -> Vec<BlockId> {
        match &self.wam {
            Some(wam) => wam.active_blocks(chip).collect(),
            None => self.seq[chip].iter().map(|sa| sa.block).collect(),
        }
    }

    /// Reads the mapped location of `lpn` with the variant's read policy.
    fn read_mapped(&mut self, lpn: u64) -> Option<PageRead> {
        let ppn = self.mapping.lookup(lpn)?;
        let g = self.geometry();
        let page = g.page_unflat(ppn.page as usize);
        let chip = ppn.chip as usize;
        let lookup = self
            .opm
            .as_mut()
            .map(|opm| opm.lookup_offset(chip, page.wl));
        let params = match lookup {
            Some(l) if l.seeded => ReadParams::seeded_from(l.offset),
            Some(l) => ReadParams::from_offset(l.offset),
            None => ReadParams::default(),
        };
        let report = self
            .array
            .chip_mut(chip)
            .expect("mapped chip exists")
            .read_page(page, params)
            .expect("mapped page is readable");
        debug_assert_eq!(report.data, lpn, "mapping returned wrong data");
        // Maintenance migration reads are background work: they must not
        // distort the host-visible read statistics.
        if !self.in_maint {
            self.stats.nand_reads += 1;
            self.stats.read_retries += u64::from(report.retries);
            self.stats.early_terminations += u64::from(report.early_terminated);
            match report.fault {
                // Stale cached ΔV_Ref: the extra retry found a working
                // offset, and the ORT update below refreshes the cached
                // entry.
                Some(ReadFaultKind::StuckRetry) => self.stats.stuck_retry_recoveries += 1,
                // First attempt uncorrectable: recovered via a full offset
                // scan (charged as MAX_OFFSET_INDEX + 1 retries).
                Some(ReadFaultKind::Uncorrectable) => self.stats.uncorrectable_recoveries += 1,
                None => {}
            }
        }
        if let Some(opm) = &mut self.opm {
            if let Some(l) = lookup {
                opm.note_read_outcome(l, report.final_offset);
            }
            opm.update_read_offset(chip, page.wl, report.final_offset);
        }
        if (report.retries > 0 || report.fault.is_some()) && self.trace.wants(EventMask::READ_RETRY)
        {
            self.trace.emit(
                self.tel_now_us,
                EventKind::ReadRetry {
                    chip: chip as u32,
                    lpn,
                    retries: report.retries,
                    fault: report.fault.map(|f| match f {
                        ReadFaultKind::StuckRetry => "stuck_retry",
                        ReadFaultKind::Uncorrectable => "uncorrectable",
                    }),
                    seeded: lookup.is_some_and(|l| l.seeded),
                    early_term: report.early_terminated,
                },
            );
        }
        Some(PageRead {
            chip,
            nand_us: report.latency_us,
            retries: report.retries,
        })
    }

    /// Reference to the OPM (PS-aware kinds only); exposed for
    /// experiments.
    pub fn opm(&self) -> Option<&Opm> {
        self.opm.as_ref()
    }

    /// The page mapping (read-only; exposed for recovery verification).
    pub fn mapping(&self) -> &Mapping {
        &self.mapping
    }

    /// Whether `lpn` currently has a physical location.
    pub fn is_mapped(&self, lpn: u64) -> bool {
        self.mapping.lookup(lpn).is_some()
    }

    /// Enables periodic L2P checkpointing: every `interval_host_wls` host
    /// WL programs, the full L2P map and per-block erase counters are
    /// serialized into the reserved metadata region (latency charged to
    /// the triggering write). An interval of 0 disables.
    pub fn enable_checkpointing(&mut self, interval_host_wls: u64) {
        self.ckpt = (interval_host_wls > 0).then_some(CkptState {
            interval_host_wls,
            host_wls_since: 0,
            blob: None,
            taken: 0,
            pages_written: 0,
            region: Vec::new(),
        });
    }

    /// Number of checkpoints flushed so far (0 if checkpointing is off).
    pub fn checkpoints_taken(&self) -> u64 {
        self.ckpt.as_ref().map_or(0, |c| c.taken)
    }

    /// The current operation sequence number (advanced by every program
    /// and tagged erase).
    pub fn seq_counter(&self) -> u64 {
        self.seq_counter
    }

    /// Flushes a checkpoint of the L2P map + erase counters to the
    /// reserved metadata region now, returning the NAND time charged
    /// (metadata pages × full-verify program latency). Requires
    /// checkpointing to be enabled; no-op returning 0.0 otherwise.
    pub fn take_checkpoint(&mut self) -> f64 {
        if self.ckpt.is_none() {
            return 0.0;
        }
        let erase_counts = (0..self.config.chips)
            .map(|c| self.erase_counts(c))
            .collect();
        let ckpt = Checkpoint {
            seq: self.seq_counter,
            l2p: self.mapping.l2p_snapshot(),
            erase_counts,
        };
        let pages = ckpt.pages(CKPT_PAGE_BYTES);
        let blob = ckpt.encode();
        let bytes = blob.len() as u64;
        let mut latency = pages as f64 * CKPT_PAGE_PROGRAM_US;
        // Metadata-region wear: the flushed pages are real NAND programs,
        // and the ring recycles (erases) a region block every time the
        // cumulative page count fills one.
        let per_block = u64::from(self.geometry().pages_per_block());
        self.stats.ckpt_page_programs += pages;
        // Back the region with a real chip-0 block once the pool can
        // spare one: its ring erases then wear a physical block that
        // wear leveling and scrubbing see. Under pool pressure the
        // region keeps running virtual (counters advance identically).
        if self.ckpt.as_ref().expect("checked above").region.is_empty()
            && self.free_blocks[0].len() > self.config.gc_free_block_threshold + 1
        {
            let b = self.pop_free_block(0).expect("pool checked non-empty");
            self.ckpt.as_mut().expect("checked above").region.push(b);
        }
        let st = self.ckpt.as_mut().expect("checked above");
        let filled_before = st.pages_written / per_block;
        st.pages_written += pages;
        let crossings = st.pages_written / per_block - filled_before;
        self.stats.ckpt_erases += crossings;
        st.blob = Some(blob);
        st.taken += 1;
        st.host_wls_since = 0;
        let region_block = st.region.first().copied();
        if let Some(b) = region_block {
            for _ in 0..crossings {
                self.seq_counter += 1;
                latency += self
                    .array
                    .chip_mut(0)
                    .expect("chip 0 exists")
                    .erase_tagged(b, self.seq_counter)
                    .expect("region block in range");
            }
        }
        if self.trace.wants(EventMask::CKPT) {
            self.trace.emit(
                self.tel_now_us,
                EventKind::Checkpoint {
                    pages: pages as u32,
                    bytes,
                    latency_us: latency,
                },
            );
        }
        latency
    }

    /// Advances the checkpoint clock by one host WL and flushes when the
    /// interval is reached. Returns the NAND time spent, if any.
    fn checkpoint_tick(&mut self) -> Option<f64> {
        let st = self.ckpt.as_mut()?;
        st.host_wls_since += 1;
        (st.host_wls_since >= st.interval_host_wls).then(|| self.take_checkpoint())
    }

    /// Models the physical consequences of a sudden power-off caught
    /// while `chip` was flushing `lpns`: the WLs holding those pages are
    /// left partially programmed ([`PageState::Partial`], elevated BER,
    /// OOB re-tagged torn). If the flush had triggered GC
    /// (`gc_in_flight`), the GC victim's erase pulse is interrupted too,
    /// leaving that block unusable until re-erased. Returns the number of
    /// WLs torn. Call once per in-flight flush before [`Ftl::power_cycle`].
    pub fn power_cut(&mut self, chip: usize, lpns: [u64; 3], gc_in_flight: bool) -> u64 {
        let g = self.geometry();
        let mut wls: Vec<WlAddr> = Vec::new();
        for lpn in lpns {
            if lpn == WlData::PAD {
                continue;
            }
            let Some(ppn) = self.mapping.lookup(lpn) else {
                continue;
            };
            if ppn.chip as usize != chip {
                continue;
            }
            let wl = g.page_unflat(ppn.page as usize).wl;
            // Tear only the WL this flush actually programmed: a later
            // enqueued flush's GC may already have relocated the data, in
            // which case the mapping points at the (complete) relocation
            // WL — whose OOB trio differs — and tearing it would destroy
            // co-relocated victims' newest copies.
            let programmed_here = self
                .array
                .chip(chip)
                .expect("valid chip")
                .wl_oob(wl)
                .is_some_and(|oob| oob.lpns == lpns);
            if programmed_here && !wls.contains(&wl) {
                wls.push(wl);
            }
        }
        let chip_ref = self.array.chip_mut(chip).expect("valid chip");
        let mut torn = 0u64;
        for wl in wls {
            torn += u64::from(chip_ref.interrupt_program(wl));
        }
        if gc_in_flight {
            if let Some(b) = self.last_gc_erase[chip] {
                chip_ref.interrupt_erase(b);
            }
        }
        self.trace.emit(
            self.tel_now_us,
            EventKind::Spo {
                phase: "cut",
                detail: torn,
            },
        );
        torn
    }

    /// Boot-time recovery after a sudden power-off: consumes the dead
    /// FTL (its RAM state is gone) and rebuilds a fresh one from flash
    /// contents alone —
    ///
    /// 1. load the last checkpoint from the reserved metadata region,
    /// 2. probe every block's metadata page; re-erase blocks whose erase
    ///    pulse was interrupted; drop checkpoint entries pointing into
    ///    blocks erased since the checkpoint,
    /// 3. fully OOB-scan only the blocks programmed since the checkpoint,
    ///    quarantining torn WLs via the §4.1.4 path (their h-layers boot
    ///    demoted) and collecting complete records newer than the
    ///    checkpoint,
    /// 4. replay those records in sequence order on top of the restored
    ///    checkpoint entries,
    /// 5. re-write the host pages the power-loss-protection capacitor
    ///    dumped from the write buffer (`plp_lpns`).
    ///
    /// The OPM/ORT are deliberately **not** restored: the recovered FTL
    /// boots with cold monitored state and re-derives it on first touch
    /// per h-layer (conservative full-verify programs, full read-retry).
    pub fn power_cycle(self, plp_lpns: &[u64]) -> (Ftl, RecoveryReport) {
        let Ftl {
            kind,
            config,
            mut array,
            ckpt,
            mut trace,
            tel_now_us,
            ..
        } = self;
        trace.emit(
            tel_now_us,
            EventKind::Spo {
                phase: "recovery_begin",
                detail: 0,
            },
        );
        let g = config.nand.geometry;
        let chips = config.chips;
        let blocks = g.blocks_per_chip;
        let mut report = RecoveryReport::default();

        // 1. Load the last checkpoint (reject dimension mismatches — a
        // corrupt region must degrade to a full scan, not a panic).
        let ckpt_interval = ckpt.as_ref().map(|c| c.interval_host_wls);
        let ckpt_taken = ckpt.as_ref().map_or(0, |c| c.taken);
        let ckpt_pages_written = ckpt.as_ref().map_or(0, |c| c.pages_written);
        let blob = ckpt.and_then(|c| c.blob);
        let checkpoint = blob
            .as_deref()
            .and_then(|b| Checkpoint::decode(b).ok())
            .filter(|c| {
                c.l2p.len() as u64 == config.logical_pages()
                    && c.erase_counts.len() == chips
                    && c.erase_counts.iter().all(|e| e.len() == blocks as usize)
            });
        report.checkpoint_loaded = checkpoint.is_some();
        let ckpt_seq = checkpoint.as_ref().map_or(0, |c| c.seq);
        report.checkpoint_seq = ckpt_seq;

        // 2. Probe every block's metadata page: recover the sequence
        // horizon, find interrupted erases, blocks erased since the
        // checkpoint, and blocks needing a full OOB scan.
        let mut seq_horizon = ckpt_seq;
        let mut erased_since = vec![vec![false; blocks as usize]; chips];
        let mut to_reerase: Vec<(usize, BlockId)> = Vec::new();
        let mut to_scan: Vec<(usize, BlockId)> = Vec::new();
        for (chip, erased) in erased_since.iter_mut().enumerate() {
            let c = array.chip(chip).expect("valid chip");
            for b in 0..blocks {
                let block = BlockId(b);
                report.blocks_probed += 1;
                report.nand_us += OOB_READ_US;
                seq_horizon = seq_horizon
                    .max(c.block_prog_seq(block))
                    .max(c.block_erase_seq(block));
                if c.block_erase_interrupted(block) {
                    to_reerase.push((chip, block));
                    erased[b as usize] = true;
                    continue;
                }
                if c.block_erase_seq(block) > ckpt_seq {
                    erased[b as usize] = true;
                }
                if c.block_prog_seq(block) > ckpt_seq {
                    to_scan.push((chip, block));
                }
            }
        }
        let mut seq_counter = seq_horizon;
        for &(chip, block) in &to_reerase {
            seq_counter += 1;
            report.nand_us += array
                .chip_mut(chip)
                .expect("valid chip")
                .erase_tagged(block, seq_counter)
                .expect("probed block in range");
            report.interrupted_erases_redone += 1;
        }

        // 3. Full OOB scan of the dirty blocks only.
        let mut torn: Vec<(usize, WlAddr)> = Vec::new();
        let mut replay: Vec<(u64, usize, WlAddr, [u64; 3])> = Vec::new();
        for &(chip, block) in &to_scan {
            report.blocks_scanned += 1;
            let c = array.chip(chip).expect("valid chip");
            for w in 0..g.wls_per_block() {
                let wl = ProgramOrder::HorizontalFirst.wl_at(&g, block, w);
                report.nand_us += OOB_READ_US;
                match c.wl_state(wl) {
                    PageState::Partial => torn.push((chip, wl)),
                    PageState::Written => match c.wl_oob(wl) {
                        Some(oob) if oob.status == OobStatus::Complete && oob.seq > ckpt_seq => {
                            replay.push((oob.seq, chip, wl, oob.lpns));
                        }
                        // Records at or before the checkpoint are already
                        // reflected in it; torn/missing OOB holds no
                        // trustworthy mapping.
                        _ => {}
                    },
                    PageState::Free => {}
                }
            }
        }
        report.torn_wls_quarantined = torn.len() as u64;

        // 4. Rebuild the L2P map: checkpoint entries first (minus stale
        // ones), then the post-checkpoint records in sequence order.
        let mut mapping = Mapping::new(g, chips, config.logical_pages());
        if let Some(c) = &checkpoint {
            for (lpn, entry) in c.l2p.iter().enumerate() {
                let Some(ppn) = entry else { continue };
                let chip = ppn.chip as usize;
                let in_range = chip < chips && u64::from(ppn.page) < g.pages_per_chip();
                let stale = !in_range || {
                    let wl = g.page_unflat(ppn.page as usize).wl;
                    erased_since[chip][wl.block.0 as usize]
                        || array.chip(chip).expect("valid chip").wl_state(wl) != PageState::Written
                };
                if stale {
                    report.stale_ckpt_entries_dropped += 1;
                    continue;
                }
                mapping.map(lpn as u64, *ppn);
                report.ckpt_entries_restored += 1;
            }
        }
        replay.sort_unstable_by_key(|&(seq, ..)| seq);
        for (_, chip, wl, lpns) in &replay {
            for (i, lpn) in lpns.iter().enumerate() {
                if *lpn == WlData::PAD {
                    continue;
                }
                let page = PageAddr {
                    wl: *wl,
                    page: nand3d::PageIndex(i as u8),
                };
                mapping.map(
                    *lpn,
                    Ppn {
                        chip: *chip as u32,
                        page: g.page_flat(page) as u32,
                    },
                );
                report.oob_records_replayed += 1;
            }
        }

        // Rebuild the free pools from physical state: a block is free iff
        // every WL is erased. Torn and partially-written blocks stay
        // closed; GC reclaims them once their garbage makes them
        // profitable victims.
        let mut free_blocks: Vec<VecDeque<BlockId>> = Vec::with_capacity(chips);
        let mut is_free: Vec<Vec<bool>> = Vec::with_capacity(chips);
        for chip in 0..chips {
            let c = array.chip(chip).expect("valid chip");
            let mut pool = VecDeque::new();
            let mut flags = vec![false; blocks as usize];
            for b in 0..blocks {
                let block = BlockId(b);
                let all_free = (0..g.wls_per_block()).all(|w| {
                    c.wl_state(ProgramOrder::HorizontalFirst.wl_at(&g, block, w)) == PageState::Free
                });
                if all_free {
                    pool.push_back(block);
                    flags[b as usize] = true;
                }
            }
            free_blocks.push(pool);
            is_free.push(flags);
        }

        // 5. Fresh volatile state: the OPM/ORT boot cold (re-derived on
        // first touch per h-layer), the WAM and write points reset.
        // H-layers holding a torn WL boot demoted — the §4.1.4 quarantine.
        let mut opm = kind.ps_aware().then(|| {
            let mut opm = Opm::with_ort_capacity(&g, chips, config.ort_capacity);
            // The cluster boots empty like the ORT — it re-warms from
            // post-boot decode traffic, deterministically.
            opm.set_cluster(config.ort_cluster);
            opm
        });
        if let Some(opm) = &mut opm {
            for &(chip, wl) in &torn {
                report.layers_demoted += u64::from(opm.demote_layer(chip, wl));
                // A torn WL's h-layer is also untrusted for cluster
                // seeding until a fresh decode re-vouches for it.
                report.cluster_keys_quarantined +=
                    u64::from(opm.quarantine_cluster_key(chip, wl.block.0, wl.h.0));
            }
        }
        let mut ftl = Ftl {
            kind,
            array,
            mapping,
            free_blocks,
            is_free,
            seq: vec![None; chips],
            wam: (kind == FtlKind::Cube).then(|| {
                Wam::with_active_blocks(
                    g,
                    chips,
                    config.mu_threshold,
                    config.active_blocks_per_chip,
                )
            }),
            opm,
            stats: FtlStats::default(),
            in_gc: false,
            maint: None,
            in_maint: false,
            seq_counter,
            last_gc_erase: vec![None; chips],
            ckpt: ckpt_interval.map(|interval_host_wls| CkptState {
                interval_host_wls,
                host_wls_since: 0,
                blob,
                taken: ckpt_taken,
                pages_written: ckpt_pages_written,
                // The pre-crash region block's WLs are all erased, so
                // the pool rebuild above reclaimed it as free; the next
                // flush re-allocates a backing block.
                region: Vec::new(),
            }),
            trace,
            tel_now_us,
            config,
        };

        // Resume the write points that were open at the power cut: the
        // partially-filled blocks (most recent program sequence first)
        // are re-opened rather than abandoned. Their remaining follower
        // WLs sit under pre-crash leaders whose monitored parameters
        // died with the RAM, so the next program on each such h-layer
        // runs conservative full-verify defaults and re-monitors — the
        // post-boot tPROG warm-up.
        for chip in 0..chips {
            let mut partial: Vec<(u64, BlockId)> = (0..blocks)
                .map(BlockId)
                .filter(|&b| {
                    let c = ftl.array.chip(chip).expect("valid chip");
                    !ftl.is_free[chip][b.0 as usize]
                        && (0..g.wls_per_block()).any(|w| {
                            c.wl_state(ProgramOrder::HorizontalFirst.wl_at(&g, b, w))
                                == PageState::Free
                        })
                })
                .map(|b| {
                    let c = ftl.array.chip(chip).expect("valid chip");
                    (c.block_prog_seq(b), b)
                })
                .collect();
            partial.sort_unstable_by_key(|&(seq, b)| (std::cmp::Reverse(seq), b.0));
            if let Some(wam) = &mut ftl.wam {
                for &(_, b) in partial.iter().take(config.active_blocks_per_chip) {
                    let c = ftl.array.chip(chip).expect("valid chip");
                    wam.resume_block(chip, b, |wl| c.wl_state(wl) == PageState::Free);
                }
            } else if let Some(&(_, b)) = partial.first() {
                // Sequential write point: continue one past the last
                // used WL in program order (abort holes stay skipped).
                let next = (0..g.wls_per_block())
                    .rev()
                    .find(|&w| {
                        ftl.array
                            .chip(chip)
                            .expect("valid chip")
                            .wl_state(ProgramOrder::HorizontalFirst.wl_at(&g, b, w))
                            != PageState::Free
                    })
                    .map_or(0, |w| w + 1);
                ftl.seq[chip] = Some(SeqAlloc { block: b, next });
            }
        }

        // The re-opened write points hold h-layers whose leader-program
        // history died with the RAM: their upcoming WLs will be
        // re-programmed under conservative defaults, so their pre-cut
        // `ΔV_Ref` behaviour is not representative of the cluster
        // average. Quarantine those keys from cluster seeding until a
        // fresh decode re-vouches for each one.
        if let Some(opm) = &mut ftl.opm {
            if let Some(wam) = &ftl.wam {
                for chip in 0..chips {
                    for (block, h) in wam.open_layers(chip) {
                        report.cluster_keys_quarantined +=
                            u64::from(opm.quarantine_cluster_key(chip, block.0, h));
                    }
                }
            }
        }

        // 6. Replay the PLP buffer dump: host-acknowledged pages that were
        // still buffer-resident (including those on torn WLs) are
        // re-written through the normal allocation path.
        ftl.in_maint = true;
        for (i, group) in plp_lpns.chunks(3).enumerate() {
            let chip = i % chips;
            if ftl.free_blocks[chip].len() <= ftl.config.gc_free_block_threshold {
                ftl.in_gc = true;
                report.nand_us += ftl.run_gc(chip, 0.0);
                ftl.in_gc = false;
            }
            let mut lpns = [WlData::PAD; 3];
            lpns[..group.len()].copy_from_slice(group);
            let (t, _) = ftl.program_and_map(chip, lpns, 0.0);
            report.nand_us += t;
            report.plp_pages_replayed += group.len() as u64;
        }
        ftl.in_maint = false;
        ftl.stats = FtlStats::default();
        ftl.trace.emit(
            ftl.tel_now_us,
            EventKind::Spo {
                phase: "recovery_done",
                detail: report.oob_records_replayed,
            },
        );
        (ftl, report)
    }

    /// Performs one bounded unit of background maintenance on `chip`,
    /// rotating among the three services so a hungry one cannot starve
    /// the others of idle windows. Returns the NAND time spent, or
    /// `None` when nothing is due.
    /// Most stale h-layers one re-monitor dispatch handles (each costs a
    /// leader sample read, so this bounds the dispatch's chip time).
    const REMONITOR_LAYER_BATCH: usize = 8;

    fn maintenance_unit(&mut self, chip: usize, mu: f64) -> Option<f64> {
        const SERVICES: u8 = 3;
        let start = self.maint.as_ref()?.next_service[chip];
        for i in 0..SERVICES {
            let svc = (start + i) % SERVICES;
            let work = match svc {
                0 => self.maint_scrub_step(chip, mu),
                1 => self.maint_remonitor_step(chip),
                _ => self.maint_wear_step(chip, mu),
            };
            if let Some(t) = work {
                self.maint
                    .as_mut()
                    .expect("maintenance enabled")
                    .next_service[chip] = (svc + 1) % SERVICES;
                return Some(t);
            }
        }
        None
    }

    /// Retention scrubbing: walks blocks from the per-chip cursor to the
    /// first one holding aged data, samples its BER via a leader-WL read
    /// (which refreshes the h-layer's ORT `ΔV_Ref` entry in place) and
    /// refreshes the whole block when its retention age or sampled BER
    /// crosses the configured thresholds.
    fn maint_scrub_step(&mut self, chip: usize, mu: f64) -> Option<f64> {
        let cfg = self.maint.as_ref()?.config;
        let g = self.geometry();
        let blocks = g.blocks_per_chip;
        let active = self.active_blocks(chip);
        let st = self.maint.as_mut().expect("maintenance enabled");
        let cursor = st.scrub_cursor[chip];
        // Taking the flag clears it; it is re-armed below only while the
        // cursor block is still mid-refresh, so a block recycled out from
        // under the scrubber (e.g. by GC) cannot inherit a stale resume.
        let resuming = std::mem::take(&mut st.scrub_resume[chip]);
        for i in 0..blocks {
            let b = BlockId((cursor + i) % blocks);
            if self.is_free[chip][b.0 as usize] || active.contains(&b) {
                continue;
            }
            if self.ckpt_region_contains(chip, b) {
                // Metadata scrub: the region block holds the checkpoint
                // blob, not mapped pages, so refreshing it is an
                // in-place erase plus a rewrite of the live metadata
                // pages — the block stays in the region.
                let retention = self
                    .array
                    .chip(chip)
                    .expect("valid chip")
                    .block_retention_months(b);
                if retention < cfg.scrub_retention_min_months {
                    continue;
                }
                let per_block = u64::from(g.pages_per_block());
                let live = self
                    .ckpt
                    .as_ref()
                    .map_or(0, |c| c.pages_written % per_block);
                self.seq_counter += 1;
                let mut latency = self
                    .array
                    .chip_mut(chip)
                    .expect("valid chip")
                    .erase_tagged(b, self.seq_counter)
                    .expect("region block in range");
                latency += live as f64 * CKPT_PAGE_PROGRAM_US;
                self.stats.scrub_blocks += 1;
                self.stats.scrub_page_moves += live;
                let st = self.maint.as_mut().expect("maintenance enabled");
                st.scrub_cursor[chip] = (b.0 + 1) % blocks;
                st.scrub_resume[chip] = false;
                if self.trace.wants(EventMask::MAINT) {
                    self.trace.emit(
                        self.tel_now_us,
                        EventKind::Maint {
                            chip: chip as u32,
                            service: "scrub",
                            page_moves: live,
                        },
                    );
                }
                return Some(latency);
            }
            let mut latency = 0.0;
            let refresh = if resuming && i == 0 {
                // Mid-refresh block: the decision was already made (and
                // its BER sampled) when the refresh started.
                true
            } else {
                let chip_ref = self.array.chip(chip).expect("valid chip");
                let retention = chip_ref.block_retention_months(b);
                if retention <= 0.0 {
                    continue;
                }
                let sample_wl = (0..g.hlayers_per_block)
                    .map(|h| g.wl_addr(b, h, 0))
                    .find(|wl| chip_ref.wl_state(*wl) == PageState::Written);
                let sampled_ber = sample_wl
                    .and_then(|wl| chip_ref.wl_current_ber(wl))
                    .unwrap_or(0.0);
                if let Some(wl) = sample_wl {
                    latency += self.maint_sample_read(chip, wl);
                    self.stats.scrub_sample_reads += 1;
                }
                retention >= cfg.scrub_retention_min_months || sampled_ber > cfg.scrub_ber_threshold
            };
            // The cursor parks on a partially-migrated block so the next
            // scrub window resumes it; otherwise it moves on.
            let mut next_cursor = (b.0 + 1) % blocks;
            let mut in_progress = false;
            let mut moved = 0u64;
            if refresh {
                let (t, outcome) = self.refresh_block(chip, b, mu, cfg.scrub_batch_pages);
                latency += t;
                match outcome {
                    RefreshOutcome::Erased { pages_moved } => {
                        self.stats.scrub_blocks += 1;
                        self.stats.scrub_page_moves += pages_moved;
                        moved = pages_moved;
                    }
                    RefreshOutcome::Partial { pages_moved } => {
                        self.stats.scrub_page_moves += pages_moved;
                        moved = pages_moved;
                        next_cursor = b.0;
                        in_progress = true;
                    }
                    RefreshOutcome::Stalled => {}
                }
            }
            let st = self.maint.as_mut().expect("maintenance enabled");
            st.scrub_cursor[chip] = next_cursor;
            st.scrub_resume[chip] = in_progress;
            if latency > 0.0 {
                if self.trace.wants(EventMask::MAINT) {
                    self.trace.emit(
                        self.tel_now_us,
                        EventKind::Maint {
                            chip: chip as u32,
                            service: "scrub",
                            page_moves: moved,
                        },
                    );
                }
                return Some(latency);
            }
        }
        None
    }

    /// Periodic OPM re-monitoring: finds the next block holding h-layers
    /// whose monitored parameters are older than the configured P/E-count
    /// or retention-time budget, drops them (the next program on the
    /// layer re-monitors leader-style instead of reusing drifted skips
    /// and windows) and refreshes each layer's ORT entry with a leader
    /// sample read. At most [`Self::REMONITOR_LAYER_BATCH`] layers are
    /// handled per dispatch so the chip op stays short; a block with more
    /// stale layers is resumed on the next window (re-monitored layers
    /// lose their `recorded_pe` stamp, so they are skipped naturally).
    fn maint_remonitor_step(&mut self, chip: usize) -> Option<f64> {
        let cfg = self.maint.as_ref()?.config;
        self.opm.as_ref()?;
        let g = self.geometry();
        let blocks = g.blocks_per_chip;
        let cursor = self
            .maint
            .as_ref()
            .expect("maintenance enabled")
            .remonitor_cursor[chip];
        for i in 0..blocks {
            let b = BlockId((cursor + i) % blocks);
            if self.is_free[chip][b.0 as usize] {
                continue;
            }
            let (pe_now, retention) = {
                let c = self.array.chip(chip).expect("valid chip");
                (c.env().pe(b.0 as usize), c.block_retention_months(b))
            };
            let mut latency = 0.0;
            let mut handled = 0usize;
            let mut remaining = false;
            for h in 0..g.hlayers_per_block {
                let wl = g.wl_addr(b, h, 0);
                let Some(recorded) = self
                    .opm
                    .as_ref()
                    .expect("checked above")
                    .recorded_pe(chip, wl)
                else {
                    continue;
                };
                let stale = pe_now.saturating_sub(recorded) > cfg.remonitor_pe_budget
                    || retention > cfg.remonitor_retention_budget_months;
                if !stale {
                    continue;
                }
                if handled == Self::REMONITOR_LAYER_BATCH {
                    remaining = true;
                    break;
                }
                let written =
                    self.array.chip(chip).expect("valid chip").wl_state(wl) == PageState::Written;
                self.opm
                    .as_mut()
                    .expect("checked above")
                    .invalidate_layer(chip, wl);
                if written {
                    latency += self.maint_sample_read(chip, wl);
                }
                self.stats.remonitored_layers += 1;
                handled += 1;
            }
            if handled > 0 {
                let next = if remaining { b.0 } else { (b.0 + 1) % blocks };
                self.maint
                    .as_mut()
                    .expect("maintenance enabled")
                    .remonitor_cursor[chip] = next;
                if self.trace.wants(EventMask::MAINT) {
                    self.trace.emit(
                        self.tel_now_us,
                        EventKind::Maint {
                            chip: chip as u32,
                            service: "remonitor",
                            page_moves: 0,
                        },
                    );
                }
                return Some(latency);
            }
        }
        None
    }

    /// Wear leveling: when the chip's erase-count spread exceeds the
    /// configured bound, recycle the coldest closed block — its cold data
    /// migrates to (hotter) free blocks and the least-worn block joins
    /// the allocation pool, narrowing the spread from both ends.
    fn maint_wear_step(&mut self, chip: usize, mu: f64) -> Option<f64> {
        let cfg = self.maint.as_ref()?.config;
        if !cfg.wear_leveling {
            return None;
        }
        if let Some(t) = self.maint_ckpt_wear_step(chip) {
            return Some(t);
        }
        let wear = self.erase_counts(chip);
        let hottest = *wear.iter().max()?;
        let active = self.active_blocks(chip);
        let (coldest_block, coldest) = wear
            .iter()
            .enumerate()
            .filter(|(b, _)| {
                !self.is_free[chip][*b]
                    && !active.contains(&BlockId(*b as u32))
                    && !self.ckpt_region_contains(chip, BlockId(*b as u32))
            })
            .map(|(b, e)| (BlockId(b as u32), *e))
            .min_by_key(|(b, e)| (*e, b.0))?;
        if hottest.saturating_sub(coldest) <= cfg.wear_spread_limit {
            return None;
        }
        // A partial migration leaves the block as the coldest closed one,
        // so the next wear window resumes it automatically.
        let batch = cfg.scrub_batch_pages;
        let (latency, outcome) = self.refresh_block(chip, coldest_block, mu, batch);
        let moved = match outcome {
            RefreshOutcome::Erased { pages_moved } | RefreshOutcome::Partial { pages_moved } => {
                self.stats.wear_level_moves += pages_moved;
                pages_moved
            }
            RefreshOutcome::Stalled => 0,
        };
        if latency > 0.0 && self.trace.wants(EventMask::MAINT) {
            self.trace.emit(
                self.tel_now_us,
                EventKind::Maint {
                    chip: chip as u32,
                    service: "wear_level",
                    page_moves: moved,
                },
            );
        }
        (latency > 0.0).then_some(latency)
    }

    /// Wear-levels the checkpoint region itself: ring erases land on
    /// one block every flush interval, so it runs hot. When its erase
    /// count exceeds the coldest free block's by more than the spread
    /// bound, the ring moves — the live metadata pages are rewritten
    /// into the least-worn free block and the hot block returns to the
    /// allocation pool (erased, so its retention clock is young).
    fn maint_ckpt_wear_step(&mut self, chip: usize) -> Option<f64> {
        if chip != 0 {
            return None;
        }
        let cfg = self.maint.as_ref()?.config;
        let old = *self.ckpt.as_ref()?.region.first()?;
        if self.free_blocks[0].is_empty() {
            return None;
        }
        let wear = self.erase_counts(0);
        let coldest_free = self.free_blocks[0]
            .iter()
            .map(|b| wear[b.0 as usize])
            .min()?;
        if wear[old.0 as usize].saturating_sub(coldest_free) <= cfg.wear_spread_limit {
            return None;
        }
        let fresh = self.pop_free_block(0).expect("pool checked non-empty");
        let per_block = u64::from(self.geometry().pages_per_block());
        let live = self
            .ckpt
            .as_ref()
            .map_or(0, |c| c.pages_written % per_block);
        let mut latency = live as f64 * CKPT_PAGE_PROGRAM_US;
        self.seq_counter += 1;
        latency += self
            .array
            .chip_mut(0)
            .expect("chip 0 exists")
            .erase_tagged(old, self.seq_counter)
            .expect("region block in range");
        let st = self.ckpt.as_mut().expect("region checked above");
        st.region.clear();
        st.region.push(fresh);
        self.free_blocks[0].push_back(old);
        self.is_free[0][old.0 as usize] = true;
        self.stats.erases += 1;
        self.stats.wear_level_moves += live;
        if self.trace.wants(EventMask::MAINT) {
            self.trace.emit(
                self.tel_now_us,
                EventKind::Maint {
                    chip: 0,
                    service: "wear_level",
                    page_moves: live,
                },
            );
        }
        Some(latency)
    }

    /// Refreshes `block` incrementally: migrates up to `batch` of its
    /// valid pages to fresh WLs per call and, once none remain, erases
    /// it, returning it to the free pool young (per-block retention
    /// tracking resets its age on erase). Bounding the batch keeps each
    /// maintenance dispatch short, so host requests never queue behind a
    /// whole-block migration; callers resume a
    /// [`RefreshOutcome::Partial`] block on their next idle window.
    ///
    /// When the free pool is at the GC threshold, this dispatch instead
    /// spends its batch draining the chip's best reclaim victim (often
    /// `block` itself — a half-drained block is the emptiest around), so
    /// maintenance never issues the multi-block GC pass the host write
    /// path is allowed. With no reclaimable garbage at all it gives up
    /// ([`RefreshOutcome::Stalled`]) and a later pass retries once
    /// overwrites have created some.
    fn refresh_block(
        &mut self,
        chip: usize,
        block: BlockId,
        mu: f64,
        batch: u32,
    ) -> (f64, RefreshOutcome) {
        if self.free_blocks[chip].len() <= self.config.gc_free_block_threshold {
            if self.free_blocks[chip].is_empty() {
                // Migration itself consumes free WLs; without any free
                // block the batch below could strand the allocator.
                return (0.0, RefreshOutcome::Stalled);
            }
            let g = self.geometry();
            let per_block = g.pages_per_block();
            let victim = {
                let wear_limit = self
                    .maint
                    .as_ref()
                    .filter(|m| m.config.wear_leveling)
                    .map(|m| m.config.wear_spread_limit);
                let wear = wear_limit.map(|_| self.erase_counts(chip));
                let active: Vec<BlockId> = self.active_blocks(chip);
                let is_free = &self.is_free[chip];
                let candidates = (0..g.blocks_per_chip).map(BlockId).filter(|b| {
                    !is_free[b.0 as usize]
                        && !active.contains(b)
                        && !self.ckpt_region_contains(chip, *b)
                });
                match (wear_limit, &wear) {
                    (Some(limit), Some(w)) => select_victim_wear_aware(
                        &self.mapping,
                        chip,
                        candidates,
                        per_block,
                        |b| w[b.0 as usize],
                        limit,
                    ),
                    _ => select_victim(&self.mapping, chip, candidates, per_block),
                }
            };
            let Some(victim) = victim else {
                return (0.0, RefreshOutcome::Stalled);
            };
            if victim != block {
                let (latency, outcome) = self.migrate_block_batch(chip, victim, mu, batch);
                let moved = match outcome {
                    RefreshOutcome::Erased { pages_moved }
                    | RefreshOutcome::Partial { pages_moved } => pages_moved,
                    RefreshOutcome::Stalled => 0,
                };
                self.stats.maint_gc_page_moves += moved;
                // `block` itself made no progress; report Partial so the
                // caller parks on it and retries next window.
                return (latency, RefreshOutcome::Partial { pages_moved: 0 });
            }
        }
        self.migrate_block_batch(chip, block, mu, batch)
    }

    /// The migration core of [`Self::refresh_block`]: moves up to `batch`
    /// valid pages of `block` and erases it once clean. Assumes the free
    /// pool can absorb one batch.
    fn migrate_block_batch(
        &mut self,
        chip: usize,
        block: BlockId,
        mu: f64,
        batch: u32,
    ) -> (f64, RefreshOutcome) {
        let mut latency = 0.0;
        let mut valid: Vec<u64> = self
            .mapping
            .valid_pages_of_block(chip, block.0)
            .map(|(lpn, _)| lpn)
            .collect();
        let erase_after = valid.len() <= batch.max(1) as usize;
        valid.truncate(batch.max(1) as usize);
        for lpn in &valid {
            latency += self
                .read_mapped(*lpn)
                .expect("valid page must be mapped")
                .nand_us;
        }
        for group in valid.chunks(3) {
            let mut lpns = [WlData::PAD; 3];
            lpns[..group.len()].copy_from_slice(group);
            let (t, _) = self.program_and_map(chip, lpns, mu);
            latency += t;
        }
        let pages_moved = valid.len() as u64;
        if !erase_after {
            return (latency, RefreshOutcome::Partial { pages_moved });
        }
        self.mapping.assert_block_clean(chip, block.0);
        self.seq_counter += 1;
        latency += self
            .array
            .chip_mut(chip)
            .expect("valid chip")
            .erase_tagged(block, self.seq_counter)
            .expect("block in range");
        if let Some(opm) = &mut self.opm {
            opm.invalidate_block(chip, block.0);
        }
        self.free_blocks[chip].push_back(block);
        self.is_free[chip][block.0 as usize] = true;
        self.stats.erases += 1;
        (latency, RefreshOutcome::Erased { pages_moved })
    }

    /// Reads one page of a leader WL during maintenance (BER sampling and
    /// ORT refresh). Charged to the maintenance time budget, not to the
    /// host read statistics.
    fn maint_sample_read(&mut self, chip: usize, wl: nand3d::WlAddr) -> f64 {
        let page = PageAddr {
            wl,
            page: nand3d::PageIndex(0),
        };
        let lookup = self.opm.as_mut().map(|opm| opm.lookup_offset(chip, wl));
        let params = match lookup {
            Some(l) if l.seeded => ReadParams::seeded_from(l.offset),
            Some(l) => ReadParams::from_offset(l.offset),
            None => ReadParams::default(),
        };
        let report = self
            .array
            .chip_mut(chip)
            .expect("valid chip")
            .read_page(page, params)
            .expect("sampled WL is written");
        if let Some(opm) = &mut self.opm {
            if let Some(l) = lookup {
                opm.note_read_outcome(l, report.final_offset);
            }
            opm.update_read_offset(chip, wl, report.final_offset);
        }
        report.latency_us
    }
}

/// Result of one bounded [`Ftl::refresh_block`] dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RefreshOutcome {
    /// No free-pool headroom and GC could not make any; retry later.
    Stalled,
    /// Some valid pages migrated but the block still holds more; the
    /// caller should resume it on its next idle window.
    Partial { pages_moved: u64 },
    /// The block is fully migrated, erased and back in the free pool.
    Erased { pages_moved: u64 },
}

impl FtlDriver for Ftl {
    fn write_wl(&mut self, chip: usize, lpns: [u64; 3], ctx: &HostContext) -> WlWrite {
        self.tel_now_us = ctx.now_us;
        let mut nand_us = 0.0;
        let mut did_gc = false;
        if !self.in_gc && self.free_blocks[chip].len() <= self.config.gc_free_block_threshold {
            self.in_gc = true;
            nand_us += self.run_gc(chip, ctx.buffer_utilization);
            self.in_gc = false;
            did_gc = true;
        }
        let (t, leader) = self.program_and_map(chip, lpns, ctx.buffer_utilization);
        nand_us += t;
        if let Some(t) = self.checkpoint_tick() {
            nand_us += t;
        }
        WlWrite {
            nand_us,
            did_gc,
            leader,
        }
    }

    fn read_page(&mut self, lpn: u64, ctx: &HostContext) -> Option<PageRead> {
        self.tel_now_us = ctx.now_us;
        self.read_mapped(lpn)
    }

    fn trim(&mut self, lpn: u64) {
        if self.mapping.unmap(lpn).is_some() {
            self.stats.host_trims += 1;
        }
    }

    fn maintenance_step(&mut self, chip: usize, ctx: &HostContext) -> Option<MaintWork> {
        self.maint.as_ref()?;
        self.tel_now_us = ctx.now_us;
        self.in_maint = true;
        let work = self.maintenance_unit(chip, ctx.buffer_utilization);
        self.in_maint = false;
        work.map(|nand_us| MaintWork { nand_us })
    }

    fn stats(&self) -> FtlStats {
        let mut stats = self.stats;
        if let Some(opm) = &self.opm {
            let (hits, misses, evictions) = opm.ort_counters();
            stats.ort_hits = hits;
            stats.ort_misses = misses;
            stats.ort_evictions = evictions;
            stats.ort_fallbacks = opm.ort_fallbacks();
            let (seeds, chits, mispredicts) = opm.cluster_counters();
            stats.cluster_seeds = seeds;
            stats.cluster_hits = chits;
            stats.cluster_mispredicts = mispredicts;
        }
        stats
    }

    fn free_blocks(&self) -> u64 {
        self.free_blocks.iter().map(|p| p.len() as u64).sum()
    }

    fn name(&self) -> &str {
        self.kind.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(mu: f64) -> HostContext {
        HostContext {
            buffer_utilization: mu,
            now_us: 0.0,
        }
    }

    fn write_all<F: FtlDriver>(
        ftl: &mut F,
        lpns: impl Iterator<Item = u64>,
        chips: usize,
        mu: f64,
    ) {
        let mut batch = [WlData::PAD; 3];
        let mut n = 0;
        let mut chip = 0;
        for lpn in lpns {
            batch[n] = lpn;
            n += 1;
            if n == 3 {
                ftl.write_wl(chip, batch, &ctx(mu));
                chip = (chip + 1) % chips;
                batch = [WlData::PAD; 3];
                n = 0;
            }
        }
        if n > 0 {
            ftl.write_wl(chip, batch, &ctx(mu));
        }
    }

    #[test]
    fn write_then_read_roundtrip_all_kinds() {
        for kind in FtlKind::ALL {
            let cfg = FtlConfig::small();
            let mut ftl = Ftl::new(kind, cfg);
            write_all(&mut ftl, 0..300, cfg.chips, 0.5);
            for lpn in 0..300 {
                let r = ftl
                    .read_page(lpn, &ctx(0.0))
                    .unwrap_or_else(|| panic!("{}: lpn {lpn} unmapped", kind.name()));
                assert!(r.nand_us > 0.0);
            }
            assert!(ftl.read_page(100_000_000, &ctx(0.0)).is_none());
        }
    }

    #[test]
    fn overwrites_remap_to_latest() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube(cfg);
        write_all(&mut ftl, 0..30, cfg.chips, 0.5);
        write_all(&mut ftl, 0..30, cfg.chips, 0.5);
        for lpn in 0..30 {
            assert!(ftl.read_page(lpn, &ctx(0.0)).is_some());
        }
    }

    #[test]
    fn gc_reclaims_space_under_sustained_overwrites() {
        let cfg = FtlConfig::small();
        for kind in FtlKind::ALL {
            let mut ftl = Ftl::new(kind, cfg);
            let working_set = 200u64;
            // Write far more data than physical capacity / 3 to force GC.
            let total = cfg.nand.geometry.pages_per_chip() * cfg.chips as u64 * 3;
            write_all(
                &mut ftl,
                (0..total).map(|i| i % working_set),
                cfg.chips,
                0.5,
            );
            let stats = ftl.stats();
            assert!(stats.gc_runs > 0, "{}: GC never ran", kind.name());
            assert!(stats.erases > 0);
            // All data still readable after GC.
            for lpn in 0..working_set {
                assert!(
                    ftl.read_page(lpn, &ctx(0.0)).is_some(),
                    "{}: lost lpn {lpn}",
                    kind.name()
                );
            }
        }
    }

    #[test]
    fn cube_writes_followers_under_bursts() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube(cfg);
        // Calm phase banks leaders; burst phase must hit followers.
        write_all(&mut ftl, 0..120, cfg.chips, 0.2);
        let calm_followers = ftl.stats().follower_wl_programs;
        write_all(&mut ftl, 120..240, cfg.chips, 0.95);
        let burst_followers = ftl.stats().follower_wl_programs - calm_followers;
        assert!(
            burst_followers > 30,
            "burst should be served by followers, got {burst_followers}"
        );
    }

    #[test]
    fn cube_is_faster_than_page_on_average() {
        // The core claim: PS-aware programming shortens tPROG (§6).
        let cfg = FtlConfig::small();
        let mut total = std::collections::HashMap::new();
        for kind in [FtlKind::Page, FtlKind::Cube] {
            let mut ftl = Ftl::new(kind, cfg);
            let mut t = 0.0;
            let mut batch = [WlData::PAD; 3];
            let mut n = 0;
            let mut chip = 0;
            for lpn in 0..600u64 {
                batch[n] = lpn;
                n += 1;
                if n == 3 {
                    // High μ so cubeFTL uses its follower pool.
                    t += ftl.write_wl(chip, batch, &ctx(0.95)).nand_us;
                    chip = (chip + 1) % cfg.chips;
                    batch = [WlData::PAD; 3];
                    n = 0;
                }
            }
            total.insert(kind.name(), t);
        }
        let page = total["pageFTL"];
        let cube = total["cubeFTL"];
        let reduction = 1.0 - cube / page;
        assert!(
            (0.10..0.40).contains(&reduction),
            "cube vs page write-time reduction {reduction:.3}"
        );
    }

    #[test]
    fn vert_is_mildly_faster_than_page() {
        let cfg = FtlConfig::small();
        let mut times = Vec::new();
        for kind in [FtlKind::Page, FtlKind::Vert] {
            let mut ftl = Ftl::new(kind, cfg);
            let mut t = 0.0;
            for i in 0..100u64 {
                let lpns = [i * 3, i * 3 + 1, i * 3 + 2];
                t += ftl
                    .write_wl((i % cfg.chips as u64) as usize, lpns, &ctx(0.5))
                    .nand_us;
            }
            times.push(t);
        }
        let reduction = 1.0 - times[1] / times[0];
        assert!(
            (0.04..0.12).contains(&reduction),
            "vertFTL reduction {reduction:.3}, expected ≈8% (§6.2)"
        );
    }

    #[test]
    fn cube_reads_need_fewer_retries_when_aged() {
        let cfg = FtlConfig::small();
        let mut retries = std::collections::HashMap::new();
        for kind in [FtlKind::Page, FtlKind::Cube] {
            let mut ftl = Ftl::new(kind, cfg);
            write_all(&mut ftl, 0..600, cfg.chips, 0.5);
            ftl.set_aging(AgingState::EndOfLife);
            ftl.reset_stats();
            // Re-read everything twice: the second pass benefits from the
            // ORT populated by the first.
            for _ in 0..2 {
                for lpn in 0..600 {
                    ftl.read_page(lpn, &ctx(0.0)).unwrap();
                }
            }
            retries.insert(kind.name(), ftl.stats().read_retries);
        }
        let page = retries["pageFTL"] as f64;
        let cube = retries["cubeFTL"] as f64;
        assert!(
            cube < page * 0.6,
            "cubeFTL retries {cube} vs pageFTL {page}: expected ≥40% fewer"
        );
    }

    #[test]
    fn safety_reprograms_occur_under_disturbance() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube(cfg);
        ftl.set_disturbance_prob(0.05);
        write_all(&mut ftl, (0..3000).map(|i| i % 700), cfg.chips, 0.95);
        assert!(
            ftl.stats().safety_reprograms > 0,
            "disturbances must trigger the §4.1.4 safety path"
        );
        // Data integrity preserved despite re-programs.
        for lpn in 0..700 {
            assert!(ftl.read_page(lpn, &ctx(0.0)).is_some());
        }
    }

    #[test]
    fn stats_reset_clears_counters() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::page(cfg);
        write_all(&mut ftl, 0..30, cfg.chips, 0.5);
        assert!(ftl.stats().host_wl_programs > 0);
        ftl.reset_stats();
        assert_eq!(ftl.stats().host_wl_programs, 0);
    }

    #[test]
    fn names_match_paper() {
        let cfg = FtlConfig::small();
        assert_eq!(Ftl::page(cfg).name(), "pageFTL");
        assert_eq!(Ftl::vert(cfg).name(), "vertFTL");
        assert_eq!(Ftl::cube(cfg).name(), "cubeFTL");
        assert_eq!(Ftl::cube_minus(cfg).name(), "cubeFTL-");
    }

    #[test]
    fn targeted_ber_spike_triggers_one_safety_reprogram_and_remonitor() {
        use nand3d::FaultKind;
        let cfg = FtlConfig::small();
        // cubeFTL- allocates sequentially (horizontal-first), so chip 0's
        // first block programs WL (b0,h0,v0) leader, then (b0,h0,v1)
        // follower. Spike the follower's post-program BER 4× — past the
        // §4.1.4 safety factor of 3×.
        let mut ftl = Ftl::cube_minus(cfg);
        let plan = FaultPlan::seeded(7).with_target(0, 0, 1, FaultKind::BerSpike);
        ftl.set_fault_plan(&plan);

        ftl.write_wl(0, [0, 1, 2], &ctx(0.5)); // leader (b0,h0,v0)
        ftl.write_wl(0, [3, 4, 5], &ctx(0.5)); // follower (b0,h0,v1) — spiked
        ftl.write_wl(0, [6, 7, 8], &ctx(0.5)); // follower (b0,h0,v3)

        let stats = ftl.stats();
        assert_eq!(stats.safety_reprograms, 1, "exactly one §4.1.4 re-program");
        assert_eq!(stats.safety_demotions, 1, "the h-layer was demoted once");
        assert_eq!(stats.host_wl_programs, 3, "re-program is not a host WL");
        assert_eq!(ftl.fault_counters().ber_spikes, 1);
        // The re-program on the next WL ran leader-style with default
        // parameters and re-monitored the layer: it is no longer demoted.
        let g = cfg.nand.geometry;
        let wl = g.wl_addr(BlockId(0), 0, 1);
        let opm = ftl.opm().expect("cubeFTL- has an OPM");
        assert!(!opm.is_demoted(0, wl), "re-monitor lifts the demotion");
        assert!(
            opm.follower_params(0, wl).is_some(),
            "fresh monitored parameters recorded by the re-program"
        );
        // All data (including the re-programmed WL) reads back.
        for lpn in 0..9 {
            assert!(ftl.read_page(lpn, &ctx(0.0)).is_some(), "lost lpn {lpn}");
        }
    }

    #[test]
    fn targeted_abort_reissues_on_next_wl() {
        use nand3d::FaultKind;
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube_minus(cfg);
        let plan = FaultPlan::seeded(7).with_target(0, 0, 1, FaultKind::ProgramAbort);
        ftl.set_fault_plan(&plan);

        ftl.write_wl(0, [0, 1, 2], &ctx(0.5));
        ftl.write_wl(0, [3, 4, 5], &ctx(0.5)); // aborted once, re-issued
        let stats = ftl.stats();
        assert_eq!(stats.program_aborts, 1);
        assert_eq!(stats.host_wl_programs, 2);
        assert_eq!(ftl.fault_counters().program_aborts, 1);
        for lpn in 0..6 {
            assert!(ftl.read_page(lpn, &ctx(0.0)).is_some(), "lost lpn {lpn}");
        }
    }

    #[test]
    fn read_faults_are_recovered_and_counted() {
        use nand3d::FaultKind;
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube(cfg);
        write_all(&mut ftl, 0..300, cfg.chips, 0.5);
        let plan = FaultPlan::seeded(11)
            .with_rate(FaultKind::StuckRetry, 0.05)
            .with_rate(FaultKind::UncorrectableRead, 0.05);
        ftl.set_fault_plan(&plan);
        ftl.reset_stats();
        for lpn in 0..300 {
            // read_mapped debug-asserts the page data matches the LPN, so
            // a faulted read returning wrong data would panic here.
            assert!(ftl.read_page(lpn, &ctx(0.0)).is_some());
        }
        let stats = ftl.stats();
        let counters = ftl.fault_counters();
        assert!(stats.stuck_retry_recoveries > 0, "no stuck retries seen");
        assert!(stats.uncorrectable_recoveries > 0, "no uncorrectables seen");
        // No GC ran, so every injected read fault maps to one recovery.
        assert_eq!(stats.stuck_retry_recoveries, counters.stuck_retries);
        assert_eq!(stats.uncorrectable_recoveries, counters.uncorrectable_reads);
        // Uncorrectable recoveries pay a full offset scan.
        assert!(stats.read_retries >= stats.uncorrectable_recoveries * 8);
    }

    #[test]
    fn fault_injection_is_deterministic() {
        use nand3d::FaultKind;
        let run = || {
            let cfg = FtlConfig::small();
            let mut ftl = Ftl::cube(cfg);
            let plan = FaultPlan::seeded(99)
                .with_rate(FaultKind::IsppLoopOutlier, 0.02)
                .with_rate(FaultKind::BerSpike, 0.02)
                .with_rate(FaultKind::ProgramAbort, 0.01)
                .with_rate(FaultKind::StuckRetry, 0.02)
                .with_rate(FaultKind::UncorrectableRead, 0.02);
            ftl.set_fault_plan(&plan);
            write_all(&mut ftl, (0..1200).map(|i| i % 400), cfg.chips, 0.7);
            for lpn in 0..400 {
                ftl.read_page(lpn, &ctx(0.0)).unwrap();
            }
            (ftl.stats(), ftl.fault_counters())
        };
        let (s1, c1) = run();
        let (s2, c2) = run();
        assert_eq!(s1, s2, "stats must not depend on anything but the seed");
        assert_eq!(c1, c2, "fault draws must be reproducible");
        assert!(c1.total() > 0, "the plan should actually inject faults");
    }

    #[test]
    fn trim_unmaps() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::page(cfg);
        write_all(&mut ftl, 0..3, cfg.chips, 0.5);
        assert!(ftl.read_page(0, &ctx(0.0)).is_some());
        ftl.trim(0);
        assert!(ftl.read_page(0, &ctx(0.0)).is_none());
    }

    #[test]
    fn maintenance_step_is_noop_until_enabled() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube(cfg);
        write_all(&mut ftl, 0..300, cfg.chips, 0.5);
        ftl.set_aging(AgingState::EndOfLife);
        assert!(ftl.maintenance_step(0, &ctx(0.0)).is_none());
        assert_eq!(ftl.maint_config(), None);
        let stats = ftl.stats();
        assert_eq!(stats.scrub_blocks + stats.scrub_sample_reads, 0);
    }

    #[test]
    fn scrubber_refreshes_aged_blocks_and_counts_work() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube(cfg);
        write_all(&mut ftl, 0..300, cfg.chips, 0.5);
        ftl.set_aging(AgingState::EndOfLife); // 12 months > 6-month bar
        ftl.enable_maintenance(MaintConfig::default_on());
        ftl.reset_stats();

        let host_writes_before = ftl.stats().host_wl_programs;
        let mut steps = 0;
        while ftl.maintenance_step(0, &ctx(0.0)).is_some() && steps < 10_000 {
            steps += 1;
        }
        let stats = ftl.stats();
        assert!(stats.scrub_blocks > 0, "no blocks were refreshed");
        assert!(stats.scrub_sample_reads > 0, "no BER sampling happened");
        assert!(stats.scrub_page_moves > 0, "no pages migrated");
        assert_eq!(
            stats.host_wl_programs, host_writes_before,
            "maintenance writes must not count as host writes"
        );
        assert_eq!(
            stats.nand_reads, 0,
            "maintenance reads must not count as host reads"
        );
        // Scrubbed data remains readable.
        for lpn in 0..300 {
            assert!(ftl.read_page(lpn, &ctx(0.0)).is_some(), "lost lpn {lpn}");
        }
        // Refreshed blocks read young: retries drop versus an unscrubbed
        // EndOfLife FTL reading the same data.
        let retries_scrubbed = {
            let mut r = 0;
            ftl.reset_stats();
            for lpn in 0..300 {
                r += ftl.read_page(lpn, &ctx(0.0)).unwrap().retries;
            }
            r
        };
        let mut unscrubbed = Ftl::cube(cfg);
        write_all(&mut unscrubbed, 0..300, cfg.chips, 0.5);
        unscrubbed.set_aging(AgingState::EndOfLife);
        let retries_unscrubbed = {
            let mut r = 0;
            for lpn in 0..300 {
                r += unscrubbed.read_page(lpn, &ctx(0.0)).unwrap().retries;
            }
            r
        };
        assert!(
            retries_scrubbed < retries_unscrubbed,
            "scrubbing should reduce retries: {retries_scrubbed} vs {retries_unscrubbed}"
        );
    }

    #[test]
    fn scrubber_idles_on_fresh_data() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube(cfg);
        write_all(&mut ftl, 0..300, cfg.chips, 0.5);
        // Fresh aging: retention 0 — nothing qualifies, not even for
        // sampling.
        ftl.enable_maintenance(MaintConfig::default_on());
        assert!(ftl.maintenance_step(0, &ctx(0.0)).is_none());
        assert_eq!(ftl.stats().scrub_sample_reads, 0);
    }

    #[test]
    fn remonitor_drops_stale_layer_params() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube_minus(cfg);
        write_all(&mut ftl, 0..300, cfg.chips, 0.5);
        assert!(ftl.opm().unwrap().pending_layers() > 0);
        ftl.set_aging(AgingState::EndOfLife); // 12 months > 6-month budget
        let mut maint = MaintConfig::default_on();
        // Isolate the re-monitor service.
        maint.scrub_retention_min_months = f64::INFINITY;
        maint.scrub_ber_threshold = f64::INFINITY;
        maint.wear_leveling = false;
        ftl.enable_maintenance(maint);

        let pending_before = ftl.opm().unwrap().pending_layers();
        let mut steps = 0;
        while ftl.maintenance_step(0, &ctx(0.0)).is_some() && steps < 10_000 {
            steps += 1;
        }
        let stats = ftl.stats();
        assert!(stats.remonitored_layers > 0, "no layers re-monitored");
        assert!(
            ftl.opm().unwrap().pending_layers() < pending_before,
            "stale monitored parameters should have been dropped"
        );
        assert_eq!(stats.scrub_blocks, 0, "scrubber was disabled");
    }

    #[test]
    fn maintenance_preserves_determinism() {
        let run = || {
            let cfg = FtlConfig::small();
            let mut ftl = Ftl::cube(cfg);
            write_all(&mut ftl, 0..400, cfg.chips, 0.5);
            ftl.set_aging(AgingState::EndOfLife);
            ftl.enable_maintenance(MaintConfig::default_on());
            for chip in 0..cfg.chips {
                for _ in 0..50 {
                    if ftl.maintenance_step(chip, &ctx(0.0)).is_none() {
                        break;
                    }
                }
            }
            write_all(&mut ftl, (0..600).map(|i| i % 400), cfg.chips, 0.7);
            for lpn in 0..400 {
                ftl.read_page(lpn, &ctx(0.0)).unwrap();
            }
            ftl.stats()
        };
        assert_eq!(run(), run(), "maintenance must be fully deterministic");
    }

    #[test]
    fn power_cycle_rebuilds_mapping_from_oob_alone() {
        // No checkpoint ever taken: the whole map must come back from
        // the per-WL OOB records, in sequence order.
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube(cfg);
        write_all(&mut ftl, 0..300, cfg.chips, 0.5);
        write_all(&mut ftl, 0..100, cfg.chips, 0.5); // overwrites: replay order matters
        let (mut ftl, report) = ftl.power_cycle(&[]);
        assert!(!report.checkpoint_loaded);
        assert_eq!(report.ckpt_entries_restored, 0);
        assert!(report.oob_records_replayed >= 300);
        for lpn in 0..300 {
            assert!(
                ftl.read_page(lpn, &ctx(0.0)).is_some(),
                "lpn {lpn} lost across the power cycle"
            );
        }
    }

    #[test]
    fn power_cycle_restores_checkpoint_and_scans_only_the_tail() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube(cfg);
        ftl.enable_checkpointing(u64::MAX); // manual flushes only
        write_all(&mut ftl, 0..200, cfg.chips, 0.5);
        assert!(ftl.take_checkpoint() > 0.0, "flush charges NAND time");
        assert_eq!(ftl.checkpoints_taken(), 1);
        write_all(&mut ftl, 200..260, cfg.chips, 0.5);
        let (mut ftl, report) = ftl.power_cycle(&[]);
        assert!(report.checkpoint_loaded);
        assert!(report.ckpt_entries_restored >= 150);
        assert!(
            report.blocks_scanned < report.blocks_probed,
            "only post-checkpoint blocks get the full OOB scan \
             ({} of {} probed)",
            report.blocks_scanned,
            report.blocks_probed
        );
        for lpn in 0..260 {
            assert!(ftl.read_page(lpn, &ctx(0.0)).is_some());
        }
    }

    #[test]
    fn power_cut_tears_wls_and_recovery_replays_the_plp_dump() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube(cfg);
        write_all(&mut ftl, 0..120, cfg.chips, 0.5);
        // LPNs 0..3 were mid-flush on chip 0 when the power died.
        let torn = ftl.power_cut(0, [0, 1, 2], false);
        assert!(torn > 0, "mapped LPNs must tear their WL");
        let (mut ftl, report) = ftl.power_cycle(&[0, 1, 2]);
        assert_eq!(report.torn_wls_quarantined, torn);
        assert!(
            report.layers_demoted > 0,
            "cubeFTL boots the torn WL's h-layer demoted (§4.1.4)"
        );
        assert_eq!(report.plp_pages_replayed, 3);
        // The torn copies are gone but the PLP replay re-wrote the data.
        for lpn in 0..120 {
            assert!(ftl.read_page(lpn, &ctx(0.0)).is_some());
        }
    }

    #[test]
    fn power_cycle_boots_the_opm_cold() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube(cfg);
        write_all(&mut ftl, 0..200, cfg.chips, 0.5);
        assert!(
            ftl.opm().unwrap().pending_layers() > 0,
            "the warm run must have monitored some layers"
        );
        let seq_before = ftl.seq_counter();
        let (ftl, _) = ftl.power_cycle(&[]);
        assert_eq!(
            ftl.opm().unwrap().pending_layers(),
            0,
            "monitored parameters must NOT survive the power cycle"
        );
        assert!(
            ftl.seq_counter() >= seq_before,
            "the sequence horizon is recovered from flash, never rewound"
        );
    }

    #[test]
    fn hot_checkpoint_block_is_wear_leveled_back_into_the_pool() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube(cfg);
        ftl.enable_checkpointing(u64::MAX); // manual flushes only
        write_all(&mut ftl, 0..120, cfg.chips, 0.5);
        assert!(ftl.take_checkpoint() > 0.0);
        let region = ftl.ckpt_region();
        assert_eq!(region.len(), 1, "first flush allocates a real region block");
        let old = region[0];

        // Ring-erase the region block until it is clearly the hottest
        // thing on the chip.
        let erase_count =
            |ftl: &Ftl, b: BlockId| ftl.array().chip(0).unwrap().env().erase_count(b.0 as usize);
        let mut guard = 0;
        while erase_count(&ftl, old) < 8 {
            ftl.take_checkpoint();
            guard += 1;
            assert!(guard < 20_000, "flushes never crossed a block boundary");
        }

        let mut maint = MaintConfig::default_on();
        maint.wear_spread_limit = 2;
        // Isolate wear leveling from the scrubber.
        maint.scrub_retention_min_months = f64::INFINITY;
        maint.scrub_ber_threshold = f64::INFINITY;
        ftl.enable_maintenance(maint);

        let mut steps = 0;
        while ftl.ckpt_region() == vec![old] && steps < 1000 {
            if ftl.maintenance_step(0, &ctx(0.0)).is_none() {
                break;
            }
            steps += 1;
        }
        let region_now = ftl.ckpt_region();
        assert_eq!(region_now.len(), 1);
        assert_ne!(region_now[0], old, "hot region block must be swapped out");

        // The recycled block's wear is frozen: further ring erases land
        // on the new region block, not the old one.
        let old_wear = erase_count(&ftl, old);
        let new_wear = erase_count(&ftl, region_now[0]);
        for _ in 0..guard {
            ftl.take_checkpoint();
        }
        assert_eq!(erase_count(&ftl, old), old_wear, "old block left the ring");
        assert!(
            erase_count(&ftl, region_now[0]) > new_wear,
            "the new region block absorbs the ring erases"
        );
        // And it is back in the allocation pool: sustained overwrites
        // may allocate it again without tripping any region guard.
        write_all(&mut ftl, (0..1200).map(|i| i % 120), cfg.chips, 0.7);
        for lpn in 0..120 {
            assert!(ftl.read_page(lpn, &ctx(0.0)).is_some(), "lost lpn {lpn}");
        }
    }

    #[test]
    fn checkpoint_region_is_never_a_gc_victim() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube(cfg);
        ftl.enable_checkpointing(u64::MAX);
        write_all(&mut ftl, 0..120, cfg.chips, 0.5);
        ftl.take_checkpoint();
        let region = ftl.ckpt_region();
        assert_eq!(region.len(), 1);
        // Hammer the device hard enough for sustained GC on chip 0.
        write_all(&mut ftl, (0..2400).map(|i| i % 200), cfg.chips, 0.9);
        assert!(ftl.stats().gc_runs > 0, "workload must trigger GC");
        assert_eq!(
            ftl.ckpt_region(),
            region,
            "GC must never erase the live checkpoint region"
        );
    }

    #[test]
    fn lifetime_epochs_age_blocks_monotonically() {
        use lifetime::LifetimeConfig;
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::page(cfg);
        write_all(&mut ftl, 0..300, cfg.chips, 0.5);
        ftl.enable_lifetime_aging();
        let read_retries = |ftl: &mut Ftl| {
            let mut r = 0u64;
            for lpn in 0..300 {
                r += u64::from(ftl.read_page(lpn, &ctx(0.0)).unwrap().retries);
            }
            r
        };
        let fresh = read_retries(&mut ftl);
        let mut engine = LifetimeEngine::new(LifetimeConfig::campaign());
        let mut last = fresh;
        for _ in 0..engine.config().steps() {
            let summary = ftl.advance_lifetime_epoch(&mut engine);
            assert!(summary.pe_added > 0, "every step must add wear");
            assert!(summary.blocks_aged > 0);
            let now = read_retries(&mut ftl);
            assert!(
                now >= last,
                "aging must never reduce retries: {now} < {last}"
            );
            last = now;
        }
        assert!(
            last > fresh,
            "end of life must retry more than fresh: {last} vs {fresh}"
        );
    }

    #[test]
    fn lifetime_epoch_application_is_deterministic() {
        use lifetime::LifetimeConfig;
        let run = || {
            let cfg = FtlConfig::small();
            let mut ftl = Ftl::cube(cfg);
            write_all(&mut ftl, 0..300, cfg.chips, 0.5);
            ftl.enable_lifetime_aging();
            let mut engine = LifetimeEngine::new(LifetimeConfig::campaign());
            let s1 = ftl.advance_lifetime_epoch(&mut engine);
            write_all(&mut ftl, (0..300).map(|i| i % 300), cfg.chips, 0.7);
            let s2 = ftl.advance_lifetime_epoch(&mut engine);
            (s1, s2, ftl.stats())
        };
        assert_eq!(run(), run(), "campaigns must be byte-reproducible");
    }

    #[test]
    fn interrupted_gc_erase_is_redone_on_boot() {
        let cfg = FtlConfig::small();
        let mut ftl = Ftl::cube(cfg);
        // Overwrite heavily so GC has certainly erased a victim.
        write_all(&mut ftl, (0..1200).map(|i| i % 200), cfg.chips, 0.9);
        assert!(ftl.stats().gc_runs > 0, "workload must trigger GC");
        ftl.power_cut(0, [WlData::PAD; 3], true);
        let (mut ftl, report) = ftl.power_cycle(&[]);
        assert_eq!(report.interrupted_erases_redone, 1);
        for lpn in 0..200 {
            assert!(ftl.read_page(lpn, &ctx(0.0)).is_some());
        }
    }
}
