//! Greedy garbage collection: victim selection.
//!
//! All four FTL variants share the same GC policy (the paper's
//! contribution is orthogonal to GC): when a chip runs low on free
//! blocks, the block with the fewest valid pages among the closed blocks
//! is migrated and erased.

use crate::mapping::Mapping;
use nand3d::BlockId;

/// Selects the GC victim on `chip`: the candidate block with the fewest
/// valid pages. Returns `None` when `candidates` is empty or every
/// candidate is fully valid (nothing reclaimable).
pub fn select_victim(
    mapping: &Mapping,
    chip: usize,
    candidates: impl Iterator<Item = BlockId>,
    pages_per_block: u32,
) -> Option<BlockId> {
    candidates
        .map(|b| (mapping.valid_in_block(chip, b.0), b))
        .filter(|(valid, _)| *valid < pages_per_block)
        .min_by_key(|(valid, b)| (*valid, b.0))
        .map(|(_, b)| b)
}

/// Wear-aware victim selection for the maintenance subsystem's wear
/// leveling: like [`select_victim`] it reclaims the block with the
/// fewest valid pages, but candidates whose erase count exceeds the
/// coldest candidate's by more than `wear_spread_limit` are excluded
/// (erasing them again would widen the hot/cold spread), and remaining
/// ties break toward the less-worn block.
pub fn select_victim_wear_aware(
    mapping: &Mapping,
    chip: usize,
    candidates: impl Iterator<Item = BlockId>,
    pages_per_block: u32,
    erase_count: impl Fn(BlockId) -> u32,
    wear_spread_limit: u32,
) -> Option<BlockId> {
    let scored: Vec<(u32, u32, BlockId)> = candidates
        .map(|b| (mapping.valid_in_block(chip, b.0), erase_count(b), b))
        .filter(|(valid, _, _)| *valid < pages_per_block)
        .collect();
    let coldest = scored.iter().map(|(_, wear, _)| *wear).min()?;
    scored
        .into_iter()
        .filter(|(_, wear, _)| *wear <= coldest.saturating_add(wear_spread_limit))
        .min_by_key(|(valid, wear, b)| (*valid, *wear, b.0))
        .map(|(_, _, b)| b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Ppn;
    use nand3d::Geometry;

    #[test]
    fn picks_min_valid_block() {
        let g = Geometry::small();
        let mut m = Mapping::new(g, 1, 1000);
        let ppb = g.pages_per_block();
        // Block 0: 2 valid pages; block 1: 1 valid page; block 2: empty.
        m.map(1, Ppn { chip: 0, page: 0 });
        m.map(2, Ppn { chip: 0, page: 1 });
        m.map(3, Ppn { chip: 0, page: ppb });
        let candidates = [BlockId(0), BlockId(1)];
        let victim = select_victim(&m, 0, candidates.into_iter(), ppb);
        assert_eq!(victim, Some(BlockId(1)));
    }

    #[test]
    fn fully_valid_blocks_are_not_victims() {
        let g = Geometry::small();
        let mut m = Mapping::new(g, 1, 1000);
        let ppb = g.pages_per_block();
        for p in 0..ppb {
            m.map(u64::from(p), Ppn { chip: 0, page: p });
        }
        assert_eq!(
            select_victim(&m, 0, [BlockId(0)].into_iter(), ppb),
            None,
            "no garbage to reclaim"
        );
    }

    #[test]
    fn empty_candidates_yield_none() {
        let g = Geometry::small();
        let m = Mapping::new(g, 1, 10);
        assert_eq!(select_victim(&m, 0, std::iter::empty(), 96), None);
    }

    #[test]
    fn ties_break_deterministically() {
        let g = Geometry::small();
        let m = Mapping::new(g, 1, 10);
        let victim = select_victim(&m, 0, [BlockId(3), BlockId(1)].into_iter(), 96);
        assert_eq!(victim, Some(BlockId(1)), "lowest id wins ties");
    }

    #[test]
    fn wear_aware_excludes_hot_blocks_greedy_would_pick() {
        let g = Geometry::small();
        let mut m = Mapping::new(g, 1, 1000);
        let ppb = g.pages_per_block();
        // Block 0: 1 valid page but heavily worn; block 1: 3 valid pages,
        // cold. Greedy picks block 0; wear-aware refuses to widen the
        // spread and takes the cold block instead.
        m.map(1, Ppn { chip: 0, page: 0 });
        for p in 0..3 {
            m.map(
                10 + u64::from(p),
                Ppn {
                    chip: 0,
                    page: ppb + p,
                },
            );
        }
        let wear = |b: BlockId| if b.0 == 0 { 40 } else { 2 };
        let candidates = [BlockId(0), BlockId(1)];
        assert_eq!(
            select_victim(&m, 0, candidates.into_iter(), ppb),
            Some(BlockId(0)),
            "greedy ignores wear"
        );
        assert_eq!(
            select_victim_wear_aware(&m, 0, candidates.into_iter(), ppb, wear, 8),
            Some(BlockId(1)),
            "wear-aware excludes the hot block"
        );
    }

    #[test]
    fn wear_aware_matches_greedy_when_spread_is_bounded() {
        let g = Geometry::small();
        let mut m = Mapping::new(g, 1, 1000);
        let ppb = g.pages_per_block();
        // Block 0: 1 valid page, slightly worn; block 1: 2 valid pages,
        // cold. The spread (3) is inside the limit, so the emptiest block
        // wins exactly as under greedy selection.
        m.map(1, Ppn { chip: 0, page: 0 });
        m.map(2, Ppn { chip: 0, page: ppb });
        m.map(
            3,
            Ppn {
                chip: 0,
                page: ppb + 1,
            },
        );
        let wear = |b: BlockId| if b.0 == 0 { 5 } else { 2 };
        let candidates = [BlockId(0), BlockId(1)];
        assert_eq!(
            select_victim_wear_aware(&m, 0, candidates.into_iter(), ppb, wear, 8),
            Some(BlockId(0)),
            "within the spread limit the emptiest block still wins"
        );
    }

    #[test]
    fn wear_aware_breaks_valid_count_ties_toward_cold_blocks() {
        let g = Geometry::small();
        let m = Mapping::new(g, 1, 10);
        // All candidates empty; block 4 is the least worn.
        let wear = |b: BlockId| match b.0 {
            2 => 7,
            4 => 1,
            _ => 3,
        };
        let victim = select_victim_wear_aware(
            &m,
            0,
            [BlockId(2), BlockId(4), BlockId(6)].into_iter(),
            96,
            wear,
            100,
        );
        assert_eq!(victim, Some(BlockId(4)), "cold block wins the tie");
    }

    #[test]
    fn wear_aware_all_clean_yields_none() {
        let g = Geometry::small();
        let mut m = Mapping::new(g, 1, 1000);
        let ppb = g.pages_per_block();
        // Every candidate fully valid: nothing reclaimable at any wear.
        for p in 0..ppb {
            m.map(u64::from(p), Ppn { chip: 0, page: p });
        }
        assert_eq!(
            select_victim_wear_aware(&m, 0, [BlockId(0)].into_iter(), ppb, |_| 0, 8),
            None
        );
        assert_eq!(
            select_victim_wear_aware(&m, 0, std::iter::empty(), ppb, |_| 0, 8),
            None,
            "no candidates at all"
        );
    }

    #[test]
    fn wear_aware_single_candidate_is_selected_even_when_hot() {
        let g = Geometry::small();
        let mut m = Mapping::new(g, 1, 1000);
        let ppb = g.pages_per_block();
        m.map(1, Ppn { chip: 0, page: 0 });
        // With a single (reclaimable) candidate, the spread window is
        // anchored on that candidate itself, so it is always eligible.
        assert_eq!(
            select_victim_wear_aware(&m, 0, [BlockId(0)].into_iter(), ppb, |_| 1000, 0),
            Some(BlockId(0)),
            "sole free-able block must remain selectable"
        );
    }
}
