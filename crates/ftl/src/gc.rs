//! Greedy garbage collection: victim selection.
//!
//! All four FTL variants share the same GC policy (the paper's
//! contribution is orthogonal to GC): when a chip runs low on free
//! blocks, the block with the fewest valid pages among the closed blocks
//! is migrated and erased.

use crate::mapping::Mapping;
use nand3d::BlockId;

/// Selects the GC victim on `chip`: the candidate block with the fewest
/// valid pages. Returns `None` when `candidates` is empty or every
/// candidate is fully valid (nothing reclaimable).
pub fn select_victim(
    mapping: &Mapping,
    chip: usize,
    candidates: impl Iterator<Item = BlockId>,
    pages_per_block: u32,
) -> Option<BlockId> {
    candidates
        .map(|b| (mapping.valid_in_block(chip, b.0), b))
        .filter(|(valid, _)| *valid < pages_per_block)
        .min_by_key(|(valid, b)| (*valid, b.0))
        .map(|(_, b)| b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::Ppn;
    use nand3d::Geometry;

    #[test]
    fn picks_min_valid_block() {
        let g = Geometry::small();
        let mut m = Mapping::new(g, 1, 1000);
        let ppb = g.pages_per_block();
        // Block 0: 2 valid pages; block 1: 1 valid page; block 2: empty.
        m.map(1, Ppn { chip: 0, page: 0 });
        m.map(2, Ppn { chip: 0, page: 1 });
        m.map(3, Ppn { chip: 0, page: ppb });
        let candidates = [BlockId(0), BlockId(1)];
        let victim = select_victim(&m, 0, candidates.into_iter(), ppb);
        assert_eq!(victim, Some(BlockId(1)));
    }

    #[test]
    fn fully_valid_blocks_are_not_victims() {
        let g = Geometry::small();
        let mut m = Mapping::new(g, 1, 1000);
        let ppb = g.pages_per_block();
        for p in 0..ppb {
            m.map(u64::from(p), Ppn { chip: 0, page: p });
        }
        assert_eq!(
            select_victim(&m, 0, [BlockId(0)].into_iter(), ppb),
            None,
            "no garbage to reclaim"
        );
    }

    #[test]
    fn empty_candidates_yield_none() {
        let g = Geometry::small();
        let m = Mapping::new(g, 1, 10);
        assert_eq!(select_victim(&m, 0, std::iter::empty(), 96), None);
    }

    #[test]
    fn ties_break_deterministically() {
        let g = Geometry::small();
        let m = Mapping::new(g, 1, 10);
        let victim = select_victim(&m, 0, [BlockId(3), BlockId(1)].into_iter(), 96);
        assert_eq!(victim, Some(BlockId(1)), "lowest id wins ties");
    }
}
