//! The WL Allocation Manager (WAM) of cubeFTL (paper §5.2, Fig. 16).
//!
//! The WAM exploits the write-performance asymmetry between slow leader
//! WLs and fast follower WLs. It watches the write-buffer utilization
//! `μ`: under `μ ≤ μ_TH` it spends the slow leader WLs (banking fast
//! followers for later); under a burst (`μ > μ_TH`) it serves writes from
//! the follower pool. Active blocks are managed in a *fully mixed*
//! fashion based on the mixed-order scheme: per active block, `i_Leader`
//! points at the h-layer with the next free leader WL and `i_Follower`
//! at the h-layer with the next free follower WL, with followers only
//! usable below already-programmed leaders (`i_Follower < i_Leader`).
//!
//! The paper uses **two active blocks per chip** so that leader WLs
//! rarely run out while followers are being banked.

use nand3d::{BlockId, Geometry, WlAddr};
use serde::{Deserialize, Serialize};

/// A WL selected by the WAM, tagged with its role.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WlChoice {
    /// A leading WL, programmed with default parameters and monitored.
    Leader(WlAddr),
    /// A follower WL, programmed with the OPM's optimized parameters.
    Follower(WlAddr),
}

impl WlChoice {
    /// The chosen WL address.
    pub fn addr(&self) -> WlAddr {
        match self {
            WlChoice::Leader(wl) | WlChoice::Follower(wl) => *wl,
        }
    }

    /// Whether this is a leader WL.
    pub fn is_leader(&self) -> bool {
        matches!(self, WlChoice::Leader(_))
    }
}

/// Write-point state of one active block under the mixed-order scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct ActiveBlock {
    block: BlockId,
    /// `i_Leader`: h-layer of the next free leader WL.
    next_leader_h: u16,
    /// `i_Follower`: (h-layer, v-layer) of the next free follower WL.
    next_follower: (u16, u16),
}

impl ActiveBlock {
    fn new(block: BlockId) -> Self {
        ActiveBlock {
            block,
            next_leader_h: 0,
            next_follower: (0, 1),
        }
    }

    fn has_leader(&self, g: &Geometry) -> bool {
        self.next_leader_h < g.hlayers_per_block
    }

    /// Followers are usable only on h-layers whose leader was programmed.
    fn has_follower(&self, g: &Geometry) -> bool {
        self.next_follower.0 < g.hlayers_per_block && self.next_follower.0 < self.next_leader_h
    }

    fn is_full(&self, g: &Geometry) -> bool {
        !self.has_leader(g) && self.next_follower.0 >= g.hlayers_per_block
    }

    fn take_leader(&mut self, g: &Geometry) -> WlAddr {
        debug_assert!(self.has_leader(g));
        let wl = g.wl_addr(self.block, self.next_leader_h, 0);
        self.next_leader_h += 1;
        wl
    }

    fn take_follower(&mut self, g: &Geometry) -> WlAddr {
        debug_assert!(self.has_follower(g));
        let (h, v) = self.next_follower;
        let wl = g.wl_addr(self.block, h, v);
        self.next_follower = if v + 1 < g.wls_per_hlayer {
            (h, v + 1)
        } else {
            (h + 1, 1)
        };
        wl
    }
}

#[derive(Debug, Clone, Default)]
struct ChipWam {
    active: Vec<ActiveBlock>,
}

/// The WL Allocation Manager: two mixed-order active blocks per chip and
/// the `μ`-driven leader/follower policy.
#[derive(Debug, Clone)]
pub struct Wam {
    geometry: Geometry,
    per_chip: Vec<ChipWam>,
    mu_threshold: f64,
    active_per_chip: usize,
}

impl Wam {
    /// A WAM for `chips` chips with burst threshold `mu_threshold`
    /// (§5.2; the paper suggests 0.9) and two active blocks per chip.
    pub fn new(geometry: Geometry, chips: usize, mu_threshold: f64) -> Self {
        Wam::with_active_blocks(geometry, chips, mu_threshold, 2)
    }

    /// A WAM with a custom number of active blocks per chip — the §5.2
    /// trade-off: more active blocks keep leader WLs available longer
    /// but grow the OPM's parameter memory.
    ///
    /// # Panics
    ///
    /// Panics if `active_per_chip` is zero.
    pub fn with_active_blocks(
        geometry: Geometry,
        chips: usize,
        mu_threshold: f64,
        active_per_chip: usize,
    ) -> Self {
        assert!(active_per_chip > 0, "need at least one active block");
        Wam {
            geometry,
            per_chip: vec![ChipWam::default(); chips],
            mu_threshold,
            active_per_chip,
        }
    }

    /// Selects the next WL on `chip` for a host (or GC) write.
    ///
    /// `mu` is the current write-buffer utilization; `alloc_block` is
    /// called when an active-block slot needs a fresh erased block and
    /// must eventually supply one (GC guarantees this upstream).
    ///
    /// # Panics
    ///
    /// Panics if no WL can be produced even after requesting new blocks —
    /// that indicates the caller violated the free-block invariant.
    pub fn select(
        &mut self,
        chip: usize,
        mu: f64,
        mut alloc_block: impl FnMut() -> Option<BlockId>,
    ) -> WlChoice {
        // Refill active-block slots.
        let state = &mut self.per_chip[chip];
        state.active.retain(|b| !b.is_full(&self.geometry));
        while state.active.len() < self.active_per_chip {
            match alloc_block() {
                Some(b) => state.active.push(ActiveBlock::new(b)),
                None => break,
            }
        }
        assert!(
            !state.active.is_empty(),
            "WAM has no active block and the allocator returned none"
        );

        let want_follower = mu > self.mu_threshold;
        let g = &self.geometry;

        if want_follower {
            // Burst: serve from the follower pool when possible (②).
            if let Some(b) = state.active.iter_mut().find(|b| b.has_follower(g)) {
                return WlChoice::Follower(b.take_follower(g));
            }
            if let Some(b) = state.active.iter_mut().find(|b| b.has_leader(g)) {
                return WlChoice::Leader(b.take_leader(g));
            }
        } else {
            // Calm: prefer the slow leader WLs (①), banking followers.
            if let Some(b) = state.active.iter_mut().find(|b| b.has_leader(g)) {
                return WlChoice::Leader(b.take_leader(g));
            }
            if let Some(b) = state.active.iter_mut().find(|b| b.has_follower(g)) {
                return WlChoice::Follower(b.take_follower(g));
            }
        }
        unreachable!("an active block always has a leader or a follower free")
    }

    /// Re-opens `block` as an active write point on `chip`, deriving its
    /// mixed-order cursors from the physical WL states (`is_free` says
    /// whether a WL is still erased and programmable). Crash recovery
    /// uses this to resume the blocks that were active at the power cut:
    /// their remaining follower WLs sit under pre-crash leaders whose
    /// monitored parameters died with the RAM, so the next program on
    /// each such h-layer runs conservative defaults and re-monitors.
    ///
    /// Returns `false` (leaving the block closed) if the block is
    /// already full or the chip's active slots are all taken.
    pub fn resume_block(
        &mut self,
        chip: usize,
        block: BlockId,
        is_free: impl Fn(WlAddr) -> bool,
    ) -> bool {
        let g = self.geometry;
        // Cursors point one past the last used WL of each kind; torn
        // (unprogrammable) WLs count as used, abort holes are skipped.
        let next_leader_h = (0..g.hlayers_per_block)
            .rev()
            .find(|&h| !is_free(g.wl_addr(block, h, 0)))
            .map_or(0, |h| h + 1);
        let mut next_follower = (0, 1);
        for h in 0..g.hlayers_per_block {
            for v in 1..g.wls_per_hlayer {
                if !is_free(g.wl_addr(block, h, v)) {
                    next_follower = if v + 1 < g.wls_per_hlayer {
                        (h, v + 1)
                    } else {
                        (h + 1, 1)
                    };
                }
            }
        }
        let resumed = ActiveBlock {
            block,
            next_leader_h,
            next_follower,
        };
        let state = &mut self.per_chip[chip];
        if resumed.is_full(&g) || state.active.len() >= self.active_per_chip {
            return false;
        }
        state.active.push(resumed);
        true
    }

    /// Blocks currently open for writing on `chip` (these must not be
    /// selected as GC victims).
    pub fn active_blocks(&self, chip: usize) -> impl Iterator<Item = BlockId> + '_ {
        self.per_chip[chip].active.iter().map(|b| b.block)
    }

    /// The `(block, h-layer)` pairs still open for programming on
    /// `chip`'s active blocks: every h-layer at or above the follower
    /// cursor and below the leader cursor plus the leader frontier
    /// itself. After crash recovery these are the layers whose leader
    /// parameters died with the RAM — the read pipeline's cluster
    /// quarantines them from seeding until a fresh decode re-vouches.
    pub fn open_layers(&self, chip: usize) -> impl Iterator<Item = (BlockId, u16)> + '_ {
        let hlayers = self.geometry.hlayers_per_block;
        self.per_chip[chip].active.iter().flat_map(move |b| {
            let from = b.next_follower.0.min(b.next_leader_h);
            let to = b.next_leader_h.min(hlayers.saturating_sub(1));
            (from..=to).map(move |h| (b.block, h))
        })
    }

    /// The burst threshold `μ_TH`.
    pub fn mu_threshold(&self) -> f64 {
        self.mu_threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wam() -> Wam {
        Wam::new(Geometry::small(), 1, 0.9)
    }

    #[test]
    fn calm_writes_use_leaders_first() {
        let mut w = wam();
        let mut next = 0u32;
        let mut alloc = || {
            next += 1;
            Some(BlockId(next - 1))
        };
        for _ in 0..4 {
            let c = w.select(0, 0.1, &mut alloc);
            assert!(c.is_leader(), "calm writes must use leaders");
            assert!(c.addr().is_leader());
        }
    }

    #[test]
    fn burst_writes_use_followers_once_banked() {
        let mut w = wam();
        let mut next = 0u32;
        let mut alloc = || {
            next += 1;
            Some(BlockId(next - 1))
        };
        // Bank two leaders first.
        let l0 = w.select(0, 0.1, &mut alloc);
        let _l1 = w.select(0, 0.1, &mut alloc);
        // Burst: followers of the programmed leaders' h-layers.
        for _ in 0..3 {
            let c = w.select(0, 0.95, &mut alloc);
            assert!(!c.is_leader(), "burst writes must use followers");
            assert_eq!(c.addr().h, l0.addr().h, "followers fill lowest layer first");
        }
    }

    #[test]
    fn burst_before_any_leader_falls_back_to_leader() {
        let mut w = wam();
        let mut alloc = || Some(BlockId(0));
        let c = w.select(0, 0.99, &mut alloc);
        assert!(c.is_leader(), "no follower is usable before its leader");
    }

    #[test]
    fn followers_never_precede_their_leader() {
        let mut w = wam();
        let mut next = 0u32;
        let mut alloc = || {
            next += 1;
            Some(BlockId(next - 1))
        };
        let mut leaders_done: std::collections::HashSet<(u32, u16)> =
            std::collections::HashSet::new();
        // Alternate calm and burst writes over two full blocks.
        for i in 0..(8 * 4 * 2) {
            let mu = if i % 3 == 0 { 0.95 } else { 0.2 };
            let c = w.select(0, mu, &mut alloc);
            let wl = c.addr();
            if c.is_leader() {
                leaders_done.insert((wl.block.0, wl.h.0));
            } else {
                assert!(
                    leaders_done.contains(&(wl.block.0, wl.h.0)),
                    "follower {wl} before leader"
                );
            }
        }
    }

    #[test]
    fn never_selects_same_wl_twice() {
        let mut w = wam();
        let mut next = 0u32;
        let mut alloc = || {
            next += 1;
            Some(BlockId(next - 1))
        };
        let mut seen = std::collections::HashSet::new();
        for i in 0..500 {
            let mu = f64::from(i % 10) / 10.0;
            let wl = w.select(0, mu, &mut alloc).addr();
            assert!(seen.insert(wl), "WL {wl} selected twice");
        }
    }

    #[test]
    fn exhausted_leaders_fall_back_to_followers() {
        let mut w = wam();
        // Single block available, never replaced.
        let mut calls = 0;
        let mut alloc = || {
            calls += 1;
            (calls <= 1).then_some(BlockId(7))
        };
        // Exhaust all 8 leaders calmly.
        for _ in 0..8 {
            assert!(w.select(0, 0.0, &mut alloc).is_leader());
        }
        // Calm writes must now use followers (the §5.2 "awkward
        // situation" the second active block normally avoids).
        let c = w.select(0, 0.0, &mut alloc);
        assert!(!c.is_leader());
    }

    #[test]
    fn two_active_blocks_reported() {
        let mut w = wam();
        let mut next = 0u32;
        let mut alloc = || {
            next += 1;
            Some(BlockId(next - 1))
        };
        let _ = w.select(0, 0.0, &mut alloc);
        let blocks: Vec<BlockId> = w.active_blocks(0).collect();
        assert_eq!(blocks.len(), 2, "paper: two active blocks per chip");
    }

    #[test]
    #[should_panic(expected = "no active block")]
    fn allocator_failure_panics() {
        let mut w = wam();
        let _ = w.select(0, 0.0, || None);
    }

    #[test]
    fn open_layers_cover_the_write_frontier() {
        let mut w = wam();
        let mut next = 0u32;
        let mut alloc = || {
            next += 1;
            Some(BlockId(next - 1))
        };
        // Two calm leader writes open two blocks at their first h-layer.
        let l0 = w.select(0, 0.1, &mut alloc).addr();
        let _l1 = w.select(0, 0.1, &mut alloc).addr();
        let open: Vec<(BlockId, u16)> = w.open_layers(0).collect();
        assert!(
            open.contains(&(l0.block, l0.h.0)),
            "the programmed leader's layer is still open for followers: {open:?}"
        );
        // Every open layer belongs to an active block, and every active
        // block contributes at least one open layer.
        let active: std::collections::HashSet<BlockId> = w.active_blocks(0).collect();
        assert!(open.iter().all(|(b, _)| active.contains(b)));
        for b in &active {
            assert!(
                open.iter().any(|(ob, _)| ob == b),
                "{b:?} has no open layer"
            );
        }
        // Layer indices never exceed the geometry.
        let hlayers = Geometry::small().hlayers_per_block;
        assert!(open.iter().all(|&(_, h)| h < hlayers));
    }
}
