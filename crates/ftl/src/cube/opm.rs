//! The Optimal Parameter Manager (OPM) of cubeFTL (paper §5.1).
//!
//! The OPM turns the horizontal intra-layer similarity into program and
//! read parameters:
//!
//! * From each **leader-WL program** it records the monitored
//!   `[L_min^Pi, L_max^Pi]` loop intervals and `BER_EP1`, computes the
//!   per-state skip counts `N_skip^Pi` and the `V_Start`/`V_Final`
//!   adjustment via the offline `S_M` conversion table, and keeps them
//!   until the followers of that h-layer consume them.
//! * For reads it maintains the **optimal read-reference table (ORT)**:
//!   the most recent working `ΔV_Ref` offset per h-layer (2 bytes per
//!   h-layer in the paper's encoding, ~0.001% space overhead).

use crate::config::OrtClusterConfig;
use nand3d::ispp::{margin_mv_for_spare, split_margin_mv};
use nand3d::{
    Geometry, IsppEngine, LoopInterval, ProgramParams, ProgramReport, WlAddr, MAX_OFFSET_INDEX,
    NUM_PROGRAM_STATES,
};
use serde::{Deserialize, Serialize};
use std::cell::Cell;
use std::collections::{HashMap, HashSet};

/// Parameters monitored from a leader-WL program, ready for reuse by the
/// followers of the same h-layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeaderParams {
    /// Per-state skip counts (`N_skip^Pi = L_min^Pi − 1` in cumulative
    /// loop numbers).
    pub n_skip: [u8; NUM_PROGRAM_STATES],
    /// The raw monitored `[L_min, L_max]` intervals (kept for latency
    /// prediction, see [`LatencyPredictor`](crate::predictor::LatencyPredictor)).
    pub leader_intervals: [LoopInterval; NUM_PROGRAM_STATES],
    /// `V_Start` increase, mV.
    pub v_start_up_mv: f64,
    /// `V_Final` decrease, mV.
    pub v_final_down_mv: f64,
    /// The leader's post-program BER, baseline for the §4.1.4 safety
    /// check.
    pub leader_post_ber: f64,
}

impl LeaderParams {
    /// The optimized [`ProgramParams`] for a follower WL.
    pub fn to_program_params(&self) -> ProgramParams {
        ProgramParams {
            n_skip: self.n_skip,
            v_start_up_mv: self.v_start_up_mv,
            v_final_down_mv: self.v_final_down_mv,
        }
    }
}

/// Key of an h-layer within the SSD: (chip, block, h-layer).
type LayerKey = (u32, u32, u16);

/// Key of an ORT entry within one chip: (block, h-layer).
type OrtKey = (u32, u16);

/// One cached `ΔV_Ref` offset plus its LRU stamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OrtEntry {
    offset: u8,
    /// Q8.8 EWMA of the key's decoded offsets — only maintained in
    /// smoothed mode (cluster enabled), where `offset` is its rounding.
    /// Smoothing filters the per-read ±1 thermal jitter out of the
    /// cached start, so warm reads launch from the jitter-free optimum
    /// instead of chasing the previous read's jitter.
    ewma_q8: u16,
    stamp: u64,
}

/// A capacity-bounded per-chip ORT with LRU eviction.
///
/// The paper sizes the ORT at ~2 bytes per h-layer of the whole device
/// (§5.1); a real controller holds it in scarce SRAM, so the table is
/// modelled as a cache: at most `capacity` h-layers per chip keep a
/// cached offset, and inserting into a full table evicts the least
/// recently used entry. A lookup miss falls back to the default offset
/// (0 — read-reference unshifted), exactly what the dense table returned
/// for never-updated entries, so an unbounded capacity reproduces the
/// previous behaviour bit for bit.
#[derive(Debug, Clone)]
struct OrtCache {
    entries: HashMap<OrtKey, OrtEntry>,
    capacity: usize,
    /// Monotonic access counter; unique per entry, so LRU eviction is
    /// deterministic (no iteration-order dependence).
    tick: u64,
}

impl OrtCache {
    fn new(capacity: usize) -> Self {
        OrtCache {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            tick: 0,
        }
    }

    /// Cached offset, bumping the entry's recency.
    fn get(&mut self, key: OrtKey) -> Option<u8> {
        self.tick += 1;
        let tick = self.tick;
        self.entries.get_mut(&key).map(|e| {
            e.stamp = tick;
            e.offset
        })
    }

    /// Cached offset without touching recency or counters.
    fn peek(&self, key: OrtKey) -> Option<u8> {
        self.entries.get(&key).map(|e| e.offset)
    }

    /// Inserts or refreshes an entry; returns `true` when a victim was
    /// evicted to make room. In smoothed mode a refresh folds the new
    /// decode into the entry's Q8.8 EWMA (weight 1/4) and caches its
    /// rounding; otherwise the entry stores the decode verbatim.
    fn insert(&mut self, key: OrtKey, offset: u8, smooth: bool) -> bool {
        self.tick += 1;
        let stamp = self.tick;
        if let Some(e) = self.entries.get_mut(&key) {
            if smooth {
                let x = u32::from(offset) << 8;
                let ewma = (u32::from(e.ewma_q8) * 3 + x) / 4;
                *e = OrtEntry {
                    offset: (((ewma + 128) >> 8) as u8).min(MAX_OFFSET_INDEX),
                    ewma_q8: ewma as u16,
                    stamp,
                };
            } else {
                *e = OrtEntry {
                    offset,
                    ewma_q8: u16::from(offset) << 8,
                    stamp,
                };
            }
            return false;
        }
        let mut evicted = false;
        if self.entries.len() >= self.capacity {
            // Unique stamps make the minimum unambiguous regardless of
            // HashMap iteration order.
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k)
                .expect("full cache has a victim");
            self.entries.remove(&victim);
            evicted = true;
        }
        self.entries.insert(
            key,
            OrtEntry {
                offset,
                ewma_q8: u16::from(offset) << 8,
                stamp,
            },
        );
        evicted
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

/// The result of an ORT starting-offset lookup: the offset to issue the
/// read at, and whether it came from the cross-block h-layer cluster
/// (rather than a cached per-block entry or the cold default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffsetLookup {
    /// Starting `ΔV_Ref` offset for the read.
    pub offset: u8,
    /// `true` when the offset was seeded from the h-layer cluster
    /// because the block's own ORT entry was cold.
    pub seeded: bool,
}

/// Per-chip cross-block offset cluster (§4.2.2): one exponentially
/// weighted moving average of recently decoded `ΔV_Ref` offsets per
/// h-layer, aggregated across all blocks of the chip. Horizontal process
/// similarity makes the optimal offset primarily an h-layer property, so
/// a block whose own ORT entry is cold (fresh block, LRU-evicted entry,
/// post-SPO boot) is seeded from its h-layer's cluster average instead
/// of cold-starting at offset 0.
///
/// The average is kept in Q8.8 fixed point — integer arithmetic only, so
/// the prediction is bit-deterministic and free of float rounding drift.
#[derive(Debug, Clone)]
struct OffsetCluster {
    /// EWMA of decoded offsets per h-layer, Q8.8 fixed point.
    ewma_q8: Vec<u32>,
    /// Saturating decode-sample count per h-layer.
    samples: Vec<u32>,
}

impl OffsetCluster {
    fn new(hlayers: usize) -> Self {
        OffsetCluster {
            ewma_q8: vec![0; hlayers],
            samples: vec![0; hlayers],
        }
    }

    /// Folds one decoded offset into the h-layer average (weight 1/4 for
    /// the new sample — recent decodes dominate, single outliers don't).
    fn record(&mut self, h: usize, offset: u8) {
        let x = u32::from(offset) << 8;
        self.ewma_q8[h] = if self.samples[h] == 0 {
            x
        } else {
            (self.ewma_q8[h] * 3 + x) / 4
        };
        self.samples[h] = self.samples[h].saturating_add(1);
    }

    /// The rounded cluster average for `h`, once at least `min_samples`
    /// decodes have been folded in.
    fn predict(&self, h: usize, min_samples: u32) -> Option<u8> {
        (self.samples[h] >= min_samples.max(1))
            .then(|| (((self.ewma_q8[h] + 128) >> 8) as u8).min(MAX_OFFSET_INDEX))
    }
}

/// The Optimal Parameter Manager.
#[derive(Debug, Clone)]
pub struct Opm {
    /// Leader-derived program parameters per h-layer, kept until the
    /// followers consume them (the map stays small: only h-layers of
    /// active blocks have entries).
    leader_params: HashMap<LayerKey, LeaderParams>,
    /// Post-program BER of the last WL programmed on each h-layer
    /// (safety-check reference).
    last_post_ber: HashMap<LayerKey, f64>,
    /// P/E cycle count of the block when each h-layer's parameters were
    /// monitored — the maintenance subsystem's staleness reference for
    /// periodic re-monitoring.
    recorded_pe: HashMap<LayerKey, u32>,
    /// The ORT: last known good read offset per h-layer of every block,
    /// capacity-bounded per chip with LRU eviction.
    ort: Vec<OrtCache>,
    /// ORT lookups served from a cached entry.
    ort_hits: u64,
    /// ORT lookups that fell back to the default offset.
    ort_misses: u64,
    /// ORT entries evicted to make room.
    ort_evictions: u64,
    /// ORT misses that fell all the way back to the default offset 0
    /// (no cached entry and no cluster seed). Counted on both the read
    /// path and the `peek_offset` prediction path — a `Cell` so the
    /// shared-reference peek can count without mutable access.
    ort_fallbacks: Cell<u64>,
    /// Cross-block offset clusters, one per chip (`None`: feature off).
    cluster: Option<Vec<OffsetCluster>>,
    /// Minimum decode samples an h-layer cluster needs before it seeds.
    cluster_min_samples: u32,
    /// Per-chip (block, h) keys excluded from cluster seeding until
    /// their next decode — set by crash recovery for torn or resumed
    /// h-layers whose pre-cut offsets are no longer trustworthy.
    cluster_quarantine: Vec<HashSet<OrtKey>>,
    /// ORT misses answered with a cluster seed.
    cluster_seeds: u64,
    /// Seeded reads whose decode confirmed the seed exactly.
    cluster_hits: u64,
    /// Seeded reads whose decode landed on a different offset.
    cluster_mispredicts: u64,
    /// H-layers per block (cluster sizing survives `power_cycle`).
    hlayers: usize,
    /// H-layers demoted by the §4.1.4 safety check: their monitored
    /// parameters were discarded (followers fall back to conservative
    /// defaults — no VFY skips, full window) until a leader-style
    /// program re-monitors the layer.
    demoted: HashSet<LayerKey>,
    /// Safety-check threshold: a follower whose post-program BER exceeds
    /// the previous WL's by this factor is considered improperly
    /// programmed (§4.1.4).
    safety_factor: f64,
}

impl Opm {
    /// An OPM for `chips` chips of `geometry`, with an unbounded ORT
    /// (every h-layer of every block can hold a cached offset — the
    /// paper's full-table configuration).
    pub fn new(geometry: &Geometry, chips: usize) -> Self {
        Self::with_ort_capacity(geometry, chips, usize::MAX)
    }

    /// An OPM whose per-chip ORT holds at most `ort_capacity` h-layer
    /// entries (LRU-evicted beyond that). `usize::MAX` means unbounded;
    /// the capacity is clamped to at least 1.
    pub fn with_ort_capacity(geometry: &Geometry, chips: usize, ort_capacity: usize) -> Self {
        let entries = geometry.blocks_per_chip as usize * usize::from(geometry.hlayers_per_block);
        let capacity = ort_capacity.min(entries);
        Opm {
            leader_params: HashMap::new(),
            last_post_ber: HashMap::new(),
            recorded_pe: HashMap::new(),
            ort: (0..chips).map(|_| OrtCache::new(capacity)).collect(),
            ort_hits: 0,
            ort_misses: 0,
            ort_evictions: 0,
            ort_fallbacks: Cell::new(0),
            cluster: None,
            cluster_min_samples: 1,
            cluster_quarantine: (0..chips).map(|_| HashSet::new()).collect(),
            cluster_seeds: 0,
            cluster_hits: 0,
            cluster_mispredicts: 0,
            hlayers: usize::from(geometry.hlayers_per_block),
            demoted: HashSet::new(),
            safety_factor: 3.0,
        }
    }

    /// Enables (or disables) the cross-block offset cluster. Enabling
    /// starts from empty clusters — the feature warms up from decode
    /// traffic, exactly as it would after a power cycle.
    pub fn set_cluster(&mut self, cfg: OrtClusterConfig) {
        if cfg.enabled {
            let (chips, hlayers) = (self.ort.len(), self.hlayers);
            self.cluster = Some((0..chips).map(|_| OffsetCluster::new(hlayers)).collect());
            self.cluster_min_samples = cfg.min_samples.max(1);
        } else {
            self.cluster = None;
        }
        for q in &mut self.cluster_quarantine {
            q.clear();
        }
    }

    /// Whether cross-block cluster seeding is enabled.
    pub fn cluster_enabled(&self) -> bool {
        self.cluster.is_some()
    }

    /// Excludes one (block, h-layer) key on `chip` from cluster seeding
    /// until its next successful decode. Crash recovery quarantines the
    /// torn and resumed h-layers it cannot vouch for. Returns `true` if
    /// the key was newly quarantined (always `false` with the cluster
    /// off, so recovery reports stay identical to the pre-cluster ones).
    pub fn quarantine_cluster_key(&mut self, chip: usize, block: u32, h: u16) -> bool {
        if self.cluster.is_none() {
            return false;
        }
        self.cluster_quarantine[chip].insert((block, h))
    }

    fn key(chip: usize, wl: WlAddr) -> LayerKey {
        (chip as u32, wl.block.0, wl.h.0)
    }

    fn ort_key(wl: WlAddr) -> OrtKey {
        (wl.block.0, wl.h.0)
    }

    /// Records a leader-WL program report and derives the follower
    /// parameters (§5.1): `N_skip^Pi` from the loop intervals, and the
    /// window adjustment from `BER_EP1` through the `S_M` conversion and
    /// split tables.
    pub fn record_leader(
        &mut self,
        chip: usize,
        wl: WlAddr,
        report: &ProgramReport,
        engine: &IsppEngine,
    ) {
        let mut n_skip = [0u8; NUM_PROGRAM_STATES];
        for (s, iv) in report.loop_intervals.iter().enumerate() {
            n_skip[s] = iv.safe_skip();
        }
        let spare = engine.spare_margin(report.ber_ep1, report.pe_cycles);
        let total_mv = margin_mv_for_spare(spare, engine.ispp_model());
        let (v_start_up_mv, v_final_down_mv) = split_margin_mv(total_mv, engine.ispp_model());
        let key = Self::key(chip, wl);
        self.leader_params.insert(
            key,
            LeaderParams {
                n_skip,
                leader_intervals: report.loop_intervals,
                v_start_up_mv,
                v_final_down_mv,
                leader_post_ber: report.post_ber,
            },
        );
        self.last_post_ber.insert(key, report.post_ber);
        self.recorded_pe.insert(key, report.pe_cycles);
        // A fresh monitor re-promotes a demoted layer (§4.1.4: the
        // re-programmed WL runs with default parameters and its report
        // becomes the new reference).
        self.demoted.remove(&key);
    }

    /// The follower program parameters for `wl`'s h-layer, if its leader
    /// has been monitored.
    pub fn follower_params(&self, chip: usize, wl: WlAddr) -> Option<&LeaderParams> {
        self.leader_params.get(&Self::key(chip, wl))
    }

    /// Runs the §4.1.4 safety check on a just-completed WL program:
    /// compares its post-program BER against the previous WL of the same
    /// h-layer. Returns `true` if the WL must be considered improperly
    /// programmed (and the data re-programmed on the following WL).
    pub fn safety_check(&mut self, chip: usize, wl: WlAddr, report: &ProgramReport) -> bool {
        let key = Self::key(chip, wl);
        let anomalous = match self.last_post_ber.get(&key) {
            Some(prev) => report.post_ber > prev * self.safety_factor,
            None => false,
        };
        if !anomalous {
            self.last_post_ber.insert(key, report.post_ber);
        }
        anomalous
    }

    /// Invalidates the monitored parameters of an h-layer (used after a
    /// safety-check failure so the next program re-monitors, and when a
    /// block is erased).
    pub fn invalidate_layer(&mut self, chip: usize, wl: WlAddr) {
        let key = Self::key(chip, wl);
        self.leader_params.remove(&key);
        self.last_post_ber.remove(&key);
        self.recorded_pe.remove(&key);
    }

    /// The block P/E count at the time `wl`'s h-layer parameters were
    /// monitored, if the layer currently holds monitored parameters. The
    /// maintenance subsystem compares this against the block's current
    /// P/E count to decide when re-monitoring is due.
    pub fn recorded_pe(&self, chip: usize, wl: WlAddr) -> Option<u32> {
        self.recorded_pe.get(&Self::key(chip, wl)).copied()
    }

    /// §4.1.4 demotion: drops the h-layer's monitored VFY-skip/window
    /// parameters — followers revert to conservative
    /// `ProgramParams::default()` (no skips, full window, full MaxLoop
    /// budget) — and flags the layer until a leader-style program
    /// re-monitors it. Returns `true` if the layer was not already
    /// demoted.
    pub fn demote_layer(&mut self, chip: usize, wl: WlAddr) -> bool {
        self.invalidate_layer(chip, wl);
        self.demoted.insert(Self::key(chip, wl))
    }

    /// Whether `wl`'s h-layer is currently demoted (awaiting re-monitor).
    pub fn is_demoted(&self, chip: usize, wl: WlAddr) -> bool {
        self.demoted.contains(&Self::key(chip, wl))
    }

    /// Number of h-layers currently demoted.
    pub fn demoted_layers(&self) -> usize {
        self.demoted.len()
    }

    /// Drops all monitored program parameters of `block` (erase). An
    /// erase also clears demotion flags: a fresh block starts clean.
    pub fn invalidate_block(&mut self, chip: usize, block: u32) {
        self.leader_params
            .retain(|k, _| !(k.0 == chip as u32 && k.1 == block));
        self.last_post_ber
            .retain(|k, _| !(k.0 == chip as u32 && k.1 == block));
        self.recorded_pe
            .retain(|k, _| !(k.0 == chip as u32 && k.1 == block));
        self.demoted
            .retain(|k| !(k.0 == chip as u32 && k.1 == block));
        // An erased block is re-programmed from scratch; any recovery
        // quarantine on its h-layers is moot.
        self.cluster_quarantine[chip].retain(|k| k.0 != block);
    }

    /// The cluster seed for `wl`, if one is available: the cluster is
    /// enabled, the h-layer has enough decode samples, the layer is not
    /// demoted (§4.1.4 — its process behaviour is suspect) and the key
    /// is not quarantined by crash recovery.
    fn cluster_seed(&self, chip: usize, wl: WlAddr) -> Option<u8> {
        let clusters = self.cluster.as_ref()?;
        if self.is_demoted(chip, wl) || self.cluster_quarantine[chip].contains(&Self::ort_key(wl)) {
            return None;
        }
        clusters[chip].predict(usize::from(wl.h.0), self.cluster_min_samples)
    }

    /// The starting read offset for `wl` (§4.2): the block's own cached
    /// ORT entry when warm (counts a hit, refreshes LRU recency);
    /// otherwise a cross-block cluster seed for the h-layer when
    /// available (counts a miss and a seed); otherwise the default
    /// offset 0 (counts a miss and a fallback).
    pub fn lookup_offset(&mut self, chip: usize, wl: WlAddr) -> OffsetLookup {
        if let Some(offset) = self.ort[chip].get(Self::ort_key(wl)) {
            self.ort_hits += 1;
            return OffsetLookup {
                offset,
                seeded: false,
            };
        }
        self.ort_misses += 1;
        if let Some(offset) = self.cluster_seed(chip, wl) {
            self.cluster_seeds += 1;
            return OffsetLookup {
                offset,
                seeded: true,
            };
        }
        self.ort_fallbacks.set(self.ort_fallbacks.get() + 1);
        OffsetLookup {
            offset: 0,
            seeded: false,
        }
    }

    /// The ORT entry for `wl`'s h-layer: the starting read offset for a
    /// read of any WL on that h-layer (§4.2). Counts a hit or a miss and
    /// refreshes the entry's LRU recency; a miss returns the cluster
    /// seed when one is available, else the default offset 0 (read
    /// references unshifted).
    pub fn read_offset(&mut self, chip: usize, wl: WlAddr) -> u8 {
        self.lookup_offset(chip, wl).offset
    }

    /// The starting offset for `wl` without touching the hit/miss/seed
    /// counters or the LRU recency — for latency *prediction*, which
    /// inspects the table without performing a read. Follows exactly the
    /// `lookup_offset` decision (cached entry, then cluster seed, then
    /// default) and counts a fallback when it lands on the default, so
    /// `ort_fallbacks` agrees between the read path and prediction.
    pub fn peek_offset(&self, chip: usize, wl: WlAddr) -> u8 {
        match self.ort[chip].peek(Self::ort_key(wl)) {
            Some(offset) => offset,
            None => match self.cluster_seed(chip, wl) {
                Some(offset) => offset,
                None => {
                    self.ort_fallbacks.set(self.ort_fallbacks.get() + 1);
                    0
                }
            },
        }
    }

    /// Scores a seeded lookup against the offset the decode actually
    /// landed on: an exact match is a cluster hit, anything else a
    /// mispredict. No-op for unseeded lookups.
    pub fn note_read_outcome(&mut self, lookup: OffsetLookup, final_offset: u8) {
        if lookup.seeded {
            if final_offset == lookup.offset {
                self.cluster_hits += 1;
            } else {
                self.cluster_mispredicts += 1;
            }
        }
    }

    /// Updates the ORT after a read decoded at `final_offset`, evicting
    /// the least recently used entry of the chip's table when full. The
    /// decode also feeds the h-layer cluster and lifts any recovery
    /// quarantine on the key — a fresh decode re-vouches for it.
    pub fn update_read_offset(&mut self, chip: usize, wl: WlAddr, final_offset: u8) {
        let smooth = self.cluster.is_some();
        if self.ort[chip].insert(Self::ort_key(wl), final_offset, smooth) {
            self.ort_evictions += 1;
        }
        if let Some(clusters) = self.cluster.as_mut() {
            clusters[chip].record(usize::from(wl.h.0), final_offset);
        }
        self.cluster_quarantine[chip].remove(&Self::ort_key(wl));
    }

    /// `(hits, misses, evictions)` of the ORT since the last reset.
    pub fn ort_counters(&self) -> (u64, u64, u64) {
        (self.ort_hits, self.ort_misses, self.ort_evictions)
    }

    /// ORT lookups (read path and prediction peeks) that fell back to
    /// the default offset 0 — no cached entry and no cluster seed.
    pub fn ort_fallbacks(&self) -> u64 {
        self.ort_fallbacks.get()
    }

    /// `(seeds, hits, mispredicts)` of the cross-block cluster since the
    /// last reset.
    pub fn cluster_counters(&self) -> (u64, u64, u64) {
        (
            self.cluster_seeds,
            self.cluster_hits,
            self.cluster_mispredicts,
        )
    }

    /// Resets the ORT and cluster counters (entries are kept).
    pub fn reset_ort_counters(&mut self) {
        self.ort_hits = 0;
        self.ort_misses = 0;
        self.ort_evictions = 0;
        self.ort_fallbacks.set(0);
        self.cluster_seeds = 0;
        self.cluster_hits = 0;
        self.cluster_mispredicts = 0;
    }

    /// Number of ORT entries currently cached on `chip`.
    pub fn ort_entries(&self, chip: usize) -> usize {
        self.ort[chip].len()
    }

    /// Per-chip ORT capacity (h-layer entries).
    pub fn ort_capacity(&self) -> usize {
        self.ort.first().map_or(0, |c| c.capacity)
    }

    /// Number of leader-parameter entries currently held (bounded by the
    /// active blocks, §5.2).
    pub fn pending_layers(&self) -> usize {
        self.leader_params.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nand3d::{CalibratedModel, LoopInterval, NandChip, NandConfig, WlData};

    fn setup() -> (Opm, NandChip) {
        let config = NandConfig::small();
        let chip = NandChip::new(config, 3);
        let opm = Opm::new(&config.geometry, 2);
        (opm, chip)
    }

    #[test]
    fn leader_report_produces_follower_params() {
        let (mut opm, mut chip) = setup();
        chip.erase(nand3d::BlockId(0)).unwrap();
        let leader = chip.geometry().wl_addr(nand3d::BlockId(0), 2, 0);
        let report = chip
            .program_wl(leader, WlData::host(0), &ProgramParams::default())
            .unwrap();
        opm.record_leader(0, leader, &report, chip.ispp());

        let follower = chip.geometry().wl_addr(nand3d::BlockId(0), 2, 1);
        let params = opm.follower_params(0, follower).expect("leader recorded");
        // Skips must match the leader's observed L_min − 1.
        for (s, iv) in report.loop_intervals.iter().enumerate() {
            assert_eq!(params.n_skip[s], iv.safe_skip());
        }
        // The window adjustment is quantized and within device limits.
        let total = params.v_start_up_mv + params.v_final_down_mv;
        assert!(total >= 160.0, "guard step is always available");
        assert!(total <= chip.ispp().ispp_model().max_adjust_mv);
        // Different h-layer: no parameters.
        let other = chip.geometry().wl_addr(nand3d::BlockId(0), 3, 1);
        assert!(opm.follower_params(0, other).is_none());
    }

    #[test]
    fn follower_program_with_opm_params_is_faster() {
        let (mut opm, mut chip) = setup();
        chip.erase(nand3d::BlockId(1)).unwrap();
        let g = *chip.geometry();
        let leader = g.wl_addr(nand3d::BlockId(1), 4, 0);
        let report = chip
            .program_wl(leader, WlData::host(0), &ProgramParams::default())
            .unwrap();
        opm.record_leader(0, leader, &report, chip.ispp());

        let follower = g.wl_addr(nand3d::BlockId(1), 4, 2);
        let params = opm
            .follower_params(0, follower)
            .unwrap()
            .to_program_params();
        let fr = chip.program_wl(follower, WlData::host(3), &params).unwrap();
        assert!(fr.latency_us < report.latency_us * 0.85);
        // The spent window margin costs a small, bounded BER uptick —
        // spare margin traded for speed, still far below the ECC limit
        // and below the ×3 safety-check threshold.
        assert!(fr.post_ber < report.post_ber * 2.0);
        assert!(fr.post_ber < chip.config().model.reliability.ecc_capability_ber);
    }

    #[test]
    fn safety_check_flags_anomalies() {
        let (mut opm, chip) = setup();
        let g = *chip.geometry();
        let wl = g.wl_addr(nand3d::BlockId(0), 1, 0);
        let mk = |post_ber: f64| ProgramReport {
            latency_us: 700.0,
            loop_intervals: [LoopInterval { lmin: 2, lmax: 3 }; NUM_PROGRAM_STATES],
            ber_ep1: 1e-4,
            post_ber,
            pulses: 11,
            verifies: 50,
            margin_excess_loops: 0,
            disturbed: false,
            pe_cycles: 0,
            aborted: false,
        };
        assert!(
            !opm.safety_check(0, wl, &mk(1e-4)),
            "first WL sets baseline"
        );
        let next = g.wl_addr(nand3d::BlockId(0), 1, 1);
        assert!(!opm.safety_check(0, next, &mk(1.5e-4)), "small growth ok");
        let bad = g.wl_addr(nand3d::BlockId(0), 1, 2);
        assert!(opm.safety_check(0, bad, &mk(9e-4)), "6x jump is anomalous");
        // The anomalous value must NOT become the new baseline.
        let after = g.wl_addr(nand3d::BlockId(0), 1, 3);
        assert!(opm.safety_check(0, after, &mk(9e-4)), "still anomalous");
    }

    #[test]
    fn demotion_resets_layer_to_conservative_until_remonitored() {
        let (mut opm, mut chip) = setup();
        chip.erase(nand3d::BlockId(0)).unwrap();
        let g = *chip.geometry();
        let leader = g.wl_addr(nand3d::BlockId(0), 2, 0);
        let report = chip
            .program_wl(leader, WlData::host(0), &ProgramParams::default())
            .unwrap();
        opm.record_leader(0, leader, &report, chip.ispp());
        let follower = g.wl_addr(nand3d::BlockId(0), 2, 3);
        assert!(opm.follower_params(0, follower).is_some());
        assert!(!opm.is_demoted(0, follower));

        // §4.1.4: demotion discards the monitored parameters — followers
        // fall back to conservative defaults — and flags the layer.
        assert!(opm.demote_layer(0, follower), "first demotion is new");
        assert!(!opm.demote_layer(0, follower), "re-demotion is idempotent");
        assert!(opm.follower_params(0, follower).is_none());
        assert!(opm.is_demoted(0, leader), "flag is per h-layer, not per WL");
        assert_eq!(opm.demoted_layers(), 1);
        // Other layers are untouched.
        assert!(!opm.is_demoted(0, g.wl_addr(nand3d::BlockId(0), 3, 0)));

        // A fresh leader-style monitor re-promotes the layer.
        let retry = g.wl_addr(nand3d::BlockId(0), 2, 1);
        let retry_report = chip
            .program_wl(retry, WlData::host(3), &ProgramParams::default())
            .unwrap();
        opm.record_leader(0, retry, &retry_report, chip.ispp());
        assert!(!opm.is_demoted(0, follower));
        assert_eq!(opm.demoted_layers(), 0);
        assert!(opm.follower_params(0, follower).is_some());
    }

    #[test]
    fn erase_clears_demotion_flags() {
        let (mut opm, chip) = setup();
        let g = *chip.geometry();
        let wl = g.wl_addr(nand3d::BlockId(1), 4, 2);
        opm.demote_layer(0, wl);
        let other_block = g.wl_addr(nand3d::BlockId(2), 4, 2);
        opm.demote_layer(0, other_block);
        assert_eq!(opm.demoted_layers(), 2);
        opm.invalidate_block(0, 1);
        assert_eq!(opm.demoted_layers(), 1, "only block 1's flag is cleared");
        assert!(!opm.is_demoted(0, wl));
        assert!(opm.is_demoted(0, other_block));
    }

    #[test]
    fn ort_roundtrip_and_default() {
        let (mut opm, chip) = setup();
        let g = *chip.geometry();
        let wl = g.wl_addr(nand3d::BlockId(3), 5, 1);
        assert_eq!(opm.read_offset(0, wl), 0, "default offset");
        opm.update_read_offset(0, wl, 4);
        // Any WL of the same h-layer sees the update.
        let peer = g.wl_addr(nand3d::BlockId(3), 5, 3);
        assert_eq!(opm.read_offset(0, peer), 4);
        // Other layers/chips/blocks unaffected.
        assert_eq!(opm.read_offset(0, g.wl_addr(nand3d::BlockId(3), 6, 0)), 0);
        assert_eq!(opm.read_offset(1, wl), 0);
        assert_eq!(opm.read_offset(0, g.wl_addr(nand3d::BlockId(2), 5, 1)), 0);
    }

    #[test]
    fn invalidate_block_drops_parameters() {
        let (mut opm, mut chip) = setup();
        chip.erase(nand3d::BlockId(0)).unwrap();
        let g = *chip.geometry();
        let leader = g.wl_addr(nand3d::BlockId(0), 0, 0);
        let report = chip
            .program_wl(leader, WlData::host(0), &ProgramParams::default())
            .unwrap();
        opm.record_leader(0, leader, &report, chip.ispp());
        assert_eq!(opm.pending_layers(), 1);
        opm.invalidate_block(0, 0);
        assert_eq!(opm.pending_layers(), 0);
        assert!(opm
            .follower_params(0, g.wl_addr(nand3d::BlockId(0), 0, 1))
            .is_none());
    }

    #[test]
    fn record_leader_stamps_monitoring_pe() {
        let (mut opm, mut chip) = setup();
        chip.erase(nand3d::BlockId(0)).unwrap();
        let g = *chip.geometry();
        let leader = g.wl_addr(nand3d::BlockId(0), 2, 0);
        let report = chip
            .program_wl(leader, WlData::host(0), &ProgramParams::default())
            .unwrap();
        opm.record_leader(0, leader, &report, chip.ispp());
        let follower = g.wl_addr(nand3d::BlockId(0), 2, 2);
        assert_eq!(opm.recorded_pe(0, follower), Some(report.pe_cycles));
        assert_eq!(
            opm.recorded_pe(0, g.wl_addr(nand3d::BlockId(0), 3, 0)),
            None,
            "unmonitored layer has no stamp"
        );
        // Invalidation (safety check or erase) clears the stamp.
        opm.invalidate_layer(0, follower);
        assert_eq!(opm.recorded_pe(0, follower), None);
    }

    #[test]
    fn ort_memory_matches_paper_overhead_estimate() {
        // §5.1: ~2 bytes per h-layer → ~10 MB for a 1-TB SSD. At full
        // capacity the per-chip bound is one entry per h-layer per block.
        let config = NandConfig::paper();
        let opm = Opm::new(&config.geometry, 8);
        let per_chip = opm.ort_capacity();
        assert_eq!(per_chip, 428 * 48);
        let bytes_total = per_chip * 2 * 8;
        let ssd_bytes = config.geometry.bytes_per_chip() * 8;
        let overhead = bytes_total as f64 / ssd_bytes as f64;
        assert!(overhead < 1e-4, "ORT overhead {overhead}");
    }

    #[test]
    fn ort_counts_hits_and_misses() {
        let (mut opm, chip) = setup();
        let g = *chip.geometry();
        let wl = g.wl_addr(nand3d::BlockId(0), 2, 0);
        assert_eq!(opm.read_offset(0, wl), 0, "cold table misses");
        opm.update_read_offset(0, wl, 3);
        assert_eq!(opm.read_offset(0, wl), 3, "cached entry hits");
        assert_eq!(opm.peek_offset(0, wl), 3);
        assert_eq!(opm.ort_counters(), (1, 1, 0), "peek does not count");
        opm.reset_ort_counters();
        assert_eq!(opm.ort_counters(), (0, 0, 0));
        assert_eq!(opm.ort_entries(0), 1, "reset keeps entries");
    }

    #[test]
    fn ort_capacity_evicts_least_recently_used() {
        let config = NandConfig::small();
        let g = config.geometry;
        let mut opm = Opm::with_ort_capacity(&g, 1, 2);
        let a = g.wl_addr(nand3d::BlockId(0), 0, 0);
        let b = g.wl_addr(nand3d::BlockId(0), 1, 0);
        let c = g.wl_addr(nand3d::BlockId(0), 2, 0);
        opm.update_read_offset(0, a, 1);
        opm.update_read_offset(0, b, 2);
        // Touch `a` so `b` becomes the LRU victim.
        assert_eq!(opm.read_offset(0, a), 1);
        opm.update_read_offset(0, c, 3);
        assert_eq!(opm.ort_counters().2, 1, "one eviction");
        assert_eq!(opm.ort_entries(0), 2);
        assert_eq!(opm.peek_offset(0, a), 1, "recently used survives");
        assert_eq!(opm.peek_offset(0, c), 3, "new entry cached");
        assert_eq!(opm.read_offset(0, b), 0, "LRU victim falls to default");
    }

    #[test]
    fn unbounded_ort_never_evicts() {
        let (mut opm, chip) = setup();
        let g = *chip.geometry();
        for block in 0..g.blocks_per_chip {
            for h in 0..g.hlayers_per_block {
                opm.update_read_offset(0, g.wl_addr(nand3d::BlockId(block), h, 0), 1);
            }
        }
        assert_eq!(opm.ort_counters().2, 0, "full table fits at capacity");
        assert_eq!(
            opm.ort_entries(0),
            g.blocks_per_chip as usize * usize::from(g.hlayers_per_block)
        );
    }

    fn cluster_on(min_samples: u32) -> OrtClusterConfig {
        OrtClusterConfig {
            enabled: true,
            min_samples,
        }
    }

    #[test]
    fn cluster_seeds_cold_lookup_from_hlayer_average() {
        let (mut opm, chip) = setup();
        let g = *chip.geometry();
        opm.set_cluster(cluster_on(2));
        // Two blocks decode their h-layer 5 at offset 4.
        opm.update_read_offset(0, g.wl_addr(nand3d::BlockId(0), 5, 0), 4);
        opm.update_read_offset(0, g.wl_addr(nand3d::BlockId(1), 5, 1), 4);
        // A third block with no ORT entry is seeded from the cluster.
        let cold = g.wl_addr(nand3d::BlockId(2), 5, 0);
        let lookup = opm.lookup_offset(0, cold);
        assert_eq!(
            lookup,
            OffsetLookup {
                offset: 4,
                seeded: true
            }
        );
        assert_eq!(opm.peek_offset(0, cold), 4, "peek follows the same path");
        // A different h-layer has no samples: default fallback.
        let other = opm.lookup_offset(0, g.wl_addr(nand3d::BlockId(2), 6, 0));
        assert_eq!(
            other,
            OffsetLookup {
                offset: 0,
                seeded: false
            }
        );
        let (seeds, _, _) = opm.cluster_counters();
        assert_eq!(seeds, 1);
        assert_eq!(opm.ort_fallbacks(), 1, "only the unseeded miss fell back");
        // Other chips keep their own cluster.
        assert_eq!(opm.read_offset(1, cold), 0);
    }

    #[test]
    fn cluster_needs_min_samples_before_seeding() {
        let (mut opm, chip) = setup();
        let g = *chip.geometry();
        opm.set_cluster(cluster_on(3));
        opm.update_read_offset(0, g.wl_addr(nand3d::BlockId(0), 2, 0), 5);
        opm.update_read_offset(0, g.wl_addr(nand3d::BlockId(1), 2, 0), 5);
        let cold = g.wl_addr(nand3d::BlockId(2), 2, 0);
        assert_eq!(opm.read_offset(0, cold), 0, "two samples < threshold 3");
        opm.update_read_offset(0, g.wl_addr(nand3d::BlockId(3), 2, 0), 5);
        assert_eq!(opm.read_offset(0, cold), 5, "third sample arms the seed");
    }

    #[test]
    fn cluster_respects_quarantine_and_demotion() {
        let (mut opm, chip) = setup();
        let g = *chip.geometry();
        opm.set_cluster(cluster_on(1));
        opm.update_read_offset(0, g.wl_addr(nand3d::BlockId(0), 4, 0), 3);

        // Crash recovery quarantines block 1's h-layer 4: no seed.
        assert!(opm.quarantine_cluster_key(0, 1, 4));
        assert!(!opm.quarantine_cluster_key(0, 1, 4), "already quarantined");
        let cold = g.wl_addr(nand3d::BlockId(1), 4, 0);
        assert_eq!(opm.read_offset(0, cold), 0, "quarantined key not seeded");
        // A successful decode lifts the quarantine.
        opm.update_read_offset(0, cold, 3);
        assert_eq!(opm.read_offset(0, g.wl_addr(nand3d::BlockId(1), 4, 1)), 3);

        // §4.1.4 demotion suppresses seeding for the suspect layer.
        let suspect = g.wl_addr(nand3d::BlockId(2), 4, 0);
        opm.demote_layer(0, suspect);
        let lookup = opm.lookup_offset(0, suspect);
        assert!(!lookup.seeded, "demoted layer is not seeded");
        assert_eq!(lookup.offset, 0);
    }

    #[test]
    fn quarantine_is_noop_with_cluster_off() {
        let (mut opm, _chip) = setup();
        assert!(
            !opm.quarantine_cluster_key(0, 1, 4),
            "cluster off: nothing to quarantine, recovery reports unchanged"
        );
        // Erase clears any quarantine for the block.
        opm.set_cluster(cluster_on(1));
        assert!(opm.quarantine_cluster_key(0, 1, 4));
        opm.invalidate_block(0, 1);
        assert!(opm.quarantine_cluster_key(0, 1, 4), "erase cleared the key");
    }

    #[test]
    fn smoothed_ort_filters_read_jitter() {
        let (mut opm, chip) = setup();
        let g = *chip.geometry();
        let wl = g.wl_addr(nand3d::BlockId(0), 3, 0);
        // Cluster off: the last decode wins verbatim.
        opm.update_read_offset(0, wl, 4);
        opm.update_read_offset(0, wl, 5);
        assert_eq!(opm.read_offset(0, wl), 5);

        // Cluster on: jittering decodes around 4 are averaged away, so
        // the warm start stays at the jitter-free optimum.
        opm.set_cluster(cluster_on(1));
        let jittery = g.wl_addr(nand3d::BlockId(1), 3, 0);
        for &o in &[4u8, 5, 4, 3, 4, 5, 4, 3] {
            opm.update_read_offset(0, jittery, o);
        }
        assert_eq!(opm.read_offset(0, jittery), 4);
    }

    #[test]
    fn cluster_counters_score_seeded_outcomes() {
        let (mut opm, chip) = setup();
        let g = *chip.geometry();
        opm.set_cluster(cluster_on(1));
        opm.update_read_offset(0, g.wl_addr(nand3d::BlockId(0), 1, 0), 2);
        let cold = g.wl_addr(nand3d::BlockId(1), 1, 0);
        let lookup = opm.lookup_offset(0, cold);
        assert!(lookup.seeded);
        opm.note_read_outcome(lookup, 2);
        opm.note_read_outcome(lookup, 3);
        let unseeded = OffsetLookup {
            offset: 0,
            seeded: false,
        };
        opm.note_read_outcome(unseeded, 7);
        assert_eq!(opm.cluster_counters(), (1, 1, 1));
        opm.reset_ort_counters();
        assert_eq!(opm.cluster_counters(), (0, 0, 0));
        assert_eq!(opm.ort_fallbacks(), 0);
    }

    // Silence an unused-import lint when tests compile alone.
    #[allow(dead_code)]
    fn _uses(_: CalibratedModel) {}
}
