//! cubeFTL's PS-aware modules: the Optimal Parameter Manager ([`Opm`](opm::Opm))
//! and the WL Allocation Manager ([`Wam`](wam::Wam)) of paper §5.

pub mod opm;
pub mod wam;
