//! # hostq — NVMe-style multi-queue host front-end with per-tenant QoS
//!
//! The paper evaluates under single-stream closed-loop hosts; the
//! ROADMAP north star is a production SSD serving heavy multi-tenant
//! traffic. This crate supplies the missing host interface: N
//! submission/completion queue pairs, per-tenant submission queues fed
//! by seeded open-loop arrival processes, a work-conserving
//! deficit-weighted-round-robin scheduler, admission control under
//! overload, and per-tenant SLO tracking.
//!
//! ## Determinism
//!
//! Everything is integer-or-seeded: the scheduler runs Q8.8 fixed-point
//! deficit counters (no floats in any scheduling decision), arrival
//! processes derive from the master seed via
//! [`tenant_seed`](workloads::tenant_seed), and queue arbitration is a
//! flattened walk in (queue, tenant) order — byte-equivalent to a
//! two-level DWRR whose queue quantum is the sum of its member tenant
//! quanta, so global service shares stay weight-proportional. A run is
//! a pure function of (config, seed): byte-identical across repeats,
//! worker-thread counts and engine step slicing.
//!
//! ## Pieces
//!
//! * [`DwrrScheduler`] — the integer DWRR core (also used standalone in
//!   property tests).
//! * [`HostQueueFront`] — the [`ssdsim::HostFront`] implementation: the
//!   arrival heap, bounded submission queues with deterministic
//!   shedding, the in-flight token slab, and per-tenant latency/SLO
//!   accounting.
//! * [`QosReport`] — per-tenant and per-class outcome summary with
//!   shard-ordered merge and bounded-cardinality metric registration.

pub mod front;
pub mod report;
pub mod sched;

pub use front::{split_arrival_budget, split_even_budget, HostQueueConfig, HostQueueFront};
pub use report::{ClassSummary, QosReport, TenantSummary};
pub use sched::DwrrScheduler;
