//! Per-tenant outcome summaries: shard-ordered merge and
//! bounded-cardinality metric registration.

use ssdsim::LatencyRecorder;
use telemetry::MetricRegistry;
use workloads::TenantClass;

/// The outcome of one tenant's run (or its merge across shards).
#[derive(Debug, Clone)]
pub struct TenantSummary {
    /// Global tenant id.
    pub id: u32,
    /// DWRR weight.
    pub weight: u32,
    /// Service class.
    pub class: TenantClass,
    /// Workload label.
    pub label: String,
    /// Arrivals admitted to the submission queue.
    pub admitted: u64,
    /// Arrivals shed by admission control.
    pub shed: u64,
    /// Requests completed by the device.
    pub completed: u64,
    /// Read latency distribution (µs, from scheduled arrival).
    pub read_latency: LatencyRecorder,
    /// Write latency distribution (µs, from scheduled arrival).
    pub write_latency: LatencyRecorder,
    /// SLO violations (completions past the configured target).
    pub violations: u64,
}

/// Aggregate over one service class.
#[derive(Debug, Clone, Default)]
pub struct ClassSummary {
    /// Tenants in the class.
    pub tenants: u64,
    /// Summed admissions.
    pub admitted: u64,
    /// Summed sheds.
    pub shed: u64,
    /// Summed completions.
    pub completed: u64,
    /// Merged read latency.
    pub read_latency: LatencyRecorder,
    /// Merged write latency.
    pub write_latency: LatencyRecorder,
    /// Summed violations.
    pub violations: u64,
}

impl ClassSummary {
    fn absorb(&mut self, t: &TenantSummary) {
        self.tenants += 1;
        self.admitted += t.admitted;
        self.shed += t.shed;
        self.completed += t.completed;
        self.read_latency.absorb(&t.read_latency);
        self.write_latency.absorb(&t.write_latency);
        self.violations += t.violations;
    }
}

/// The QoS outcome of a run: tenants in ascending global-id order.
#[derive(Debug, Clone, Default)]
pub struct QosReport {
    /// Per-tenant outcomes, ascending global id.
    pub tenants: Vec<TenantSummary>,
    /// Arrivals shed per submission queue, indexed by queue (empty when
    /// the front did not attribute sheds to queues — e.g. reports built
    /// directly from tenant summaries).
    pub queue_shed: Vec<u64>,
}

impl QosReport {
    /// Cardinality bound for per-tenant detail (metrics, trace
    /// summaries, CLI table rows): only the lowest global ids get
    /// per-tenant series; everything else is covered by the per-class
    /// aggregates. Keeps thousand-tenant runs from exploding the
    /// registry.
    pub const MAX_TENANT_DETAIL: usize = 16;

    /// Builds a report from per-tenant summaries already in ascending
    /// global-id order.
    pub fn from_tenants(tenants: impl Iterator<Item = TenantSummary>) -> Self {
        let report = QosReport {
            tenants: tenants.collect(),
            queue_shed: Vec::new(),
        };
        debug_assert!(
            report.tenants.windows(2).all(|w| w[0].id < w[1].id),
            "tenants must be in ascending global-id order"
        );
        report
    }

    /// Merges per-shard reports. Call in shard order (the fan-in
    /// barrier already yields shards by index) — each global tenant id
    /// must appear on exactly one shard, so the merge is a stable
    /// id-sorted interleave and independent of thread scheduling.
    pub fn merge(shards: Vec<QosReport>) -> QosReport {
        // Queue indices are global (tenant id % queues), so the per-
        // queue shed counts sum elementwise across shards.
        let mut queue_shed: Vec<u64> = Vec::new();
        for r in &shards {
            if r.queue_shed.len() > queue_shed.len() {
                queue_shed.resize(r.queue_shed.len(), 0);
            }
            for (q, shed) in r.queue_shed.iter().enumerate() {
                queue_shed[q] += shed;
            }
        }
        let mut all: Vec<TenantSummary> = shards.into_iter().flat_map(|r| r.tenants).collect();
        all.sort_by_key(|t| t.id);
        debug_assert!(
            all.windows(2).all(|w| w[0].id < w[1].id),
            "a tenant id appeared on more than one shard"
        );
        QosReport {
            tenants: all,
            queue_shed,
        }
    }

    /// Population-wide totals.
    pub fn total(&self) -> ClassSummary {
        let mut sum = ClassSummary::default();
        for t in &self.tenants {
            sum.absorb(t);
        }
        sum
    }

    /// Aggregates by service class, in declaration order.
    pub fn by_class(&self) -> Vec<(TenantClass, ClassSummary)> {
        [
            TenantClass::Protected,
            TenantClass::Standard,
            TenantClass::BestEffort,
        ]
        .into_iter()
        .filter_map(|class| {
            let mut sum = ClassSummary::default();
            for t in self.tenants.iter().filter(|t| t.class == class) {
                sum.absorb(t);
            }
            (sum.tenants > 0).then_some((class, sum))
        })
        .collect()
    }

    /// Registers QoS metrics with bounded cardinality: population
    /// totals, per-class aggregates, and per-tenant detail for the
    /// [`QosReport::MAX_TENANT_DETAIL`] lowest global ids only.
    pub fn register_metrics(&self, reg: &mut MetricRegistry) {
        let total = self.total();
        reg.counter("qos.tenants", self.tenants.len() as u64);
        reg.counter("qos.admitted", total.admitted);
        reg.counter("qos.shed", total.shed);
        reg.counter("qos.completed", total.completed);
        reg.counter("qos.slo_violations", total.violations);
        for (class, sum) in self.by_class() {
            let p = format!("qos.class.{}", class.label());
            reg.counter(&format!("{p}.tenants"), sum.tenants);
            reg.counter(&format!("{p}.admitted"), sum.admitted);
            reg.counter(&format!("{p}.shed"), sum.shed);
            reg.counter(&format!("{p}.completed"), sum.completed);
            reg.counter(&format!("{p}.slo_violations"), sum.violations);
            reg.gauge(
                &format!("{p}.read_p99_us"),
                sum.read_latency.percentile(99.0),
            );
            reg.gauge(
                &format!("{p}.write_p99_us"),
                sum.write_latency.percentile(99.0),
            );
        }
        for (q, shed) in self.queue_shed.iter().enumerate() {
            reg.counter(&format!("qos.queue{q}.shed"), *shed);
        }
        for t in self.tenants.iter().take(Self::MAX_TENANT_DETAIL) {
            let p = format!("qos.tenant.{}", t.id);
            reg.counter(&format!("{p}.admitted"), t.admitted);
            reg.counter(&format!("{p}.shed"), t.shed);
            reg.counter(&format!("{p}.completed"), t.completed);
            reg.counter(&format!("{p}.slo_violations"), t.violations);
            reg.gauge(&format!("{p}.weight"), f64::from(t.weight));
            reg.histogram(&format!("{p}.read_latency_us"), t.read_latency.histogram());
            reg.histogram(
                &format!("{p}.write_latency_us"),
                t.write_latency.histogram(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tenant(id: u32, weight: u32, class: TenantClass, completed: u64) -> TenantSummary {
        TenantSummary {
            id,
            weight,
            class,
            label: "Uniform".into(),
            admitted: completed,
            shed: id as u64,
            completed,
            read_latency: LatencyRecorder::new(),
            write_latency: LatencyRecorder::new(),
            violations: 0,
        }
    }

    #[test]
    fn merge_interleaves_shards_by_global_id() {
        let a = QosReport::from_tenants(
            vec![
                tenant(0, 8, TenantClass::Protected, 10),
                tenant(2, 1, TenantClass::BestEffort, 5),
            ]
            .into_iter(),
        );
        let b = QosReport::from_tenants(
            vec![
                tenant(1, 4, TenantClass::Standard, 7),
                tenant(3, 1, TenantClass::BestEffort, 3),
            ]
            .into_iter(),
        );
        let m = QosReport::merge(vec![a, b]);
        assert_eq!(
            m.tenants.iter().map(|t| t.id).collect::<Vec<_>>(),
            [0, 1, 2, 3]
        );
        assert_eq!(m.total().completed, 25);
        assert_eq!(m.total().shed, 6); // ids 0..=3, shed == id
        let classes = m.by_class();
        assert_eq!(classes.len(), 3);
        assert_eq!(classes[2].1.tenants, 2);
    }

    #[test]
    fn queue_shed_merges_elementwise_and_registers() {
        let mut a =
            QosReport::from_tenants(vec![tenant(0, 1, TenantClass::Standard, 1)].into_iter());
        a.queue_shed = vec![3, 0, 7];
        let mut b =
            QosReport::from_tenants(vec![tenant(1, 1, TenantClass::Standard, 1)].into_iter());
        b.queue_shed = vec![1, 5, 2];
        let m = QosReport::merge(vec![a, b]);
        assert_eq!(m.queue_shed, vec![4, 5, 9]);
        let mut reg = MetricRegistry::new();
        m.register_metrics(&mut reg);
        let nd = reg.to_ndjson();
        assert!(nd.contains("\"qos.queue0.shed\""));
        assert!(nd.contains("\"qos.queue2.shed\""));
    }

    #[test]
    fn metric_cardinality_is_bounded() {
        let many =
            QosReport::from_tenants((0..1000).map(|i| tenant(i, 1, TenantClass::Standard, 1)));
        let mut reg = MetricRegistry::new();
        many.register_metrics(&mut reg);
        assert!(
            reg.entries().len() < 160,
            "registry must stay bounded, got {}",
            reg.entries().len()
        );
    }
}
