//! The multi-queue host front-end: open-loop arrivals, bounded
//! per-tenant submission queues with deterministic shedding, DWRR
//! dispatch, and per-tenant completion/SLO accounting.

use crate::report::{QosReport, TenantSummary};
use crate::sched::DwrrScheduler;
use ssdsim::{FrontRequest, HostFront, HostOp, HostRequest, LatencyRecorder};
use std::collections::{BinaryHeap, VecDeque};
use telemetry::{Collector, EventKind, EventMask, TraceEvent};
use workloads::{TenantProfile, Workload};

/// Configuration of one [`HostQueueFront`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HostQueueConfig {
    /// Submission/completion queue pairs. Tenant `t` maps to queue
    /// `t % queues` (by global tenant id).
    pub queues: u32,
    /// Per-tenant submission queue depth bound: arrivals beyond it are
    /// shed (admission control).
    pub sq_depth: usize,
    /// Aggregate mean inter-arrival time across the whole population,
    /// in µs. With `weighted_arrivals`, tenant `i`'s own interval is
    /// `arrival_interval_us * W / w_i` (W = total weight), so arrival
    /// rates are weight-proportional and sum to the aggregate rate;
    /// otherwise every tenant gets `arrival_interval_us * n` (equal
    /// rates summing to the same aggregate).
    pub arrival_interval_us: f64,
    /// Weight-proportional arrival rates (the default). Turn off for
    /// overload experiments where offered load must be uniform while
    /// *service* stays weight-differentiated — that separation is what
    /// lets admission control shed best-effort tenants while the
    /// protected class keeps up.
    pub weighted_arrivals: bool,
    /// Read-latency SLO in µs (`None` = untracked).
    pub slo_read_us: Option<f64>,
    /// Write-latency SLO in µs (`None` = untracked).
    pub slo_write_us: Option<f64>,
}

impl Default for HostQueueConfig {
    fn default() -> Self {
        HostQueueConfig {
            queues: 1,
            sq_depth: 16,
            arrival_interval_us: 2.0,
            weighted_arrivals: true,
            slo_read_us: None,
            slo_write_us: None,
        }
    }
}

/// One arrival instant in the heap (min-heap by time, tenant-id
/// tie-break — both deterministic).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Arrival {
    t_us: f64,
    /// Local tenant index.
    tenant: u32,
}

impl Eq for Arrival {}

impl Ord for Arrival {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest.
        other
            .t_us
            .total_cmp(&self.t_us)
            .then_with(|| other.tenant.cmp(&self.tenant))
    }
}

impl PartialOrd for Arrival {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// An admitted request waiting in its submission queue.
#[derive(Debug, Clone, Copy)]
struct Pending {
    req: HostRequest,
    /// Scheduled arrival instant — latency is measured from here, so
    /// submission-queue wait counts against the SLO.
    arrival_us: f64,
}

/// A dispatched request awaiting completion.
#[derive(Debug, Clone, Copy)]
struct InFlight {
    tenant: u32,
    arrival_us: f64,
    op: HostOp,
}

/// Per-tenant runtime state.
struct TenantState {
    profile: TenantProfile,
    /// Queue pair this tenant maps to (`global_id % queues`).
    queue: u32,
    stream: Box<dyn Workload + Send>,
    /// Arrivals this tenant may still generate.
    remaining: u64,
    interval_us: f64,
    sq: VecDeque<Pending>,
    admitted: u64,
    shed: u64,
    completed: u64,
    read_latency: LatencyRecorder,
    write_latency: LatencyRecorder,
    violations: u64,
}

/// The NVMe-style front-end: implements [`HostFront`] over a tenant
/// population. See the crate docs for the determinism argument.
pub struct HostQueueFront {
    cfg: HostQueueConfig,
    tenants: Vec<TenantState>,
    sched: DwrrScheduler,
    arrivals: BinaryHeap<Arrival>,
    /// In-flight token slab; freed slots are recycled LIFO.
    inflight: Vec<Option<InFlight>>,
    free_tokens: Vec<u32>,
    outstanding: usize,
    trace: Collector,
    last_t_us: f64,
}

/// Splits a total arrival budget across `profiles` proportionally to
/// weight, deterministically: each tenant gets `⌊total·w/W⌋` and the
/// remainder goes to the lowest tenant ids, so the budgets sum exactly
/// to `total`. Weight-proportional budgets make every arrival process
/// end at (nearly) the same virtual instant, keeping the population
/// saturated together.
pub fn split_arrival_budget(total: u64, profiles: &[TenantProfile]) -> Vec<u64> {
    let w_total: u64 = profiles.iter().map(|p| u64::from(p.weight)).sum();
    let mut budgets: Vec<u64> = profiles
        .iter()
        .map(|p| total * u64::from(p.weight) / w_total)
        .collect();
    let mut rem = total - budgets.iter().sum::<u64>();
    for b in budgets.iter_mut() {
        if rem == 0 {
            break;
        }
        *b += 1;
        rem -= 1;
    }
    budgets
}

/// Splits a total arrival budget evenly across `n` tenants (remainder
/// to the lowest indices, summing exactly to `total`) — the partner of
/// [`split_arrival_budget`] for equal-rate arrivals
/// (`weighted_arrivals: false`).
pub fn split_even_budget(total: u64, n: usize) -> Vec<u64> {
    let n64 = n as u64;
    (0..n64)
        .map(|i| total / n64 + u64::from(i < total % n64))
        .collect()
}

impl HostQueueFront {
    /// Builds the front over a tenant population. `streams[i]` is
    /// tenant `i`'s request source and `budgets[i]` its arrival count
    /// (see [`split_arrival_budget`]). Profiles may carry any global
    /// ids (a shard passes its subset); scheduling runs over local
    /// dense indices in (queue, global id) order.
    pub fn new(
        cfg: HostQueueConfig,
        profiles: Vec<TenantProfile>,
        streams: Vec<Box<dyn Workload + Send>>,
        budgets: Vec<u64>,
    ) -> Self {
        assert!(cfg.queues >= 1, "need at least one queue pair");
        assert!(cfg.sq_depth >= 1, "submission queues need depth >= 1");
        assert!(
            cfg.arrival_interval_us > 0.0 && cfg.arrival_interval_us.is_finite(),
            "arrival interval must be positive"
        );
        assert!(!profiles.is_empty(), "need at least one tenant");
        assert_eq!(profiles.len(), streams.len());
        assert_eq!(profiles.len(), budgets.len());

        let w_total: u64 = profiles.iter().map(|p| u64::from(p.weight)).sum();
        let weights: Vec<u32> = profiles.iter().map(|p| p.weight).collect();
        // Flattened (queue, global id) walk order over local indices.
        let mut order: Vec<u32> = (0..profiles.len() as u32).collect();
        order.sort_by_key(|&i| {
            let p = &profiles[i as usize];
            (p.id % cfg.queues, p.id)
        });
        let sched = DwrrScheduler::new(&weights, order);

        let mut arrivals = BinaryHeap::with_capacity(profiles.len());
        let mut tenants = Vec::with_capacity(profiles.len());
        let population = budgets.len() as f64;
        for (i, (profile, stream)) in profiles.into_iter().zip(streams).enumerate() {
            let interval_us = if cfg.weighted_arrivals {
                cfg.arrival_interval_us * w_total as f64 / f64::from(profile.weight)
            } else {
                cfg.arrival_interval_us * population
            };
            // Deterministic per-tenant phase in [0, 1) from the stream
            // seed: staggers first arrivals so the population does not
            // arrive in lockstep.
            let phase = (profile.seed >> 11) as f64 / (1u64 << 53) as f64;
            let remaining = budgets[i];
            if remaining > 0 {
                arrivals.push(Arrival {
                    t_us: phase * interval_us,
                    tenant: i as u32,
                });
            }
            tenants.push(TenantState {
                queue: profile.id % cfg.queues,
                profile,
                stream,
                remaining,
                interval_us,
                sq: VecDeque::new(),
                admitted: 0,
                shed: 0,
                completed: 0,
                read_latency: LatencyRecorder::new(),
                write_latency: LatencyRecorder::new(),
                violations: 0,
            });
        }
        HostQueueFront {
            cfg,
            tenants,
            sched,
            arrivals,
            inflight: Vec::new(),
            free_tokens: Vec::new(),
            outstanding: 0,
            trace: Collector::disabled(),
            last_t_us: 0.0,
        }
    }

    /// Arms event tracing ([`EventMask::HOSTQ`] shed transitions and
    /// the end-of-run [`EventMask::SLO`] summaries), tagging events
    /// with `shard`.
    pub fn enable_telemetry(&mut self, mask: EventMask, shard: u32) {
        self.trace = if mask.is_empty() {
            Collector::disabled()
        } else {
            Collector::enabled(mask, shard)
        };
    }

    /// Drains the front's trace events (merge with the device and FTL
    /// streams via [`telemetry::merge_streams`]).
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        self.trace.take()
    }

    /// Total arrivals shed across the population so far.
    pub fn total_shed(&self) -> u64 {
        self.tenants.iter().map(|t| t.shed).sum()
    }

    /// Arrivals shed per submission queue so far, indexed by queue
    /// (tenant sheds attributed to the queue the tenant maps to).
    pub fn queue_shed(&self) -> Vec<u64> {
        let mut shed = vec![0u64; self.cfg.queues as usize];
        for t in &self.tenants {
            shed[t.queue as usize] += t.shed;
        }
        shed
    }

    /// Builds the per-tenant outcome report and emits one
    /// [`EventKind::TenantSlo`] trace event per tenant in the bounded
    /// reporting set (the [`QosReport::MAX_TENANT_DETAIL`] lowest
    /// global ids), stamped at the last observed virtual time.
    pub fn report(&mut self) -> QosReport {
        let mut by_id: Vec<usize> = (0..self.tenants.len()).collect();
        by_id.sort_by_key(|&i| self.tenants[i].profile.id);
        if self.trace.wants(EventMask::SLO) {
            for &i in by_id.iter().take(QosReport::MAX_TENANT_DETAIL) {
                let t = &self.tenants[i];
                self.trace.emit(
                    self.last_t_us,
                    EventKind::TenantSlo {
                        tenant: t.profile.id,
                        completed: t.completed,
                        shed: t.shed,
                        read_p99_us: t.read_latency.percentile(99.0),
                        write_p99_us: t.write_latency.percentile(99.0),
                        violations: t.violations,
                    },
                );
            }
        }
        let mut report = QosReport::from_tenants(by_id.iter().map(|&i| {
            let t = &self.tenants[i];
            TenantSummary {
                id: t.profile.id,
                weight: t.profile.weight,
                class: t.profile.class,
                label: t.stream.label().to_owned(),
                admitted: t.admitted,
                shed: t.shed,
                completed: t.completed,
                read_latency: t.read_latency.clone(),
                write_latency: t.write_latency.clone(),
                violations: t.violations,
            }
        }));
        report.queue_shed = self.queue_shed();
        report
    }

    fn admit(&mut self, local: u32, t_us: f64) {
        let tenant = &mut self.tenants[local as usize];
        let Some(req) = tenant.stream.next() else {
            // Finite stream (trace replay) ran dry: stop its arrivals.
            tenant.remaining = 0;
            return;
        };
        tenant.remaining -= 1;
        if tenant.remaining > 0 {
            self.arrivals.push(Arrival {
                t_us: t_us + tenant.interval_us,
                tenant: local,
            });
        }
        if tenant.sq.len() < self.cfg.sq_depth {
            tenant.sq.push_back(Pending {
                req,
                arrival_us: t_us,
            });
            tenant.admitted += 1;
        } else {
            tenant.shed += 1;
            let (queue, id, depth) = (tenant.queue, tenant.profile.id, tenant.sq.len() as u32);
            if self.trace.wants(EventMask::HOSTQ) {
                self.trace.emit(
                    t_us,
                    EventKind::HostQueue {
                        queue,
                        tenant: id,
                        action: "shed",
                        depth,
                    },
                );
            }
        }
    }
}

impl HostFront for HostQueueFront {
    fn next_arrival_us(&self) -> Option<f64> {
        self.arrivals.peek().map(|a| a.t_us)
    }

    fn advance(&mut self, now_us: f64) {
        self.last_t_us = self.last_t_us.max(now_us);
        while let Some(&top) = self.arrivals.peek() {
            if top.t_us > now_us {
                break;
            }
            self.arrivals.pop();
            self.admit(top.tenant, top.t_us);
        }
    }

    fn pop(&mut self, now_us: f64) -> Option<FrontRequest> {
        let tenants = &mut self.tenants;
        let local = self.sched.pick(&mut |t| {
            tenants[t as usize]
                .sq
                .front()
                .map(|p| DwrrScheduler::cost(p.req.n_pages))
        })?;
        let pending = self.tenants[local as usize]
            .sq
            .pop_front()
            .expect("scheduler picked a backlogged tenant");
        let slot = InFlight {
            tenant: local,
            arrival_us: pending.arrival_us,
            op: pending.req.op,
        };
        let token = match self.free_tokens.pop() {
            Some(tok) => {
                self.inflight[tok as usize] = Some(slot);
                tok
            }
            None => {
                self.inflight.push(Some(slot));
                (self.inflight.len() - 1) as u32
            }
        };
        self.outstanding += 1;
        self.last_t_us = self.last_t_us.max(now_us);
        Some(FrontRequest {
            req: pending.req,
            token,
        })
    }

    fn complete(&mut self, token: u32, now_us: f64) {
        let slot = self.inflight[token as usize]
            .take()
            .expect("completion token is in flight");
        self.free_tokens.push(token);
        self.outstanding -= 1;
        self.last_t_us = self.last_t_us.max(now_us);
        let latency = now_us - slot.arrival_us;
        let tenant = &mut self.tenants[slot.tenant as usize];
        tenant.completed += 1;
        match slot.op {
            HostOp::Read => {
                tenant.read_latency.record(latency);
                if self.cfg.slo_read_us.is_some_and(|slo| latency > slo) {
                    tenant.violations += 1;
                }
            }
            HostOp::Write | HostOp::Trim => {
                tenant.write_latency.record(latency);
                if slot.op == HostOp::Write
                    && self.cfg.slo_write_us.is_some_and(|slo| latency > slo)
                {
                    tenant.violations += 1;
                }
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.arrivals.is_empty()
            && self.outstanding == 0
            && self.tenants.iter().all(|t| t.sq.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::{build_population, TenantMix};

    fn front(n: u32, weights: &[u32], total: u64, cfg: HostQueueConfig) -> HostQueueFront {
        let profiles = build_population(n, weights, Some(TenantMix::Uniform), 11);
        let streams = profiles.iter().map(|p| p.build_stream(4096)).collect();
        let budgets = split_arrival_budget(total, &profiles);
        HostQueueFront::new(cfg, profiles, streams, budgets)
    }

    #[test]
    fn budget_split_is_weight_proportional_and_exact() {
        let profiles = build_population(3, &[8, 4, 1], None, 1);
        let budgets = split_arrival_budget(1000, &profiles);
        assert_eq!(budgets.iter().sum::<u64>(), 1000);
        assert_eq!(budgets, vec![616, 308, 76]);
    }

    #[test]
    fn arrivals_admit_then_shed_at_depth_bound() {
        let mut f = front(
            1,
            &[1],
            100,
            HostQueueConfig {
                sq_depth: 4,
                ..HostQueueConfig::default()
            },
        );
        // Consume every arrival without ever dispatching: only sq_depth
        // can be admitted, the rest shed.
        f.advance(1e12);
        let r = f.report();
        assert_eq!(r.tenants[0].admitted, 4);
        assert_eq!(r.tenants[0].shed, 96);
        assert!(!f.exhausted(), "admitted requests still queued");
    }

    #[test]
    fn pop_complete_round_trips_tokens_and_latency() {
        let mut f = front(2, &[3, 1], 8, HostQueueConfig::default());
        f.advance(1e12);
        let mut served = 0;
        while let Some(fr) = f.pop(500.0) {
            f.complete(fr.token, 700.0);
            served += 1;
        }
        assert_eq!(served, 8);
        assert!(f.exhausted());
        let r = f.report();
        assert_eq!(r.total().completed, 8);
        assert_eq!(r.total().shed, 0);
    }

    #[test]
    fn double_run_reports_identically() {
        let run = || {
            let mut f = front(16, &[8, 2, 1], 400, HostQueueConfig::default());
            f.advance(1e12);
            while let Some(fr) = f.pop(1e12) {
                f.complete(fr.token, 1e12 + 5.0);
            }
            format!("{:?}", f.report())
        };
        assert_eq!(run(), run());
    }
}
