//! The deficit-weighted-round-robin scheduler core.
//!
//! Classic DWRR (Shreedhar & Varghese) over per-tenant submission
//! queues, in Q8.8 fixed point: a tenant's quantum is `weight << 8`
//! and a request's cost is `n_pages << 8`, so every scheduling
//! decision is u64 integer arithmetic — byte-deterministic across
//! platforms and replay.
//!
//! Multi-queue arbitration is *flattened*: the scheduler walks tenants
//! in a caller-supplied order (the front passes (queue, tenant) order),
//! which is byte-equivalent to a two-level DWRR whose per-queue quantum
//! equals the sum of its member tenant quanta. Flattening preserves
//! global per-tenant weight proportionality, which plain round-robin
//! over queues would break.
//!
//! Invariants (property-tested in `tests/qos.rs`):
//!
//! * **Work conservation** — [`DwrrScheduler::pick`] returns `Some`
//!   whenever any tenant reports a backlogged head (a scan round adds
//!   each backlogged tenant's quantum, so any head cost is eventually
//!   covered).
//! * **Weight proportionality** — with all tenants saturated at unit
//!   cost, tenant i is served exactly `weight_i` times per round.
//! * **No deficit hoarding** — a tenant observed with an empty backlog
//!   has its deficit reset to 0, so idle periods earn no credit.

/// Q8.8 fixed-point shift: 8 fractional bits.
pub const Q_SHIFT: u32 = 8;

/// Integer-only deficit-weighted-round-robin over a fixed tenant
/// population. The scheduler owns no queues: [`DwrrScheduler::pick`]
/// probes backlogs through a callback and the caller dequeues.
#[derive(Debug, Clone)]
pub struct DwrrScheduler {
    /// Per-tenant quantum, Q8.8 (`weight << 8`), indexed by tenant id.
    quantum: Vec<u64>,
    /// Per-tenant deficit counter, Q8.8, indexed by tenant id.
    deficit: Vec<u64>,
    /// Walk order (tenant ids): the front passes (queue, tenant) order.
    order: Vec<u32>,
    /// Position in `order` of the next tenant the scan visits.
    cursor: usize,
    /// Position in `order` of the tenant currently being served within
    /// its deficit (no quantum re-grant while it continues).
    current: Option<usize>,
}

impl DwrrScheduler {
    /// A scheduler over `weights` (indexed by tenant id, all ≥ 1),
    /// walking tenants in `order` (a permutation of the tenant ids).
    pub fn new(weights: &[u32], order: Vec<u32>) -> Self {
        assert!(!weights.is_empty(), "scheduler needs at least one tenant");
        assert_eq!(order.len(), weights.len(), "order must cover every tenant");
        assert!(weights.iter().all(|&w| w >= 1), "weights must be >= 1");
        let mut seen = vec![false; weights.len()];
        for &t in &order {
            assert!(
                !std::mem::replace(&mut seen[t as usize], true),
                "order must be a permutation"
            );
        }
        DwrrScheduler {
            quantum: weights.iter().map(|&w| u64::from(w) << Q_SHIFT).collect(),
            deficit: vec![0; weights.len()],
            order,
            cursor: 0,
            current: None,
        }
    }

    /// The Q8.8 cost of a request spanning `n_pages`.
    pub fn cost(n_pages: u32) -> u64 {
        u64::from(n_pages) << Q_SHIFT
    }

    /// Picks the next tenant to serve and charges its head cost against
    /// its deficit. `head_cost(t)` reports the Q8.8 cost of tenant
    /// `t`'s head request, or `None` when its queue is empty; the
    /// caller must dequeue exactly that head when `pick` returns
    /// `Some(t)`.
    ///
    /// Work-conserving: returns `None` only when every tenant reports
    /// an empty backlog.
    pub fn pick(&mut self, head_cost: &mut dyn FnMut(u32) -> Option<u64>) -> Option<u32> {
        let n = self.order.len();
        // Continue the tenant being served while its deficit covers its
        // head — this (not one-request-per-visit) is what makes service
        // weight-proportional.
        if let Some(ci) = self.current.take() {
            let t = self.order[ci];
            match head_cost(t) {
                Some(cost) if self.deficit[t as usize] >= cost => {
                    self.deficit[t as usize] -= cost;
                    self.current = Some(ci);
                    return Some(t);
                }
                Some(_) => {
                    // Deficit exhausted: keep the residual for its next
                    // visit, move the scan past it.
                    self.cursor = (ci + 1) % n;
                }
                None => {
                    // Backlog drained mid-service: no hoarding.
                    self.deficit[t as usize] = 0;
                    self.cursor = (ci + 1) % n;
                }
            }
        }
        // Round-robin scan. Each backlogged tenant visited gains one
        // quantum; the scan stops at the first whose deficit then
        // covers its head. A full round with no backlog returns None;
        // otherwise rounds repeat, so an oversized head (cost greater
        // than one quantum) is eventually covered — work conservation.
        let mut backlogged_this_round = false;
        let mut visited = 0usize;
        loop {
            let i = self.cursor;
            let t = self.order[i];
            self.cursor = (i + 1) % n;
            match head_cost(t) {
                Some(cost) => {
                    backlogged_this_round = true;
                    self.deficit[t as usize] += self.quantum[t as usize];
                    if self.deficit[t as usize] >= cost {
                        self.deficit[t as usize] -= cost;
                        self.current = Some(i);
                        self.cursor = i;
                        return Some(t);
                    }
                }
                None => self.deficit[t as usize] = 0,
            }
            visited += 1;
            if visited.is_multiple_of(n) {
                if !backlogged_this_round {
                    return None;
                }
                backlogged_this_round = false;
            }
        }
    }

    /// Order-insensitive fingerprint of the complete scheduler state
    /// (deficits, cursor, continuation) — the replay-bijectivity
    /// property test asserts identical pick sequences leave identical
    /// fingerprints.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            h ^= v;
            h = h.wrapping_mul(0x100_0000_01b3);
        };
        for &d in &self.deficit {
            mix(d);
        }
        mix(self.cursor as u64);
        mix(match self.current {
            Some(c) => c as u64 + 1,
            None => 0,
        });
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::VecDeque;

    fn drive(weights: &[u32], backlog: &mut [VecDeque<u32>], picks: usize) -> Vec<u64> {
        let order: Vec<u32> = (0..weights.len() as u32).collect();
        let mut s = DwrrScheduler::new(weights, order);
        let mut served = vec![0u64; weights.len()];
        for _ in 0..picks {
            let Some(t) = s.pick(&mut |t| {
                backlog[t as usize]
                    .front()
                    .map(|&pages| DwrrScheduler::cost(pages))
            }) else {
                break;
            };
            backlog[t as usize].pop_front();
            served[t as usize] += 1;
        }
        served
    }

    #[test]
    fn saturated_unit_cost_service_is_exactly_weight_proportional() {
        let weights = [8u32, 4, 2, 1];
        let mut backlog: Vec<VecDeque<u32>> = weights
            .iter()
            .map(|_| std::iter::repeat_n(1u32, 10_000).collect())
            .collect();
        // 10 full rounds of W = 15 unit serves.
        let served = drive(&weights, &mut backlog, 150);
        assert_eq!(served, vec![80, 40, 20, 10]);
    }

    #[test]
    fn oversized_heads_are_eventually_served() {
        // Weight-1 tenant with a 64-page head: needs 64 rounds of
        // quantum but must not starve.
        let weights = [1u32, 1];
        let mut backlog = vec![VecDeque::from(vec![64u32]), VecDeque::from(vec![1u32; 100])];
        let served = drive(&weights, &mut backlog, 101);
        assert_eq!(served[0], 1, "oversized head must be served");
        assert_eq!(served[1], 100);
    }

    #[test]
    fn idle_tenants_earn_no_credit() {
        let weights = [4u32, 1];
        let mut s = DwrrScheduler::new(&weights, vec![0, 1]);
        // Tenant 0 idle for many scans while tenant 1 is served.
        let mut q1 = VecDeque::from(vec![1u32; 50]);
        for _ in 0..50 {
            let t = s
                .pick(&mut |t| match t {
                    0 => None,
                    _ => q1.front().map(|&p| DwrrScheduler::cost(p)),
                })
                .unwrap();
            assert_eq!(t, 1);
            q1.pop_front();
        }
        assert_eq!(s.deficit[0], 0, "idle tenant must not hoard deficit");
    }

    #[test]
    fn empty_backlogs_return_none() {
        let mut s = DwrrScheduler::new(&[3, 1], vec![0, 1]);
        assert_eq!(s.pick(&mut |_| None), None);
    }
}
