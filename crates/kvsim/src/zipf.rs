//! Integer-only Zipf rank sampling.
//!
//! The crate's determinism rule forbids floating point anywhere in the
//! engine, so the usual Gray-et-al. zipfian sampler (powf over a real
//! exponent) is out. This sampler draws from the harmonic Zipf law
//! `P(rank = k) ∝ 1/k` (exponent 1, the classic skew YCSB approximates
//! with 0.99) using only integer arithmetic:
//!
//! 1. Ranks are grouped into octaves `[2^j, 2^(j+1))`. The exact mass
//!    of each octave, `Σ FP/k` at fixed point `FP = 2^32`, is
//!    precomputed once — at most 64 table entries for any `n`.
//! 2. A draw picks an octave by its mass, then a rank inside the
//!    octave by rejection: propose `k` uniformly, accept with
//!    probability `(FP/k) / (FP/lo)`. Acceptance is at least ~1/2, so
//!    the loop terminates quickly, and the accepted distribution is
//!    *exactly* proportional to the same truncated `FP/k` weights the
//!    octave table was built from.
//!
//! The whole construction is a pure function of the seeded
//! [`SplitMix`](crate::SplitMix) stream handed in by the caller.

use crate::rng::SplitMix;

/// Fixed-point scale of the per-rank weights.
const FP: u64 = 1 << 32;

/// Integer-only sampler over ranks `1..=n` with `P(k) ∝ ⌊FP/k⌋`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntZipf {
    n: u64,
    /// Per-octave `(lo, hi, cumulative_mass)`; `hi` is exclusive.
    octaves: Vec<(u64, u64, u64)>,
    total: u64,
}

impl IntZipf {
    /// A sampler over ranks `1..=n` (`n ≥ 1`).
    pub fn new(n: u64) -> Self {
        assert!(n >= 1, "zipf needs at least one rank");
        let mut octaves = Vec::new();
        let mut cum = 0u64;
        let mut lo = 1u64;
        while lo <= n {
            let hi = (lo << 1).min(n + 1);
            let mass: u64 = (lo..hi).map(|k| FP / k).sum();
            cum += mass;
            octaves.push((lo, hi, cum));
            lo = hi;
        }
        IntZipf {
            n,
            octaves,
            total: cum,
        }
    }

    /// Number of ranks.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draws one rank in `1..=n` from `rng`.
    pub fn sample(&self, rng: &mut SplitMix) -> u64 {
        let r = rng.below(self.total);
        // Octave by cumulative mass (≤ 64 entries; linear scan).
        let mut idx = 0;
        while self.octaves[idx].2 <= r {
            idx += 1;
        }
        let (lo, hi, _) = self.octaves[idx];
        let bound = FP / lo;
        loop {
            let k = lo + rng.below(hi - lo);
            if rng.below(bound) < FP / k {
                return k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_stay_in_bounds() {
        for n in [1u64, 2, 3, 7, 100, 4096] {
            let z = IntZipf::new(n);
            let mut rng = SplitMix::new(42);
            for _ in 0..2_000 {
                let k = z.sample(&mut rng);
                assert!((1..=n).contains(&k), "rank {k} out of 1..={n}");
            }
        }
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let z = IntZipf::new(1000);
        let draw = |seed: u64| -> Vec<u64> {
            let mut rng = SplitMix::new(seed);
            (0..500).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(draw(3), draw(3));
        assert_ne!(draw(3), draw(4));
    }

    #[test]
    fn low_ranks_dominate() {
        let z = IntZipf::new(10_000);
        let mut rng = SplitMix::new(7);
        let mut head = 0u64;
        let draws = 20_000;
        for _ in 0..draws {
            if z.sample(&mut rng) <= 100 {
                head += 1;
            }
        }
        // H(100)/H(10000) ≈ 0.53 for the harmonic law: the hottest 1 %
        // of ranks should take roughly half the draws.
        assert!(
            head * 10 > draws * 4,
            "head share too small: {head}/{draws}"
        );
        assert!(head * 10 < draws * 7, "head share too big: {head}/{draws}");
    }
}
