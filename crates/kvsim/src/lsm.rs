//! The deterministic LSM-tree storage engine.
//!
//! A faithful-at-page-granularity model of a leveled LSM tree
//! (memtable → L0 flush → leveled compaction with a bounded level
//! count), whose every storage access is emitted as a page-level
//! [`HostRequest`] against the simulated device:
//!
//! - **updates** append to a group-commit WAL ring and the in-memory
//!   memtable; a full memtable flushes as a sorted run (SST) into L0;
//! - **L0** compacts into L1 when it reaches `l0_files` runs; levels
//!   `1..` hold non-overlapping runs and compact one victim at a time
//!   into the next level when they exceed their size target
//!   (`fanout`× the level above); the last level absorbs everything,
//!   bounding the level count at `max_levels`;
//! - **reads** probe the memtable (no I/O), then one page per
//!   key-range-covering run, newest first, until the key is found;
//! - **SST space** comes from a first-fit extent allocator over the
//!   device's logical pages; dead runs are trimmed back to it.
//!
//! Everything is integer arithmetic over splitmix64 fingerprints; the
//! engine itself consumes no randomness at all — its behaviour is a
//! pure function of the operation sequence it is fed.

use crate::rng::splitmix64;
use ssdsim::HostRequest;
use std::collections::{BTreeMap, VecDeque};

/// Device page size the engine packs entries into (matches the
/// simulator's 16-KiB page).
pub const PAGE_BYTES: u32 = 16 * 1024;

/// Largest single span the engine emits (pages); longer SST reads and
/// writes are chunked so request sizes stay in the range the device
/// model was calibrated for — and, crucially, within the simulator's
/// write buffer (16 pages in the reduced config).
const SPAN_PAGES: u32 = 8;

/// Sizing and shape of one LSM engine instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvConfig {
    /// Key-space size (distinct keys; clamped by [`KvConfig::clamped`]
    /// so the worst-case SST footprint fits the device).
    pub keys: u64,
    /// Value payload per entry, bytes.
    pub value_bytes: u32,
    /// Memtable flush threshold, entries.
    pub memtable_entries: u32,
    /// Maximum entries per SST run.
    pub sst_entries: u32,
    /// L0 run count that triggers an L0→L1 compaction.
    pub l0_files: u32,
    /// Size ratio between adjacent levels.
    pub fanout: u32,
    /// Total level count (L0 plus `max_levels − 1` leveled tiers; the
    /// last tier absorbs everything, so the count is a hard bound).
    pub max_levels: u32,
    /// WAL ring size, pages (0 disables the WAL).
    pub wal_pages: u32,
}

impl KvConfig {
    /// The default shape: 1-KiB values, 2 Ki-entry memtable/SSTs,
    /// 4-run L0, fanout 4, four levels, a 64-page WAL ring.
    pub fn default_shape() -> Self {
        KvConfig {
            keys: 8_192,
            value_bytes: 1024,
            memtable_entries: 2048,
            sst_entries: 2048,
            l0_files: 4,
            fanout: 4,
            max_levels: 4,
            wal_pages: 64,
        }
    }

    /// Bytes one entry occupies inside an SST page (key, fingerprint
    /// and length header plus the value payload).
    pub fn entry_bytes(&self) -> u32 {
        24 + self.value_bytes
    }

    /// Entries packed per device page (at least one).
    pub fn entries_per_page(&self) -> u32 {
        (PAGE_BYTES / self.entry_bytes()).max(1)
    }

    /// Clamps the key count so the engine's worst-case footprint —
    /// live runs across every level plus transient compaction outputs —
    /// fits in `space_pages` logical pages with headroom.
    pub fn clamped(mut self, space_pages: u64) -> Self {
        let epp = u64::from(self.entries_per_page());
        let data_pages = space_pages.saturating_sub(u64::from(self.wal_pages));
        // Live data ≤ ~2× the key count (bottom level plus upper-level
        // duplicates) and compaction transiently doubles the touched
        // runs: budget 6 entry-slots of space per key.
        let max_keys = (data_pages * epp / 6).max(64);
        self.keys = self.keys.min(max_keys);
        self
    }

    /// Panics unless the configuration is coherent.
    pub fn validate(&self) {
        assert!(self.keys >= 1, "need at least one key");
        assert!(self.value_bytes >= 1, "need a value payload");
        assert!(self.value_bytes <= PAGE_BYTES - 24, "value must fit a page");
        assert!(self.memtable_entries >= 1, "need a memtable");
        assert!(self.sst_entries >= 1, "need SST capacity");
        assert!(self.l0_files >= 2, "L0 trigger must be at least 2");
        assert!(self.fanout >= 2, "fanout must be at least 2");
        assert!(self.max_levels >= 2, "need at least L0 and one level");
    }

    /// Entry-count target of leveled tier `n` (1-based; the last tier
    /// is unbounded).
    fn level_target(&self, n: u32) -> u64 {
        let base = u64::from(self.memtable_entries) * u64::from(self.l0_files);
        base.saturating_mul(u64::from(self.fanout).saturating_pow(n))
    }
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig::default_shape()
    }
}

/// One sorted run: its key range, entries, and device extent.
#[derive(Debug, Clone)]
struct Sst {
    entries: Vec<(u64, u64)>,
    lpn: u64,
    pages: u32,
}

impl Sst {
    fn first(&self) -> u64 {
        self.entries.first().expect("non-empty run").0
    }

    fn last(&self) -> u64 {
        self.entries.last().expect("non-empty run").0
    }

    fn covers(&self, key: u64) -> bool {
        self.first() <= key && key <= self.last()
    }

    /// Device page holding `key`'s slot (or its insertion point).
    fn page_of(&self, key: u64, epp: u32) -> u64 {
        let pos = match self.entries.binary_search_by_key(&key, |e| e.0) {
            Ok(p) | Err(p) => p,
        };
        self.lpn + (pos as u64 / u64::from(epp)).min(u64::from(self.pages) - 1)
    }
}

/// One flush or compaction, recorded for telemetry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KvEvent {
    /// Measured-op ordinal at which the event ran (load-phase events
    /// carry ordinal 0).
    pub op_index: u64,
    /// `"flush"` or `"compact"`.
    pub action: &'static str,
    /// Output level of the run(s) written.
    pub level: u32,
    /// Pages read from input runs.
    pub pages_in: u64,
    /// Pages written to output runs.
    pub pages_out: u64,
}

/// Raw counters of one engine instance. Derived, reporting-only
/// numbers (ops/s, app-WA as a float) live with the callers; the
/// engine itself stays integer-only.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KvStats {
    /// Measured operations completed (load phase excluded).
    pub ops: u64,
    /// Measured point reads.
    pub reads: u64,
    /// Measured updates (including the write half of RMWs).
    pub updates: u64,
    /// Measured inserts of previously unwritten keys (YCSB-D).
    pub inserts: u64,
    /// Measured read-modify-writes (also counted in `reads`/`updates`).
    pub rmws: u64,
    /// Reads that found their key.
    pub read_hits: u64,
    /// User payload bytes written by measured updates/inserts.
    pub user_bytes: u64,
    /// SST pages written (flushes plus compaction outputs), load
    /// phase included.
    pub sst_pages_written: u64,
    /// Of those, pages written by compactions.
    pub compaction_pages_written: u64,
    /// SST pages read by compactions.
    pub compaction_pages_read: u64,
    /// WAL pages written.
    pub wal_pages_written: u64,
    /// Memtable flushes.
    pub flushes: u64,
    /// Compactions run.
    pub compactions: u64,
    /// Probe page-reads issued by point reads.
    pub probe_pages_read: u64,
}

/// The engine: memtable, leveled runs, extent allocator, and the
/// outbound device-request queue.
#[derive(Debug)]
pub struct LsmTree {
    cfg: KvConfig,
    epp: u32,
    mem: BTreeMap<u64, u64>,
    levels: Vec<Vec<Sst>>,
    cursors: Vec<u64>,
    free: BTreeMap<u64, u64>,
    data_pages: u64,
    wal_next: u32,
    wal_batch: u32,
    seq: u64,
    out: VecDeque<HostRequest>,
    stats: KvStats,
    events: Vec<KvEvent>,
    op_index: u64,
    loading: bool,
}

impl LsmTree {
    /// A new engine over `space_pages` logical pages. The WAL ring
    /// takes the top of the space; SST extents come from the rest.
    pub fn new(cfg: KvConfig, space_pages: u64) -> Self {
        cfg.validate();
        let data_pages = space_pages.saturating_sub(u64::from(cfg.wal_pages));
        assert!(
            data_pages >= 64,
            "kv engine needs at least 64 data pages, got {data_pages}"
        );
        let mut free = BTreeMap::new();
        free.insert(0u64, data_pages);
        LsmTree {
            epp: cfg.entries_per_page(),
            mem: BTreeMap::new(),
            levels: vec![Vec::new(); cfg.max_levels as usize],
            cursors: vec![0; cfg.max_levels as usize],
            free,
            data_pages,
            wal_next: 0,
            wal_batch: 0,
            seq: 0,
            out: VecDeque::new(),
            stats: KvStats::default(),
            events: Vec::new(),
            op_index: 0,
            loading: false,
            cfg,
        }
    }

    /// The configuration (post-clamp).
    pub fn config(&self) -> &KvConfig {
        &self.cfg
    }

    /// Counters so far.
    pub fn stats(&self) -> &KvStats {
        &self.stats
    }

    /// Mutable counters (the stream tallies composite ops here).
    pub fn stats_mut(&mut self) -> &mut KvStats {
        &mut self.stats
    }

    /// Flush/compaction events so far.
    pub fn events(&self) -> &[KvEvent] {
        &self.events
    }

    /// Pending device requests, drained by the stream.
    pub fn take_io(&mut self) -> Option<HostRequest> {
        self.out.pop_front()
    }

    /// Whether device requests are pending.
    pub fn has_io(&self) -> bool {
        !self.out.is_empty()
    }

    /// Marks the start of the bulk-load phase: inserts skip the WAL
    /// (bulk loads bypass the commit log) and are not counted as
    /// measured operations.
    pub fn begin_load(&mut self) {
        self.loading = true;
    }

    /// Ends the bulk load: the memtable remainder is flushed so every
    /// loaded key is probe-able on the device, and measured-op
    /// accounting starts.
    pub fn end_load(&mut self) {
        if !self.mem.is_empty() {
            self.flush_memtable();
            self.maintain();
        }
        self.loading = false;
    }

    /// Bumps the measured-op ordinal (the stream calls this once per
    /// application operation).
    pub fn next_op(&mut self) {
        if !self.loading {
            self.op_index += 1;
            self.stats.ops += 1;
        }
    }

    /// Point read: probes the memtable, then covering runs newest
    /// first, one page per probe. Returns the fingerprint if found.
    pub fn get(&mut self, key: u64) -> Option<u64> {
        let mut probes = 0u64;
        let found = self.get_inner(key, &mut probes);
        self.stats.probe_pages_read += probes;
        if !self.loading {
            self.stats.reads += 1;
            if found.is_some() {
                self.stats.read_hits += 1;
            }
        }
        found
    }

    /// Whether `key` exists, without emitting any device I/O (used by
    /// the bulk loader; not a measured operation).
    pub fn contains(&self, key: u64) -> bool {
        if self.mem.contains_key(&key) {
            return true;
        }
        for sst in self.levels[0].iter().rev() {
            if sst.covers(key) && sst.entries.binary_search_by_key(&key, |e| e.0).is_ok() {
                return true;
            }
        }
        for level in &self.levels[1..] {
            let idx = level.partition_point(|s| s.last() < key);
            if idx < level.len()
                && level[idx].covers(key)
                && level[idx]
                    .entries
                    .binary_search_by_key(&key, |e| e.0)
                    .is_ok()
            {
                return true;
            }
        }
        false
    }

    fn get_inner(&mut self, key: u64, probes: &mut u64) -> Option<u64> {
        if let Some(&fp) = self.mem.get(&key) {
            return Some(fp);
        }
        // L0: newest run last; probe newest first.
        for i in (0..self.levels[0].len()).rev() {
            if self.levels[0][i].covers(key) {
                let page = self.levels[0][i].page_of(key, self.epp);
                self.out.push_back(HostRequest::read(page));
                *probes += 1;
                if let Ok(p) = self.levels[0][i]
                    .entries
                    .binary_search_by_key(&key, |e| e.0)
                {
                    return Some(self.levels[0][i].entries[p].1);
                }
            }
        }
        for n in 1..self.levels.len() {
            let level = &self.levels[n];
            let idx = level.partition_point(|s| s.last() < key);
            if idx < level.len() && level[idx].covers(key) {
                let page = level[idx].page_of(key, self.epp);
                self.out.push_back(HostRequest::read(page));
                *probes += 1;
                if let Ok(p) = level[idx].entries.binary_search_by_key(&key, |e| e.0) {
                    return Some(level[idx].entries[p].1);
                }
            }
        }
        None
    }

    /// Upsert: WAL append (group commit, one page per page-worth of
    /// entries), memtable insert, flush + compaction when full. The
    /// value fingerprint is splitmix64 over the key and a global
    /// version counter, so every write is distinguishable.
    pub fn put(&mut self, key: u64, insert: bool) {
        self.seq += 1;
        let fp = splitmix64(key ^ self.seq.rotate_left(17));
        if !self.loading {
            if insert {
                self.stats.inserts += 1;
            } else {
                self.stats.updates += 1;
            }
            self.stats.user_bytes += u64::from(self.cfg.entry_bytes());
            if self.cfg.wal_pages > 0 {
                self.wal_batch += 1;
                if self.wal_batch >= self.epp {
                    self.wal_batch = 0;
                    let lpn = self.data_pages + u64::from(self.wal_next);
                    self.wal_next = (self.wal_next + 1) % self.cfg.wal_pages;
                    self.out.push_back(HostRequest::write(lpn));
                    self.stats.wal_pages_written += 1;
                }
            }
        }
        self.mem.insert(key, fp);
        if self.mem.len() >= self.cfg.memtable_entries as usize {
            self.flush_memtable();
            self.maintain();
        }
    }

    /// Pages of compaction work outstanding right now: entries beyond
    /// each bounded tier's target (plus the L0 backlog beyond its
    /// trigger), expressed in device pages.
    pub fn compaction_debt_pages(&self) -> u64 {
        let epp = u64::from(self.epp);
        let l0_cap = u64::from(self.cfg.l0_files) * u64::from(self.cfg.memtable_entries);
        let mut debt_entries = self.level_entries(0).saturating_sub(l0_cap);
        for n in 1..self.levels.len() - 1 {
            debt_entries += self
                .level_entries(n)
                .saturating_sub(self.cfg.level_target(n as u32));
        }
        debt_entries.div_ceil(epp)
    }

    /// Total entries resident in tier `n`.
    pub fn level_entries(&self, n: usize) -> u64 {
        self.levels[n].iter().map(|s| s.entries.len() as u64).sum()
    }

    /// Runs resident in tier `n`.
    pub fn level_runs(&self, n: usize) -> usize {
        self.levels[n].len()
    }

    /// Number of tiers (== `max_levels`).
    pub fn level_count(&self) -> usize {
        self.levels.len()
    }

    /// Entry-count target of bounded tier `n` (1-based).
    pub fn level_target(&self, n: u32) -> u64 {
        self.cfg.level_target(n)
    }

    fn alloc(&mut self, pages: u64) -> u64 {
        let slot = self
            .free
            .iter()
            .find(|(_, &len)| len >= pages)
            .map(|(&lpn, &len)| (lpn, len));
        let Some((lpn, len)) = slot else {
            panic!(
                "kv engine out of device space allocating {pages} pages \
                 ({} data pages, {} free extents) — lower --kv-keys",
                self.data_pages,
                self.free.len()
            );
        };
        self.free.remove(&lpn);
        if len > pages {
            self.free.insert(lpn + pages, len - pages);
        }
        lpn
    }

    fn release(&mut self, lpn: u64, pages: u64) {
        let mut lpn = lpn;
        let mut pages = pages;
        // Coalesce with the left neighbour…
        if let Some((&p, &l)) = self.free.range(..lpn).next_back() {
            if p + l == lpn {
                self.free.remove(&p);
                lpn = p;
                pages += l;
            }
        }
        // …and the right neighbour.
        if let Some((&p, &l)) = self.free.range(lpn + pages..).next() {
            if lpn + pages == p {
                self.free.remove(&p);
                pages += l;
            }
        }
        self.free.insert(lpn, pages);
    }

    fn emit_span(&mut self, kind: SpanKind, lpn: u64, pages: u64) {
        let mut at = lpn;
        let mut left = pages;
        while left > 0 {
            let n = left.min(u64::from(SPAN_PAGES)) as u32;
            self.out.push_back(match kind {
                SpanKind::Read => HostRequest::read_span(at, n),
                SpanKind::Write => HostRequest::write_span(at, n),
                SpanKind::Trim => HostRequest::trim_span(at, n),
            });
            at += u64::from(n);
            left -= u64::from(n);
        }
    }

    /// Writes `entries` (sorted, deduplicated) as runs of at most
    /// `sst_entries` into tier `level`, emitting the device writes.
    /// Returns the pages written.
    fn write_runs(&mut self, entries: Vec<(u64, u64)>, level: usize) -> u64 {
        let mut written = 0u64;
        let mut rest = entries;
        while !rest.is_empty() {
            let take = rest.len().min(self.cfg.sst_entries as usize);
            let tail = rest.split_off(take);
            let run = rest;
            rest = tail;
            let pages = (run.len() as u64).div_ceil(u64::from(self.epp));
            let lpn = self.alloc(pages);
            self.emit_span(SpanKind::Write, lpn, pages);
            written += pages;
            let sst = Sst {
                entries: run,
                lpn,
                pages: u32::try_from(pages).expect("run pages fit"),
            };
            if level == 0 {
                self.levels[0].push(sst);
            } else {
                let at = self.levels[level].partition_point(|s| s.first() < sst.first());
                self.levels[level].insert(at, sst);
            }
        }
        self.stats.sst_pages_written += written;
        written
    }

    fn flush_memtable(&mut self) {
        let entries: Vec<(u64, u64)> = std::mem::take(&mut self.mem).into_iter().collect();
        if entries.is_empty() {
            return;
        }
        let written = self.write_runs(entries, 0);
        self.stats.flushes += 1;
        self.events.push(KvEvent {
            op_index: self.op_index,
            action: "flush",
            level: 0,
            pages_in: 0,
            pages_out: written,
        });
    }

    /// Runs compactions until every bounded tier is back under its
    /// target and L0 is under its trigger.
    fn maintain(&mut self) {
        loop {
            if self.levels[0].len() >= self.cfg.l0_files as usize {
                self.compact_l0();
                continue;
            }
            let mut acted = false;
            for n in 1..self.levels.len() - 1 {
                if self.level_entries(n) > self.cfg.level_target(n as u32) {
                    self.compact_level(n);
                    acted = true;
                    break;
                }
            }
            if !acted {
                return;
            }
        }
    }

    /// Merges input runs newest-first (earlier sources win on key
    /// collisions) into one sorted, deduplicated entry list.
    fn merge(sources: Vec<Vec<(u64, u64)>>) -> Vec<(u64, u64)> {
        let mut map = BTreeMap::new();
        for src in sources {
            for (k, v) in src {
                map.entry(k).or_insert(v);
            }
        }
        map.into_iter().collect()
    }

    fn compact_l0(&mut self) {
        // Inputs: every L0 run (newest first) plus every overlapping
        // L1 run.
        let l0: Vec<Sst> = std::mem::take(&mut self.levels[0]);
        let lo = l0.iter().map(Sst::first).min().expect("l0 non-empty");
        let hi = l0.iter().map(Sst::last).max().expect("l0 non-empty");
        let overlap: Vec<Sst> = Self::extract_overlap(&mut self.levels[1], lo, hi);
        let mut pages_in = 0u64;
        let mut sources: Vec<Vec<(u64, u64)>> = Vec::with_capacity(l0.len() + overlap.len());
        for sst in l0.iter().rev().chain(overlap.iter()) {
            pages_in += u64::from(sst.pages);
            sources.push(sst.entries.clone());
        }
        let merged = Self::merge(sources);
        for sst in l0.iter().chain(overlap.iter()) {
            self.emit_span(SpanKind::Read, sst.lpn, u64::from(sst.pages));
        }
        let pages_out = self.write_runs(merged, 1);
        for sst in l0.iter().chain(overlap.iter()) {
            self.emit_span(SpanKind::Trim, sst.lpn, u64::from(sst.pages));
            self.release(sst.lpn, u64::from(sst.pages));
        }
        self.stats.compactions += 1;
        self.stats.compaction_pages_read += pages_in;
        self.stats.compaction_pages_written += pages_out;
        self.events.push(KvEvent {
            op_index: self.op_index,
            action: "compact",
            level: 1,
            pages_in,
            pages_out,
        });
    }

    fn compact_level(&mut self, n: usize) {
        // Victim: the run at or after the round-robin cursor (wraps),
        // so compaction pressure sweeps the key space evenly.
        let cursor = self.cursors[n];
        let level = &mut self.levels[n];
        let idx = level.partition_point(|s| s.first() < cursor);
        let idx = if idx >= level.len() { 0 } else { idx };
        let victim = level.remove(idx);
        self.cursors[n] = victim.last().wrapping_add(1);
        let overlap: Vec<Sst> =
            Self::extract_overlap(&mut self.levels[n + 1], victim.first(), victim.last());
        let mut pages_in = u64::from(victim.pages);
        let mut sources: Vec<Vec<(u64, u64)>> = Vec::with_capacity(1 + overlap.len());
        sources.push(victim.entries.clone());
        for sst in &overlap {
            pages_in += u64::from(sst.pages);
            sources.push(sst.entries.clone());
        }
        let merged = Self::merge(sources);
        self.emit_span(SpanKind::Read, victim.lpn, u64::from(victim.pages));
        for sst in &overlap {
            self.emit_span(SpanKind::Read, sst.lpn, u64::from(sst.pages));
        }
        let pages_out = self.write_runs(merged, n + 1);
        self.emit_span(SpanKind::Trim, victim.lpn, u64::from(victim.pages));
        self.release(victim.lpn, u64::from(victim.pages));
        for sst in &overlap {
            self.emit_span(SpanKind::Trim, sst.lpn, u64::from(sst.pages));
            self.release(sst.lpn, u64::from(sst.pages));
        }
        self.stats.compactions += 1;
        self.stats.compaction_pages_read += pages_in;
        self.stats.compaction_pages_written += pages_out;
        self.events.push(KvEvent {
            op_index: self.op_index,
            action: "compact",
            level: (n + 1) as u32,
            pages_in,
            pages_out,
        });
    }

    /// Removes and returns the runs of `level` overlapping `[lo, hi]`.
    fn extract_overlap(level: &mut Vec<Sst>, lo: u64, hi: u64) -> Vec<Sst> {
        let start = level.partition_point(|s| s.last() < lo);
        let mut end = start;
        while end < level.len() && level[end].first() <= hi {
            end += 1;
        }
        level.drain(start..end).collect()
    }
}

#[derive(Debug, Clone, Copy)]
enum SpanKind {
    Read,
    Write,
    Trim,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdsim::HostOp;

    fn tiny() -> KvConfig {
        KvConfig {
            keys: 512,
            value_bytes: 1024,
            memtable_entries: 64,
            sst_entries: 64,
            l0_files: 2,
            fanout: 2,
            max_levels: 3,
            wal_pages: 8,
        }
    }

    fn drain(t: &mut LsmTree) -> Vec<HostRequest> {
        let mut v = Vec::new();
        while let Some(r) = t.take_io() {
            v.push(r);
        }
        v
    }

    #[test]
    fn no_key_is_lost_across_flushes_and_compactions() {
        let mut t = LsmTree::new(tiny(), 4_096);
        for k in 0..512u64 {
            t.put(k * 7 % 512, false);
        }
        drain(&mut t);
        for k in 0..512u64 {
            assert!(t.get(k).is_some(), "key {k} lost");
        }
    }

    #[test]
    fn newest_version_wins() {
        let mut t = LsmTree::new(tiny(), 4_096);
        t.put(42, false);
        let v1 = t.get(42).unwrap();
        for k in 0..200u64 {
            t.put(k, false); // force flushes over key 42's runs
        }
        t.put(42, false);
        let v2 = t.get(42).unwrap();
        assert_ne!(v1, v2, "update must supersede the old version");
        // And it stays the newest across further churn.
        for k in 200..400u64 {
            t.put(k, false);
        }
        assert_eq!(t.get(42).unwrap(), v2);
    }

    #[test]
    fn bounded_levels_hold_their_targets_after_maintenance() {
        let mut t = LsmTree::new(tiny(), 8_192);
        for i in 0..6_000u64 {
            t.put(splitmix64(i) % 512, false);
            drain(&mut t);
        }
        assert!(t.level_runs(0) < t.config().l0_files as usize);
        for n in 1..t.level_count() - 1 {
            assert!(
                t.level_entries(n) <= t.level_target(n as u32),
                "level {n} over target after maintenance"
            );
        }
        assert_eq!(t.level_count(), 3, "level count is bounded");
    }

    #[test]
    fn reads_emit_probe_pages_and_writes_emit_wal_and_sst_traffic() {
        let mut t = LsmTree::new(tiny(), 4_096);
        t.begin_load();
        for k in 0..256u64 {
            t.put(k, true);
        }
        t.end_load();
        let load_io = drain(&mut t);
        assert!(
            load_io.iter().any(|r| r.op == HostOp::Write),
            "load must write SSTs"
        );
        assert_eq!(t.stats().ops, 0, "load is not measured");
        t.next_op();
        assert!(t.get(17).is_some());
        let io = drain(&mut t);
        assert!(!io.is_empty(), "post-load read must probe the device");
        assert!(io.iter().all(|r| r.op == HostOp::Read));
    }

    #[test]
    fn trims_return_extents_to_the_allocator() {
        let mut t = LsmTree::new(tiny(), 4_096);
        for i in 0..4_000u64 {
            t.put(splitmix64(i) % 512, false);
            drain(&mut t);
        }
        let free: u64 = t.free.values().sum();
        let live: u64 = (0..t.level_count())
            .flat_map(|n| t.levels[n].iter().map(|s| u64::from(s.pages)))
            .sum();
        assert_eq!(free + live, t.data_pages, "allocator leaked extents");
    }

    #[test]
    fn engine_is_deterministic() {
        let run = || {
            let mut t = LsmTree::new(tiny(), 4_096);
            let mut io = Vec::new();
            for i in 0..2_000u64 {
                t.put(splitmix64(i) % 512, false);
                t.get(splitmix64(i ^ 0xabc) % 512);
                io.extend(drain(&mut t));
            }
            (io, format!("{:?}", t.stats()))
        };
        assert_eq!(run(), run());
    }
}
