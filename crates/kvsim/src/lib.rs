//! kvsim — a deterministic application-level workload engine.
//!
//! The paper's §5 evaluation drives cubeFTL with YCSB running on
//! RocksDB; this crate reproduces that layer in miniature so the
//! simulator can be exercised by *application* streams whose device
//! traffic emerges from real storage-engine mechanics (memtable
//! flushes, leveled compaction, WAL commits, read probes) rather than
//! from a synthetic address generator.
//!
//! Determinism rules, matching the rest of the workspace:
//!
//! - integer arithmetic only — no floats anywhere in the op or I/O
//!   path (derived float metrics are computed by reporting code);
//! - a single seeded splitmix64 counter stream per [`KvStream`] is the
//!   only randomness, consumed exclusively by the YCSB generator; the
//!   LSM engine itself is a pure function of the op sequence;
//! - no wall-clock, no `HashMap` iteration order, no thread count in
//!   the stream: the emitted [`HostRequest`] sequence is a pure
//!   function of `(config, kind, seed)`.
//!
//! The stream runs in two phases. A **load phase** inserts every key
//! (bulk load: no WAL, not measured) and force-flushes, so even a
//! read-only workload probes real on-device SSTs. The **measured
//! phase** then applies generator ops forever, counting per-op device
//! page costs into integer histograms. App-level write amplification
//! is `SST pages written / user pages written` — the multiplicative
//! partner of the device's own WA.

pub mod lsm;
pub mod rng;
pub mod ycsb;
pub mod zipf;

pub use lsm::{KvConfig, KvEvent, KvStats, LsmTree, PAGE_BYTES};
pub use rng::{splitmix64, SplitMix};
pub use ycsb::{KvOp, YcsbGen, YcsbKind};
pub use zipf::IntZipf;

use ssdsim::HostRequest;
use std::collections::BTreeMap;

/// An endless iterator of device requests produced by a YCSB generator
/// feeding an LSM engine. Pass `&mut stream` to `SsdSim::run` so the
/// stream (and its stats) survives the run for reporting.
#[derive(Debug)]
pub struct KvStream {
    gen: YcsbGen,
    lsm: LsmTree,
    /// Per-op read-probe page costs (pages → ops).
    read_cost: BTreeMap<u32, u64>,
    /// Per-op write page costs, flush/compaction bursts included.
    update_cost: BTreeMap<u32, u64>,
    load_requests: u64,
}

impl KvStream {
    /// Builds the engine over `space_pages` logical pages, clamps the
    /// key count to fit, and runs the bulk-load phase (its device
    /// requests are queued, not yet consumed).
    pub fn new(cfg: KvConfig, kind: YcsbKind, space_pages: u64, seed: u64) -> Self {
        let cfg = cfg.clamped(space_pages);
        let mut lsm = LsmTree::new(cfg, space_pages);
        let keys = cfg.keys;
        let gen = YcsbGen::new(kind, keys, seed);
        lsm.begin_load();
        // Load order is scattered (splitmix64 over the key id) so the
        // initial runs overlap and compaction starts exercised.
        for i in 0..keys {
            lsm.put(splitmix64(i ^ 0x4c4f_4144) % keys, true); // "LOAD"
        }
        // Ensure every key exists even where the scatter collided.
        for k in 0..keys {
            if !lsm.contains(k) {
                lsm.put(k, true);
            }
        }
        lsm.end_load();
        let mut s = KvStream {
            gen,
            lsm,
            read_cost: BTreeMap::new(),
            update_cost: BTreeMap::new(),
            load_requests: 0,
        };
        s.load_requests = s.lsm.stats().sst_pages_written;
        s
    }

    /// The engine's configuration after clamping.
    pub fn config(&self) -> &KvConfig {
        self.lsm.config()
    }

    /// The workload kind driving the stream.
    pub fn kind(&self) -> YcsbKind {
        self.gen.kind()
    }

    /// Applies one generator op to the engine, tallying its page
    /// costs. Returns whether any device I/O was queued.
    fn step(&mut self) -> bool {
        let before = self.lsm.stats().clone();
        self.lsm.next_op();
        let op = self.gen.next_op();
        match op {
            KvOp::Read(k) => {
                self.lsm.get(k);
            }
            KvOp::Update(k) => {
                self.lsm.put(k, false);
            }
            KvOp::Insert(k) => {
                self.lsm.put(k, true);
            }
            KvOp::ReadModifyWrite(k) => {
                self.lsm.get(k);
                self.lsm.put(k, false);
                self.lsm.stats_mut().rmws += 1;
            }
        }
        let after = self.lsm.stats();
        let read_pages = after.probe_pages_read - before.probe_pages_read;
        let write_pages = (after.sst_pages_written + after.wal_pages_written)
            - (before.sst_pages_written + before.wal_pages_written);
        match op {
            KvOp::Read(_) => {
                bump(&mut self.read_cost, read_pages);
            }
            KvOp::Update(_) | KvOp::Insert(_) => {
                bump(&mut self.update_cost, write_pages);
            }
            KvOp::ReadModifyWrite(_) => {
                bump(&mut self.read_cost, read_pages);
                bump(&mut self.update_cost, write_pages);
            }
        }
        self.lsm.has_io()
    }

    /// Snapshot of app-level results so far.
    pub fn report(&self) -> KvAppReport {
        let stats = self.lsm.stats().clone();
        let epp = u64::from(self.config().entries_per_page());
        let user_pages = stats.user_bytes.div_ceil(u64::from(PAGE_BYTES));
        // Measured SST traffic only: the bulk load writes every key
        // once before op 0 and would otherwise dilute the steady-state
        // amplification signal.
        let measured_sst = stats.sst_pages_written - self.load_requests;
        KvAppReport {
            kind: self.gen.kind(),
            keys: self.config().keys,
            entries_per_page: epp,
            read_p99_pages: percentile(&self.read_cost, 99),
            update_p99_pages: percentile(&self.update_cost, 99),
            app_wa_permille: ((measured_sst + stats.wal_pages_written) * 1000)
                .checked_div(user_pages)
                .unwrap_or(0),
            compaction_debt_pages: self.lsm.compaction_debt_pages(),
            load_sst_pages: self.load_requests,
            stats,
        }
    }

    /// Flush/compaction events for telemetry.
    pub fn events(&self) -> &[KvEvent] {
        self.lsm.events()
    }
}

/// Raises the histogram bucket for a cost observation.
fn bump(hist: &mut BTreeMap<u32, u64>, pages: u64) {
    let bucket = u32::try_from(pages.min(u64::from(u32::MAX))).unwrap_or(u32::MAX);
    *hist.entry(bucket).or_insert(0) += 1;
}

/// Integer percentile over a cost histogram (nearest-rank).
fn percentile(hist: &BTreeMap<u32, u64>, pct: u64) -> u64 {
    let total: u64 = hist.values().sum();
    if total == 0 {
        return 0;
    }
    let rank = (total * pct).div_ceil(100).max(1);
    let mut seen = 0u64;
    for (&bucket, &count) in hist {
        seen += count;
        if seen >= rank {
            return u64::from(bucket);
        }
    }
    u64::from(hist.keys().next_back().copied().unwrap_or(0))
}

impl Iterator for KvStream {
    type Item = HostRequest;

    fn next(&mut self) -> Option<HostRequest> {
        loop {
            if let Some(req) = self.lsm.take_io() {
                return Some(req);
            }
            // Memtable hits cost no I/O; keep applying ops until the
            // engine queues device traffic. Post-load, every SST probe
            // or eventual flush guarantees progress.
            self.step();
        }
    }
}

/// App-level results of one KV stream, all integer-valued.
#[derive(Debug, Clone, PartialEq)]
pub struct KvAppReport {
    /// Workload kind.
    pub kind: YcsbKind,
    /// Key-space size after clamping.
    pub keys: u64,
    /// Entries per device page.
    pub entries_per_page: u64,
    /// Raw engine counters.
    pub stats: KvStats,
    /// 99th-percentile read cost, probe pages per op.
    pub read_p99_pages: u64,
    /// 99th-percentile update cost, written pages per op (flush and
    /// compaction bursts land on the triggering op).
    pub update_p99_pages: u64,
    /// App-level WA × 1000: measured (SST + WAL) pages per user page.
    pub app_wa_permille: u64,
    /// Outstanding compaction backlog at end of run, pages.
    pub compaction_debt_pages: u64,
    /// SST pages written by the unmeasured bulk load.
    pub load_sst_pages: u64,
}

impl KvAppReport {
    /// App-level write amplification as a float (reporting only).
    pub fn app_wa(&self) -> f64 {
        self.app_wa_permille as f64 / 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPACE: u64 = 16_384;

    fn small() -> KvConfig {
        KvConfig {
            keys: 2_048,
            memtable_entries: 256,
            sst_entries: 256,
            ..KvConfig::default_shape()
        }
    }

    #[test]
    fn stream_is_deterministic_and_endless() {
        let draw = |seed: u64| -> Vec<HostRequest> {
            let mut s = KvStream::new(small(), YcsbKind::A, SPACE, seed);
            (&mut s).take(5_000).collect()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn read_only_c_still_probes_the_device() {
        let mut s = KvStream::new(small(), YcsbKind::C, SPACE, 7);
        let reqs: Vec<HostRequest> = (&mut s).take(2_000).collect();
        assert_eq!(reqs.len(), 2_000);
        let r = s.report();
        assert!(r.stats.reads > 0);
        assert_eq!(r.stats.updates, 0);
        assert!(r.stats.probe_pages_read > 0, "C must hit SSTs");
    }

    #[test]
    fn update_heavy_a_amplifies_writes() {
        let mut s = KvStream::new(small(), YcsbKind::A, SPACE, 7);
        for _ in (&mut s).take(30_000) {}
        let r = s.report();
        assert!(r.stats.updates > 0);
        assert!(
            r.app_wa_permille > 1000,
            "compaction must amplify: {} permille",
            r.app_wa_permille
        );
        assert!(r.stats.compactions > 0);
    }

    #[test]
    fn report_percentiles_are_populated() {
        let mut s = KvStream::new(small(), YcsbKind::B, SPACE, 3);
        for _ in (&mut s).take(10_000) {}
        let r = s.report();
        assert!(r.read_p99_pages >= 1);
        assert!(r.stats.ops > 0);
    }

    #[test]
    fn keyspace_is_clamped_to_fit_small_devices() {
        let cfg = KvConfig {
            keys: 1 << 40,
            ..KvConfig::default_shape()
        };
        let s = KvStream::new(cfg, YcsbKind::C, 4_096, 1);
        assert!(s.config().keys < 1 << 40);
        assert!(s.config().keys >= 64);
    }
}
