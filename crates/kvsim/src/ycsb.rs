//! YCSB-style operation generators.
//!
//! Five of the six core YCSB workloads, reproduced with the crate's
//! integer-only toolkit:
//!
//! | kind | mix                        | key distribution        |
//! |------|----------------------------|-------------------------|
//! | A    | 50 % read / 50 % update    | zipfian                 |
//! | B    | 95 % read /  5 % update    | zipfian                 |
//! | C    | 100 % read                 | zipfian                 |
//! | D    | 95 % read /  5 % insert    | latest (reads)          |
//! | F    | 50 % read / 50 % RMW       | zipfian                 |
//!
//! Zipfian ranks come from [`IntZipf`](crate::IntZipf) and are
//! scattered over the key space with the splitmix64 finalizer (YCSB's
//! `fnvhash` scramble, in spirit), so hot ranks are not adjacent keys.
//! Workload D grows the key space: inserts append fresh keys and reads
//! draw a zipf rank *back from the newest key* ("latest"
//! distribution).

use crate::rng::{splitmix64, SplitMix};
use crate::zipf::IntZipf;

/// One application-level operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvOp {
    /// Point read.
    Read(u64),
    /// Overwrite of an existing key.
    Update(u64),
    /// First write of a fresh key (workload D).
    Insert(u64),
    /// Read-modify-write of an existing key (workload F).
    ReadModifyWrite(u64),
}

/// Which core YCSB workload to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum YcsbKind {
    /// 50/50 read/update, zipfian.
    A,
    /// 95/5 read/update, zipfian.
    B,
    /// Read-only, zipfian.
    C,
    /// 95/5 read/insert, latest.
    D,
    /// 50/50 read/read-modify-write, zipfian.
    F,
}

impl YcsbKind {
    /// Parses `"ycsb_a"`/`"a"` style names (case-insensitive).
    pub fn parse(name: &str) -> Option<Self> {
        let tail = name
            .trim()
            .to_ascii_lowercase()
            .trim_start_matches("ycsb_")
            .trim_start_matches("ycsb-")
            .to_string();
        match tail.as_str() {
            "a" => Some(YcsbKind::A),
            "b" => Some(YcsbKind::B),
            "c" => Some(YcsbKind::C),
            "d" => Some(YcsbKind::D),
            "f" => Some(YcsbKind::F),
            _ => None,
        }
    }

    /// Canonical lowercase label (`"ycsb_a"`).
    pub fn label(&self) -> &'static str {
        match self {
            YcsbKind::A => "ycsb_a",
            YcsbKind::B => "ycsb_b",
            YcsbKind::C => "ycsb_c",
            YcsbKind::D => "ycsb_d",
            YcsbKind::F => "ycsb_f",
        }
    }

    /// Write-op share in permyriad (update/insert/RMW draws).
    fn write_permyriad(&self) -> u64 {
        match self {
            YcsbKind::A | YcsbKind::F => 5_000,
            YcsbKind::B | YcsbKind::D => 500,
            YcsbKind::C => 0,
        }
    }
}

/// Seeded, endless generator of [`KvOp`]s for one workload kind.
#[derive(Debug, Clone)]
pub struct YcsbGen {
    kind: YcsbKind,
    rng: SplitMix,
    zipf: IntZipf,
    /// Base (loaded) key count; D appends beyond it.
    base_keys: u64,
    /// Keys inserted beyond the base (workload D).
    inserted: u64,
}

impl YcsbGen {
    /// A generator over `keys` pre-loaded keys.
    pub fn new(kind: YcsbKind, keys: u64, seed: u64) -> Self {
        assert!(keys >= 1, "need at least one key");
        YcsbGen {
            kind,
            rng: SplitMix::new(seed ^ 0x5943_5342_4b56_5347), // "YCSBKVSG"
            zipf: IntZipf::new(keys),
            base_keys: keys,
            inserted: 0,
        }
    }

    /// Which workload this generates.
    pub fn kind(&self) -> YcsbKind {
        self.kind
    }

    /// Keys live right now (base plus D-inserts).
    pub fn live_keys(&self) -> u64 {
        self.base_keys + self.inserted
    }

    /// Scatters a zipf rank (1-based, hottest first) over the base key
    /// space so hot keys are not adjacent.
    fn scatter(&self, rank: u64) -> u64 {
        splitmix64(rank) % self.base_keys
    }

    /// The next operation. Never exhausts.
    pub fn next_op(&mut self) -> KvOp {
        let is_write = self.rng.permyriad() < self.kind.write_permyriad();
        match (self.kind, is_write) {
            (YcsbKind::D, true) => {
                let key = self.base_keys + self.inserted;
                self.inserted += 1;
                KvOp::Insert(key)
            }
            (YcsbKind::D, false) => {
                // Latest: zipf rank 1 is the newest live key, counting
                // backwards; ranks past the D-inserts scatter into the
                // base space so the cold tail stays covered.
                let rank = self.zipf.sample(&mut self.rng);
                let key = if rank <= self.inserted {
                    self.base_keys + self.inserted - rank
                } else {
                    self.scatter(rank)
                };
                KvOp::Read(key)
            }
            (YcsbKind::F, true) => {
                let rank = self.zipf.sample(&mut self.rng);
                let key = self.scatter(rank);
                KvOp::ReadModifyWrite(key)
            }
            (_, true) => {
                let rank = self.zipf.sample(&mut self.rng);
                let key = self.scatter(rank);
                KvOp::Update(key)
            }
            (_, false) => {
                let rank = self.zipf.sample(&mut self.rng);
                let key = self.scatter(rank);
                KvOp::Read(key)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_all_spellings() {
        assert_eq!(YcsbKind::parse("ycsb_a"), Some(YcsbKind::A));
        assert_eq!(YcsbKind::parse("YCSB-B"), Some(YcsbKind::B));
        assert_eq!(YcsbKind::parse("c"), Some(YcsbKind::C));
        assert_eq!(YcsbKind::parse("ycsb_d"), Some(YcsbKind::D));
        assert_eq!(YcsbKind::parse("F"), Some(YcsbKind::F));
        assert_eq!(YcsbKind::parse("ycsb_e"), None);
        assert_eq!(YcsbKind::parse("mail"), None);
    }

    #[test]
    fn mixes_roughly_match_their_spec() {
        let count_writes = |kind: YcsbKind| -> u64 {
            let mut g = YcsbGen::new(kind, 4096, 11);
            (0..10_000)
                .filter(|_| {
                    matches!(
                        g.next_op(),
                        KvOp::Update(_) | KvOp::Insert(_) | KvOp::ReadModifyWrite(_)
                    )
                })
                .count() as u64
        };
        let a = count_writes(YcsbKind::A);
        assert!((4_500..=5_500).contains(&a), "A writes {a}");
        let b = count_writes(YcsbKind::B);
        assert!((300..=700).contains(&b), "B writes {b}");
        assert_eq!(count_writes(YcsbKind::C), 0);
        let f = count_writes(YcsbKind::F);
        assert!((4_500..=5_500).contains(&f), "F writes {f}");
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let draw = |seed: u64| -> Vec<KvOp> {
            let mut g = YcsbGen::new(YcsbKind::A, 1024, seed);
            (0..2_000).map(|_| g.next_op()).collect()
        };
        assert_eq!(draw(5), draw(5));
        assert_ne!(draw(5), draw(6));
    }

    #[test]
    fn d_inserts_extend_the_keyspace_and_reads_favour_recent() {
        let mut g = YcsbGen::new(YcsbKind::D, 1024, 3);
        let mut max_insert = 0;
        let mut recent_reads = 0u64;
        let mut reads = 0u64;
        for _ in 0..20_000 {
            match g.next_op() {
                KvOp::Insert(k) => {
                    assert!(k >= 1024, "inserts must be fresh keys");
                    max_insert = max_insert.max(k);
                }
                KvOp::Read(k) => {
                    reads += 1;
                    if k >= 1024 {
                        recent_reads += 1;
                    }
                }
                other => panic!("unexpected op {other:?}"),
            }
        }
        assert!(max_insert > 1024);
        assert_eq!(g.live_keys(), max_insert + 1);
        // Latest skew: inserted keys are a tiny slice of the space but
        // should draw a disproportionate read share.
        assert!(
            recent_reads * 10 > reads,
            "latest reads too rare: {recent_reads}/{reads}"
        );
    }

    #[test]
    fn keys_stay_in_live_range() {
        for kind in [
            YcsbKind::A,
            YcsbKind::B,
            YcsbKind::C,
            YcsbKind::D,
            YcsbKind::F,
        ] {
            let mut g = YcsbGen::new(kind, 512, 9);
            for _ in 0..5_000 {
                let key = match g.next_op() {
                    KvOp::Read(k)
                    | KvOp::Update(k)
                    | KvOp::Insert(k)
                    | KvOp::ReadModifyWrite(k) => k,
                };
                assert!(key < g.live_keys(), "{kind:?} key {key} out of range");
            }
        }
    }
}
