//! The crate's only randomness source: a splitmix64 counter stream.
//!
//! Every draw is a 64-bit finalizer over an incrementing state, so the
//! stream is a pure function of the seed — no platform floats, no
//! library RNG, nothing that could drift between builds. The same
//! finalizer doubles as the key/value fingerprint hash.

/// Weyl-sequence increment of splitmix64.
const GOLDEN: u64 = 0x9E37_79B9_7F4A_7C15;

/// The splitmix64 finalizer: a bijection on `u64` with full avalanche.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(GOLDEN);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded splitmix64 stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// A new stream; distinct seeds give unrelated streams.
    pub fn new(seed: u64) -> Self {
        SplitMix { state: seed }
    }

    /// The next 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A draw reduced to `[0, bound)`; `bound` must be positive.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// A draw reduced to `[0, 10_000)` for per-mille style mix splits.
    #[inline]
    pub fn permyriad(&mut self) -> u64 {
        self.below(10_000)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic_and_seed_sensitive() {
        let a: Vec<u64> = {
            let mut r = SplitMix::new(7);
            (0..64).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMix::new(7);
            (0..64).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let mut r = SplitMix::new(8);
        let c: Vec<u64> = (0..64).map(|_| r.next_u64()).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn finalizer_is_injective_on_a_sample() {
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(splitmix64(i)));
        }
    }
}
