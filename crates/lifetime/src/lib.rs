//! Fast-forward device aging between workload phases.
//!
//! The paper evaluates its process-similarity mechanisms at three fixed
//! aged states (§6.2: fresh, 2K P/E + 1 month, 2K P/E + 1 year). This
//! crate models the *trajectory* between those snapshots: an epoch-based
//! campaign advances virtual device age between workload phases, so the
//! OPM/ORT, retry chains and background maintenance race real drift
//! instead of meeting a pre-baked state.
//!
//! Three effects compose, each deterministic and purely arithmetic:
//!
//! * **Early retention loss** (Luo et al., arXiv 1807.05140): retention
//!   age accrues sub-linearly in campaign steps — the first idle period
//!   after programming costs the most margin — via the
//!   [`AgingPlan`]'s concave cumulative-retention curve.
//! * **Process-variation wear rates** (ibid.): each block ages at its
//!   own rate. The per-block factor is derived from the h-layer
//!   similarity model's aging sensitivity (passed in by the FTL, which
//!   owns the chips) plus a seeded per-block jitter.
//! * **Data-pattern wear** (STAR, arXiv 2511.06249): the cell-state
//!   composition of the data actually resident in a block shifts its
//!   wear. Written-page fingerprints map to a high-charge-state
//!   fraction; blocks holding charge-heavy data age faster.
//!
//! The crate is dependency-free and owns no device state: the FTL walks
//! its chips at an epoch barrier, asks [`LifetimeEngine`] for each
//! block's age delta, and applies it to the NAND environment. Nothing
//! here draws from an RNG stream — every number is a pure function of
//! (seed, chip, block, step), so campaigns are byte-identical across
//! reruns and worker-thread counts.

/// Campaign shape: how many epochs, and how much age each inter-epoch
/// step fast-forwards.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifetimeConfig {
    /// Workload epochs in the campaign. `E` epochs bracket `E − 1`
    /// aging steps; 0 or 1 disengages fast-forward aging entirely.
    pub epochs: u32,
    /// Nominal P/E cycles fast-forwarded per aging step (scaled
    /// per block by variation and pattern stress).
    pub pe_per_epoch: u32,
    /// Nominal retention months fast-forwarded per aging step (shaped
    /// by the early-retention-loss curve; the campaign total is
    /// `months_per_epoch × (epochs − 1)`).
    pub months_per_epoch: f64,
    /// Exponent `q ≤ 1` of the cumulative retention curve
    /// `C(k) ∝ (k/K)^q`: smaller ⇒ more of the total retention age
    /// lands in the early steps (Luo et al. report strongly concave
    /// early retention loss). 1.0 is linear accrual.
    pub early_retention_exp: f64,
    /// Strength of the per-block wear-rate spread in `[0, 1]`: 0 ages
    /// every block identically, 1 spreads rates by up to ±100% around
    /// the similarity-model sensitivity.
    pub variation_strength: f64,
    /// Whether resident-data cell-state composition modulates wear
    /// (the STAR effect).
    pub pattern_wear: bool,
    /// Strength of the pattern-wear modulation in `[0, 1]`.
    pub pattern_wear_strength: f64,
    /// Seed of the per-block jitter (domain-separated internally).
    pub seed: u64,
}

impl LifetimeConfig {
    /// A disengaged campaign: one epoch, no aging steps. Running with
    /// this configuration reproduces a plain evaluation byte-for-byte.
    pub fn off() -> Self {
        LifetimeConfig {
            epochs: 1,
            pe_per_epoch: 0,
            months_per_epoch: 0.0,
            early_retention_exp: 1.0,
            variation_strength: 0.0,
            pattern_wear: false,
            pattern_wear_strength: 0.0,
            seed: 0,
        }
    }

    /// The default fresh→worn-out campaign: five epochs stepping to the
    /// paper's end-of-life point (2K P/E, 12 months) with moderate
    /// variation and pattern wear.
    pub fn campaign() -> Self {
        LifetimeConfig {
            epochs: 5,
            pe_per_epoch: 500,
            months_per_epoch: 3.0,
            early_retention_exp: 0.6,
            variation_strength: 0.3,
            pattern_wear: true,
            pattern_wear_strength: 0.2,
            seed: 0x11FE,
        }
    }

    /// Aging steps this campaign performs (one between each pair of
    /// consecutive epochs).
    pub fn steps(&self) -> u32 {
        self.epochs.saturating_sub(1)
    }

    /// Whether the campaign fast-forwards any age at all.
    pub fn engaged(&self) -> bool {
        self.steps() > 0 && (self.pe_per_epoch > 0 || self.months_per_epoch > 0.0)
    }

    /// Panics on out-of-range parameters (mirrors `FtlConfig::validate`).
    pub fn validate(&self) {
        assert!(
            self.months_per_epoch >= 0.0,
            "months_per_epoch must be non-negative"
        );
        assert!(
            self.early_retention_exp > 0.0 && self.early_retention_exp <= 1.0,
            "early_retention_exp must be in (0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.variation_strength),
            "variation_strength must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.pattern_wear_strength),
            "pattern_wear_strength must be in [0, 1]"
        );
    }
}

/// Nominal (pre-variation) age advance of one campaign step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochDelta {
    /// P/E cycles to fast-forward.
    pub pe: u32,
    /// Retention months to fast-forward.
    pub retention_months: f64,
}

/// The campaign's step schedule: uniform P/E accrual, concave
/// (early-fast) retention accrual.
#[derive(Debug, Clone, Copy)]
pub struct AgingPlan {
    cfg: LifetimeConfig,
}

impl AgingPlan {
    /// A plan over `cfg` (validated).
    pub fn new(cfg: LifetimeConfig) -> Self {
        cfg.validate();
        AgingPlan { cfg }
    }

    /// Cumulative retention months after `k` of the plan's steps:
    /// `M_total · (k/K)^q`. Concave for `q < 1`, so early steps carry
    /// more of the total — Luo et al.'s early retention loss in
    /// fast-forward form.
    pub fn cumulative_retention_months(&self, k: u32) -> f64 {
        let steps = self.cfg.steps();
        if steps == 0 || k == 0 {
            return 0.0;
        }
        let total = self.cfg.months_per_epoch * f64::from(steps);
        let frac = f64::from(k.min(steps)) / f64::from(steps);
        total * frac.powf(self.cfg.early_retention_exp)
    }

    /// The nominal age advance of step `k` (1-based).
    pub fn step_delta(&self, k: u32) -> EpochDelta {
        assert!(k >= 1 && k <= self.cfg.steps(), "step out of plan range");
        EpochDelta {
            pe: self.cfg.pe_per_epoch,
            retention_months: self.cumulative_retention_months(k)
                - self.cumulative_retention_months(k - 1),
        }
    }
}

/// splitmix64 — the workspace's standard seed-derivation mix (same
/// construction as `workloads::shard_seed`, duplicated here to keep the
/// crate dependency-free).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a 64-bit hash to a unit sample in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// High-charge cell-state fraction of one written page, from its
/// logical fingerprint. The STAR model keys wear on the cell-state
/// composition of the *data*; with no payload bytes in the simulator,
/// the deterministic page fingerprint stands in: the popcount of the
/// mixed LPN models the fraction of cells programmed to high-charge
/// states.
pub fn page_state_fraction(lpn: u64) -> f64 {
    let h = splitmix64(lpn ^ 0x57A8_C0DE_57A8_C0DE);
    f64::from((h & 0xffff_ffff_ffff).count_ones()) / 48.0
}

/// Pattern-wear stress of a block from its resident pages' state
/// fractions: charge-heavy data (> 0.5 mean high-charge fraction) wears
/// the block faster, charge-light data slower. Neutral (1.0) for an
/// empty block. Clamped to `[1 − strength, 1 + strength]` by
/// construction.
pub fn block_pattern_stress(fractions: impl Iterator<Item = f64>, strength: f64) -> f64 {
    let (mut sum, mut n) = (0.0, 0u32);
    for f in fractions {
        sum += f;
        n += 1;
    }
    if n == 0 {
        return 1.0;
    }
    let mean = sum / f64::from(n);
    1.0 + strength * (mean - 0.5) * 2.0
}

/// What the FTL reports back after applying one aging step: the inputs
/// to the per-epoch drift rows and the AGING trace events.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EpochSummary {
    /// 1-based campaign step just applied.
    pub step: u32,
    /// Blocks whose age advanced.
    pub blocks_aged: u64,
    /// Total P/E cycles added across those blocks.
    pub pe_added: u64,
    /// Nominal retention months added this step.
    pub retention_added_months: f64,
    /// Mean pattern-wear stress across data-holding blocks (1.0 when
    /// the effect is off).
    pub mean_pattern_stress: f64,
}

/// The campaign driver: owns the plan, the per-block variation factors
/// and the step counter. One engine serves one device (shard) — arrays
/// build one per shard from the shard's derived seed.
#[derive(Debug, Clone)]
pub struct LifetimeEngine {
    cfg: LifetimeConfig,
    plan: AgingPlan,
    /// Cached per-chip, per-block wear-rate factors (built on first
    /// touch per chip so the engine needs no geometry up front).
    factors: Vec<Vec<f64>>,
    steps_applied: u32,
}

impl LifetimeEngine {
    /// An engine over `cfg` (validated).
    pub fn new(cfg: LifetimeConfig) -> Self {
        LifetimeEngine {
            cfg,
            plan: AgingPlan::new(cfg),
            factors: Vec::new(),
            steps_applied: 0,
        }
    }

    /// The campaign configuration.
    pub fn config(&self) -> &LifetimeConfig {
        &self.cfg
    }

    /// The step schedule.
    pub fn plan(&self) -> &AgingPlan {
        &self.plan
    }

    /// Steps applied so far.
    pub fn steps_applied(&self) -> u32 {
        self.steps_applied
    }

    /// Begins the next aging step, returning its 1-based index.
    ///
    /// # Panics
    ///
    /// Panics when the plan's steps are exhausted.
    pub fn begin_step(&mut self) -> u32 {
        assert!(
            self.steps_applied < self.cfg.steps(),
            "aging plan exhausted: {} steps configured",
            self.cfg.steps()
        );
        self.steps_applied += 1;
        self.steps_applied
    }

    /// The wear-rate factor of `(chip, block)`: the similarity-model
    /// sensitivity ratio (`sens_norm`, 1.0 = chip-nominal) modulated by
    /// a seeded per-block jitter of ±`variation_strength`. Cached on
    /// first call per block — the sensitivity is a process constant, so
    /// later calls ignore the argument.
    pub fn variation_factor(&mut self, chip: usize, block: usize, sens_norm: f64) -> f64 {
        if self.factors.len() <= chip {
            self.factors.resize(chip + 1, Vec::new());
        }
        let per_chip = &mut self.factors[chip];
        if per_chip.len() <= block {
            per_chip.resize(block + 1, 0.0);
        }
        if per_chip[block] == 0.0 {
            let h = splitmix64(self.cfg.seed ^ ((chip as u64) << 32) ^ block as u64);
            let jitter = 2.0 * unit(h) - 1.0;
            let f = sens_norm * (1.0 + self.cfg.variation_strength * jitter);
            per_chip[block] = f.clamp(0.25, 4.0);
        }
        per_chip[block]
    }

    /// The age advance of `(chip, block)` for step `k`: nominal step
    /// delta × variation factor × pattern stress on the P/E leg;
    /// retention advances by the nominal (global-clock) amount.
    pub fn block_delta(
        &mut self,
        k: u32,
        chip: usize,
        block: usize,
        sens_norm: f64,
        pattern_stress: f64,
    ) -> EpochDelta {
        let nominal = self.plan.step_delta(k);
        let f = self.variation_factor(chip, block, sens_norm);
        let stress = if self.cfg.pattern_wear {
            pattern_stress
        } else {
            1.0
        };
        EpochDelta {
            pe: (f64::from(nominal.pe) * f * stress).round() as u32,
            retention_months: nominal.retention_months,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_config_is_disengaged() {
        let cfg = LifetimeConfig::off();
        assert_eq!(cfg.steps(), 0);
        assert!(!cfg.engaged());
        let plan = AgingPlan::new(cfg);
        assert_eq!(plan.cumulative_retention_months(3), 0.0);
    }

    #[test]
    fn retention_accrual_is_early_heavy_and_sums_to_total() {
        let mut cfg = LifetimeConfig::campaign();
        cfg.epochs = 5;
        cfg.months_per_epoch = 3.0;
        cfg.early_retention_exp = 0.6;
        let plan = AgingPlan::new(cfg);
        let deltas: Vec<f64> = (1..=4)
            .map(|k| plan.step_delta(k).retention_months)
            .collect();
        // Concave cumulative curve ⇒ strictly decreasing increments.
        for w in deltas.windows(2) {
            assert!(w[0] > w[1], "early steps must carry more: {deltas:?}");
        }
        let total: f64 = deltas.iter().sum();
        assert!((total - 12.0).abs() < 1e-9, "campaign total: {total}");
        // Every step still advances age — monotone aging.
        assert!(deltas.iter().all(|&d| d > 0.0));
    }

    #[test]
    fn linear_exponent_gives_uniform_steps() {
        let mut cfg = LifetimeConfig::campaign();
        cfg.early_retention_exp = 1.0;
        let plan = AgingPlan::new(cfg);
        for k in 1..=cfg.steps() {
            assert!((plan.step_delta(k).retention_months - cfg.months_per_epoch).abs() < 1e-9);
        }
    }

    #[test]
    fn variation_factor_is_deterministic_and_bounded() {
        let cfg = LifetimeConfig::campaign();
        let mut a = LifetimeEngine::new(cfg);
        let mut b = LifetimeEngine::new(cfg);
        for chip in 0..3 {
            for block in 0..32 {
                let f = a.variation_factor(chip, block, 1.0);
                assert_eq!(f, b.variation_factor(chip, block, 1.0));
                assert!((0.25..=4.0).contains(&f), "factor {f} out of bounds");
            }
        }
        // Different seeds draw different spreads.
        let mut c = LifetimeEngine::new(LifetimeConfig {
            seed: cfg.seed ^ 1,
            ..cfg
        });
        let differs = (0..32)
            .any(|b| (a.variation_factor(0, b, 1.0) - c.variation_factor(0, b, 1.0)).abs() > 1e-12);
        assert!(differs, "seed must matter");
    }

    #[test]
    fn sensitivity_scales_the_factor() {
        let mut cfg = LifetimeConfig::campaign();
        cfg.variation_strength = 0.0;
        let mut eng = LifetimeEngine::new(cfg);
        assert_eq!(eng.variation_factor(0, 0, 1.0), 1.0);
        assert_eq!(eng.variation_factor(0, 1, 1.5), 1.5);
        assert_eq!(
            eng.variation_factor(0, 1, 9.9),
            1.5,
            "factor is cached on first touch"
        );
    }

    #[test]
    fn pattern_stress_is_neutral_at_center_and_bounded() {
        assert_eq!(block_pattern_stress([].into_iter(), 0.5), 1.0);
        let s = block_pattern_stress([0.5, 0.5].into_iter(), 0.4);
        assert!((s - 1.0).abs() < 1e-12);
        let heavy = block_pattern_stress([1.0, 1.0].into_iter(), 0.4);
        let light = block_pattern_stress([0.0, 0.0].into_iter(), 0.4);
        assert!((heavy - 1.4).abs() < 1e-12);
        assert!((light - 0.6).abs() < 1e-12);
    }

    #[test]
    fn page_state_fraction_is_pure_and_in_range() {
        for lpn in [0u64, 1, 7, 1 << 40, u64::MAX] {
            let f = page_state_fraction(lpn);
            assert_eq!(f, page_state_fraction(lpn));
            assert!((0.0..=1.0).contains(&f));
        }
        // The fingerprint discriminates between pages.
        assert_ne!(page_state_fraction(1), page_state_fraction(2));
    }

    #[test]
    fn block_delta_composes_all_three_effects() {
        let mut cfg = LifetimeConfig::campaign();
        cfg.variation_strength = 0.0;
        cfg.pattern_wear = true;
        let mut eng = LifetimeEngine::new(cfg);
        let k = eng.begin_step();
        let base = eng.block_delta(k, 0, 0, 1.0, 1.0);
        assert_eq!(base.pe, cfg.pe_per_epoch);
        let stressed = eng.block_delta(k, 0, 1, 1.0, 1.2);
        assert!(stressed.pe > base.pe, "pattern stress must add wear");
        let slow = eng.block_delta(k, 0, 2, 0.5, 1.0);
        assert!(slow.pe < base.pe, "low sensitivity must slow wear");
        assert_eq!(base.retention_months, stressed.retention_months);
    }

    #[test]
    #[should_panic(expected = "aging plan exhausted")]
    fn step_counter_is_bounded_by_the_plan() {
        let mut eng = LifetimeEngine::new(LifetimeConfig::off());
        eng.begin_step();
    }

    #[test]
    #[should_panic(expected = "variation_strength")]
    fn config_validation_rejects_out_of_range() {
        AgingPlan::new(LifetimeConfig {
            variation_strength: 1.5,
            ..LifetimeConfig::campaign()
        });
    }
}
