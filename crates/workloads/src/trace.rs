//! Trace recording and replay.
//!
//! Workload generators are deterministic per seed, but experiments often
//! need to pin the *exact* request stream across codebase versions or
//! share it between tools. A [`Trace`] captures a request stream in a
//! simple line-oriented text format:
//!
//! ```text
//! # cubeftl trace v1
//! R 4096 1
//! W 128 3
//! T 640 4
//! ```
//!
//! (`R`/`W`/`T` for read/write/trim, first LPN, page count.) [`Trace::replay`] turns it back
//! into a request iterator usable anywhere a generator is.

use crate::Workload;
use ssdsim::{HostOp, HostRequest};
use std::fmt::Write as _;
use std::str::FromStr;

/// Header line identifying the format.
pub const TRACE_HEADER: &str = "# cubeftl trace v1";

/// A recorded request stream.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    requests: Vec<HostRequest>,
    label: String,
}

/// Error parsing a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseTraceError {}

impl Trace {
    /// Records up to `n` requests from a generator.
    pub fn record(source: &mut dyn Workload, n: usize) -> Self {
        let label = source.label().to_owned();
        Trace {
            requests: source.take(n).collect(),
            label,
        }
    }

    /// Builds a trace from explicit requests.
    pub fn from_requests(label: impl Into<String>, requests: Vec<HostRequest>) -> Self {
        Trace {
            requests,
            label: label.into(),
        }
    }

    /// Number of recorded requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// The recorded requests.
    pub fn requests(&self) -> &[HostRequest] {
        &self.requests
    }

    /// Serializes to the line format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(TRACE_HEADER);
        out.push('\n');
        let _ = writeln!(out, "# label: {}", self.label);
        for r in &self.requests {
            let op = match r.op {
                HostOp::Read => 'R',
                HostOp::Write => 'W',
                HostOp::Trim => 'T',
            };
            let _ = writeln!(out, "{op} {} {}", r.lpn, r.n_pages);
        }
        out
    }

    /// An owning iterator replaying the trace as a [`Workload`].
    pub fn replay(&self) -> TraceReplay {
        TraceReplay {
            requests: self.requests.clone(),
            label: self.label.clone(),
            pos: 0,
        }
    }

    /// The workload label the trace was recorded from.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Parses an MSR-Cambridge-style CSV block trace.
    ///
    /// Accepted rows are either the full seven-field MSR form
    /// (`Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime`)
    /// or the reduced four-field form (`Timestamp,Offset,Size,Type`);
    /// `Type` is `Read`/`Write` (case-insensitive, `R`/`W` accepted),
    /// `Offset` and `Size` are bytes. Byte ranges are converted to page
    /// spans of `page_bytes` (span = ceil, at least one page) and folded
    /// into the `logical_pages` address space modulo its size, so any
    /// real trace replays against any simulated device geometry.
    /// Timestamps only order the rows (the simulator is closed-loop);
    /// rows must already be in issue order, as MSR traces are.
    pub fn from_msr_csv(
        text: &str,
        page_bytes: u64,
        logical_pages: u64,
    ) -> Result<Self, ParseTraceError> {
        assert!(page_bytes > 0, "page size must be positive");
        assert!(logical_pages > 0, "need a logical address space");
        let mut requests = Vec::new();
        let mut label = "MSR-trace".to_owned();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim();
            let err = |message: String| ParseTraceError {
                line: idx + 1,
                message,
            };
            if let Some(rest) = line.strip_prefix("# label:") {
                label = rest.trim().to_owned();
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split(',').map(str::trim).collect();
            let (op_field, offset_field, size_field) = match fields.len() {
                7 => (fields[3], fields[4], fields[5]),
                4 => (fields[3], fields[1], fields[2]),
                n => return Err(err(format!("expected 4 or 7 CSV fields, got {n}"))),
            };
            // Header row: skip if the type column is a column name.
            if idx == 0 && offset_field.parse::<u64>().is_err() {
                continue;
            }
            let op = match op_field.to_ascii_lowercase().as_str() {
                "read" | "r" => HostOp::Read,
                "write" | "w" => HostOp::Write,
                "trim" | "t" => HostOp::Trim,
                other => return Err(err(format!("unknown op `{other}`"))),
            };
            let offset: u64 = offset_field
                .parse()
                .map_err(|_| err(format!("bad byte offset `{offset_field}`")))?;
            let size: u64 = size_field
                .parse()
                .map_err(|_| err(format!("bad byte size `{size_field}`")))?;
            let lpn = (offset / page_bytes) % logical_pages;
            let span = size.div_ceil(page_bytes).max(1);
            // Clamp the span to the address space end; u32 is ample (a
            // single request never spans billions of pages).
            let span = span.min(logical_pages - lpn);
            let n_pages = u32::try_from(span).unwrap_or(u32::MAX);
            requests.push(HostRequest { op, lpn, n_pages });
        }
        Ok(Trace { requests, label })
    }

    /// Serializes the trace as MSR-Cambridge-style CSV (the full
    /// seven-field form [`Trace::from_msr_csv`] accepts): row index as
    /// the timestamp, page-aligned byte offsets/sizes at `page_bytes`
    /// per page. Re-parsing the output against the same page size and
    /// an address space at least as large as the recorded LPNs yields
    /// the identical request sequence (`--capture-trace-out` relies on
    /// this round trip).
    pub fn to_msr_csv(&self, page_bytes: u64) -> String {
        assert!(page_bytes > 0, "page size must be positive");
        let mut out = String::with_capacity(64 + self.requests.len() * 40);
        out.push_str("Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime\n");
        let _ = writeln!(out, "# label: {}", self.label);
        for (i, r) in self.requests.iter().enumerate() {
            let op = match r.op {
                HostOp::Read => "Read",
                HostOp::Write => "Write",
                HostOp::Trim => "Trim",
            };
            let _ = writeln!(
                out,
                "{i},cubeftl,0,{op},{},{},0",
                r.lpn * page_bytes,
                u64::from(r.n_pages) * page_bytes
            );
        }
        out
    }
}

impl FromStr for Trace {
    type Err = ParseTraceError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut lines = s.lines().enumerate();
        match lines.next() {
            Some((_, l)) if l.trim() == TRACE_HEADER => {}
            _ => {
                return Err(ParseTraceError {
                    line: 1,
                    message: format!("missing header `{TRACE_HEADER}`"),
                })
            }
        }
        let mut label = String::new();
        let mut requests = Vec::new();
        for (idx, line) in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix("# label:") {
                label = rest.trim().to_owned();
                continue;
            }
            if line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let err = |message: String| ParseTraceError {
                line: idx + 1,
                message,
            };
            let op = match parts.next() {
                Some("R") => HostOp::Read,
                Some("W") => HostOp::Write,
                Some("T") => HostOp::Trim,
                other => return Err(err(format!("expected R, W or T, got {other:?}"))),
            };
            let lpn: u64 = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err("bad LPN".to_owned()))?;
            let n_pages: u32 = parts
                .next()
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| err("bad page count".to_owned()))?;
            if n_pages == 0 {
                return Err(err("page count must be positive".to_owned()));
            }
            if parts.next().is_some() {
                return Err(err("trailing fields".to_owned()));
            }
            requests.push(HostRequest { op, lpn, n_pages });
        }
        Ok(Trace { requests, label })
    }
}

/// Iterator replaying a [`Trace`].
#[derive(Debug, Clone)]
pub struct TraceReplay {
    requests: Vec<HostRequest>,
    label: String,
    pos: usize,
}

impl Iterator for TraceReplay {
    type Item = HostRequest;

    fn next(&mut self) -> Option<HostRequest> {
        let r = self.requests.get(self.pos).copied();
        self.pos += 1;
        r
    }
}

impl Workload for TraceReplay {
    fn label(&self) -> &str {
        &self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StandardWorkload;

    #[test]
    fn record_serialize_parse_roundtrip() {
        let mut gen = StandardWorkload::Mail.build(10_000, 5);
        let trace = Trace::record(gen.as_mut(), 200);
        assert_eq!(trace.len(), 200);
        assert_eq!(trace.label(), "Mail");
        let text = trace.to_text();
        let parsed: Trace = text.parse().expect("roundtrip");
        assert_eq!(parsed, trace);
    }

    #[test]
    fn replay_matches_recording() {
        let mut gen = StandardWorkload::Rocks.build(10_000, 5);
        let trace = Trace::record(gen.as_mut(), 100);
        let replayed: Vec<_> = trace.replay().collect();
        assert_eq!(replayed, trace.requests());
        // Replay again from a fresh iterator: identical.
        let again: Vec<_> = trace.replay().collect();
        assert_eq!(again, replayed);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("not a trace".parse::<Trace>().is_err());
        let bad_op = format!("{TRACE_HEADER}\nX 1 1\n");
        let e = bad_op.parse::<Trace>().unwrap_err();
        assert_eq!(e.line, 2);
        let bad_pages = format!("{TRACE_HEADER}\nR 1 0\n");
        assert!(bad_pages.parse::<Trace>().is_err());
        let trailing = format!("{TRACE_HEADER}\nR 1 1 junk\n");
        assert!(trailing.parse::<Trace>().is_err());
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = format!("{TRACE_HEADER}\n# a comment\n\nR 7 2\nW 9 1\n");
        let t: Trace = text.parse().unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests()[0], HostRequest::read_span(7, 2));
        assert_eq!(t.requests()[1], HostRequest::write(9));
    }

    #[test]
    fn msr_csv_full_and_reduced_forms_parse() {
        let text = "\
Timestamp,Hostname,DiskNumber,Type,Offset,Size,ResponseTime
128166372003061629,prxy,0,Read,65536,16384,500
128166372003061700,prxy,0,Write,131072,32768,600
";
        let t = Trace::from_msr_csv(text, 16384, 1_000_000).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.requests()[0], HostRequest::read_span(4, 1));
        assert_eq!(t.requests()[1], HostRequest::write_span(8, 2));

        let reduced = "1000,65536,4096,R\n2000,16384,16385,w\n";
        let t = Trace::from_msr_csv(reduced, 16384, 1_000_000).unwrap();
        assert_eq!(t.requests()[0], HostRequest::read_span(4, 1));
        assert_eq!(t.requests()[1], HostRequest::write_span(1, 2), "size ceils");
    }

    #[test]
    fn msr_csv_folds_into_address_space() {
        // Offset far beyond the device wraps modulo the space; spans are
        // clamped at the end of the space.
        let t = Trace::from_msr_csv("0,163840,65536,R\n", 16384, 12).unwrap();
        let r = t.requests()[0];
        assert_eq!(r.lpn, 10);
        assert_eq!(r.n_pages, 2, "span clamped at space end");
        for lpn in r.lpns() {
            assert!(lpn < 12);
        }
    }

    #[test]
    fn msr_csv_rejects_malformed_rows() {
        assert!(Trace::from_msr_csv("1,2,3\n", 16384, 100).is_err());
        assert!(Trace::from_msr_csv("1000,65536,4096,Fsync\n", 16384, 100).is_err());
        let e = Trace::from_msr_csv("0,0,1,R\n1000,notanumber,4096,R\n", 16384, 100).unwrap_err();
        assert_eq!(e.line, 2);
    }

    #[test]
    fn msr_csv_export_round_trips_including_trims() {
        let mut gen = StandardWorkload::Mail.build(10_000, 5);
        let mut trace = Trace::record(gen.as_mut(), 300);
        trace.requests.push(HostRequest::trim_span(123, 4));
        let csv = trace.to_msr_csv(16_384);
        let parsed = Trace::from_msr_csv(&csv, 16_384, 10_000).unwrap();
        assert_eq!(parsed.requests(), trace.requests());
        assert_eq!(parsed.label(), trace.label(), "label survives the CSV");
        // And the export is byte-stable.
        assert_eq!(parsed.to_msr_csv(16_384), csv);
    }

    #[test]
    fn empty_trace_is_valid() {
        let t: Trace = TRACE_HEADER.parse().unwrap();
        assert!(t.is_empty());
        assert_eq!(t.replay().count(), 0);
    }
}
