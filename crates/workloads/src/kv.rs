//! Storage-engine models for the two database workloads of §6.1:
//! **Rocks** (RocksDB — an LSM tree) and **Mongo** (MongoDB — a
//! B-tree/WiredTiger engine), both driven by YCSB workload A
//! (50/50 reads and updates over a Zipfian key popularity).
//!
//! The real engines are not run; instead each model translates the
//! YCSB-A op stream into the engine's characteristic block-level
//! pattern:
//!
//! * **LSM (Rocks)** — updates append to a write-ahead log; a full
//!   memtable flushes as a long *sequential write burst* (an SSTable);
//!   every few flushes a compaction reads several SSTables back and
//!   rewrites them sequentially. Point reads look up one (sometimes two)
//!   pages. The bursty sequential writes are exactly what cubeFTL's WAM
//!   absorbs with follower WLs (§6.2 explains the Rocks/OLTP gains).
//! * **B-tree (Mongo)** — updates append to a journal and dirty random
//!   leaf pages; a periodic checkpoint writes the dirty pages back in a
//!   burst. Reads touch a leaf (and occasionally an internal node).

use crate::zipf::Zipfian;
use crate::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssdsim::HostRequest;
use std::collections::VecDeque;

/// Layout shared by both models: a small wrapping log/journal region and
/// a large data region.
#[derive(Debug, Clone, Copy)]
struct Regions {
    data_pages: u64,
    log_start: u64,
    log_pages: u64,
}

impl Regions {
    fn new(logical_pages: u64) -> Self {
        assert!(logical_pages >= 256, "address space too small");
        let log_pages = (logical_pages / 32).max(16);
        Regions {
            data_pages: logical_pages - log_pages,
            log_start: logical_pages - log_pages,
            log_pages,
        }
    }
}

/// RocksDB under YCSB-A: the LSM model.
#[derive(Debug, Clone)]
pub struct RocksWorkload {
    regions: Regions,
    zipf: Zipfian,
    rng: StdRng,
    pending: VecDeque<HostRequest>,
    /// Updates accumulated in the (in-memory) memtable.
    memtable_fill: u32,
    /// Updates per memtable flush.
    memtable_updates: u32,
    /// Pages written per flush (SSTable size).
    flush_pages: u32,
    /// Flushes per compaction.
    compaction_every: u32,
    flushes: u32,
    /// Next SSTable write position in the data region (wrapping).
    sst_head: u64,
    wal_head: u64,
}

impl RocksWorkload {
    /// A Rocks generator over `logical_pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `logical_pages < 256`.
    pub fn new(logical_pages: u64, seed: u64) -> Self {
        let regions = Regions::new(logical_pages);
        RocksWorkload {
            regions,
            zipf: Zipfian::ycsb(regions.data_pages, seed),
            rng: StdRng::seed_from_u64(seed.wrapping_mul(0xd129_0d3b_3f61_0e51)),
            pending: VecDeque::new(),
            memtable_fill: 0,
            memtable_updates: 384,
            flush_pages: 96,
            compaction_every: 4,
            flushes: 0,
            sst_head: 0,
            wal_head: 0,
        }
    }

    fn wal_append(&mut self) -> HostRequest {
        let lpn = self.regions.log_start + self.wal_head;
        self.wal_head = (self.wal_head + 1) % self.regions.log_pages;
        HostRequest::write(lpn)
    }

    fn seq_data_write(&mut self, pages: u32) {
        // Emit the burst in WL-sized spans so the flush pipeline streams.
        let mut remaining = pages;
        while remaining > 0 {
            let n = remaining.min(3);
            let lpn = self.sst_head;
            self.sst_head = (self.sst_head + u64::from(n)) % (self.regions.data_pages - 3);
            self.pending.push_back(HostRequest::write_span(lpn, n));
            remaining -= n;
        }
    }

    fn flush_memtable(&mut self) {
        self.seq_data_write(self.flush_pages);
        self.flushes += 1;
        if self.flushes.is_multiple_of(self.compaction_every) {
            // Compaction: read the participating SSTables back, then
            // write the merged run sequentially.
            let span = self.flush_pages * self.compaction_every;
            let base = self
                .sst_head
                .saturating_sub(u64::from(span))
                .min(self.regions.data_pages - u64::from(span) - 1);
            let mut off = 0u32;
            while off < span {
                let n = (span - off).min(4);
                self.pending
                    .push_back(HostRequest::read_span(base + u64::from(off), n));
                off += n;
            }
            self.seq_data_write(span);
            // The merged SSTables replace the inputs: discard the old
            // range (RocksDB issues DeleteFile → TRIM), handing the FTL
            // migration-free garbage.
            self.pending.push_back(HostRequest::trim_span(base, span));
        }
    }

    fn ycsb_op(&mut self) {
        if self.rng.gen::<f64>() < 0.5 {
            // Read: point lookup; 20% of lookups touch a second level.
            let lpn = self.zipf.sample().min(self.regions.data_pages - 1);
            self.pending.push_back(HostRequest::read(lpn));
            if self.rng.gen::<f64>() < 0.2 {
                let lpn2 = self.zipf.sample().min(self.regions.data_pages - 1);
                self.pending.push_back(HostRequest::read(lpn2));
            }
        } else {
            // Update: WAL append; memtable flush when full.
            let wal = self.wal_append();
            self.pending.push_back(wal);
            self.memtable_fill += 1;
            if self.memtable_fill >= self.memtable_updates {
                self.memtable_fill = 0;
                self.flush_memtable();
            }
        }
    }
}

impl Iterator for RocksWorkload {
    type Item = HostRequest;

    fn next(&mut self) -> Option<HostRequest> {
        while self.pending.is_empty() {
            self.ycsb_op();
        }
        self.pending.pop_front()
    }
}

impl Workload for RocksWorkload {
    fn label(&self) -> &str {
        "Rocks"
    }
}

/// MongoDB under YCSB-A: the B-tree model.
#[derive(Debug, Clone)]
pub struct MongoWorkload {
    regions: Regions,
    zipf: Zipfian,
    rng: StdRng,
    pending: VecDeque<HostRequest>,
    /// Leaf pages dirtied since the last checkpoint.
    dirty: Vec<u64>,
    /// Updates per checkpoint.
    checkpoint_updates: u32,
    updates: u32,
    journal_head: u64,
}

impl MongoWorkload {
    /// A Mongo generator over `logical_pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `logical_pages < 256`.
    pub fn new(logical_pages: u64, seed: u64) -> Self {
        let regions = Regions::new(logical_pages);
        MongoWorkload {
            regions,
            zipf: Zipfian::ycsb(regions.data_pages, seed ^ 0xbeef),
            rng: StdRng::seed_from_u64(seed.wrapping_mul(0xa076_1d64_78bd_642f)),
            pending: VecDeque::new(),
            dirty: Vec::new(),
            checkpoint_updates: 256,
            updates: 0,
            journal_head: 0,
        }
    }

    fn journal_append(&mut self) -> HostRequest {
        let lpn = self.regions.log_start + self.journal_head;
        self.journal_head = (self.journal_head + 1) % self.regions.log_pages;
        HostRequest::write(lpn)
    }

    fn checkpoint(&mut self) {
        // Write back all dirty leaves, in address order (WiredTiger
        // checkpoints are mostly ordered writes of random pages).
        let mut dirty = std::mem::take(&mut self.dirty);
        dirty.sort_unstable();
        dirty.dedup();
        for lpn in dirty {
            self.pending.push_back(HostRequest::write(lpn));
        }
    }

    fn ycsb_op(&mut self) {
        if self.rng.gen::<f64>() < 0.5 {
            // Read a leaf; 15% also read an internal node.
            let lpn = self.zipf.sample().min(self.regions.data_pages - 1);
            if self.rng.gen::<f64>() < 0.15 {
                let internal = lpn / 128;
                self.pending.push_back(HostRequest::read(internal));
            }
            self.pending.push_back(HostRequest::read(lpn));
        } else {
            // Update: journal write now, leaf dirtied for the checkpoint.
            let j = self.journal_append();
            self.pending.push_back(j);
            let leaf = self.zipf.sample().min(self.regions.data_pages - 1);
            self.dirty.push(leaf);
            self.updates += 1;
            if self.updates >= self.checkpoint_updates {
                self.updates = 0;
                self.checkpoint();
            }
        }
    }
}

impl Iterator for MongoWorkload {
    type Item = HostRequest;

    fn next(&mut self) -> Option<HostRequest> {
        while self.pending.is_empty() {
            self.ycsb_op();
        }
        self.pending.pop_front()
    }
}

impl Workload for MongoWorkload {
    fn label(&self) -> &str {
        "Mongo"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdsim::HostOp;

    #[test]
    fn rocks_produces_flush_bursts() {
        let w = RocksWorkload::new(100_000, 1);
        let mut run_pages = 0u32;
        let mut max_run = 0u32;
        for req in w.take(30_000) {
            if req.op == HostOp::Write && req.lpn < 90_000 {
                run_pages += req.n_pages;
                max_run = max_run.max(run_pages);
            } else if req.op == HostOp::Read {
                run_pages = 0;
            }
        }
        assert!(max_run >= 48, "flush burst of {max_run} pages");
    }

    #[test]
    fn rocks_compactions_read_then_rewrite() {
        let w = RocksWorkload::new(100_000, 2);
        let mut data_reads_spanning = 0u64;
        for req in w.take(60_000) {
            if req.op == HostOp::Read && req.n_pages > 1 {
                data_reads_spanning += 1;
            }
        }
        assert!(data_reads_spanning > 0, "compaction reads never appeared");
    }

    #[test]
    fn rocks_write_amplification_above_one() {
        // Each user update produces ≥1 WAL page plus its share of flush
        // and compaction traffic.
        let w = RocksWorkload::new(100_000, 3);
        let mut pages_w = 0u64;
        let mut pages_r = 0u64;
        for req in w.take(50_000) {
            match req.op {
                HostOp::Write => pages_w += u64::from(req.n_pages),
                HostOp::Read => pages_r += u64::from(req.n_pages),
                HostOp::Trim => {}
            }
        }
        assert!(
            pages_w > pages_r / 2,
            "YCSB-A is update-heavy at block level"
        );
    }

    #[test]
    fn mongo_checkpoints_write_dirty_leaves() {
        let w = MongoWorkload::new(100_000, 4);
        let mut data_writes = 0u64;
        let mut journal_writes = 0u64;
        for req in w.take(40_000) {
            if req.op == HostOp::Write {
                if req.lpn >= 100_000 - (100_000 / 32) {
                    journal_writes += 1;
                } else {
                    data_writes += 1;
                }
            }
        }
        assert!(journal_writes > 0);
        assert!(data_writes > 0, "checkpoints must write leaves back");
    }

    #[test]
    fn both_stay_in_range_and_are_deterministic() {
        let space = 50_000u64;
        let a: Vec<_> = RocksWorkload::new(space, 9).take(5_000).collect();
        let b: Vec<_> = RocksWorkload::new(space, 9).take(5_000).collect();
        assert_eq!(a, b);
        for req in &a {
            assert!(req.lpn + u64::from(req.n_pages) <= space);
        }
        let m: Vec<_> = MongoWorkload::new(space, 9).take(5_000).collect();
        for req in &m {
            assert!(req.lpn + u64::from(req.n_pages) <= space);
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_space_rejected() {
        RocksWorkload::new(100, 0);
    }
}
