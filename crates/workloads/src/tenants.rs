//! Seeded synthetic tenant populations for the multi-queue host
//! front-end (`crates/hostq`).
//!
//! A tenant is an independent request stream with a scheduling weight
//! and a service class. Populations scale to thousands of tenants:
//! each tenant's stream seed derives from the master seed and the
//! tenant id through a splitmix64 finalizer (the same construction as
//! [`shard_seed`](crate::shard::shard_seed) but over a disjoint
//! constant, so tenant streams never collide with shard streams), and
//! its workload personality is either fixed or cycled over the six
//! standard generators.

use crate::{StandardWorkload, Workload, YcsbWorkload};
use kvsim::YcsbKind;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssdsim::HostRequest;

/// Domain-separation constant for tenant seed derivation (distinct from
/// the shard gamma so tenant 0 never replays shard 0's stream).
const TENANT_GAMMA: u64 = 0xD1B5_4A32_D192_ED03;

/// Derives the stream seed of `tenant` from the master seed: a
/// splitmix64 finalizer over the master offset by a per-tenant gamma
/// multiple. Distinct tenant ids give distinct outputs for any master
/// seed (the finalizer is a bijection on `u64`).
pub fn tenant_seed(master: u64, tenant: u32) -> u64 {
    let mut z = master ^ TENANT_GAMMA.wrapping_mul(u64::from(tenant) + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Service class of a tenant — determines which reporting aggregate it
/// lands in and which side of an overload experiment it sits on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TenantClass {
    /// Highest-weight tenants: the overload experiments assert their
    /// SLO holds while load is shed elsewhere.
    Protected,
    /// The middle of the weight range.
    Standard,
    /// Lowest-weight tenants: shed first under overload.
    BestEffort,
}

impl TenantClass {
    /// Display/metric label.
    pub fn label(self) -> &'static str {
        match self {
            TenantClass::Protected => "protected",
            TenantClass::Standard => "standard",
            TenantClass::BestEffort => "best_effort",
        }
    }

    /// Derives the class from a tenant's weight relative to the
    /// population's weight range: the maximum weight is `Protected`,
    /// the minimum is `BestEffort`, everything between is `Standard`.
    /// A uniform-weight population is all `Standard`.
    pub fn from_weight(weight: u32, min_weight: u32, max_weight: u32) -> TenantClass {
        if min_weight == max_weight {
            TenantClass::Standard
        } else if weight == max_weight {
            TenantClass::Protected
        } else if weight == min_weight {
            TenantClass::BestEffort
        } else {
            TenantClass::Standard
        }
    }
}

/// The request-stream personality of one tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TenantMix {
    /// One of the six §6.1 generators.
    Standard(StandardWorkload),
    /// Single-page 50/50 read/write uniform traffic — every request
    /// costs the scheduler exactly one page, which makes completed
    /// request counts directly comparable to scheduler service shares
    /// (the weight-proportionality benchmark uses this).
    Uniform,
    /// A kvsim application tenant: a full LSM engine under the given
    /// YCSB workload, so the tenant's traffic carries real flush and
    /// compaction bursts instead of a synthetic approximation.
    Kv(YcsbKind),
}

impl TenantMix {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            TenantMix::Standard(w) => w.label(),
            TenantMix::Uniform => "Uniform",
            TenantMix::Kv(kind) => kind.label(),
        }
    }
}

/// One tenant of a population: identity, scheduling weight, service
/// class, stream personality and derived stream seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantProfile {
    /// Tenant id (dense, 0-based across the population).
    pub id: u32,
    /// DWRR scheduling weight (≥ 1).
    pub weight: u32,
    /// Service class (reporting aggregate).
    pub class: TenantClass,
    /// Stream personality.
    pub mix: TenantMix,
    /// Stream seed ([`tenant_seed`] of the population's master seed).
    pub seed: u64,
}

impl TenantProfile {
    /// Builds this tenant's request stream over `logical_pages`.
    pub fn build_stream(&self, logical_pages: u64) -> Box<dyn Workload + Send> {
        match self.mix {
            TenantMix::Standard(w) => w.build(logical_pages, self.seed),
            TenantMix::Uniform => Box::new(UniformTenantWorkload::new(logical_pages, self.seed)),
            TenantMix::Kv(kind) => Box::new(YcsbWorkload::new(kind, logical_pages, self.seed)),
        }
    }
}

/// Builds a population of `n` tenants. `weights` is cycled over the
/// tenant ids (`[8, 4, 1]` gives tenants 0,3,6,… weight 8); classes
/// derive from each weight's position in the cycle's range via
/// [`TenantClass::from_weight`]. With `base` the whole population runs
/// one personality; without it the six standard generators are cycled.
/// Stream seeds derive from `master_seed` via [`tenant_seed`].
pub fn build_population(
    n: u32,
    weights: &[u32],
    base: Option<TenantMix>,
    master_seed: u64,
) -> Vec<TenantProfile> {
    assert!(n >= 1, "a population needs at least one tenant");
    assert!(
        !weights.is_empty() && weights.iter().all(|&w| w >= 1),
        "weights must be non-empty and >= 1"
    );
    let min_w = *weights.iter().min().expect("non-empty");
    let max_w = *weights.iter().max().expect("non-empty");
    (0..n)
        .map(|id| {
            let weight = weights[id as usize % weights.len()];
            let mix = base.unwrap_or_else(|| {
                TenantMix::Standard(
                    StandardWorkload::ALL[id as usize % StandardWorkload::ALL.len()],
                )
            });
            TenantProfile {
                id,
                weight,
                class: TenantClass::from_weight(weight, min_w, max_w),
                mix,
                seed: tenant_seed(master_seed, id),
            }
        })
        .collect()
}

/// Single-page uniform traffic: 50/50 read/write over the whole logical
/// space, one page per request. See [`TenantMix::Uniform`].
pub struct UniformTenantWorkload {
    rng: StdRng,
    logical_pages: u64,
}

impl UniformTenantWorkload {
    /// A new seeded stream over `logical_pages`.
    pub fn new(logical_pages: u64, seed: u64) -> Self {
        UniformTenantWorkload {
            rng: StdRng::seed_from_u64(seed ^ 0x7e4a_9d11),
            logical_pages: logical_pages.max(1),
        }
    }
}

impl Iterator for UniformTenantWorkload {
    type Item = HostRequest;

    fn next(&mut self) -> Option<HostRequest> {
        let lpn = self.rng.gen_range(0..self.logical_pages);
        Some(if self.rng.gen_bool(0.5) {
            HostRequest::read(lpn)
        } else {
            HostRequest::write(lpn)
        })
    }
}

impl Workload for UniformTenantWorkload {
    fn label(&self) -> &str {
        "Uniform"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn tenant_seeds_are_distinct_and_disjoint_from_shard_seeds() {
        let mut seen = HashSet::new();
        for master in [0u64, 42] {
            for t in 0..512u32 {
                assert!(seen.insert(tenant_seed(master, t)), "collision");
            }
        }
        for t in 0..64u32 {
            assert_ne!(
                tenant_seed(42, t),
                crate::shard::shard_seed(42, t as usize),
                "tenant and shard streams must be domain-separated"
            );
        }
    }

    #[test]
    fn population_cycles_weights_and_mixes() {
        let pop = build_population(8, &[8, 4, 1], None, 7);
        assert_eq!(pop.len(), 8);
        assert_eq!(pop[0].weight, 8);
        assert_eq!(pop[3].weight, 8);
        assert_eq!(pop[2].weight, 1);
        assert_eq!(pop[0].class, TenantClass::Protected);
        assert_eq!(pop[1].class, TenantClass::Standard);
        assert_eq!(pop[2].class, TenantClass::BestEffort);
        assert_eq!(pop[0].mix, TenantMix::Standard(StandardWorkload::Mail));
        assert_eq!(pop[6].mix, TenantMix::Standard(StandardWorkload::Mail));
        let uni = build_population(3, &[1], Some(TenantMix::Uniform), 7);
        assert!(uni.iter().all(|t| t.mix == TenantMix::Uniform));
        assert!(uni.iter().all(|t| t.class == TenantClass::Standard));
    }

    #[test]
    fn uniform_stream_is_deterministic_and_single_page() {
        let a: Vec<_> = UniformTenantWorkload::new(10_000, 3).take(200).collect();
        let b: Vec<_> = UniformTenantWorkload::new(10_000, 3).take(200).collect();
        assert_eq!(a, b);
        assert!(a.iter().all(|r| r.n_pages == 1 && r.lpn < 10_000));
        let c: Vec<_> = UniformTenantWorkload::new(10_000, 4).take(200).collect();
        assert_ne!(a, c);
    }
}
