//! Application-level KV workloads: the [`kvsim`] engine behind the
//! [`Workload`] trait.
//!
//! Where [`RocksWorkload`](crate::RocksWorkload) *approximates* an LSM
//! tree's block-level traffic statistically, [`YcsbWorkload`] runs an
//! actual (miniature) LSM engine and emits the device requests its
//! mechanics produce — so compaction-driven application-level write
//! amplification composes multiplicatively with the device's own WA
//! instead of being baked into a synthetic mix.

use crate::Workload;
use kvsim::{KvAppReport, KvConfig, KvEvent, KvStream, YcsbKind};
use ssdsim::HostRequest;

/// A YCSB workload driving the kvsim LSM engine over the device's
/// logical space. Endless and deterministic per `(config, kind, seed)`.
#[derive(Debug)]
pub struct YcsbWorkload {
    stream: KvStream,
    label: &'static str,
}

impl YcsbWorkload {
    /// Default engine shape over `logical_pages` (key count clamped to
    /// fit the space).
    pub fn new(kind: YcsbKind, logical_pages: u64, seed: u64) -> Self {
        Self::with_config(KvConfig::default_shape(), kind, logical_pages, seed)
    }

    /// Explicit engine shape.
    pub fn with_config(cfg: KvConfig, kind: YcsbKind, logical_pages: u64, seed: u64) -> Self {
        YcsbWorkload {
            stream: KvStream::new(cfg, kind, logical_pages, seed),
            label: kind.label(),
        }
    }

    /// App-level results so far (ops, hit rates, p99 page costs,
    /// app-WA, compaction debt).
    pub fn report(&self) -> KvAppReport {
        self.stream.report()
    }

    /// Flush/compaction events so far, for telemetry tagging.
    pub fn events(&self) -> &[KvEvent] {
        self.stream.events()
    }

    /// The engine configuration after clamping.
    pub fn config(&self) -> &KvConfig {
        self.stream.config()
    }
}

impl Iterator for YcsbWorkload {
    type Item = HostRequest;

    fn next(&mut self) -> Option<HostRequest> {
        self.stream.next()
    }
}

impl Workload for YcsbWorkload {
    fn label(&self) -> &str {
        self.label
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapper_labels_and_streams() {
        let mut w = YcsbWorkload::new(YcsbKind::A, 16_384, 9);
        assert_eq!(w.label(), "ycsb_a");
        let reqs: Vec<_> = (&mut w).take(3_000).collect();
        assert_eq!(reqs.len(), 3_000);
        for r in &reqs {
            for lpn in r.lpns() {
                assert!(lpn < 16_384, "lpn {lpn} out of space");
            }
        }
        let again: Vec<_> = YcsbWorkload::new(YcsbKind::A, 16_384, 9)
            .take(3_000)
            .collect();
        assert_eq!(reqs, again, "stream must be deterministic");
    }

    #[test]
    fn report_reflects_measured_ops() {
        let mut w = YcsbWorkload::new(YcsbKind::B, 16_384, 5);
        for _ in (&mut w).take(4_000) {}
        let r = w.report();
        assert!(r.stats.ops > 0);
        assert!(r.stats.reads >= r.stats.updates, "B is read-mostly");
    }
}
