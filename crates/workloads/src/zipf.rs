//! A YCSB-style Zipfian sampler.
//!
//! Implements the Gray et al. "quickly generating billion-record
//! synthetic databases" algorithm used by YCSB's `ZipfianGenerator`:
//! constant-time sampling after an O(n) zeta precomputation. Combined
//! with a multiplicative hash scatter so that the popular items are
//! spread over the address space rather than clustered at low LPNs.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Zipf-distributed sampler over `0..n`.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    scatter: bool,
    rng: StdRng,
}

impl Zipfian {
    /// YCSB's default skew.
    pub const DEFAULT_THETA: f64 = 0.99;

    /// A sampler over `0..n` with skew `theta` (0 < θ < 1; larger is more
    /// skewed). `scatter` hashes ranks over the space (YCSB's
    /// `ScrambledZipfian` behaviour).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is outside `(0, 1)`.
    pub fn new(n: u64, theta: f64, scatter: bool, seed: u64) -> Self {
        assert!(n > 0, "zipfian over empty domain");
        assert!(
            (0.0..1.0).contains(&theta) && theta > 0.0,
            "theta must be in (0,1)"
        );
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2, theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            scatter,
            rng: StdRng::seed_from_u64(seed ^ 0x5851_f42d_4c95_7f2d),
        }
    }

    /// A scrambled sampler with the YCSB default skew.
    pub fn ycsb(n: u64, seed: u64) -> Self {
        Zipfian::new(n, Self::DEFAULT_THETA, true, seed)
    }

    /// Draws the next sample in `0..n`.
    pub fn sample(&mut self) -> u64 {
        let u: f64 = self.rng.gen();
        let uz = u * self.zetan;
        let rank = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            1
        } else {
            (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64
        };
        let rank = rank.min(self.n - 1);
        if self.scatter {
            // FNV-ish multiplicative scramble, then fold into range.
            rank.wrapping_mul(0x9e37_79b9_7f4a_7c15)
                .wrapping_add(0x1234_5678)
                % self.n
        } else {
            rank
        }
    }

    /// The domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }
}

fn zeta(n: u64, theta: f64) -> f64 {
    // For very large n, subsample the tail: the zeta sum converges and
    // the tail contribution is approximated by an integral.
    const EXACT_LIMIT: u64 = 1_000_000;
    if n <= EXACT_LIMIT {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    } else {
        let head: f64 = (1..=EXACT_LIMIT)
            .map(|i| 1.0 / (i as f64).powf(theta))
            .sum();
        // ∫_{EXACT_LIMIT}^{n} x^{-θ} dx
        let a = EXACT_LIMIT as f64;
        let b = n as f64;
        head + (b.powf(1.0 - theta) - a.powf(1.0 - theta)) / (1.0 - theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_range() {
        let mut z = Zipfian::ycsb(1000, 1);
        for _ in 0..10_000 {
            assert!(z.sample() < 1000);
        }
    }

    #[test]
    fn unscrambled_head_is_heavy() {
        let mut z = Zipfian::new(10_000, 0.99, false, 2);
        let mut head = 0u64;
        let n = 50_000;
        for _ in 0..n {
            if z.sample() < 100 {
                head += 1;
            }
        }
        // With θ=0.99 the first 1% of ranks should carry well over a
        // third of the mass.
        let frac = head as f64 / n as f64;
        assert!(frac > 0.35, "head mass {frac}");
    }

    #[test]
    fn scrambled_spreads_but_keeps_skew() {
        let mut z = Zipfian::ycsb(10_000, 3);
        let mut counts = vec![0u32; 10_000];
        for _ in 0..100_000 {
            counts[z.sample() as usize] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let nonzero = counts.iter().filter(|&&c| c > 0).count();
        assert!(max > 1_000, "hottest key too cold: {max}");
        assert!(nonzero > 2_000, "scramble failed to spread: {nonzero}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut z = Zipfian::ycsb(500, 9);
            (0..100).map(|_| z.sample()).collect()
        };
        let b: Vec<u64> = {
            let mut z = Zipfian::ycsb(500, 9);
            (0..100).map(|_| z.sample()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn large_domain_zeta_approximation_works() {
        let mut z = Zipfian::ycsb(50_000_000, 4);
        for _ in 0..1000 {
            assert!(z.sample() < 50_000_000);
        }
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn empty_domain_rejected() {
        Zipfian::ycsb(0, 0);
    }
}
