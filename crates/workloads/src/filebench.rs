//! Filebench-style workload personalities (paper §6.1).
//!
//! Filebench \[38\] emulates application I/O with "personalities"; the
//! paper uses Mail (varmail), Web (webserver), Proxy (webproxy) and OLTP.
//! This module generates block-level request streams with each
//! personality's published first-order characteristics:
//!
//! | personality | reads | write pattern |
//! |---|---|---|
//! | Mail | ≈50% | small sync writes in delivery bursts + log appends |
//! | Web | ≈84% | almost only log appends |
//! | Proxy | ≈90% | cache-fill object writes in small bursts |
//! | OLTP | ≈10% | commit bursts: sequential log + random dirty pages (reads absorbed by the DB buffer pool) |
//!
//! Each generator devotes a small slice of the logical space to a
//! sequential, wrapping log region; the rest is the data region accessed
//! with Zipfian skew.

use crate::zipf::Zipfian;
use crate::Workload;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ssdsim::HostRequest;

/// The four Filebench personalities used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FilebenchKind {
    /// varmail: mail server.
    Mail,
    /// webserver: static content serving.
    Web,
    /// webproxy: caching proxy.
    Proxy,
    /// OLTP: transactional database.
    Oltp,
}

#[derive(Debug, Clone, Copy)]
struct Personality {
    /// Overall fraction of *operations* that are reads.
    read_fraction: f64,
    /// Read request size range in pages (inclusive).
    read_pages: (u32, u32),
    /// Write request size range in pages (inclusive).
    write_pages: (u32, u32),
    /// Writes per burst (inclusive range).
    burst_len: (u32, u32),
    /// Fraction of writes that are sequential log appends.
    log_fraction: f64,
    /// Fraction of operations that are file deletions (TRIMs of
    /// previously written data). varmail constantly creates and deletes
    /// mail files.
    trim_fraction: f64,
    /// Zipf skew of data-region accesses.
    theta: f64,
}

impl FilebenchKind {
    fn personality(self) -> Personality {
        match self {
            FilebenchKind::Mail => Personality {
                read_fraction: 0.50,
                read_pages: (1, 1),
                write_pages: (1, 1),
                burst_len: (4, 12),
                log_fraction: 0.30,
                trim_fraction: 0.06,
                theta: 0.90,
            },
            FilebenchKind::Web => Personality {
                read_fraction: 0.84,
                read_pages: (1, 2),
                write_pages: (1, 1),
                burst_len: (1, 3),
                log_fraction: 0.90,
                trim_fraction: 0.0,
                theta: 0.85,
            },
            FilebenchKind::Proxy => Personality {
                read_fraction: 0.90,
                read_pages: (1, 3),
                write_pages: (1, 4),
                burst_len: (2, 8),
                log_fraction: 0.20,
                trim_fraction: 0.02,
                theta: 0.95,
            },
            FilebenchKind::Oltp => Personality {
                read_fraction: 0.10,
                read_pages: (1, 1),
                write_pages: (1, 2),
                burst_len: (8, 32),
                log_fraction: 0.50,
                trim_fraction: 0.0,
                theta: 0.95,
            },
        }
    }

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            FilebenchKind::Mail => "Mail",
            FilebenchKind::Web => "Web",
            FilebenchKind::Proxy => "Proxy",
            FilebenchKind::Oltp => "OLTP",
        }
    }
}

/// A Filebench-personality request generator.
#[derive(Debug, Clone)]
pub struct FilebenchWorkload {
    kind: FilebenchKind,
    p: Personality,
    /// Probability that a fresh draw starts a write burst (derated so the
    /// op-level read fraction matches the personality).
    burst_start_prob: f64,
    data_pages: u64,
    log_start: u64,
    log_pages: u64,
    log_head: u64,
    burst_remaining: u32,
    zipf: Zipfian,
    rng: StdRng,
}

impl FilebenchWorkload {
    /// A generator over `logical_pages` pages.
    ///
    /// # Panics
    ///
    /// Panics if `logical_pages < 64` (too small to partition).
    pub fn new(kind: FilebenchKind, logical_pages: u64, seed: u64) -> Self {
        assert!(logical_pages >= 64, "address space too small");
        let p = kind.personality();
        // 1/16th of the space is the log region.
        let log_pages = (logical_pages / 16).max(8);
        let data_pages = logical_pages - log_pages;
        let mean_burst = f64::from(p.burst_len.0 + p.burst_len.1) / 2.0;
        let w = 1.0 - p.read_fraction;
        // Solve the draw-level burst probability so that bursts of mean
        // length L yield an op-level write fraction of w:
        //   writes = (1-r)·L, ops = r + (1-r)·L  →  r = L(1-w)/(w+L(1-w)).
        let r = mean_burst * (1.0 - w) / (w + mean_burst * (1.0 - w));
        FilebenchWorkload {
            kind,
            p,
            burst_start_prob: 1.0 - r,
            data_pages,
            log_start: data_pages,
            log_pages,
            log_head: 0,
            burst_remaining: 0,
            zipf: Zipfian::new(data_pages, p.theta, true, seed),
            rng: StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15)),
        }
    }

    /// The personality of this generator.
    pub fn kind(&self) -> FilebenchKind {
        self.kind
    }

    fn size_in(&mut self, range: (u32, u32)) -> u32 {
        self.rng.gen_range(range.0..=range.1)
    }

    fn next_write(&mut self) -> HostRequest {
        if self.rng.gen::<f64>() < self.p.log_fraction {
            // Sequential log append, wrapping.
            let n = self.size_in(self.p.write_pages).min(self.log_pages as u32);
            if self.log_head + u64::from(n) > self.log_pages {
                self.log_head = 0;
            }
            let lpn = self.log_start + self.log_head;
            self.log_head += u64::from(n);
            if self.log_head >= self.log_pages {
                self.log_head = 0;
            }
            HostRequest::write_span(lpn, n)
        } else {
            let n = self.size_in(self.p.write_pages);
            let lpn = self.zipf.sample().min(self.data_pages - u64::from(n));
            HostRequest::write_span(lpn, n)
        }
    }
}

impl Iterator for FilebenchWorkload {
    type Item = HostRequest;

    fn next(&mut self) -> Option<HostRequest> {
        if self.burst_remaining > 0 {
            self.burst_remaining -= 1;
            return Some(self.next_write());
        }
        if self.p.trim_fraction > 0.0 && self.rng.gen::<f64>() < self.p.trim_fraction {
            // Delete a file: discard a small span of data pages.
            let n = self.size_in((1, 4));
            let lpn = self.zipf.sample().min(self.data_pages - u64::from(n));
            return Some(HostRequest::trim_span(lpn, n));
        }
        if self.rng.gen::<f64>() < self.burst_start_prob {
            let len = self.size_in(self.p.burst_len);
            self.burst_remaining = len.saturating_sub(1);
            Some(self.next_write())
        } else {
            let n = self.size_in(self.p.read_pages);
            let lpn = self.zipf.sample().min(self.data_pages - u64::from(n));
            Some(HostRequest::read_span(lpn, n))
        }
    }
}

impl Workload for FilebenchWorkload {
    fn label(&self) -> &str {
        self.kind.label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdsim::HostOp;

    fn op_write_fraction(kind: FilebenchKind) -> f64 {
        let w = FilebenchWorkload::new(kind, 100_000, 1);
        let mut writes = 0u64;
        let n = 50_000;
        for req in w.take(n as usize) {
            if req.op == HostOp::Write {
                writes += 1;
            }
        }
        writes as f64 / n as f64
    }

    #[test]
    fn op_mix_matches_personalities() {
        assert!((0.45..0.56).contains(&op_write_fraction(FilebenchKind::Mail)));
        assert!((0.10..0.22).contains(&op_write_fraction(FilebenchKind::Web)));
        assert!((0.05..0.16).contains(&op_write_fraction(FilebenchKind::Proxy)));
        assert!((0.82..0.96).contains(&op_write_fraction(FilebenchKind::Oltp)));
    }

    #[test]
    fn oltp_writes_come_in_long_bursts() {
        let w = FilebenchWorkload::new(FilebenchKind::Oltp, 100_000, 2);
        let mut run = 0u32;
        let mut max_run = 0u32;
        for req in w.take(20_000) {
            if req.op == HostOp::Write {
                run += 1;
                max_run = max_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(max_run >= 8, "OLTP burst length {max_run}");
    }

    #[test]
    fn log_appends_are_sequential() {
        let mut w = FilebenchWorkload::new(FilebenchKind::Web, 10_000, 3);
        let log_start = w.log_start;
        let mut last: Option<u64> = None;
        let mut sequential = 0;
        let mut total = 0;
        for req in w.by_ref().take(30_000) {
            if req.op == HostOp::Write && req.lpn >= log_start {
                if let Some(prev) = last {
                    total += 1;
                    if req.lpn >= prev {
                        sequential += 1;
                    }
                }
                last = Some(req.lpn);
            }
        }
        assert!(total > 100, "need log writes to judge");
        // Mostly ascending (wraps occasionally).
        assert!(f64::from(sequential) / f64::from(total) > 0.9);
    }

    #[test]
    fn requests_stay_in_space() {
        for kind in [
            FilebenchKind::Mail,
            FilebenchKind::Web,
            FilebenchKind::Proxy,
            FilebenchKind::Oltp,
        ] {
            let w = FilebenchWorkload::new(kind, 2_000, 4);
            for req in w.take(10_000) {
                assert!(req.lpn + u64::from(req.n_pages) <= 2_000);
            }
        }
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_space_rejected() {
        FilebenchWorkload::new(FilebenchKind::Mail, 10, 0);
    }
}
