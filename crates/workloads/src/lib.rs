//! # workloads — synthetic I/O streams for the cubeFTL evaluation
//!
//! The paper evaluates six workloads (§6.1): four Filebench
//! personalities — **Mail**, **Web**, **Proxy**, **OLTP** — and two
//! database applications driven by YCSB workload A (50/50 reads and
//! updates) — **Rocks** (RocksDB, an LSM tree) and **Mongo** (MongoDB,
//! a B-tree engine).
//!
//! Running the real applications is out of scope for a simulator, so
//! this crate generates block-level request streams with the same
//! first-order statistics the FTLs react to: read/write mix, request
//! sizes, access skew, and — crucially for cubeFTL's WL allocation
//! manager — **write burstiness** (memtable flushes and compactions for
//! the LSM model, checkpoints for the B-tree model, mail-delivery and
//! commit bursts for the Filebench personalities).
//!
//! Every generator is an `Iterator<Item = HostRequest>` and is
//! deterministic for a given seed.
//!
//! # Example
//!
//! ```
//! use workloads::{StandardWorkload, Workload};
//!
//! let mut w = StandardWorkload::Rocks.build(100_000, 7);
//! let first: Vec<_> = w.by_ref().take(100).collect();
//! assert_eq!(first.len(), 100);
//! assert_eq!(w.label(), "Rocks");
//! ```

pub mod appkv;
pub mod filebench;
pub mod kv;
pub mod shard;
pub mod tenants;
pub mod trace;
pub mod zipf;

pub use appkv::YcsbWorkload;
pub use filebench::{FilebenchKind, FilebenchWorkload};
pub use kv::{MongoWorkload, RocksWorkload};
pub use shard::shard_seed;
pub use tenants::{
    build_population, tenant_seed, TenantClass, TenantMix, TenantProfile, UniformTenantWorkload,
};
pub use trace::{Trace, TraceReplay};
pub use zipf::Zipfian;

use ssdsim::HostRequest;

/// A labelled, endless request stream.
pub trait Workload: Iterator<Item = HostRequest> {
    /// Display name for reports (matches the paper's figure labels).
    fn label(&self) -> &str;
}

/// The six evaluation workloads of §6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StandardWorkload {
    /// Filebench varmail: mail-server I/O.
    Mail,
    /// Filebench webserver: read-dominant web serving.
    Web,
    /// Filebench webproxy: proxy cache.
    Proxy,
    /// Filebench OLTP: write-intensive transactional DB.
    Oltp,
    /// RocksDB under YCSB-A (LSM tree).
    Rocks,
    /// MongoDB under YCSB-A (B-tree engine).
    Mongo,
}

impl StandardWorkload {
    /// All six in the paper's presentation order (Fig. 17).
    pub const ALL: [StandardWorkload; 6] = [
        StandardWorkload::Mail,
        StandardWorkload::Web,
        StandardWorkload::Proxy,
        StandardWorkload::Oltp,
        StandardWorkload::Rocks,
        StandardWorkload::Mongo,
    ];

    /// Figure label.
    pub fn label(self) -> &'static str {
        match self {
            StandardWorkload::Mail => "Mail",
            StandardWorkload::Web => "Web",
            StandardWorkload::Proxy => "Proxy",
            StandardWorkload::Oltp => "OLTP",
            StandardWorkload::Rocks => "Rocks",
            StandardWorkload::Mongo => "Mongo",
        }
    }

    /// Builds the generator over a logical address space of
    /// `logical_pages` pages. The generator is `Send` so the array
    /// front-end can move it onto a shard worker thread.
    pub fn build(self, logical_pages: u64, seed: u64) -> Box<dyn Workload + Send> {
        match self {
            StandardWorkload::Mail => Box::new(FilebenchWorkload::new(
                FilebenchKind::Mail,
                logical_pages,
                seed,
            )),
            StandardWorkload::Web => Box::new(FilebenchWorkload::new(
                FilebenchKind::Web,
                logical_pages,
                seed,
            )),
            StandardWorkload::Proxy => Box::new(FilebenchWorkload::new(
                FilebenchKind::Proxy,
                logical_pages,
                seed,
            )),
            StandardWorkload::Oltp => Box::new(FilebenchWorkload::new(
                FilebenchKind::Oltp,
                logical_pages,
                seed,
            )),
            StandardWorkload::Rocks => Box::new(RocksWorkload::new(logical_pages, seed)),
            StandardWorkload::Mongo => Box::new(MongoWorkload::new(logical_pages, seed)),
        }
    }
}

impl std::fmt::Display for StandardWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdsim::HostOp;

    #[test]
    fn all_workloads_produce_requests_in_range() {
        let space = 50_000u64;
        for kind in StandardWorkload::ALL {
            let w = kind.build(space, 3);
            for req in w.take(5_000) {
                for lpn in req.lpns() {
                    assert!(lpn < space, "{kind}: lpn {lpn} out of range");
                }
                assert!(req.n_pages >= 1);
            }
        }
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        for kind in StandardWorkload::ALL {
            let a: Vec<_> = kind.build(10_000, 9).take(500).collect();
            let b: Vec<_> = kind.build(10_000, 9).take(500).collect();
            assert_eq!(a, b, "{kind} not deterministic");
            let c: Vec<_> = kind.build(10_000, 10).take(500).collect();
            assert_ne!(a, c, "{kind} ignores seed");
        }
    }

    #[test]
    fn read_write_mix_matches_personality() {
        let space = 100_000u64;
        let mix = |kind: StandardWorkload| -> f64 {
            let mut pages_r = 0u64;
            let mut pages_w = 0u64;
            for req in kind.build(space, 5).take(40_000) {
                match req.op {
                    HostOp::Read => pages_r += u64::from(req.n_pages),
                    HostOp::Write => pages_w += u64::from(req.n_pages),
                    HostOp::Trim => {}
                }
            }
            pages_w as f64 / (pages_r + pages_w) as f64
        };
        // §6.1/§6.2 qualitative anchors: Web and Proxy are read-dominant,
        // OLTP is the most write-intensive, YCSB-A is update-heavy.
        let web = mix(StandardWorkload::Web);
        let proxy = mix(StandardWorkload::Proxy);
        let mail = mix(StandardWorkload::Mail);
        let oltp = mix(StandardWorkload::Oltp);
        assert!(web < 0.30, "Web write fraction {web}");
        assert!(proxy < 0.30, "Proxy write fraction {proxy}");
        assert!((0.35..0.65).contains(&mail), "Mail write fraction {mail}");
        assert!(
            oltp > mail && oltp > web && oltp > proxy,
            "OLTP must be most write-intensive"
        );
        assert!(oltp > 0.75, "OLTP write fraction {oltp}");
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(StandardWorkload::Rocks.build(1000, 0).label(), "Rocks");
        assert_eq!(StandardWorkload::Mail.to_string(), "Mail");
    }
}
