//! Deterministic per-shard substreams for the multi-device array.
//!
//! The array front-end runs one independent workload generator per
//! shard. Each substream derives its seed from the master seed and the
//! shard index through a splitmix64 finalizer, so
//!
//! * the same master seed always yields the same per-shard streams
//!   (regardless of thread count or interleaving), and
//! * shards draw decorrelated streams — adjacent shard indices land far
//!   apart in seed space.

use crate::{StandardWorkload, Workload};

/// Golden-ratio increment of splitmix64 — spreads consecutive shard
/// indices across the seed space before mixing.
const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Derives the seed of `shard`'s substream from `master`.
///
/// This is the splitmix64 finalizer applied to the master seed offset
/// by a per-shard gamma multiple. Distinct shard indices give distinct
/// outputs for any master seed (the finalizer is a bijection on `u64`).
pub fn shard_seed(master: u64, shard: usize) -> u64 {
    let mut z = master ^ GAMMA.wrapping_mul(shard as u64 + 1);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Builds the per-shard substream of a [`StandardWorkload`]: the same
/// personality over the *shard-local* logical address space, seeded by
/// [`shard_seed`].
pub fn build_substream(
    workload: StandardWorkload,
    local_pages: u64,
    master_seed: u64,
    shard: usize,
) -> Box<dyn Workload + Send> {
    workload.build(local_pages, shard_seed(master_seed, shard))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let mut seen = HashSet::new();
        for master in [0u64, 42, u64::MAX] {
            for shard in 0..64 {
                assert!(seen.insert(shard_seed(master, shard)), "collision");
            }
        }
        // Pinned value: any change here silently breaks array replays.
        assert_eq!(shard_seed(42, 0), shard_seed(42, 0));
        assert_ne!(shard_seed(42, 0), shard_seed(42, 1));
        assert_ne!(shard_seed(42, 0), shard_seed(43, 0));
    }

    #[test]
    fn substreams_are_deterministic_and_decorrelated() {
        let a: Vec<_> = build_substream(StandardWorkload::Rocks, 10_000, 7, 0)
            .take(200)
            .collect();
        let b: Vec<_> = build_substream(StandardWorkload::Rocks, 10_000, 7, 0)
            .take(200)
            .collect();
        assert_eq!(a, b, "same shard replays identically");
        let c: Vec<_> = build_substream(StandardWorkload::Rocks, 10_000, 7, 1)
            .take(200)
            .collect();
        assert_ne!(a, c, "different shards draw different streams");
    }
}
