//! # ssdarray — a sharded multi-device array front-end over `ssdsim`
//!
//! Scales the single-device simulator out to an array of `N`
//! independent shards, the way a host-managed multi-device deployment
//! (or a multi-core simulation campaign) would: each shard is a
//! complete [`SsdSim`] device with its own FTL, chips, and workload
//! substream, and the front-end fans host work out to the shards and
//! folds the results back into one [`ArrayReport`].
//!
//! ## Determinism by construction
//!
//! The core invariant: **the same master seed produces a byte-identical
//! merged report at any thread count**. Two properties make that hold
//! without any cross-thread coordination:
//!
//! * **Fan-out is pre-computed.** Shard seeds, workload substreams and
//!   per-shard request budgets are all derived before any thread
//!   starts; shards never exchange state while running, so each shard's
//!   result depends only on its own inputs.
//! * **Fan-in is ordered.** Workers report `(shard index, result)`; the
//!   collector stores results in index slots and merges them strictly
//!   in shard order at a sequence point after every shard finished —
//!   never in completion order ([`ArrayReport::merge`]).
//!
//! Thread scheduling then affects wall-clock time only. The engine runs
//! shards in bounded event slices through [`SsdSim::run_step`], whose
//! step boundaries are idempotent, so even the slice budget does not
//! leak into the results.

pub mod parity;
pub mod report;
pub mod stripe;

pub use parity::{page_fingerprint, xor_parity, PageRole, ParityRouter};
pub use report::{ArrayReport, ResilienceReport};
pub use stripe::StripeRouter;

use ssdsim::{
    FtlDriver, HostFront, HostRequest, RebuildOp, RebuildSchedule, SimReport, SpoEvent, SpoTrigger,
    SsdSim, StepOutcome,
};
use std::sync::mpsc;
use std::sync::Mutex;

/// Events simulated per [`SsdSim::run_step`] slice. Purely a scheduling
/// granularity: results are identical for any positive value.
const STEP_EVENTS: u64 = 4096;

/// A background rebuild assignment for one shard: the pacing schedule
/// plus the ordered op list ([`SsdSim::arm_rebuild`]). The engine arms
/// it right after `run_begin` (which resets any previously armed
/// queue), so callers can attach rebuild work to a shard before
/// handing the array to [`SsdArray::run`].
#[derive(Debug, Clone)]
pub struct RebuildPlan {
    /// Unit size / idle-gap pacing for the rebuild service.
    pub sched: RebuildSchedule,
    /// Ordered rebuild ops (survivor reads or spare writes).
    pub ops: Vec<RebuildOp>,
}

/// One shard: a complete simulated device plus its workload substream.
pub struct ArrayShard<F, W> {
    /// The shard's device simulator.
    pub sim: SsdSim,
    /// The shard's FTL.
    pub ftl: F,
    /// The shard's request substream.
    pub workload: W,
    /// Host requests this shard issues (at most).
    pub requests: u64,
    /// Optional sudden-power-off trigger armed on this shard.
    pub spo: Option<SpoTrigger>,
    /// Optional background rebuild work, armed once at the next run.
    pub rebuild: Option<RebuildPlan>,
}

/// Results of one array run, per shard and merged.
#[derive(Debug, Clone)]
pub struct ArrayRunOutcome {
    /// The merged array-wide report.
    pub report: ArrayReport,
    /// Per-shard reports, indexed by shard.
    pub shard_reports: Vec<SimReport>,
    /// Per-shard SPO events (`None` where no trigger fired), indexed by
    /// shard.
    pub spo_events: Vec<Option<SpoEvent>>,
}

impl ArrayRunOutcome {
    /// Whether any shard's power-off trigger fired.
    pub fn any_fired(&self) -> bool {
        self.spo_events.iter().any(Option::is_some)
    }
}

/// The array front-end: owns the shards and the execution engine.
pub struct SsdArray<F, W> {
    shards: Vec<ArrayShard<F, W>>,
    threads: usize,
}

impl<F, W> SsdArray<F, W>
where
    F: FtlDriver + Send,
    W: Iterator<Item = HostRequest> + Send,
{
    /// An array over `shards`, executed on one worker thread per shard.
    ///
    /// # Panics
    ///
    /// Panics on an empty shard list.
    pub fn new(shards: Vec<ArrayShard<F, W>>) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        let threads = shards.len();
        SsdArray { shards, threads }
    }

    /// Caps the worker-thread count (clamped to `1..=shards`). Purely a
    /// resource knob: any count produces the same merged report.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.clamp(1, self.shards.len());
        self
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Worker threads the engine will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The shards (e.g. to inspect an FTL after a run).
    pub fn shards(&self) -> &[ArrayShard<F, W>] {
        &self.shards
    }

    /// Mutable access to the shards (e.g. to re-arm triggers between
    /// runs).
    pub fn shards_mut(&mut self) -> &mut [ArrayShard<F, W>] {
        &mut self.shards
    }

    /// Consumes the array, returning the shards — the harness uses this
    /// to run per-shard crash recovery after an array-wide power cut.
    pub fn into_shards(self) -> Vec<ArrayShard<F, W>> {
        self.shards
    }

    /// Runs every shard to completion (drain or power cut) and merges
    /// the results in shard order.
    ///
    /// Shards are dealt to `threads` workers through a job queue; each
    /// worker simulates its shard in bounded event slices and sends the
    /// finished shard home tagged with its index. The collector waits
    /// for *all* shards (the fan-in barrier), restores them into index
    /// order, and only then merges — so neither the thread count nor
    /// the completion order can reach the report.
    pub fn run(&mut self) -> ArrayRunOutcome {
        let n = self.shards.len();
        let threads = self.threads.clamp(1, n);

        let (job_tx, job_rx) = mpsc::channel::<(usize, ArrayShard<F, W>)>();
        for job in self.shards.drain(..).enumerate() {
            job_tx.send(job).expect("queue is open");
        }
        drop(job_tx);
        let job_rx = Mutex::new(job_rx);

        let (done_tx, done_rx) = mpsc::channel::<Done<F, W>>();

        std::thread::scope(|scope| {
            for _ in 0..threads {
                let job_rx = &job_rx;
                let done_tx = done_tx.clone();
                scope.spawn(move || loop {
                    // Hold the lock only for the pop, not the simulation.
                    let job = job_rx.lock().expect("queue lock").try_recv();
                    let Ok((idx, mut shard)) = job else { break };
                    let (report, spo) = run_shard(&mut shard);
                    done_tx.send((idx, shard, report, spo)).expect("collector");
                });
            }
        });
        drop(done_tx);

        // Fan-in barrier: collect every shard into its index slot.
        let mut slots: Vec<Option<Finished<F, W>>> = (0..n).map(|_| None).collect();
        for (idx, shard, report, spo) in done_rx.iter() {
            debug_assert!(slots[idx].is_none(), "shard {idx} finished twice");
            slots[idx] = Some((shard, report, spo));
        }

        let mut shard_reports = Vec::with_capacity(n);
        let mut spo_events = Vec::with_capacity(n);
        for slot in slots {
            let (shard, report, spo) = slot.expect("every shard completes");
            self.shards.push(shard);
            shard_reports.push(report);
            spo_events.push(spo);
        }

        ArrayRunOutcome {
            report: ArrayReport::merge(&shard_reports),
            shard_reports,
            spo_events,
        }
    }
}

/// A finished shard, its report, and its (possibly un-fired) SPO event.
type Finished<F, W> = (ArrayShard<F, W>, SimReport, Option<SpoEvent>);
/// What a worker sends home: a [`Finished`] tagged with its shard index.
type Done<F, W> = (usize, ArrayShard<F, W>, SimReport, Option<SpoEvent>);

/// One shard of a front-driven array: a device plus the host front-end
/// (e.g. `hostq`'s multi-queue QoS front) that feeds it open-loop.
pub struct FrontShard<F, H> {
    /// The shard's device simulator.
    pub sim: SsdSim,
    /// The shard's FTL.
    pub ftl: F,
    /// The shard's host front-end (its tenant subset).
    pub front: H,
    /// Cap on host requests the device issues this run.
    pub requests: u64,
}

/// Results of one front-driven array run.
#[derive(Debug, Clone)]
pub struct FrontRunOutcome {
    /// The merged array-wide report.
    pub report: ArrayReport,
    /// Per-shard reports, indexed by shard.
    pub shard_reports: Vec<SimReport>,
}

/// The front-driven array engine: [`SsdArray`]'s fan-out/fan-in
/// discipline (pre-computed shard inputs, index-slot collection, merge
/// strictly in shard order) over [`SsdSim::run_step_front`]. After
/// [`FrontArray::run`] the shards sit back in index order, so the
/// caller can drain per-shard front state (QoS reports, telemetry)
/// shard-ordered.
pub struct FrontArray<F, H> {
    shards: Vec<FrontShard<F, H>>,
    threads: usize,
}

impl<F, H> FrontArray<F, H>
where
    F: FtlDriver + Send,
    H: HostFront + Send,
{
    /// An array over `shards`, one worker thread per shard by default.
    ///
    /// # Panics
    ///
    /// Panics on an empty shard list.
    pub fn new(shards: Vec<FrontShard<F, H>>) -> Self {
        assert!(!shards.is_empty(), "need at least one shard");
        let threads = shards.len();
        FrontArray { shards, threads }
    }

    /// Caps the worker-thread count (clamped to `1..=shards`). Purely a
    /// resource knob: any count produces the same merged report.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.clamp(1, self.shards.len());
        self
    }

    /// The shards, in index order (drain fronts after a run).
    pub fn shards(&self) -> &[FrontShard<F, H>] {
        &self.shards
    }

    /// Mutable access to the shards, in index order.
    pub fn shards_mut(&mut self) -> &mut [FrontShard<F, H>] {
        &mut self.shards
    }

    /// Runs every shard to drain and merges the results in shard order.
    pub fn run(&mut self) -> FrontRunOutcome {
        let n = self.shards.len();
        let threads = self.threads.clamp(1, n);

        let (job_tx, job_rx) = mpsc::channel::<(usize, FrontShard<F, H>)>();
        for job in self.shards.drain(..).enumerate() {
            job_tx.send(job).expect("queue is open");
        }
        drop(job_tx);
        let job_rx = Mutex::new(job_rx);

        let (done_tx, done_rx) = mpsc::channel::<(usize, FrontShard<F, H>, SimReport)>();

        std::thread::scope(|scope| {
            for _ in 0..threads {
                let job_rx = &job_rx;
                let done_tx = done_tx.clone();
                scope.spawn(move || loop {
                    let job = job_rx.lock().expect("queue lock").try_recv();
                    let Ok((idx, mut shard)) = job else { break };
                    let report = run_front_shard(&mut shard);
                    done_tx.send((idx, shard, report)).expect("collector");
                });
            }
        });
        drop(done_tx);

        let mut slots: Vec<Option<(FrontShard<F, H>, SimReport)>> = (0..n).map(|_| None).collect();
        for (idx, shard, report) in done_rx.iter() {
            debug_assert!(slots[idx].is_none(), "shard {idx} finished twice");
            slots[idx] = Some((shard, report));
        }

        let mut shard_reports = Vec::with_capacity(n);
        for slot in slots {
            let (shard, report) = slot.expect("every shard completes");
            self.shards.push(shard);
            shard_reports.push(report);
        }

        FrontRunOutcome {
            report: ArrayReport::merge(&shard_reports),
            shard_reports,
        }
    }
}

/// Simulates one front-driven shard to drain in bounded event slices.
fn run_front_shard<F, H>(shard: &mut FrontShard<F, H>) -> SimReport
where
    F: FtlDriver,
    H: HostFront,
{
    shard.sim.run_front_begin(shard.requests);
    while shard
        .sim
        .run_step_front(&mut shard.ftl, &mut shard.front, STEP_EVENTS)
        == StepOutcome::Running
    {}
    shard.sim.run_front_end(&shard.ftl)
}

/// Simulates one shard to completion in bounded event slices.
fn run_shard<F, W>(shard: &mut ArrayShard<F, W>) -> (SimReport, Option<SpoEvent>)
where
    F: FtlDriver,
    W: Iterator<Item = HostRequest>,
{
    shard.sim.run_begin(shard.requests, shard.spo);
    // Arm after run_begin: the reset inside run_begin clears any prior
    // rebuild queue. `take` so a later resume run does not re-arm the
    // same ops (remainders travel via `SsdSim::take_rebuild_pending`).
    if let Some(plan) = shard.rebuild.take() {
        shard.sim.arm_rebuild(plan.sched, plan.ops);
    }
    while shard
        .sim
        .run_step(&mut shard.ftl, &mut shard.workload, STEP_EVENTS)
        == StepOutcome::Running
    {}
    shard.sim.run_end(&shard.ftl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdsim::{HostOp, SsdConfig};

    /// A trivial FTL: fixed-latency reads and writes, enough to exercise
    /// the engine without the full `ftl` crate.
    struct NullFtl {
        stats: ssdsim::FtlStats,
    }

    impl NullFtl {
        fn new() -> Self {
            NullFtl {
                stats: ssdsim::FtlStats::default(),
            }
        }
    }

    impl FtlDriver for NullFtl {
        fn write_wl(
            &mut self,
            _chip: usize,
            _lpns: [u64; 3],
            _ctx: &ssdsim::HostContext,
        ) -> ssdsim::WlWrite {
            self.stats.host_wl_programs += 1;
            ssdsim::WlWrite {
                nand_us: 200.0,
                did_gc: false,
                leader: false,
            }
        }

        fn read_page(&mut self, lpn: u64, _ctx: &ssdsim::HostContext) -> Option<ssdsim::PageRead> {
            self.stats.nand_reads += 1;
            Some(ssdsim::PageRead {
                chip: (lpn % 2) as usize,
                nand_us: 60.0,
                retries: 0,
            })
        }

        fn stats(&self) -> ssdsim::FtlStats {
            self.stats
        }

        fn name(&self) -> &str {
            "nullFTL"
        }
    }

    fn mixed_stream(seed: u64) -> impl Iterator<Item = HostRequest> + Send {
        (0..).map(move |i: u64| {
            let x = i.wrapping_mul(6364136223846793005).wrapping_add(seed);
            if x.is_multiple_of(3) {
                HostRequest::read(x % 512)
            } else {
                HostRequest::write(x % 512)
            }
        })
    }

    fn build(
        shards: usize,
        requests: u64,
    ) -> SsdArray<NullFtl, impl Iterator<Item = HostRequest> + Send> {
        SsdArray::new(
            (0..shards)
                .map(|s| ArrayShard {
                    sim: SsdSim::new(SsdConfig::small()),
                    ftl: NullFtl::new(),
                    workload: mixed_stream(s as u64 + 1),
                    requests,
                    spo: None,
                    rebuild: None,
                })
                .collect(),
        )
    }

    #[test]
    fn array_completes_every_shard_budget() {
        let mut array = build(4, 300);
        let out = array.run();
        assert_eq!(out.report.shards, 4);
        assert_eq!(out.report.completed, 4 * 300);
        assert_eq!(out.shard_reports.len(), 4);
        for r in &out.shard_reports {
            assert_eq!(r.completed, 300);
        }
        assert!(!out.any_fired());
        // Aggregate IOPS is the sum of shard throughputs.
        let sum: f64 = out.report.per_shard_iops.iter().sum();
        assert!((out.report.iops - sum).abs() < 1e-9);
    }

    #[test]
    fn report_is_identical_at_any_thread_count() {
        let run_at = |threads: usize| {
            let mut array = build(4, 250).with_threads(threads);
            format!("{:?}", array.run().report)
        };
        let one = run_at(1);
        assert_eq!(one, run_at(2), "1 vs 2 threads");
        assert_eq!(one, run_at(4), "1 vs 4 threads");
    }

    #[test]
    fn repeated_runs_are_byte_identical() {
        let a = format!("{:?}", build(3, 200).run().report);
        let b = format!("{:?}", build(3, 200).run().report);
        assert_eq!(a, b);
    }

    #[test]
    fn array_wide_spo_cuts_every_shard_at_one_instant() {
        let cut_us = 40_000.0;
        let mut array = build(3, 1_000_000);
        for shard in array.shards_mut() {
            shard.spo = Some(SpoTrigger::AtTimeUs(cut_us));
        }
        let out = array.run();
        assert!(out.any_fired());
        for (s, ev) in out.spo_events.iter().enumerate() {
            let ev = ev.as_ref().expect("every shard cut");
            assert!(ev.at_us >= cut_us, "shard {s} cut before the instant");
            assert!(ev.completed < 1_000_000);
        }
    }

    #[test]
    fn merged_counters_match_shard_sums() {
        let mut array = build(2, 400);
        let out = array.run();
        let reads: u64 = out.shard_reports.iter().map(|r| r.reads).sum();
        let writes: u64 = out.shard_reports.iter().map(|r| r.writes).sum();
        assert_eq!(out.report.reads, reads);
        assert_eq!(out.report.writes, writes);
        assert_eq!(
            out.report.read_latency.len(),
            out.shard_reports
                .iter()
                .map(|r| r.read_latency.len())
                .sum::<usize>()
        );
        let _ = HostOp::Read;
    }
}
