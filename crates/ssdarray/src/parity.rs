//! RAID-5-style rotating cross-shard parity: the bijection between the
//! array's global *data* space and per-shard local spaces when one
//! stripe per row holds XOR parity.
//!
//! With `S` shards and stripe size `P`, the local spaces are organised
//! in **rows** of one `P`-page stripe per shard. Row `r` dedicates one
//! shard to parity — rotating left-symmetrically so parity load spreads
//! evenly:
//!
//! ```text
//! parity_shard(r) = S − 1 − (r % S)
//! ```
//!
//! The remaining `D = S − 1` stripes of the row hold consecutive global
//! data. For a global data LPN `g`:
//!
//! ```text
//! row = g / (P·D)      k = (g / P) % D      o = g % P
//! shard = k            if k <  parity_shard(row)
//!         k + 1        if k >= parity_shard(row)
//! local = row·P + o
//! ```
//!
//! and the inverse (for `s ≠ parity_shard(row)`):
//!
//! ```text
//! row = local / P      o = local % P      k = s − (s > parity_shard(row))
//! g = (row·D + k)·P + o
//! ```
//!
//! Two properties the resilience machinery leans on:
//!
//! 1. **Bijection** — the map `g ↔ (shard, local)` is a bijection
//!    between the global data space and the non-parity local pages
//!    (proptested in `tests/array_failure.rs`), so host requests never
//!    collide and every local page has a unique owner.
//! 2. **Row alignment** — every page of row `r` (data and parity alike)
//!    lives at the *same local index range* `r·P .. r·P+P` on its
//!    shard. Reconstructing local page `l` of a failed shard therefore
//!    reads local page `l` on every surviving shard and XORs — no
//!    per-shard offset arithmetic in the degraded path.
//!
//! With `parity: false` the router degenerates to plain `S`-wide
//! striping, byte-identical to [`crate::StripeRouter`] — the default
//! path reproduces every pre-parity golden.

use ssdsim::{HostOp, HostRequest};

/// What a shard-local page holds under the rotating-parity layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageRole {
    /// A data page: the global data LPN stored there.
    Data(u64),
    /// A parity page: the row it protects.
    Parity {
        /// Row index (local stripe index).
        row: u64,
    },
}

/// The rotating-parity LPN router.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParityRouter {
    shards: usize,
    stripe_pages: u64,
    parity: bool,
}

impl ParityRouter {
    /// A router over `shards` shards with `stripe_pages`-page stripes.
    /// With `parity` one rotating stripe per row holds XOR parity;
    /// without, the router is plain round-robin striping.
    ///
    /// # Panics
    ///
    /// Panics when a parameter is zero, or when `parity` is requested
    /// with fewer than two shards (parity needs at least one data
    /// shard beside it).
    pub fn new(shards: usize, stripe_pages: u64, parity: bool) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(stripe_pages >= 1, "stripe must be at least one page");
        assert!(
            !parity || shards >= 2,
            "parity needs at least two shards (one data + one parity)"
        );
        ParityRouter {
            shards,
            stripe_pages,
            parity,
        }
    }

    /// Number of shards (data + rotating parity).
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Stripe size in pages.
    pub fn stripe_pages(&self) -> u64 {
        self.stripe_pages
    }

    /// Whether rotating parity is on.
    pub fn parity(&self) -> bool {
        self.parity
    }

    /// Data stripes per row: `S − 1` with parity, `S` without.
    pub fn data_shards(&self) -> usize {
        if self.parity {
            self.shards - 1
        } else {
            self.shards
        }
    }

    /// The shard holding row `r`'s parity stripe (left-symmetric
    /// rotation). Meaningless when parity is off.
    pub fn parity_shard(&self, row: u64) -> usize {
        debug_assert!(self.parity);
        self.shards - 1 - (row % self.shards as u64) as usize
    }

    /// The shard a global data LPN lives on.
    pub fn shard_of(&self, global: u64) -> usize {
        self.to_local(global).0
    }

    /// Translates a global data LPN to `(shard, local LPN)`.
    pub fn to_local(&self, global: u64) -> (usize, u64) {
        let p = self.stripe_pages;
        let d = self.data_shards() as u64;
        let row = global / (p * d);
        let k = ((global / p) % d) as usize;
        let o = global % p;
        let shard = if self.parity {
            let ps = self.parity_shard(row);
            if k < ps {
                k
            } else {
                k + 1
            }
        } else {
            k
        };
        (shard, row * p + o)
    }

    /// What `(shard, local)` holds: the global data LPN, or the row
    /// whose parity it stores.
    pub fn page_at(&self, shard: usize, local: u64) -> PageRole {
        debug_assert!(shard < self.shards);
        let p = self.stripe_pages;
        let row = local / p;
        let o = local % p;
        if self.parity && shard == self.parity_shard(row) {
            return PageRole::Parity { row };
        }
        let k = if self.parity && shard > self.parity_shard(row) {
            shard - 1
        } else {
            shard
        } as u64;
        PageRole::Data((row * self.data_shards() as u64 + k) * p + o)
    }

    /// Translates `(shard, local)` back to the global data LPN — the
    /// inverse of [`ParityRouter::to_local`].
    ///
    /// # Panics
    ///
    /// Panics when `(shard, local)` is a parity page.
    pub fn to_global(&self, shard: usize, local: u64) -> u64 {
        match self.page_at(shard, local) {
            PageRole::Data(g) => g,
            PageRole::Parity { row } => {
                panic!("({shard}, {local}) is the parity stripe of row {row}")
            }
        }
    }

    /// Local pages each shard needs to hold `global_data_pages` of
    /// global data: `rows · P` on every shard (parity rows occupy the
    /// same local footprint as data rows).
    ///
    /// # Panics
    ///
    /// Panics unless the global data space is whole rows — a multiple
    /// of `P·D`. The harness sizes the space from the per-shard budget
    /// (`rows = local_limit / P`), so this always holds in practice.
    pub fn local_pages(&self, global_data_pages: u64) -> u64 {
        let per_row = self.stripe_pages * self.data_shards() as u64;
        assert_eq!(
            global_data_pages % per_row,
            0,
            "global data space must be whole rows (multiple of {per_row})"
        );
        (global_data_pages / per_row) * self.stripe_pages
    }

    /// The surviving `(shard, local)` pages to read (and XOR) to
    /// reconstruct local page `local` of `failed` — every other
    /// shard's page at the same local index, ascending shard order.
    pub fn degraded_sources(&self, failed: usize, local: u64) -> Vec<(usize, u64)> {
        debug_assert!(self.parity, "reconstruction needs parity");
        (0..self.shards)
            .filter(|&s| s != failed)
            .map(|s| (s, local))
            .collect()
    }

    /// Splits one global-data-space host request into shard-local
    /// requests, cutting the span at stripe boundaries. Writes and
    /// trims additionally charge the row's parity shard with a write
    /// over the same local span, emitted immediately after the data
    /// fragment — so parity traffic is deterministic in stream order.
    /// Reads touch data shards only.
    pub fn split(&self, req: HostRequest) -> Vec<(usize, HostRequest)> {
        let p = self.stripe_pages;
        let mut out = Vec::new();
        let mut global = req.lpn;
        let mut left = u64::from(req.n_pages);
        while left > 0 {
            let in_stripe = p - global % p;
            let take = in_stripe.min(left);
            let (shard, local) = self.to_local(global);
            out.push((
                shard,
                HostRequest {
                    op: req.op,
                    lpn: local,
                    n_pages: u32::try_from(take).expect("fragment fits a stripe"),
                },
            ));
            if self.parity && req.op != HostOp::Read {
                // Data changed ⇒ the row's parity stripe changes over
                // the same offsets; parity updates are always programs.
                let row = local / p;
                out.push((
                    self.parity_shard(row),
                    HostRequest {
                        op: HostOp::Write,
                        lpn: local,
                        n_pages: u32::try_from(take).expect("fragment fits a stripe"),
                    },
                ));
            }
            global += take;
            left -= take;
        }
        out
    }

    /// Routes a whole request stream: one shard-local request vector
    /// per shard, each in the global stream's order (parity updates
    /// interleaved where their data fragments occur).
    pub fn route_stream<I>(&self, stream: I) -> Vec<Vec<HostRequest>>
    where
        I: IntoIterator<Item = HostRequest>,
    {
        let mut per_shard = vec![Vec::new(); self.shards];
        for req in stream {
            for (shard, local) in self.split(req) {
                per_shard[shard].push(local);
            }
        }
        per_shard
    }
}

/// Deterministic content fingerprint of `(lpn, version)` — the model
/// "payload" of a data page, used by the parity audit: the simulator
/// does not move real bytes, so reconstruction exactness is checked
/// over these 64-bit fingerprints instead (XOR algebra is identical).
/// splitmix64 finalizer over both words.
pub fn page_fingerprint(lpn: u64, version: u64) -> u64 {
    let mut z = lpn
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(version.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(0x94D0_49BB_1331_11EB);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// XOR-combines data fingerprints into a parity fingerprint. The
/// reconstruction identity `xor_parity(all \ {x}) ^ parity == x` is
/// what the degraded path and the proptests rely on.
pub fn xor_parity(fps: impl IntoIterator<Item = u64>) -> u64 {
    fps.into_iter().fold(0, |acc, f| acc ^ f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_off_matches_plain_striping() {
        let plain = crate::StripeRouter::new(4, 8);
        let off = ParityRouter::new(4, 8, false);
        for g in 0..4 * 8 * 5 + 3 {
            assert_eq!(plain.to_local(g), off.to_local(g));
            let (s, l) = off.to_local(g);
            assert_eq!(off.to_global(s, l), g);
        }
        let req = HostRequest::write_span(6, 20);
        assert_eq!(plain.split(req), off.split(req));
    }

    #[test]
    fn parity_placement_rotates_and_roundtrips() {
        let r = ParityRouter::new(4, 8, true);
        // Rows 0..3 park parity on shards 3, 2, 1, 0 then repeat.
        assert_eq!(r.parity_shard(0), 3);
        assert_eq!(r.parity_shard(1), 2);
        assert_eq!(r.parity_shard(2), 1);
        assert_eq!(r.parity_shard(3), 0);
        assert_eq!(r.parity_shard(4), 3);
        for g in 0..8 * 3 * 6 {
            let (s, l) = r.to_local(g);
            assert!(s < 4);
            assert_ne!(s, r.parity_shard(l / 8), "data never lands on parity");
            assert_eq!(r.shard_of(g), s);
            assert_eq!(r.to_global(s, l), g, "roundtrip at {g}");
            assert_eq!(r.page_at(s, l), PageRole::Data(g));
        }
    }

    #[test]
    fn every_local_page_has_exactly_one_role() {
        let r = ParityRouter::new(3, 4, true);
        let global = r.stripe_pages() * r.data_shards() as u64 * 9; // 9 rows
        let local = r.local_pages(global);
        let mut data_seen = vec![false; global as usize];
        let mut parity_rows = 0u64;
        for s in 0..r.shards() {
            for l in 0..local {
                match r.page_at(s, l) {
                    PageRole::Data(g) => {
                        assert!(!data_seen[g as usize], "duplicate owner for {g}");
                        data_seen[g as usize] = true;
                    }
                    PageRole::Parity { .. } => parity_rows += 1,
                }
            }
        }
        assert!(data_seen.iter().all(|&b| b), "every global LPN covered");
        assert_eq!(parity_rows, 9 * r.stripe_pages(), "one parity stripe/row");
    }

    #[test]
    fn writes_charge_the_parity_shard_reads_do_not() {
        let r = ParityRouter::new(3, 4, true);
        // Row 0 parity on shard 2; writing global 0..4 (shard 0 local
        // 0..4) must charge shard 2 with a 4-page write at local 0.
        let parts = r.split(HostRequest::write_span(0, 4));
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], (0, HostRequest::write_span(0, 4)));
        assert_eq!(parts[1], (2, HostRequest::write_span(0, 4)));
        let reads = r.split(HostRequest::read(1));
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].0, 0);
        // Trims update parity too — as programs.
        let trims = r.split(HostRequest::trim_span(0, 2));
        assert_eq!(trims.len(), 2);
        assert_eq!(trims[1], (2, HostRequest::write_span(0, 2)));
    }

    #[test]
    fn degraded_sources_are_the_survivors_at_the_same_local() {
        let r = ParityRouter::new(4, 8, true);
        assert_eq!(r.degraded_sources(1, 13), vec![(0, 13), (2, 13), (3, 13)]);
    }

    #[test]
    fn fingerprint_xor_reconstructs() {
        let fps: Vec<u64> = (0..7).map(|i| page_fingerprint(i, i * 3 + 1)).collect();
        let parity = xor_parity(fps.iter().copied());
        for drop in 0..fps.len() {
            let others = fps
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != drop)
                .map(|(_, f)| *f);
            assert_eq!(xor_parity(others) ^ parity, fps[drop]);
        }
        assert_ne!(
            page_fingerprint(1, 0),
            page_fingerprint(0, 1),
            "lpn and version are not interchangeable"
        );
    }
}
