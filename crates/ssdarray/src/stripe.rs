//! LPN striping: the bijection between the array's global logical space
//! and the per-shard local spaces.
//!
//! Global LPNs are dealt to shards in round-robin stripes of
//! `stripe_pages` consecutive pages — stripe `k` of the global space
//! lands on shard `k % shards`, at local stripe `k / shards`. With `S`
//! shards and stripe size `P` the maps are
//!
//! ```text
//! shard(g)  = (g / P) % S
//! local(g)  = (g / (P·S))·P + g % P
//! global(s, l) = (l / P)·P·S + s·P + l % P
//! ```
//!
//! which is a bijection `u64 → (shard, u64)` on any prefix of the
//! global space whose length is a multiple of `P·S` (and injective on
//! every prefix) — the property the array relies on so no two host
//! requests ever collide on a shard-local page.

use ssdsim::HostRequest;

/// The round-robin LPN striper.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StripeRouter {
    shards: usize,
    stripe_pages: u64,
}

impl StripeRouter {
    /// A router dealing stripes of `stripe_pages` pages over `shards`
    /// shards.
    ///
    /// # Panics
    ///
    /// Panics when either parameter is zero.
    pub fn new(shards: usize, stripe_pages: u64) -> Self {
        assert!(shards >= 1, "need at least one shard");
        assert!(stripe_pages >= 1, "stripe must be at least one page");
        StripeRouter {
            shards,
            stripe_pages,
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Stripe size in pages.
    pub fn stripe_pages(&self) -> u64 {
        self.stripe_pages
    }

    /// The shard a global LPN lives on.
    pub fn shard_of(&self, global: u64) -> usize {
        ((global / self.stripe_pages) % self.shards as u64) as usize
    }

    /// Translates a global LPN to `(shard, local LPN)`.
    pub fn to_local(&self, global: u64) -> (usize, u64) {
        let p = self.stripe_pages;
        let group = p * self.shards as u64;
        let local = (global / group) * p + global % p;
        (self.shard_of(global), local)
    }

    /// Translates `(shard, local LPN)` back to the global LPN — the
    /// inverse of [`StripeRouter::to_local`].
    pub fn to_global(&self, shard: usize, local: u64) -> u64 {
        debug_assert!(shard < self.shards);
        let p = self.stripe_pages;
        (local / p) * p * self.shards as u64 + shard as u64 * p + local % p
    }

    /// Size of `shard`'s local space when the global space has
    /// `global_pages` pages: the number of global LPNs routed to it.
    pub fn local_pages(&self, global_pages: u64, shard: usize) -> u64 {
        debug_assert!(shard < self.shards);
        let p = self.stripe_pages;
        let group = p * self.shards as u64;
        let full = (global_pages / group) * p;
        let rem = global_pages % group;
        full + rem.saturating_sub(shard as u64 * p).min(p)
    }

    /// Splits one global-space host request into shard-local requests,
    /// cutting the span at stripe boundaries. Fragments come out in
    /// ascending global-LPN order, so routing a request stream is
    /// deterministic by construction.
    pub fn split(&self, req: HostRequest) -> Vec<(usize, HostRequest)> {
        let p = self.stripe_pages;
        let mut out = Vec::new();
        let mut global = req.lpn;
        let mut left = u64::from(req.n_pages);
        while left > 0 {
            let in_stripe = p - global % p;
            let take = in_stripe.min(left);
            let (shard, local) = self.to_local(global);
            out.push((
                shard,
                HostRequest {
                    op: req.op,
                    lpn: local,
                    n_pages: u32::try_from(take).expect("fragment fits a stripe"),
                },
            ));
            global += take;
            left -= take;
        }
        out
    }

    /// Routes a whole request stream: returns one shard-local request
    /// vector per shard, each in the global stream's order.
    pub fn route_stream<I>(&self, stream: I) -> Vec<Vec<HostRequest>>
    where
        I: IntoIterator<Item = HostRequest>,
    {
        let mut per_shard = vec![Vec::new(); self.shards];
        for req in stream {
            for (shard, local) in self.split(req) {
                per_shard[shard].push(local);
            }
        }
        per_shard
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssdsim::{HostOp, HostRequest};

    #[test]
    fn striping_roundtrips() {
        for shards in [1usize, 2, 3, 4, 8] {
            for stripe in [1u64, 4, 64] {
                let r = StripeRouter::new(shards, stripe);
                for g in 0..(stripe * shards as u64 * 3 + 7) {
                    let (s, l) = r.to_local(g);
                    assert!(s < shards);
                    assert_eq!(r.shard_of(g), s);
                    assert_eq!(r.to_global(s, l), g, "roundtrip at {g}");
                }
            }
        }
    }

    #[test]
    fn local_pages_partition_the_global_space() {
        for shards in [1usize, 2, 5] {
            for stripe in [1u64, 8] {
                for total in [0u64, 1, 7, 64, 100, 1000] {
                    let r = StripeRouter::new(shards, stripe);
                    let sum: u64 = (0..shards).map(|s| r.local_pages(total, s)).sum();
                    assert_eq!(
                        sum, total,
                        "{shards} shards, stripe {stripe}, {total} pages"
                    );
                    // Every routed LPN fits its shard's local space.
                    for g in 0..total {
                        let (s, l) = r.to_local(g);
                        assert!(l < r.local_pages(total, s));
                    }
                }
            }
        }
    }

    #[test]
    fn split_cuts_spans_at_stripe_boundaries() {
        let r = StripeRouter::new(2, 4);
        // Pages 6..13 cross three stripes: [6,7] on shard 1, [8..11] on
        // shard 0, [12] on shard 1.
        let parts = r.split(HostRequest::write_span(6, 7));
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], (1, HostRequest::write_span(2, 2)));
        assert_eq!(parts[1], (0, HostRequest::write_span(4, 4)));
        assert_eq!(parts[2], (1, HostRequest::write_span(4, 1)));
        let pages: u64 = parts.iter().map(|(_, q)| u64::from(q.n_pages)).sum();
        assert_eq!(pages, 7, "no page lost or duplicated");
    }

    #[test]
    fn route_stream_preserves_order_and_ops() {
        let r = StripeRouter::new(2, 1);
        let stream = [
            HostRequest::write(0),
            HostRequest::read(1),
            HostRequest {
                op: HostOp::Trim,
                lpn: 2,
                n_pages: 2,
            },
        ];
        let routed = r.route_stream(stream);
        assert_eq!(
            routed[0],
            vec![HostRequest::write(0), HostRequest::trim_span(1, 1)]
        );
        assert_eq!(
            routed[1],
            vec![HostRequest::read(0), HostRequest::trim_span(1, 1)]
        );
    }
}
