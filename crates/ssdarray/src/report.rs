//! The fan-in: merging per-shard [`SimReport`]s into one array-wide
//! report.
//!
//! Merging happens strictly in shard-index order at a sequence point
//! after every shard has finished — never in completion order — so the
//! merged report is byte-identical no matter how the shard threads were
//! scheduled.

use ssdsim::{ChipStats, FtlStats, LatencyRecorder, SimReport};

/// Array-wide results: per-shard reports folded in shard order.
#[derive(Debug, Clone)]
pub struct ArrayReport {
    /// FTL name (shared by every shard).
    pub ftl_name: String,
    /// Number of shards merged.
    pub shards: usize,
    /// Aggregate array throughput: the sum of per-shard IOPS — what the
    /// host sees from `shards` devices serving in parallel.
    pub iops: f64,
    /// Array makespan: the slowest shard's simulated time, µs.
    pub sim_time_us: f64,
    /// Completed host requests across all shards.
    pub completed: u64,
    /// Completed reads across all shards.
    pub reads: u64,
    /// Completed writes across all shards.
    pub writes: u64,
    /// Completed TRIMs across all shards.
    pub trims: u64,
    /// Read latencies of every shard, concatenated in shard order.
    pub read_latency: LatencyRecorder,
    /// Write latencies of every shard, concatenated in shard order.
    pub write_latency: LatencyRecorder,
    /// FTL counters accumulated over all shards.
    pub ftl: FtlStats,
    /// Chip statistics of every shard, concatenated in shard order
    /// (shard `s`, chip `c` lands at index `s * chips_per_shard + c`).
    pub chip_stats: Vec<ChipStats>,
    /// Per-shard throughput, indexed by shard.
    pub per_shard_iops: Vec<f64>,
    /// Per-shard completed requests, indexed by shard.
    pub per_shard_completed: Vec<u64>,
}

impl ArrayReport {
    /// Folds per-shard reports, in the order given (callers pass them in
    /// shard-index order).
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn merge(reports: &[SimReport]) -> Self {
        assert!(!reports.is_empty(), "cannot merge zero shards");
        let mut merged = ArrayReport {
            ftl_name: reports[0].ftl_name.clone(),
            shards: reports.len(),
            iops: 0.0,
            sim_time_us: 0.0,
            completed: 0,
            reads: 0,
            writes: 0,
            trims: 0,
            read_latency: LatencyRecorder::new(),
            write_latency: LatencyRecorder::new(),
            ftl: FtlStats::default(),
            chip_stats: Vec::new(),
            per_shard_iops: Vec::with_capacity(reports.len()),
            per_shard_completed: Vec::with_capacity(reports.len()),
        };
        for r in reports {
            merged.iops += r.iops;
            merged.sim_time_us = merged.sim_time_us.max(r.sim_time_us);
            merged.completed += r.completed;
            merged.reads += r.reads;
            merged.writes += r.writes;
            merged.trims += r.trims;
            merged.read_latency.absorb(&r.read_latency);
            merged.write_latency.absorb(&r.write_latency);
            merged.ftl.accumulate(&r.ftl);
            merged.chip_stats.extend_from_slice(&r.chip_stats);
            merged.per_shard_iops.push(r.iops);
            merged.per_shard_completed.push(r.completed);
        }
        merged
    }

    /// Host-attributed write amplification over the whole array (same
    /// definition as [`SimReport::wa_host`], on the accumulated
    /// counters). `None` when nothing was written.
    pub fn wa_host(&self) -> Option<f64> {
        let host_pages = self.ftl.host_wl_programs * 3;
        if host_pages == 0 {
            return None;
        }
        let nand_pages =
            (self.ftl.host_wl_programs + self.ftl.safety_reprograms + self.ftl.program_aborts) * 3
                + self.ftl.gc_page_moves;
        Some(nand_pages as f64 / host_pages as f64)
    }

    /// Total write amplification including background maintenance and
    /// checkpoint-region metadata programs, over the whole array.
    pub fn wa_total(&self) -> Option<f64> {
        let host_pages = self.ftl.host_wl_programs * 3;
        if host_pages == 0 {
            return None;
        }
        let nand_pages =
            (self.ftl.host_wl_programs + self.ftl.safety_reprograms + self.ftl.program_aborts) * 3
                + self.ftl.gc_page_moves
                + self.ftl.maint_page_moves()
                + self.ftl.ckpt_page_programs;
        Some(nand_pages as f64 / host_pages as f64)
    }

    /// Total fault-recovery actions across all shards.
    pub fn recovery_actions(&self) -> u64 {
        self.ftl.recovery_actions()
    }

    /// Registers the merged array metrics under `prefix`: array-wide
    /// gauges and counters, the merged latency histograms, the
    /// accumulated FTL counters (under `{prefix}.ftl`) and per-shard
    /// throughput (under `{prefix}.shard{s}`).
    pub fn register_metrics(&self, reg: &mut telemetry::MetricRegistry, prefix: &str) {
        reg.gauge(&format!("{prefix}.iops"), self.iops);
        reg.gauge(&format!("{prefix}.sim_time_us"), self.sim_time_us);
        if let Some(wa) = self.wa_host() {
            reg.gauge(&format!("{prefix}.wa_host"), wa);
        }
        if let Some(wa) = self.wa_total() {
            reg.gauge(&format!("{prefix}.wa_total"), wa);
        }
        reg.counter(&format!("{prefix}.completed"), self.completed);
        reg.counter(&format!("{prefix}.reads"), self.reads);
        reg.counter(&format!("{prefix}.writes"), self.writes);
        reg.counter(&format!("{prefix}.trims"), self.trims);
        reg.histogram(
            &format!("{prefix}.read_latency_us"),
            self.read_latency.histogram(),
        );
        reg.histogram(
            &format!("{prefix}.write_latency_us"),
            self.write_latency.histogram(),
        );
        reg.gauge(
            &format!("{prefix}.read_p99_us"),
            self.read_latency.percentile(99.0),
        );
        reg.gauge(
            &format!("{prefix}.read_p999_us"),
            self.read_latency.percentile(99.9),
        );
        reg.gauge(
            &format!("{prefix}.write_p99_us"),
            self.write_latency.percentile(99.0),
        );
        reg.gauge(
            &format!("{prefix}.write_p999_us"),
            self.write_latency.percentile(99.9),
        );
        self.ftl.register_metrics(reg, &format!("{prefix}.ftl"));
        for (s, (iops, completed)) in self
            .per_shard_iops
            .iter()
            .zip(&self.per_shard_completed)
            .enumerate()
        {
            reg.gauge(&format!("{prefix}.shard{s}.iops"), *iops);
            reg.counter(&format!("{prefix}.shard{s}.completed"), *completed);
        }
    }
}

/// Resilience outcome of a failure-injection run: what the degraded
/// path served, what the rebuild moved, and what (if anything) was
/// lost. All counters are derived at the deterministic phase barriers,
/// so the report is byte-identical at any worker-thread count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResilienceReport {
    /// Whether rotating parity was enabled for the run.
    pub parity: bool,
    /// The failed shard, when a failure was injected.
    pub failed_shard: Option<u32>,
    /// Virtual time of the failure injection, µs.
    pub fail_at_us: f64,
    /// Spare shard that absorbed the rebuild, if one was provisioned.
    pub spare_shard: Option<u32>,
    /// Lost data pages served to the host by XOR reconstruction.
    pub degraded_reads: u64,
    /// Survivor fragment reads issued to serve those (≈ `(S−1)×`).
    pub degraded_fragment_reads: u64,
    /// Durable pages of the failed shard reconstructed onto the spare.
    pub rebuild_pages: u64,
    /// Survivor fragment reads issued by the rebuild.
    pub rebuild_reads: u64,
    /// Virtual time the spare finished absorbing the rebuild, µs.
    pub rebuild_time_us: f64,
    /// Dead-shard host writes redirected to the spare.
    pub redirected_writes: u64,
    /// Host-acknowledged durable pages that could NOT be recovered
    /// (non-zero only with parity off — the loss the tentpole audit
    /// proves parity eliminates).
    pub lost_pages: u64,
    /// Per-shard survivor fragment reads served for degraded host
    /// reads, indexed by shard (0 on the failed shard itself).
    pub per_shard_degraded_reads: Vec<u64>,
    /// Per-shard survivor fragment reads served for the rebuild,
    /// indexed by shard.
    pub per_shard_rebuild_reads: Vec<u64>,
}

impl ResilienceReport {
    /// Registers the resilience counters under `{prefix}.resilience`:
    /// run-wide counters plus per-shard failure/degraded-read/rebuild
    /// detail (`{prefix}.shard{s}.*`).
    pub fn register_metrics(&self, reg: &mut telemetry::MetricRegistry, prefix: &str) {
        let p = format!("{prefix}.resilience");
        reg.counter(&format!("{p}.parity"), u64::from(self.parity));
        if let Some(f) = self.failed_shard {
            reg.counter(&format!("{p}.failed_shard"), u64::from(f));
            reg.gauge(&format!("{p}.fail_at_us"), self.fail_at_us);
        }
        if let Some(s) = self.spare_shard {
            reg.counter(&format!("{p}.spare_shard"), u64::from(s));
        }
        reg.counter(&format!("{p}.degraded_reads"), self.degraded_reads);
        reg.counter(
            &format!("{p}.degraded_fragment_reads"),
            self.degraded_fragment_reads,
        );
        reg.counter(&format!("{p}.rebuild_pages"), self.rebuild_pages);
        reg.counter(&format!("{p}.rebuild_reads"), self.rebuild_reads);
        reg.gauge(&format!("{p}.rebuild_time_us"), self.rebuild_time_us);
        reg.counter(&format!("{p}.redirected_writes"), self.redirected_writes);
        reg.counter(&format!("{p}.lost_pages"), self.lost_pages);
        let shards = self
            .per_shard_degraded_reads
            .len()
            .max(self.per_shard_rebuild_reads.len());
        for s in 0..shards {
            let failed = self.failed_shard == Some(s as u32);
            reg.counter(&format!("{prefix}.shard{s}.failed"), u64::from(failed));
            reg.counter(
                &format!("{prefix}.shard{s}.degraded_fragment_reads"),
                self.per_shard_degraded_reads.get(s).copied().unwrap_or(0),
            );
            reg.counter(
                &format!("{prefix}.shard{s}.rebuild_reads"),
                self.per_shard_rebuild_reads.get(s).copied().unwrap_or(0),
            );
        }
    }
}
