//! The fan-in: merging per-shard [`SimReport`]s into one array-wide
//! report.
//!
//! Merging happens strictly in shard-index order at a sequence point
//! after every shard has finished — never in completion order — so the
//! merged report is byte-identical no matter how the shard threads were
//! scheduled.

use ssdsim::{ChipStats, FtlStats, LatencyRecorder, SimReport};

/// Array-wide results: per-shard reports folded in shard order.
#[derive(Debug, Clone)]
pub struct ArrayReport {
    /// FTL name (shared by every shard).
    pub ftl_name: String,
    /// Number of shards merged.
    pub shards: usize,
    /// Aggregate array throughput: the sum of per-shard IOPS — what the
    /// host sees from `shards` devices serving in parallel.
    pub iops: f64,
    /// Array makespan: the slowest shard's simulated time, µs.
    pub sim_time_us: f64,
    /// Completed host requests across all shards.
    pub completed: u64,
    /// Completed reads across all shards.
    pub reads: u64,
    /// Completed writes across all shards.
    pub writes: u64,
    /// Completed TRIMs across all shards.
    pub trims: u64,
    /// Read latencies of every shard, concatenated in shard order.
    pub read_latency: LatencyRecorder,
    /// Write latencies of every shard, concatenated in shard order.
    pub write_latency: LatencyRecorder,
    /// FTL counters accumulated over all shards.
    pub ftl: FtlStats,
    /// Chip statistics of every shard, concatenated in shard order
    /// (shard `s`, chip `c` lands at index `s * chips_per_shard + c`).
    pub chip_stats: Vec<ChipStats>,
    /// Per-shard throughput, indexed by shard.
    pub per_shard_iops: Vec<f64>,
    /// Per-shard completed requests, indexed by shard.
    pub per_shard_completed: Vec<u64>,
}

impl ArrayReport {
    /// Folds per-shard reports, in the order given (callers pass them in
    /// shard-index order).
    ///
    /// # Panics
    ///
    /// Panics on an empty slice.
    pub fn merge(reports: &[SimReport]) -> Self {
        assert!(!reports.is_empty(), "cannot merge zero shards");
        let mut merged = ArrayReport {
            ftl_name: reports[0].ftl_name.clone(),
            shards: reports.len(),
            iops: 0.0,
            sim_time_us: 0.0,
            completed: 0,
            reads: 0,
            writes: 0,
            trims: 0,
            read_latency: LatencyRecorder::new(),
            write_latency: LatencyRecorder::new(),
            ftl: FtlStats::default(),
            chip_stats: Vec::new(),
            per_shard_iops: Vec::with_capacity(reports.len()),
            per_shard_completed: Vec::with_capacity(reports.len()),
        };
        for r in reports {
            merged.iops += r.iops;
            merged.sim_time_us = merged.sim_time_us.max(r.sim_time_us);
            merged.completed += r.completed;
            merged.reads += r.reads;
            merged.writes += r.writes;
            merged.trims += r.trims;
            merged.read_latency.absorb(&r.read_latency);
            merged.write_latency.absorb(&r.write_latency);
            merged.ftl.accumulate(&r.ftl);
            merged.chip_stats.extend_from_slice(&r.chip_stats);
            merged.per_shard_iops.push(r.iops);
            merged.per_shard_completed.push(r.completed);
        }
        merged
    }

    /// Host-attributed write amplification over the whole array (same
    /// definition as [`SimReport::wa_host`], on the accumulated
    /// counters). `None` when nothing was written.
    pub fn wa_host(&self) -> Option<f64> {
        let host_pages = self.ftl.host_wl_programs * 3;
        if host_pages == 0 {
            return None;
        }
        let nand_pages =
            (self.ftl.host_wl_programs + self.ftl.safety_reprograms + self.ftl.program_aborts) * 3
                + self.ftl.gc_page_moves;
        Some(nand_pages as f64 / host_pages as f64)
    }

    /// Total write amplification including background maintenance and
    /// checkpoint-region metadata programs, over the whole array.
    pub fn wa_total(&self) -> Option<f64> {
        let host_pages = self.ftl.host_wl_programs * 3;
        if host_pages == 0 {
            return None;
        }
        let nand_pages =
            (self.ftl.host_wl_programs + self.ftl.safety_reprograms + self.ftl.program_aborts) * 3
                + self.ftl.gc_page_moves
                + self.ftl.maint_page_moves()
                + self.ftl.ckpt_page_programs;
        Some(nand_pages as f64 / host_pages as f64)
    }

    /// Total fault-recovery actions across all shards.
    pub fn recovery_actions(&self) -> u64 {
        self.ftl.recovery_actions()
    }

    /// Registers the merged array metrics under `prefix`: array-wide
    /// gauges and counters, the merged latency histograms, the
    /// accumulated FTL counters (under `{prefix}.ftl`) and per-shard
    /// throughput (under `{prefix}.shard{s}`).
    pub fn register_metrics(&self, reg: &mut telemetry::MetricRegistry, prefix: &str) {
        reg.gauge(&format!("{prefix}.iops"), self.iops);
        reg.gauge(&format!("{prefix}.sim_time_us"), self.sim_time_us);
        if let Some(wa) = self.wa_host() {
            reg.gauge(&format!("{prefix}.wa_host"), wa);
        }
        if let Some(wa) = self.wa_total() {
            reg.gauge(&format!("{prefix}.wa_total"), wa);
        }
        reg.counter(&format!("{prefix}.completed"), self.completed);
        reg.counter(&format!("{prefix}.reads"), self.reads);
        reg.counter(&format!("{prefix}.writes"), self.writes);
        reg.counter(&format!("{prefix}.trims"), self.trims);
        reg.histogram(
            &format!("{prefix}.read_latency_us"),
            self.read_latency.histogram(),
        );
        reg.histogram(
            &format!("{prefix}.write_latency_us"),
            self.write_latency.histogram(),
        );
        reg.gauge(
            &format!("{prefix}.read_p99_us"),
            self.read_latency.percentile(99.0),
        );
        reg.gauge(
            &format!("{prefix}.read_p999_us"),
            self.read_latency.percentile(99.9),
        );
        reg.gauge(
            &format!("{prefix}.write_p99_us"),
            self.write_latency.percentile(99.0),
        );
        reg.gauge(
            &format!("{prefix}.write_p999_us"),
            self.write_latency.percentile(99.9),
        );
        self.ftl.register_metrics(reg, &format!("{prefix}.ftl"));
        for (s, (iops, completed)) in self
            .per_shard_iops
            .iter()
            .zip(&self.per_shard_completed)
            .enumerate()
        {
            reg.gauge(&format!("{prefix}.shard{s}.iops"), *iops);
            reg.counter(&format!("{prefix}.shard{s}.completed"), *completed);
        }
    }
}
