//! Property-based tests on the NAND model's invariants.

use nand3d::ispp::split_margin_mv;
use nand3d::{
    BlockId, Environment, IsppEngine, NandChip, NandConfig, ProcessModel, ProgramParams,
    ReadParams, RetryEngine, WlData, NUM_PROGRAM_STATES,
};
use proptest::prelude::*;
use std::sync::OnceLock;

/// The paper-scale process model is expensive to sample; share one
/// instance across all property cases (it is immutable).
fn shared() -> &'static (IsppEngine, ProcessModel) {
    static SHARED: OnceLock<(IsppEngine, ProcessModel)> = OnceLock::new();
    SHARED.get_or_init(|| {
        let config = NandConfig::paper();
        (
            IsppEngine::new(config.model),
            ProcessModel::new(config.geometry, config.model.reliability, 5),
        )
    })
}

fn engine_setup() -> (&'static IsppEngine, &'static ProcessModel, Environment) {
    let (engine, process) = shared();
    (engine, process, Environment::new(428, 6))
}

proptest! {
    /// Skipping more verifies never increases latency, and never
    /// decreases reliability *below* the default-parameter BER when kept
    /// within the safe limits.
    #[test]
    fn more_skips_never_slower(
        block in 0u32..428,
        h in 0u16..48,
        extra in 0u8..3,
    ) {
        let (engine, process, env) = engine_setup();
        let wl = process.geometry().wl_addr(BlockId(block), h, 1);
        let chars = engine.characterize(process, wl, &env, 0);

        let mut less = ProgramParams::default();
        let mut more = ProgramParams::default();
        for s in 0..NUM_PROGRAM_STATES {
            let safe = chars.intervals[s].safe_skip();
            less.n_skip[s] = safe.saturating_sub(extra);
            more.n_skip[s] = safe;
        }
        let a = engine.program(&chars, &less).expect("legal");
        let b = engine.program(&chars, &more).expect("legal");
        prop_assert!(b.latency_us <= a.latency_us);
        prop_assert!((a.post_ber - chars.base_ber).abs() < 1e-15);
        prop_assert!((b.post_ber - chars.base_ber).abs() < 1e-15);
    }

    /// Window shrinking within the device cap always removes pulses
    /// monotonically, and the latency formula stays consistent with the
    /// reported pulse/verify counts.
    #[test]
    fn window_shrink_is_monotone(
        block in 0u32..428,
        h in 0u16..48,
        steps in 0u8..3,
    ) {
        let (engine, process, env) = engine_setup();
        let wl = process.geometry().wl_addr(BlockId(block), h, 2);
        let chars = engine.characterize(process, wl, &env, 0);
        let ispp = engine.ispp_model();

        let mut prev_pulses = u32::MAX;
        for s in 0..=steps {
            let total = f64::from(s) * ispp.delta_v_ispp_mv;
            let (up, down) = split_margin_mv(total, ispp);
            let out = engine
                .program(&chars, &ProgramParams { v_start_up_mv: up, v_final_down_mv: down, ..ProgramParams::default() })
                .expect("within cap");
            prop_assert!(out.pulses <= prev_pulses);
            prev_pulses = out.pulses;
            // Eq. (1) consistency.
            let t = f64::from(out.pulses) * 48.0 + f64::from(out.verifies) * 3.5;
            let overhead = if s == 0 { 0.0 } else { 0.8 };
            prop_assert!((out.latency_us - t - overhead).abs() < 1e-9);
        }
    }

    /// The monitored loop intervals are identical for all WLs of one
    /// h-layer under any aging condition — the intra-layer similarity
    /// the whole paper rests on.
    #[test]
    fn intervals_identical_within_hlayer(
        block in 0u32..428,
        h in 0u16..48,
        pe in 0u32..2500,
        months in 0u16..13,
    ) {
        let (engine, process, mut env) = engine_setup();
        env.set_aging_raw(pe, f64::from(months));
        let g = *process.geometry();
        let reference = engine
            .characterize(process, g.wl_addr(BlockId(block), h, 0), &env, 0)
            .intervals;
        for v in 1..4u16 {
            let other = engine
                .characterize(process, g.wl_addr(BlockId(block), h, v), &env, 0)
                .intervals;
            prop_assert_eq!(reference, other);
        }
    }

    /// Read retries equal the offset distance, and the reported latency
    /// is affine in the retry count.
    #[test]
    fn retries_equal_search_distance(
        block in 0u32..428,
        h in 0u16..48,
        start in 0u8..8,
        months in 1u16..13,
    ) {
        let (_, process) = shared();
        let retry = RetryEngine::new(NandConfig::paper().model);
        let mut env = Environment::new(428, 6);
        env.set_aging_raw(2000, f64::from(months));
        let wl = process.geometry().wl_addr(BlockId(block), h, 1);

        let optimal = retry.optimal_offset(process, wl, &env);
        let out = retry.read(process, wl, &env, ReadParams::from_offset(start), true, false, 0);
        prop_assert_eq!(out.retries, u32::from(start.abs_diff(optimal)));
        let expected = 80.0 + f64::from(out.retries) * 45.0;
        prop_assert!((out.latency_us - expected).abs() < 1e-9);
        prop_assert_eq!(out.final_offset, optimal);
    }

    /// Full chip command protocol: any interleaving of erases and
    /// WL programs keeps data readable and never corrupts other blocks.
    #[test]
    fn chip_protocol_is_safe(ops in prop::collection::vec((0u32..4, 0u16..8, 0u16..4, prop::bool::ANY), 1..60)) {
        let mut chip = NandChip::new(NandConfig::small(), 3);
        let g = *chip.geometry();
        let mut programmed: std::collections::HashMap<(u32, u16, u16), u64> =
            std::collections::HashMap::new();
        let mut erased: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut tag = 0u64;

        for (b, h, v, do_erase) in ops {
            if do_erase {
                chip.erase(BlockId(b)).expect("erase in range");
                erased.insert(b);
                programmed.retain(|k, _| k.0 != b);
            } else if erased.contains(&b) {
                let wl = g.wl_addr(BlockId(b), h, v);
                let result = chip.program_wl(wl, WlData::host(tag), &ProgramParams::default());
                if let std::collections::hash_map::Entry::Vacant(e) = programmed.entry((b, h, v)) {
                    prop_assert!(result.is_ok());
                    e.insert(tag);
                    tag += 3;
                } else {
                    prop_assert!(result.is_err(), "double program must fail");
                }
            }
        }
        // Every programmed WL reads back its own tags.
        for ((b, h, v), t) in &programmed {
            for p in 0..3u8 {
                let page = g.page_addr(BlockId(*b), *h, *v, p);
                let r = chip.read_page(page, ReadParams::default()).expect("written");
                prop_assert_eq!(r.data, t + u64::from(p));
            }
        }
    }
}
