//! The incremental step pulse programming (ISPP) engine.
//!
//! ISPP (paper §2.2, Fig. 3) ramps the program voltage from `V_Start` to
//! `V_Final` in `ΔV_ISPP` steps. After every program pulse (PGM), each
//! still-unfinished program state is verified (VFY); verified cells are
//! inhibited. The program latency is
//!
//! ```text
//! tPROG = Σ_{i=1}^{MaxLoop} (tPGM + k_i · tVFY)            (Eq. 1)
//! ```
//!
//! where `k_i` is the number of verify operations in loop `i`. In the
//! default (PS-unaware) schedule every state `Pi` is verified on every
//! loop from loop 1 until its slowest cells finish, so state `Pi` costs
//! `L_max^Pi` verifies (its cumulative completion loop).
//!
//! The PS-aware optimizations of §4.1 manipulate two knobs:
//!
//! * **VFY skipping** (§4.1.1): skip the first
//!   `N = Σ_{s<i} L_max^s + (L_min^Pi − 1)` verifies of state `Pi`
//!   (in cumulative loop numbers this is simply `L_min^Pi − 1`), which is
//!   safe because no cell can have finished before loop `L_min^Pi`.
//! * **Window shrinking** (§4.1.2): raise `V_Start` and/or lower
//!   `V_Final`. The ramp covers the window, so each removed `ΔV_ISPP`
//!   step removes one loop; the price is Vth-window compression, which
//!   consumes the spare BER margin `S_M`.
//!
//! [`IsppEngine::characterize`] derives the ground-truth per-state loop
//! intervals and safe margin of a WL; [`IsppEngine::program`] executes a
//! program with arbitrary [`ProgramParams`] and reports latency, the
//! observed intervals, and any BER penalty from unsafe parameters.

use crate::config::{CalibratedModel, IsppModel};
use crate::environment::Environment;
use crate::error::NandError;
use crate::geometry::WlAddr;
use crate::process::ProcessModel;
use crate::reliability::ReliabilityModel;
use serde::{Deserialize, Serialize};

/// Number of programmed states of a TLC cell (P1..P7; the erased state E
/// is not programmed).
pub const NUM_PROGRAM_STATES: usize = 7;

/// Index of a program state: `0` = P1 … `6` = P7.
pub type StateIndex = usize;

/// The interval `[L_min, L_max]` of ISPP loops over which the cells of
/// one program state finish, in *cumulative* loop numbers (loop 1 is the
/// first pulse of the WL program).
///
/// `L_min` is the loop where the fastest cells of the state reach their
/// target; `L_max` the loop where the slowest do. Skipping more than
/// `L_min − 1` verifies over-programs the fast cells (Fig. 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LoopInterval {
    /// First loop at which any cell of the state can finish.
    pub lmin: u8,
    /// Loop at which the slowest cells finish.
    pub lmax: u8,
}

impl LoopInterval {
    /// Number of verifies a follower still performs for this state after
    /// skipping the safe maximum (`L_max − L_min + 1`).
    #[inline]
    pub fn width(&self) -> u8 {
        self.lmax - self.lmin + 1
    }

    /// The largest number of verifies that can be skipped for this state
    /// without risking over-program errors (`L_min − 1`).
    #[inline]
    pub fn safe_skip(&self) -> u8 {
        self.lmin.saturating_sub(1)
    }
}

/// Parameters of one WL program operation, as set through the device's
/// Set-Features interface (§4.1.4, §5.1).
///
/// The default (`ProgramParams::default()`) is the conservative
/// PS-unaware configuration: no skipped verifies, full program window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgramParams {
    /// Verifies to skip per program state, in cumulative loop numbers
    /// (i.e. the OPM passes `L_min^Pi − 1` measured on the leader WL).
    pub n_skip: [u8; NUM_PROGRAM_STATES],
    /// Increase of `V_Start` in mV (≥ 0).
    pub v_start_up_mv: f64,
    /// Decrease of `V_Final` in mV (≥ 0).
    pub v_final_down_mv: f64,
}

impl Default for ProgramParams {
    fn default() -> Self {
        ProgramParams {
            n_skip: [0; NUM_PROGRAM_STATES],
            v_start_up_mv: 0.0,
            v_final_down_mv: 0.0,
        }
    }
}

impl ProgramParams {
    /// Total window adjustment in mV.
    #[inline]
    pub fn total_adjust_mv(&self) -> f64 {
        self.v_start_up_mv + self.v_final_down_mv
    }

    /// Whether any optimization is applied at all.
    pub fn is_default(&self) -> bool {
        self.n_skip.iter().all(|&n| n == 0) && self.total_adjust_mv() == 0.0
    }
}

/// Ground truth about how a particular WL programs *right now*: its loop
/// intervals under the default window and the spare margin its h-layer
/// has under current operating conditions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WlCharacteristics {
    /// Per-state completion intervals under the default window.
    pub intervals: [LoopInterval; NUM_PROGRAM_STATES],
    /// The largest total `V_Start`+`V_Final` adjustment (mV) that does not
    /// degrade reliability for this WL under current conditions.
    pub safe_margin_mv: f64,
    /// `BER_EP1` this WL would exhibit if programmed now (§4.1.2).
    pub ber_ep1: f64,
    /// Raw post-program BER under default parameters (before any
    /// penalty).
    pub base_ber: f64,
}

/// Result of executing one WL program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsppOutcome {
    /// Number of program pulses executed (`MaxLoop` actually used).
    pub pulses: u32,
    /// Total number of verify steps executed.
    pub verifies: u32,
    /// Program latency in µs (Eq. (1)).
    pub latency_us: f64,
    /// The loop intervals observed by the device's monitor during this
    /// program, in cumulative loop numbers of the *applied* window.
    /// A PS-aware FTL records these from leader-WL programs.
    pub observed_intervals: [LoopInterval; NUM_PROGRAM_STATES],
    /// `BER_EP1` monitored after this program.
    pub ber_ep1: f64,
    /// Total skipped verifies beyond the safe limit (over-program
    /// exposure), across states.
    pub over_skip_excess: u32,
    /// Window shrink beyond the safe margin, in loops (under-margin
    /// exposure).
    pub margin_excess_loops: u32,
    /// Raw BER of the WL right after this program, including any penalty
    /// from unsafe parameters. The §4.1.4 safety check compares this
    /// against the previous WL of the same h-layer.
    pub post_ber: f64,
}

impl IsppOutcome {
    /// Fault-injection hook: a transient program-disturb burst multiplies
    /// the post-program raw BER (the §4.1.4 safety check observes the
    /// spike through the Get-Features report). Latency and monitored
    /// intervals are unchanged — the anomaly is invisible until checked.
    pub fn apply_ber_spike(&mut self, factor: f64) {
        assert!(factor >= 1.0, "a spike cannot lower the BER");
        self.post_ber *= factor;
    }
}

/// The ISPP program engine for one chip.
///
/// Stateless apart from the calibrated model; all per-WL state comes in
/// through [`WlCharacteristics`].
#[derive(Debug, Clone)]
pub struct IsppEngine {
    model: CalibratedModel,
    reliability: ReliabilityModel,
}

impl IsppEngine {
    /// Creates an engine from the calibrated model.
    pub fn new(model: CalibratedModel) -> Self {
        IsppEngine {
            reliability: ReliabilityModel::new(model.reliability),
            model,
        }
    }

    /// The ISPP window parameters.
    pub fn ispp_model(&self) -> &IsppModel {
        &self.model.ispp
    }

    /// Derives the ground-truth program characteristics of `wl` under the
    /// current environment. `disturbance_shift` models a sudden ambient
    /// change (§4.1.4): it shifts every loop interval and shrinks the
    /// safe margin, invalidating previously monitored parameters.
    pub fn characterize(
        &self,
        process: &ProcessModel,
        wl: WlAddr,
        env: &Environment,
        disturbance_shift: i8,
    ) -> WlCharacteristics {
        let pe = env.pe(wl.block.0 as usize);
        let retention = env.effective_retention_months_of(wl.block.0 as usize);
        let ispp = &self.model.ispp;

        // Program-speed shifts: degraded (wide-hole / rugged) layers need
        // more loops, while cycled cells program faster — both integer
        // loop shifts, so WLs of one h-layer quantize to *identical*
        // intervals (Fig. 5(d)).
        let factor = process.layer_factor(wl.block, wl.h.0);
        let layer_shift = ((factor - 1.0) * 1.3).round() as i32;
        let pe_shift = (f64::from(pe) / 2000.0).round() as i32;
        let net = layer_shift - pe_shift + i32::from(disturbance_shift);

        // Aged cells have wider program-speed variation.
        let extra_spread = u8::from(pe >= 1500);

        let mut intervals = [LoopInterval { lmin: 1, lmax: 1 }; NUM_PROGRAM_STATES];
        for ((iv, base), spread) in intervals
            .iter_mut()
            .zip(ispp.base_lmax)
            .zip(ispp.base_spread)
        {
            let lmax = clamp_loop(i32::from(base) + net, ispp.max_loop);
            let lmin = lmax.saturating_sub(spread + extra_spread).max(1);
            *iv = LoopInterval { lmin, lmax };
        }
        // Keep completion order monotonic after clamping.
        for s in 1..NUM_PROGRAM_STATES {
            if intervals[s].lmax <= intervals[s - 1].lmax {
                intervals[s].lmax = (intervals[s - 1].lmax + 1).min(ispp.max_loop);
                intervals[s].lmin = intervals[s]
                    .lmax
                    .saturating_sub(ispp.base_spread[s] + extra_spread)
                    .max(1);
            }
        }

        let mut ber_ep1 = self.reliability.ber_ep1(process, wl, pe);
        if disturbance_shift != 0 {
            // A sudden ambient change inflates the monitored error level.
            ber_ep1 *= 1.0 + 0.9 * f64::from(disturbance_shift.unsigned_abs());
        }
        let spare = self.spare_margin(ber_ep1, pe);
        let safe_margin_mv = margin_mv_for_spare(spare, ispp);

        let base_ber = self.reliability.ber(process, wl, pe, retention);

        WlCharacteristics {
            intervals,
            safe_margin_mv,
            ber_ep1,
            base_ber,
        }
    }

    /// Normalized spare margin `S_M = BER_EP1^Max − BER_EP1` (§4.1.2), in
    /// the normalized units of Fig. 11.
    ///
    /// The measured `BER_EP1` is first discounted by the wear component
    /// the lifetime budget already provisions for (the default window is
    /// sized for end-of-life wear, so wear growth alone does not consume
    /// spare margin — this matches the paper's evaluation, where the
    /// follower speedups persist at 2K P/E, Fig. 17(b)/(c)).
    pub fn spare_margin(&self, ber_ep1: f64, pe: u32) -> f64 {
        let x = (f64::from(pe) / 2000.0).min(1.5);
        let provisioned_wear = 1.0 + 0.5 * self.model.reliability.pe_wear * x;
        let norm = self.normalized_ep1(ber_ep1) / provisioned_wear;
        (self.max_normalized_ep1() - norm).max(0.0)
    }

    /// `BER_EP1` normalized over the fresh best-layer reference value.
    pub fn normalized_ep1(&self, ber_ep1: f64) -> f64 {
        ber_ep1 / (0.30 * self.model.reliability.base_ber)
    }

    /// The maximum allowed normalized `BER_EP1` (`BER_EP1^Max`), decided
    /// "from a large-scale characterization study" (§4.1.2) — here, the
    /// worst process corner at end of life (Fig. 9(a): the default window
    /// is provisioned for the worst layer under the worst operating
    /// condition). Typical layers keep spare margin across their whole
    /// lifetime; only the worst layers at end of life fall back to the
    /// single guard step.
    pub fn max_normalized_ep1(&self) -> f64 {
        let p = &self.model.reliability;
        let worst_factor = (1.0 + p.bottom_edge_amp + 0.25) * 1.18;
        worst_factor * 1.84
    }

    /// Executes one WL program with `params` on a WL whose ground truth is
    /// `chars`.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::IllegalParameters`] if the adjustment exceeds
    /// the device limit or is negative.
    pub fn program(
        &self,
        chars: &WlCharacteristics,
        params: &ProgramParams,
    ) -> Result<IsppOutcome, NandError> {
        let ispp = &self.model.ispp;
        if params.v_start_up_mv < 0.0 || params.v_final_down_mv < 0.0 {
            return Err(NandError::IllegalParameters(
                "negative window adjustment".to_owned(),
            ));
        }
        if params.total_adjust_mv() > ispp.max_adjust_mv {
            return Err(NandError::IllegalParameters(format!(
                "total adjustment {:.0} mV exceeds device limit {:.0} mV",
                params.total_adjust_mv(),
                ispp.max_adjust_mv
            )));
        }

        let r_start = (params.v_start_up_mv / ispp.delta_v_ispp_mv).floor() as u8;
        let r_final = (params.v_final_down_mv / ispp.delta_v_ispp_mv).floor() as u8;
        let removed = u32::from(r_start) + u32::from(r_final);

        // The shrunk window compresses every state's trajectory: raising
        // V_Start removes leading loops (shifts all intervals down);
        // lowering V_Final squeezes the top of the ramp, which the device
        // realizes by compressing the highest states.
        let mut observed = chars.intervals;
        for iv in &mut observed {
            iv.lmax = iv.lmax.saturating_sub(r_start).max(1);
            iv.lmin = iv.lmin.saturating_sub(r_start).max(1);
        }
        let window = chars.intervals[NUM_PROGRAM_STATES - 1]
            .lmax
            .saturating_sub(r_start)
            .saturating_sub(r_final)
            .max(1);
        // Compress completion loops into the reduced window from the top.
        for s in (0..NUM_PROGRAM_STATES).rev() {
            let cap = window
                .saturating_sub((NUM_PROGRAM_STATES - 1 - s) as u8)
                .max(1);
            if observed[s].lmax > cap {
                let d = observed[s].lmax - cap;
                observed[s].lmax = cap;
                observed[s].lmin = observed[s].lmin.saturating_sub(d).max(1);
            }
        }

        let pulses = u32::from(window);

        // Verify counts: default cost of state s is its (adjusted)
        // cumulative completion loop; the OPM's skip request removes the
        // leading verifies. Loops removed by V_Start no longer exist, so
        // they cannot also be skipped.
        let mut verifies = 0u32;
        let mut over_skip_excess = 0u32;
        for ((obs, truth), n_skip) in observed.iter().zip(chars.intervals).zip(params.n_skip) {
            let skip_requested = u32::from(n_skip);
            let effective_skip = skip_requested.saturating_sub(u32::from(r_start));
            let cost = u32::from(obs.lmax);
            verifies += cost.saturating_sub(effective_skip).max(1);
            // Ground truth: skipping at or beyond L_min means the fastest
            // cells pass unverified → over-programmed.
            let safe = u32::from(truth.safe_skip());
            over_skip_excess += skip_requested.saturating_sub(safe);
        }

        let latency_us = f64::from(pulses) * self.model.timing.t_pgm_us
            + f64::from(verifies) * self.model.timing.t_vfy_us
            + if params.is_default() {
                0.0
            } else {
                self.model.timing.t_set_features_us
            };

        // Reliability accounting: window compression squeezes the Vth
        // states together (see `vth`), so every removed loop costs a
        // small BER uptick even inside the safe margin — that is the
        // spare margin being *spent* (Figs. 9, 10). Shrinking beyond the
        // margin, or skipping past `L_min`, degrades reliability sharply
        // (Fig. 8(a)).
        let safe_loops = (chars.safe_margin_mv / ispp.delta_v_ispp_mv).floor() as u32;
        let margin_excess_loops = removed.saturating_sub(safe_loops);
        let mut post_ber = chars.base_ber;
        let consumed = removed.min(safe_loops);
        if consumed > 0 {
            post_ber += self.model.reliability.base_ber * 0.25 * f64::from(consumed);
        }
        if over_skip_excess > 0 {
            post_ber += self.model.reliability.base_ber
                * 0.8
                * (1.6f64.powi(over_skip_excess as i32) - 1.0);
        }
        if margin_excess_loops > 0 {
            post_ber += self.model.reliability.base_ber
                * 1.2
                * (2.2f64.powi(margin_excess_loops as i32) - 1.0);
        }

        Ok(IsppOutcome {
            pulses,
            verifies,
            latency_us,
            observed_intervals: observed,
            ber_ep1: chars.ber_ep1,
            over_skip_excess,
            margin_excess_loops,
            post_ber,
        })
    }

    /// Convenience: the default (PS-unaware) program latency of a WL.
    pub fn default_tprog_us(&self, chars: &WlCharacteristics) -> f64 {
        self.program(chars, &ProgramParams::default())
            .expect("default parameters are always legal")
            .latency_us
    }
}

fn clamp_loop(v: i32, max_loop: u8) -> u8 {
    v.clamp(1, i32::from(max_loop)) as u8
}

/// The offline conversion table of §4.1.2: maps a measured spare margin
/// `S_M` (normalized units, Fig. 11) to the total `V_Start`+`V_Final`
/// adjustment in mV, quantized to whole `ΔV_ISPP` steps.
///
/// The default window is provisioned with one guard step beyond the
/// worst-case corner (`BER_EP1^Max`), so even `S_M = 0` affords one step —
/// this is the headroom a conservative offline scheme like vertFTL \[13\]
/// spends statically on every WL (~8% tPROG, §6.2).
///
/// Anchor: `S_M = 1.7 → 320 mV` (Fig. 11(b)).
pub fn margin_mv_for_spare(s_m: f64, ispp: &IsppModel) -> f64 {
    const SM_PER_STEP: f64 = 0.9;
    let steps = 1.0 + (s_m.max(0.0) / SM_PER_STEP).floor();
    (steps * ispp.delta_v_ispp_mv).min(ispp.max_adjust_mv)
}

/// The predefined split table of §4.1.2: divides a total adjustment
/// margin between `V_Start` (raised) and `V_Final` (lowered).
///
/// Raising `V_Start` benefits every state, so it receives the first and
/// every odd step; `V_Final` receives the even steps.
pub fn split_margin_mv(total_mv: f64, ispp: &IsppModel) -> (f64, f64) {
    let steps = (total_mv / ispp.delta_v_ispp_mv).floor() as u32;
    let start_steps = steps.div_ceil(2);
    let final_steps = steps / 2;
    (
        f64::from(start_steps) * ispp.delta_v_ispp_mv,
        f64::from(final_steps) * ispp.delta_v_ispp_mv,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CalibratedModel;
    use crate::geometry::{BlockId, Geometry};

    fn setup() -> (IsppEngine, ProcessModel, Environment) {
        let model = CalibratedModel::default();
        let geometry = Geometry::paper();
        let process = ProcessModel::new(geometry, model.reliability, 99);
        let env = Environment::new(geometry.blocks_per_chip as usize, 1);
        (IsppEngine::new(model), process, env)
    }

    fn wl(process: &ProcessModel, b: u32, h: u16, v: u16) -> WlAddr {
        process.geometry().wl_addr(BlockId(b), h, v)
    }

    #[test]
    fn default_program_latency_near_700us() {
        let (engine, process, env) = setup();
        // A mid-stack, non-degraded layer is the nominal case.
        let chars = engine.characterize(&process, wl(&process, 0, 12, 0), &env, 0);
        let t = engine.default_tprog_us(&chars);
        assert!((600.0..820.0).contains(&t), "tPROG {t} µs");
    }

    #[test]
    fn wls_of_same_hlayer_have_identical_characteristics() {
        // Fig. 5(d): identical tPROG within an h-layer.
        let (engine, process, env) = setup();
        for h in [0u16, 7, 24, 47] {
            let leader = engine.characterize(&process, wl(&process, 3, h, 0), &env, 0);
            for v in 1..4 {
                let follower = engine.characterize(&process, wl(&process, 3, h, v), &env, 0);
                assert_eq!(leader.intervals, follower.intervals);
                assert_eq!(
                    engine.default_tprog_us(&leader),
                    engine.default_tprog_us(&follower)
                );
            }
        }
    }

    #[test]
    fn different_hlayers_can_differ() {
        // Program-speed shifts quantize to whole loops, so not every pair
        // of layers differs — but a block must contain at least two
        // distinct interval sets (Fig. 5(d) shows per-layer tPROG
        // differences).
        let (engine, process, env) = setup();
        let distinct: std::collections::HashSet<_> = (0..48u16)
            .map(|h| {
                engine
                    .characterize(&process, wl(&process, 3, h, 0), &env, 0)
                    .intervals
            })
            .collect();
        assert!(
            distinct.len() >= 2,
            "all 48 h-layers share one interval set"
        );
    }

    #[test]
    fn safe_skip_preserves_ber_and_saves_about_16_percent() {
        // §4.1.1: skipped VFYs reduce average tPROG by 16.2% without
        // degrading reliability.
        let (engine, process, env) = setup();
        let mut total_default = 0.0;
        let mut total_skip = 0.0;
        let mut n = 0.0;
        for b in 0..24u32 {
            for h in (0..48u16).step_by(4) {
                let chars = engine.characterize(&process, wl(&process, b, h, 1), &env, 0);
                let default = engine.program(&chars, &ProgramParams::default()).unwrap();
                let mut params = ProgramParams::default();
                for s in 0..NUM_PROGRAM_STATES {
                    params.n_skip[s] = chars.intervals[s].safe_skip();
                }
                let skipped = engine.program(&chars, &params).unwrap();
                assert_eq!(skipped.over_skip_excess, 0);
                assert!((skipped.post_ber - default.post_ber).abs() < 1e-12);
                assert_eq!(
                    skipped.pulses, default.pulses,
                    "skip does not change pulses"
                );
                total_default += default.latency_us;
                total_skip += skipped.latency_us;
                n += 1.0;
            }
        }
        let reduction = 1.0 - total_skip / total_default;
        assert!(
            (0.12..0.21).contains(&reduction),
            "VFY-skip tPROG reduction {:.3}, expected ≈0.162",
            reduction
        );
        let _ = n;
    }

    #[test]
    fn excess_skip_raises_ber() {
        // Fig. 8(a): the more VFYs skipped beyond the safe point, the
        // higher the BER.
        let (engine, process, env) = setup();
        let chars = engine.characterize(&process, wl(&process, 0, 12, 1), &env, 0);
        let mut prev = 0.0;
        for extra in 0..4u8 {
            let mut params = ProgramParams::default();
            for s in 0..NUM_PROGRAM_STATES {
                params.n_skip[s] = chars.intervals[s].safe_skip() + extra;
            }
            let out = engine.program(&chars, &params).unwrap();
            if extra == 0 {
                assert_eq!(out.over_skip_excess, 0);
            } else {
                assert!(out.over_skip_excess > 0);
                assert!(out.post_ber > prev, "BER must grow with excess skips");
            }
            prev = out.post_ber;
        }
    }

    #[test]
    fn window_shrink_of_320mv_removes_two_loops_and_about_19_percent() {
        // Fig. 11(b): 320 mV total adjustment → tPROG −19.7%.
        let (engine, process, env) = setup();
        let chars = engine.characterize(&process, wl(&process, 0, 12, 1), &env, 0);
        let default = engine.program(&chars, &ProgramParams::default()).unwrap();
        let (up, down) = split_margin_mv(320.0, engine.ispp_model());
        let params = ProgramParams {
            v_start_up_mv: up,
            v_final_down_mv: down,
            ..ProgramParams::default()
        };
        let out = engine.program(&chars, &params).unwrap();
        assert_eq!(out.pulses, default.pulses - 2);
        let reduction = 1.0 - out.latency_us / default.latency_us;
        assert!(
            (0.15..0.24).contains(&reduction),
            "window-shrink reduction {:.3}, expected ≈0.197",
            reduction
        );
    }

    #[test]
    fn combined_follower_optimization_lands_near_30_percent() {
        // §6.2: cubeFTL achieves ≈30% average tPROG reduction; §6.1 caps
        // follower tPROG reduction at 35.9%.
        let (engine, process, env) = setup();
        let mut reductions = Vec::new();
        for b in 0..24u32 {
            for h in (0..48u16).step_by(3) {
                let chars = engine.characterize(&process, wl(&process, b, h, 1), &env, 0);
                let default = engine.program(&chars, &ProgramParams::default()).unwrap();
                let total = chars.safe_margin_mv.min(engine.ispp_model().max_adjust_mv);
                let (up, down) = split_margin_mv(total, engine.ispp_model());
                let mut params = ProgramParams {
                    v_start_up_mv: up,
                    v_final_down_mv: down,
                    ..ProgramParams::default()
                };
                for s in 0..NUM_PROGRAM_STATES {
                    params.n_skip[s] = chars.intervals[s].safe_skip();
                }
                let out = engine.program(&chars, &params).unwrap();
                assert_eq!(out.over_skip_excess, 0);
                assert_eq!(out.margin_excess_loops, 0, "requested only the safe margin");
                reductions.push(1.0 - out.latency_us / default.latency_us);
            }
        }
        let avg = reductions.iter().sum::<f64>() / reductions.len() as f64;
        let max = reductions.iter().cloned().fold(f64::MIN, f64::max);
        assert!(
            (0.25..0.34).contains(&avg),
            "avg follower reduction {avg:.3}"
        );
        assert!(
            max <= 0.40,
            "max follower reduction {max:.3} (paper: 35.9%)"
        );
        assert!(
            max >= 0.28,
            "max follower reduction {max:.3} (paper: 35.9%)"
        );
    }

    #[test]
    fn margin_table_anchor() {
        let ispp = IsppModel::default();
        // Fig. 11(b): S_M = 1.7 → 320 mV.
        assert_eq!(margin_mv_for_spare(1.7, &ispp), 320.0);
        // The guard step is available even with no measured spare margin.
        assert_eq!(margin_mv_for_spare(0.0, &ispp), 160.0);
        assert_eq!(margin_mv_for_spare(-1.0, &ispp), 160.0);
        assert_eq!(margin_mv_for_spare(100.0, &ispp), ispp.max_adjust_mv);
    }

    #[test]
    fn split_margin_is_exhaustive_and_quantized() {
        let ispp = IsppModel::default();
        for steps in 0..6u32 {
            let total = f64::from(steps) * ispp.delta_v_ispp_mv;
            let (up, down) = split_margin_mv(total, &ispp);
            assert_eq!(up + down, total);
            assert!(up >= down, "V_Start gets the first step");
        }
    }

    #[test]
    fn disturbance_shifts_intervals_and_shrinks_margin() {
        let (engine, process, env) = setup();
        let calm = engine.characterize(&process, wl(&process, 5, 20, 2), &env, 0);
        let disturbed = engine.characterize(&process, wl(&process, 5, 20, 2), &env, 2);
        assert_ne!(calm.intervals, disturbed.intervals);
        assert!(disturbed.safe_margin_mv <= calm.safe_margin_mv);
        assert!(disturbed.ber_ep1 > calm.ber_ep1);
    }

    #[test]
    fn unsafe_window_shrink_raises_ber() {
        let (engine, process, env) = setup();
        let mut aged = env;
        aged.set_aging_raw(2000, 12.0);
        // Worst layer at end of life: margin should be small; requesting
        // the maximum must incur a penalty.
        let chars = engine.characterize(&process, wl(&process, 0, 47, 1), &aged, 0);
        let max = engine.ispp_model().max_adjust_mv;
        let (up, down) = split_margin_mv(max, engine.ispp_model());
        let params = ProgramParams {
            v_start_up_mv: up,
            v_final_down_mv: down,
            ..ProgramParams::default()
        };
        let out = engine.program(&chars, &params).unwrap();
        if chars.safe_margin_mv < max {
            assert!(out.margin_excess_loops > 0);
            assert!(out.post_ber > chars.base_ber);
        }
    }

    #[test]
    fn illegal_parameters_rejected() {
        let (engine, process, env) = setup();
        let chars = engine.characterize(&process, wl(&process, 0, 12, 1), &env, 0);
        let too_big = ProgramParams {
            v_start_up_mv: 400.0,
            v_final_down_mv: 400.0,
            ..ProgramParams::default()
        };
        assert!(matches!(
            engine.program(&chars, &too_big),
            Err(NandError::IllegalParameters(_))
        ));
        let negative = ProgramParams {
            v_start_up_mv: -1.0,
            ..ProgramParams::default()
        };
        assert!(engine.program(&chars, &negative).is_err());
    }

    #[test]
    fn vertftl_style_conservative_final_only_gives_about_8_percent() {
        // §6.2: vertFTL reduces tPROG by only ~8% on average.
        let (engine, process, env) = setup();
        let mut total_default = 0.0;
        let mut total_vert = 0.0;
        for b in 0..16u32 {
            for h in (0..48u16).step_by(4) {
                let chars = engine.characterize(&process, wl(&process, b, h, 1), &env, 0);
                let default = engine.program(&chars, &ProgramParams::default()).unwrap();
                let params = ProgramParams {
                    v_final_down_mv: engine.ispp_model().delta_v_ispp_mv,
                    ..ProgramParams::default()
                };
                let out = engine.program(&chars, &params).unwrap();
                total_default += default.latency_us;
                total_vert += out.latency_us;
            }
        }
        let reduction = 1.0 - total_vert / total_default;
        assert!(
            (0.05..0.11).contains(&reduction),
            "vertFTL-style reduction {reduction:.3}"
        );
    }

    #[test]
    fn loop_interval_helpers() {
        let iv = LoopInterval { lmin: 7, lmax: 9 };
        assert_eq!(iv.width(), 3);
        assert_eq!(iv.safe_skip(), 6);
        let first = LoopInterval { lmin: 1, lmax: 3 };
        assert_eq!(first.safe_skip(), 0);
    }
}
