//! # nand3d — a behavioral model of 3D TLC NAND flash memory
//!
//! This crate is the device substrate for the reproduction of
//! *"Exploiting Process Similarity of 3D Flash Memory for High Performance
//! SSDs"* (MICRO 2019). It models the **cubic organization** of 3D NAND
//! (blocks → horizontal layers → word lines → TLC pages) together with the
//! two process characteristics the paper is built on:
//!
//! * **horizontal intra-layer similarity** — word lines (WLs) on the same
//!   horizontal layer (h-layer) of a block behave virtually identically
//!   (paper §3.2, Fig. 5), and
//! * **vertical inter-layer variability** — h-layers differ substantially
//!   and age nonlinearly (paper §3.3, Fig. 6).
//!
//! On top of the process model it implements the micro-operation level
//! behaviour the paper's optimizations manipulate:
//!
//! * the **ISPP program engine** ([`ispp`]) with per-state verify
//!   scheduling, `V_Start`/`V_Final` windows and skip-aware verify counts
//!   (paper §2.2, §4.1), and
//! * the **read-retry engine** ([`read`]) that searches for working read
//!   reference voltage offsets (paper §2.3, §4.2).
//!
//! The top-level entry points are [`NandChip`] (a single chip with full
//! command semantics) and [`FlashArray`] (a multi-chip package used by the
//! SSD simulator).
//!
//! # Example
//!
//! ```
//! use nand3d::{NandChip, NandConfig, ProgramParams, WlData};
//!
//! # fn main() -> Result<(), nand3d::NandError> {
//! let mut chip = NandChip::new(NandConfig::small(), 42);
//! let block = nand3d::BlockId(0);
//! chip.erase(block)?;
//!
//! // Program the leading WL of h-layer 0 with default (safe) parameters.
//! let wl = chip.geometry().wl_addr(block, 0, 0);
//! let report = chip.program_wl(wl, WlData::host(1), &ProgramParams::default())?;
//! assert!(report.latency_us > 0.0);
//!
//! // The report exposes the monitored ISPP loop intervals, which a
//! // PS-aware FTL reuses for the remaining WLs of the same h-layer.
//! assert_eq!(report.loop_intervals.len(), 7);
//! # Ok(())
//! # }
//! ```

pub mod chip;
pub mod config;
pub mod ecc;
pub mod environment;
pub mod error;
pub mod faults;
pub mod geometry;
pub mod ispp;
pub mod process;
pub mod read;
pub mod reliability;
pub mod vth;

pub use chip::{
    FlashArray, NandChip, OobStatus, PageState, ProgramReport, ReadReport, WlData, WlOob,
};
pub use config::{CalibratedModel, NandConfig, NandTiming};
pub use ecc::{DecodeMode, EccModel};
pub use environment::{AgingState, Environment, ACTIVATION_ENERGY_EV, REFERENCE_CELSIUS};
pub use error::NandError;
pub use faults::{
    FaultCounters, FaultInjector, FaultKind, FaultPlan, ProgramFault, ReadFaultKind, TargetedFault,
};
pub use geometry::{BlockId, ChipId, Geometry, HLayer, PageAddr, PageIndex, VLayer, WlAddr};
pub use ispp::{IsppEngine, LoopInterval, ProgramParams, StateIndex, NUM_PROGRAM_STATES};
pub use process::ProcessModel;
pub use read::{ReadParams, RetryEngine, RetryOptConfig, MAX_OFFSET_INDEX};
pub use reliability::{delta_h, delta_v, ReliabilityModel};
pub use vth::{VthConditions, VthLandscape, VthModel, VthState};
