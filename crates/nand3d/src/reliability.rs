//! The retention-BER model and the ΔV/ΔH variability metrics.
//!
//! The paper's reliability measure is `N_ret(w_ij, x, t)` — the number of
//! retention bit errors of WL `w_ij` after `t` months of retention when
//! the WL was pre-cycled `x` times (§3.1). [`ReliabilityModel`] computes
//! the corresponding raw BER. Calibration anchors:
//!
//! * ΔH (max/min within an h-layer) ≈ 1 for all aging conditions
//!   (Fig. 5),
//! * ΔV (max/min across h-layers of one block) ≈ 1.6 for a fresh block
//!   and ≈ 2.3 at 2K P/E + 1-year retention (Fig. 6(a)–(c)),
//! * per-block ΔV differences around 18% (Fig. 6(d)),
//! * less reliable layers age *faster*, producing the nonlinear dynamic
//!   behaviour of Fig. 6(c).

use crate::config::ReliabilityParams;
use crate::geometry::WlAddr;
use crate::process::ProcessModel;

/// Computes raw retention BER for WLs under given aging conditions.
///
/// The model composes the per-WL process factor with P/E wear and
/// retention loss:
///
/// ```text
/// ber(w, x, t) = base · f(w) · (1 + wear·x̂) · (1 + ret·s(w)·t̂^q·(0.35 + x̂))
/// ```
///
/// where `f(w)` is the process factor, `s(w)` the layer's aging
/// sensitivity, `x̂ = x/2000`, `t̂ = t/12 months`. The `s(w)` cross term is
/// what makes bad layers pull away from good ones as the chip ages,
/// growing ΔV from ≈1.6 to ≈2.3.
#[derive(Debug, Clone)]
pub struct ReliabilityModel {
    params: ReliabilityParams,
}

impl ReliabilityModel {
    /// Creates the model from its calibrated parameters.
    pub fn new(params: ReliabilityParams) -> Self {
        ReliabilityModel { params }
    }

    /// The calibrated parameters.
    pub fn params(&self) -> &ReliabilityParams {
        &self.params
    }

    /// Raw retention BER of WL `wl` after `retention_months` months with
    /// `pe` program/erase cycles, under the process variation of
    /// `process`.
    pub fn ber(&self, process: &ProcessModel, wl: WlAddr, pe: u32, retention_months: f64) -> f64 {
        let f = process.wl_factor(wl);
        let s = process.aging_sensitivity(wl.block, wl.h.0);
        self.ber_from_factors(f, s, pe, retention_months)
    }

    /// Same as [`ReliabilityModel::ber`] but starting from precomputed
    /// process factors (used by the ISPP engine which already has them).
    pub fn ber_from_factors(
        &self,
        process_factor: f64,
        aging_sensitivity: f64,
        pe: u32,
        retention_months: f64,
    ) -> f64 {
        let p = &self.params;
        let x = f64::from(pe) / 2000.0;
        let t = (retention_months / 12.0).max(0.0);
        let wear = 1.0 + p.pe_wear * x;
        let retention =
            1.0 + p.retention_amp * aging_sensitivity * t.powf(p.retention_exp) * (0.35 + x);
        p.base_ber * process_factor * wear * retention
    }

    /// The BER between the erase state and the lowest program state
    /// (`BER_EP1`), monitored right after programming the leading WL
    /// (§4.1.2). It reflects the NAND health status (footnote 1) and so
    /// correlates with the retention BER the layer will exhibit
    /// (Fig. 11(a)); retention has not yet acted on freshly programmed
    /// data, so only the wear/process part contributes, plus the
    /// fraction of the future retention loss already visible as early
    /// charge loss.
    pub fn ber_ep1(&self, process: &ProcessModel, wl: WlAddr, pe: u32) -> f64 {
        let p = &self.params;
        let f = process.wl_factor(wl);
        let s = process.aging_sensitivity(wl.block, wl.h.0);
        let x = f64::from(pe) / 2000.0;
        // Early charge loss appears within seconds of programming (§1);
        // model it as a fixed small retention equivalent.
        let early = 0.02;
        let wear = 1.0 + p.pe_wear * x;
        let retention = 1.0 + p.retention_amp * s * early * (0.35 + x);
        0.30 * p.base_ber * f * wear * retention
    }

    /// The worst-case BER budget the default `V_Start`/`V_Final` window is
    /// provisioned for: the BER of a hypothetical worst h-layer at end of
    /// life with 1-year retention. Spare margin (`S_M`) computations
    /// measure against this (§4.1.2).
    pub fn worst_case_ber(&self) -> f64 {
        // Worst process factor the etching profile can produce
        // (edge layer, +3σ block), worst aging sensitivity.
        let worst_factor = (1.0 + self.params.bottom_edge_amp + 0.25) * 1.18;
        let worst_sens = 1.0 + self.params.aging_cross * (worst_factor - 1.0) + 0.45;
        self.ber_from_factors(worst_factor, worst_sens, 2000, 12.0)
    }
}

/// The intra-layer variability metric `ΔH` of §3.1: the ratio of the
/// maximum to the minimum BER among the WLs of one h-layer.
///
/// Values near 1 mean strong process similarity.
///
/// # Panics
///
/// Panics if `bers` is empty or contains a non-positive value.
pub fn delta_h(bers: &[f64]) -> f64 {
    ratio_max_min(bers)
}

/// The inter-layer variability metric `ΔV` of §3.1: the ratio of the
/// maximum to the minimum BER among the (leading) WLs across the h-layers
/// of one block.
///
/// # Panics
///
/// Panics if `bers` is empty or contains a non-positive value.
pub fn delta_v(bers: &[f64]) -> f64 {
    ratio_max_min(bers)
}

fn ratio_max_min(bers: &[f64]) -> f64 {
    assert!(!bers.is_empty(), "variability metric of empty slice");
    let mut max = f64::MIN;
    let mut min = f64::MAX;
    for &b in bers {
        assert!(b > 0.0, "variability metric requires positive BERs");
        max = max.max(b);
        min = min.min(b);
    }
    max / min
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{BlockId, Geometry};

    fn setup(seed: u64) -> (ProcessModel, ReliabilityModel) {
        let params = ReliabilityParams::default();
        (
            ProcessModel::new(Geometry::paper(), params, seed),
            ReliabilityModel::new(params),
        )
    }

    fn block_layer_bers(
        process: &ProcessModel,
        model: &ReliabilityModel,
        block: BlockId,
        pe: u32,
        months: f64,
    ) -> Vec<f64> {
        let g = *process.geometry();
        (0..g.hlayers_per_block)
            .map(|h| model.ber(process, g.wl_addr(block, h, 0), pe, months))
            .collect()
    }

    /// Average ΔV over many blocks at an aging condition.
    fn avg_delta_v(process: &ProcessModel, model: &ReliabilityModel, pe: u32, months: f64) -> f64 {
        let blocks = 64;
        (0..blocks)
            .map(|b| delta_v(&block_layer_bers(process, model, BlockId(b), pe, months)))
            .sum::<f64>()
            / f64::from(blocks)
    }

    #[test]
    fn delta_h_is_one_for_all_aging_conditions() {
        // Fig. 5: virtually all ΔH values are 1 regardless of aging.
        let (p, m) = setup(3);
        let g = *p.geometry();
        for (pe, months) in [(0u32, 0.0f64), (1000, 6.0), (2000, 12.0)] {
            for b in [0u32, 57, 300] {
                for h in [0u16, 13, 30, 47] {
                    let bers: Vec<f64> = (0..g.wls_per_hlayer)
                        .map(|v| m.ber(&p, g.wl_addr(BlockId(b), h, v), pe, months))
                        .collect();
                    let dh = delta_h(&bers);
                    assert!(
                        dh < 1.08,
                        "ΔH = {dh} at block {b} layer {h} ({pe} P/E, {months} mo)"
                    );
                }
            }
        }
    }

    #[test]
    fn delta_v_grows_from_1_6_to_2_3() {
        // Fig. 6: ΔV ≈ 1.6 fresh, ≈ 2.3 at 2K P/E + 1-year retention.
        let (p, m) = setup(3);
        let fresh = avg_delta_v(&p, &m, 0, 0.0);
        let aged = avg_delta_v(&p, &m, 2000, 12.0);
        assert!(
            (1.35..1.95).contains(&fresh),
            "fresh ΔV = {fresh}, expected ≈1.6"
        );
        assert!(
            (2.0..2.7).contains(&aged),
            "aged ΔV = {aged}, expected ≈2.3"
        );
        assert!(aged > fresh * 1.2, "ΔV must grow with aging");
    }

    #[test]
    fn per_block_delta_v_spread_exists() {
        // Fig. 6(d): ΔV of one block can exceed another's by ~18%.
        let (p, m) = setup(3);
        let dvs: Vec<f64> = (0..128u32)
            .map(|b| delta_v(&block_layer_bers(&p, &m, BlockId(b), 2000, 12.0)))
            .collect();
        let max = dvs.iter().cloned().fold(f64::MIN, f64::max);
        let min = dvs.iter().cloned().fold(f64::MAX, f64::min);
        let spread = max / min - 1.0;
        assert!(
            spread > 0.10,
            "per-block ΔV spread {spread:.3}, expected noticeable (paper: 18%)"
        );
    }

    #[test]
    fn ber_monotonic_in_pe_and_retention() {
        let (p, m) = setup(5);
        let wl = p.geometry().wl_addr(BlockId(10), 24, 1);
        let b00 = m.ber(&p, wl, 0, 0.0);
        let b10 = m.ber(&p, wl, 2000, 0.0);
        let b01 = m.ber(&p, wl, 0, 12.0);
        let b11 = m.ber(&p, wl, 2000, 12.0);
        assert!(b10 > b00);
        assert!(b01 > b00);
        assert!(b11 > b10);
        assert!(b11 > b01);
    }

    #[test]
    fn retention_has_early_fast_component() {
        // Early charge loss: the first month costs disproportionately
        // more than a later month (sub-linear exponent).
        let (p, m) = setup(5);
        let wl = p.geometry().wl_addr(BlockId(10), 24, 1);
        let b0 = m.ber(&p, wl, 2000, 0.0);
        let b1 = m.ber(&p, wl, 2000, 1.0);
        let b6 = m.ber(&p, wl, 2000, 6.0);
        let b12 = m.ber(&p, wl, 2000, 12.0);
        let first = b1 - b0;
        let later = (b12 - b6) / 6.0;
        assert!(
            first > later,
            "first month {first} vs later monthly {later}"
        );
    }

    #[test]
    fn ber_ep1_correlates_with_retention_ber() {
        // Fig. 11(a): BER_EP1 predicts the retention BER. Check rank
        // correlation over layers: layer order by BER_EP1 should broadly
        // match order by retention BER.
        let (p, m) = setup(7);
        let g = *p.geometry();
        let block = BlockId(42);
        let mut pairs: Vec<(f64, f64)> = (0..g.hlayers_per_block)
            .map(|h| {
                let wl = g.wl_addr(block, h, 0);
                (m.ber_ep1(&p, wl, 2000), m.ber(&p, wl, 2000, 12.0))
            })
            .collect();
        pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        // count inversions in the second component
        let mut inversions = 0usize;
        let mut total = 0usize;
        for i in 0..pairs.len() {
            for j in (i + 1)..pairs.len() {
                total += 1;
                if pairs[i].1 > pairs[j].1 {
                    inversions += 1;
                }
            }
        }
        let tau_disagreement = inversions as f64 / total as f64;
        assert!(
            tau_disagreement < 0.15,
            "BER_EP1 poorly ordered vs retention BER ({tau_disagreement})"
        );
    }

    #[test]
    fn worst_case_ber_dominates_population() {
        let (p, m) = setup(11);
        let g = *p.geometry();
        let worst = m.worst_case_ber();
        for b in 0..64u32 {
            for h in 0..g.hlayers_per_block {
                let ber = m.ber(&p, g.wl_addr(BlockId(b), h, 0), 2000, 12.0);
                assert!(ber < worst, "population BER {ber} above worst-case {worst}");
            }
        }
    }

    #[test]
    fn worst_case_leaves_margin_under_ecc() {
        // The default window satisfies reliability at the worst layer
        // under worst conditions (Fig. 9(a)) — i.e. worst-case BER must
        // still be correctable.
        let (_, m) = setup(11);
        assert!(m.worst_case_ber() < m.params().ecc_capability_ber);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn delta_metrics_reject_empty() {
        delta_h(&[]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn delta_metrics_reject_nonpositive() {
        delta_v(&[1.0, 0.0]);
    }
}
