//! The cubic organization of 3D NAND flash memory.
//!
//! A 3D NAND block is a small cube (paper Fig. 1(a)): word lines (WLs) are
//! arranged in **horizontal layers** (h-layers) stacked along the z axis,
//! and the WLs at the same y position across all h-layers form a
//! **vertical layer** (v-layer). The paper's chips have 48 h-layers with
//! 4 WLs (v-layers) each; every WL carries three TLC pages.
//!
//! This module provides the typed address space used by every other layer
//! of the reproduction: [`BlockId`], [`WlAddr`] (block + h-layer +
//! v-layer), and [`PageAddr`] (WL + page-in-WL). All addresses are plain
//! `Copy` data; [`Geometry`] holds the dimensions and the flattening /
//! unflattening arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a NAND chip inside a [`FlashArray`](crate::FlashArray).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ChipId(pub u32);

/// Identifier of a flash block within one chip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BlockId(pub u32);

/// Index of a horizontal layer within a block (0 = **topmost** layer; the
/// etching process proceeds top → bottom, so layer 0 has the widest channel
/// holes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct HLayer(pub u16);

/// Index of a vertical layer within a block. WL `v = 0` of each h-layer is
/// the **leading WL** whose monitored parameters PS-aware techniques reuse
/// for the remaining (follower) WLs `v > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VLayer(pub u16);

/// Index of a logical page within a TLC word line (0 = LSB, 1 = CSB,
/// 2 = MSB).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageIndex(pub u8);

/// Address of one word line: a (block, h-layer, v-layer) triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WlAddr {
    /// The block containing this WL.
    pub block: BlockId,
    /// Horizontal layer (z position).
    pub h: HLayer,
    /// Vertical layer (y position).
    pub v: VLayer,
}

impl WlAddr {
    /// Returns `true` if this is the leading WL of its h-layer (`v == 0`).
    ///
    /// The leading WL is programmed with default parameters so that its
    /// monitored ISPP statistics can be reused for the followers
    /// (paper §4.1.3).
    #[inline]
    pub fn is_leader(&self) -> bool {
        self.v.0 == 0
    }
}

impl fmt::Display for WlAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w[b{}:h{}:v{}]", self.block.0, self.h.0, self.v.0)
    }
}

/// Address of one logical page: a WL plus the page slot within the WL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageAddr {
    /// The word line holding this page.
    pub wl: WlAddr,
    /// Page slot within the TLC word line.
    pub page: PageIndex,
}

impl fmt::Display for PageAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:p{}", self.wl, self.page.0)
    }
}

/// Dimensions of one chip and the address arithmetic over them.
///
/// The default [`Geometry::paper`] matches the evaluation platform of
/// §6.1: 428 blocks/chip, 48 h-layers/block, 4 WLs/h-layer, 3 pages/WL
/// (TLC) and 16-KB pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Geometry {
    /// Number of blocks per chip.
    pub blocks_per_chip: u32,
    /// Number of horizontal layers per block.
    pub hlayers_per_block: u16,
    /// Number of WLs (v-layers) per horizontal layer.
    pub wls_per_hlayer: u16,
    /// Number of logical pages per WL (3 for TLC).
    pub pages_per_wl: u8,
    /// Page size in bytes.
    pub page_size: u32,
}

impl Geometry {
    /// The configuration of the paper's evaluation platform (§6.1).
    pub fn paper() -> Self {
        Geometry {
            blocks_per_chip: 428,
            hlayers_per_block: 48,
            wls_per_hlayer: 4,
            pages_per_wl: 3,
            page_size: 16 * 1024,
        }
    }

    /// A small geometry for unit tests and doc examples (8 blocks,
    /// 8 h-layers).
    pub fn small() -> Self {
        Geometry {
            blocks_per_chip: 8,
            hlayers_per_block: 8,
            wls_per_hlayer: 4,
            pages_per_wl: 3,
            page_size: 16 * 1024,
        }
    }

    /// Word lines per block.
    #[inline]
    pub fn wls_per_block(&self) -> u32 {
        u32::from(self.hlayers_per_block) * u32::from(self.wls_per_hlayer)
    }

    /// Logical pages per block.
    #[inline]
    pub fn pages_per_block(&self) -> u32 {
        self.wls_per_block() * u32::from(self.pages_per_wl)
    }

    /// Logical pages per chip.
    #[inline]
    pub fn pages_per_chip(&self) -> u64 {
        u64::from(self.pages_per_block()) * u64::from(self.blocks_per_chip)
    }

    /// Usable bytes per chip.
    #[inline]
    pub fn bytes_per_chip(&self) -> u64 {
        self.pages_per_chip() * u64::from(self.page_size)
    }

    /// Builds a [`WlAddr`], checking nothing; combine with
    /// [`Geometry::contains_wl`] for validation.
    #[inline]
    pub fn wl_addr(&self, block: BlockId, h: u16, v: u16) -> WlAddr {
        WlAddr {
            block,
            h: HLayer(h),
            v: VLayer(v),
        }
    }

    /// Builds a [`PageAddr`].
    #[inline]
    pub fn page_addr(&self, block: BlockId, h: u16, v: u16, page: u8) -> PageAddr {
        PageAddr {
            wl: self.wl_addr(block, h, v),
            page: PageIndex(page),
        }
    }

    /// Whether `block` is a valid block index.
    #[inline]
    pub fn contains_block(&self, block: BlockId) -> bool {
        block.0 < self.blocks_per_chip
    }

    /// Whether `wl` is a valid word-line address.
    #[inline]
    pub fn contains_wl(&self, wl: WlAddr) -> bool {
        self.contains_block(wl.block)
            && wl.h.0 < self.hlayers_per_block
            && wl.v.0 < self.wls_per_hlayer
    }

    /// Whether `page` is a valid page address.
    #[inline]
    pub fn contains_page(&self, page: PageAddr) -> bool {
        self.contains_wl(page.wl) && page.page.0 < self.pages_per_wl
    }

    /// Flattens a WL address to a dense per-chip index in
    /// `0..blocks_per_chip * wls_per_block()`.
    #[inline]
    pub fn wl_flat(&self, wl: WlAddr) -> usize {
        let per_block = self.wls_per_block() as usize;
        wl.block.0 as usize * per_block
            + wl.h.0 as usize * self.wls_per_hlayer as usize
            + wl.v.0 as usize
    }

    /// Flattens a WL address to a dense index within its block.
    #[inline]
    pub fn wl_in_block(&self, wl: WlAddr) -> usize {
        wl.h.0 as usize * self.wls_per_hlayer as usize + wl.v.0 as usize
    }

    /// Flattens a page address to a dense per-chip index in
    /// `0..pages_per_chip()`.
    #[inline]
    pub fn page_flat(&self, page: PageAddr) -> usize {
        self.wl_flat(page.wl) * self.pages_per_wl as usize + page.page.0 as usize
    }

    /// Inverse of [`Geometry::page_flat`].
    pub fn page_unflat(&self, flat: usize) -> PageAddr {
        let pages_per_wl = self.pages_per_wl as usize;
        let page = (flat % pages_per_wl) as u8;
        let wl_flat = flat / pages_per_wl;
        let per_block = self.wls_per_block() as usize;
        let block = BlockId((wl_flat / per_block) as u32);
        let in_block = wl_flat % per_block;
        let h = (in_block / self.wls_per_hlayer as usize) as u16;
        let v = (in_block % self.wls_per_hlayer as usize) as u16;
        self.page_addr(block, h, v, page)
    }

    /// Iterates over all WL addresses of a block in `(h, v)`
    /// lexicographic order.
    pub fn wls_of_block(&self, block: BlockId) -> impl Iterator<Item = WlAddr> + '_ {
        let hs = self.hlayers_per_block;
        let vs = self.wls_per_hlayer;
        (0..hs).flat_map(move |h| {
            (0..vs).map(move |v| WlAddr {
                block,
                h: HLayer(h),
                v: VLayer(v),
            })
        })
    }

    /// Iterates over the pages of one WL in slot order.
    pub fn pages_of_wl(&self, wl: WlAddr) -> impl Iterator<Item = PageAddr> + '_ {
        (0..self.pages_per_wl).map(move |p| PageAddr {
            wl,
            page: PageIndex(p),
        })
    }
}

impl Default for Geometry {
    fn default() -> Self {
        Geometry::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_capacity_matches_evaluation_platform() {
        // §6.1: 8 chips of this geometry give a 32-GB SSD.
        let g = Geometry::paper();
        let ssd_bytes = g.bytes_per_chip() * 8;
        let gb = ssd_bytes as f64 / 1e9;
        assert!((31.0..34.0).contains(&gb), "got {gb} GB");
    }

    #[test]
    fn page_flat_roundtrip() {
        let g = Geometry::small();
        for flat in 0..g.pages_per_chip() as usize {
            let addr = g.page_unflat(flat);
            assert!(g.contains_page(addr));
            assert_eq!(g.page_flat(addr), flat);
        }
    }

    #[test]
    fn wl_flat_is_dense_and_ordered() {
        let g = Geometry::small();
        let mut prev = None;
        for b in 0..g.blocks_per_chip {
            for wl in g.wls_of_block(BlockId(b)) {
                let f = g.wl_flat(wl);
                if let Some(p) = prev {
                    assert_eq!(f, p + 1);
                }
                prev = Some(f);
            }
        }
        assert_eq!(
            prev.unwrap() + 1,
            (g.blocks_per_chip * g.wls_per_block()) as usize
        );
    }

    #[test]
    fn leader_classification() {
        let g = Geometry::paper();
        assert!(g.wl_addr(BlockId(0), 5, 0).is_leader());
        assert!(!g.wl_addr(BlockId(0), 5, 1).is_leader());
        assert!(!g.wl_addr(BlockId(0), 5, 3).is_leader());
    }

    #[test]
    fn contains_rejects_out_of_range() {
        let g = Geometry::small();
        assert!(!g.contains_block(BlockId(g.blocks_per_chip)));
        assert!(!g.contains_wl(g.wl_addr(BlockId(0), g.hlayers_per_block, 0)));
        assert!(!g.contains_wl(g.wl_addr(BlockId(0), 0, g.wls_per_hlayer)));
        assert!(!g.contains_page(g.page_addr(BlockId(0), 0, 0, g.pages_per_wl)));
    }

    #[test]
    fn pages_of_wl_yields_all_slots() {
        let g = Geometry::paper();
        let wl = g.wl_addr(BlockId(3), 10, 2);
        let pages: Vec<_> = g.pages_of_wl(wl).collect();
        assert_eq!(pages.len(), 3);
        assert!(pages.iter().all(|p| p.wl == wl));
    }

    #[test]
    fn wls_of_block_counts() {
        let g = Geometry::paper();
        assert_eq!(g.wls_of_block(BlockId(0)).count(), 48 * 4);
    }
}
