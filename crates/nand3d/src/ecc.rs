//! An LDPC-style ECC decode-latency model (extension).
//!
//! The paper's conclusion (§8) suggests the intra-layer similarity could
//! also "improve the quality and speed of an error-correction coding
//! algorithm … by exploiting various information collected from the
//! leader WL". This module models that idea:
//!
//! Modern controllers decode in escalating modes — a fast hard-decision
//! pass, then progressively stronger soft-decision passes with extra
//! sensing. Choosing the starting mode requires an estimate of the raw
//! BER. A PS-unaware controller starts from the optimistic default and
//! escalates on failure, paying the failed passes; a PS-aware controller
//! can predict the raw BER of a page from its h-layer's leader-WL
//! monitoring and *start in the right mode*.
//!
//! The model is deliberately simple (three modes with fixed costs and
//! BER ceilings) and is an optional add-on: the default simulator timing
//! does not include it, but the `ablate` binary and this module's tests
//! quantify the benefit.

use serde::{Deserialize, Serialize};

/// A decoding mode: a latency cost and the raw BER it can correct.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecodeMode {
    /// Human-readable name.
    pub name: &'static str,
    /// Decode latency, µs (including any extra soft-sensing reads).
    pub latency_us: f64,
    /// The largest raw BER this mode corrects.
    pub max_ber: f64,
}

/// The escalating-mode ECC decoder model.
#[derive(Debug, Clone)]
pub struct EccModel {
    modes: Vec<DecodeMode>,
}

impl EccModel {
    /// A typical three-mode LDPC configuration: hard decision, 1-bit
    /// soft, 2-bit soft. Ceilings bracket the calibrated reliability
    /// model: fresh pages decode hard, end-of-life pages need soft
    /// passes.
    pub fn ldpc() -> Self {
        EccModel {
            modes: vec![
                DecodeMode {
                    name: "hard",
                    latency_us: 6.0,
                    max_ber: 1.2e-3,
                },
                DecodeMode {
                    name: "soft-1",
                    latency_us: 28.0,
                    max_ber: 5.0e-3,
                },
                DecodeMode {
                    name: "soft-2",
                    latency_us: 75.0,
                    max_ber: 1.2e-2,
                },
            ],
        }
    }

    /// The configured modes, weakest first.
    pub fn modes(&self) -> &[DecodeMode] {
        &self.modes
    }

    /// The overall correction capability (strongest mode's ceiling).
    pub fn capability_ber(&self) -> f64 {
        self.modes.last().expect("at least one mode").max_ber
    }

    /// The index of the weakest mode that corrects `raw_ber`, or `None`
    /// if the page is uncorrectable.
    pub fn required_mode(&self, raw_ber: f64) -> Option<usize> {
        self.modes.iter().position(|m| raw_ber <= m.max_ber)
    }

    /// Decode latency when escalating from the weakest mode (PS-unaware:
    /// no prior BER knowledge). Sums the cost of every failed pass plus
    /// the succeeding one.
    ///
    /// Returns `None` for uncorrectable pages.
    pub fn decode_escalating_us(&self, raw_ber: f64) -> Option<f64> {
        let need = self.required_mode(raw_ber)?;
        Some(self.modes[..=need].iter().map(|m| m.latency_us).sum())
    }

    /// Decode latency when starting from the mode predicted for
    /// `predicted_ber` (PS-aware: the leader WL of the h-layer told us
    /// what to expect). If the prediction undershoots, the remaining
    /// escalation is paid; overshooting pays the stronger mode's cost
    /// directly.
    ///
    /// Returns `None` for uncorrectable pages.
    pub fn decode_predicted_us(&self, raw_ber: f64, predicted_ber: f64) -> Option<f64> {
        let need = self.required_mode(raw_ber)?;
        let start = self
            .required_mode(predicted_ber)
            .unwrap_or(self.modes.len() - 1);
        if start >= need {
            // The predicted mode succeeds immediately (possibly stronger
            // than strictly necessary — its full cost is still paid).
            Some(self.modes[start].latency_us)
        } else {
            Some(self.modes[start..=need].iter().map(|m| m.latency_us).sum())
        }
    }
}

impl Default for EccModel {
    fn default() -> Self {
        EccModel::ldpc()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_are_escalating() {
        let e = EccModel::ldpc();
        for w in e.modes().windows(2) {
            assert!(w[0].latency_us < w[1].latency_us);
            assert!(w[0].max_ber < w[1].max_ber);
        }
    }

    #[test]
    fn clean_pages_decode_hard_either_way() {
        let e = EccModel::ldpc();
        let ber = 5e-4;
        assert_eq!(e.decode_escalating_us(ber), Some(6.0));
        assert_eq!(e.decode_predicted_us(ber, ber), Some(6.0));
    }

    #[test]
    fn accurate_prediction_skips_failed_passes() {
        let e = EccModel::ldpc();
        let ber = 8e-3; // needs soft-2
        let unaware = e.decode_escalating_us(ber).unwrap();
        let aware = e.decode_predicted_us(ber, 9e-3).unwrap();
        assert_eq!(unaware, 6.0 + 28.0 + 75.0);
        assert_eq!(aware, 75.0);
        assert!(aware < unaware * 0.75);
    }

    #[test]
    fn underprediction_still_escalates_correctly() {
        let e = EccModel::ldpc();
        let ber = 8e-3;
        // Predicted too optimistic: start at soft-1, pay soft-1 + soft-2.
        let t = e.decode_predicted_us(ber, 3e-3).unwrap();
        assert_eq!(t, 28.0 + 75.0);
    }

    #[test]
    fn overprediction_never_fails() {
        let e = EccModel::ldpc();
        // Predicted worse than reality: pays the strong mode directly
        // (slower than needed, but correct).
        let t = e.decode_predicted_us(5e-4, 8e-3).unwrap();
        assert_eq!(t, 75.0);
    }

    #[test]
    fn uncorrectable_pages_return_none() {
        let e = EccModel::ldpc();
        assert_eq!(e.decode_escalating_us(5e-2), None);
        assert_eq!(e.decode_predicted_us(5e-2, 1e-3), None);
    }

    #[test]
    fn capability_matches_reliability_model_budget() {
        // The strongest mode's ceiling equals the calibrated ECC
        // capability used by the retry model.
        let e = EccModel::ldpc();
        let cfg = crate::config::ReliabilityParams::default();
        assert_eq!(e.capability_ber(), cfg.ecc_capability_ber);
    }
}
