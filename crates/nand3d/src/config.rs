//! Device configuration and model calibration constants.
//!
//! All behavioural constants of the reproduction live here, each annotated
//! with the paper anchor it was calibrated against. The rest of the crate
//! never hard-codes a number; tests in this crate and in `crates/bench`
//! check that the calibrated model reproduces the paper's scalar anchors.

use crate::geometry::Geometry;
use serde::{Deserialize, Serialize};

/// Operation timing parameters (µs).
///
/// `t_pgm`/`t_vfy` are the per-micro-operation costs of Eq. (1); the
/// derived default WL program latency lands at the ≈700 µs the paper
/// quotes for average `tPROG` (§5.1), and the read path at ≈80 µs
/// `tREAD`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NandTiming {
    /// Latency of one ISPP program pulse (PGM), µs.
    pub t_pgm_us: f64,
    /// Latency of one verify step (VFY), µs.
    pub t_vfy_us: f64,
    /// Base page read latency (sense + transfer), µs.
    pub t_read_us: f64,
    /// Additional latency per read retry (re-sense with shifted
    /// references + transfer), µs.
    pub t_retry_us: f64,
    /// Block erase latency, µs.
    pub t_erase_us: f64,
    /// Latency of a Set/Get-Features parameter access (§4.1.4: "<1 µs").
    pub t_set_features_us: f64,
}

impl Default for NandTiming {
    fn default() -> Self {
        NandTiming {
            // Calibrated so the default TLC WL program (11 loops, 50
            // verifies — see `IsppModel`) costs ≈703 µs, matching the
            // ≈700 µs average tPROG of §5.1.
            t_pgm_us: 48.0,
            t_vfy_us: 3.5,
            // §5.1 quotes an average tREAD of ≈80 µs.
            t_read_us: 80.0,
            t_retry_us: 45.0,
            t_erase_us: 3500.0,
            t_set_features_us: 0.8,
        }
    }
}

/// The ISPP program-window model (paper §2.2 and Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IsppModel {
    /// Program voltage increment per loop, mV (`ΔV_ISPP`). 160 mV makes
    /// the 320-mV total adjustment of Fig. 11(b) remove exactly two ISPP
    /// loops.
    pub delta_v_ispp_mv: f64,
    /// Cumulative loop index at which the *slowest* cells of each program
    /// state P1..P7 finish under default `V_Start`/`V_Final`
    /// (`L_max` in cumulative loop numbers). Anchored to Fig. 8(b):
    /// P7 completes around loop 9–11.
    pub base_lmax: [u8; 7],
    /// Completion spread per state: `L_min = L_max - spread` (cumulative).
    /// Anchored to Fig. 8(b) (P7: `L_min`=7, `L_max`=9 → spread 2) and to
    /// the 16.2% average tPROG reduction of the VFY-skip technique
    /// (§4.1.1).
    pub base_spread: [u8; 7],
    /// Default total number of ISPP loops:
    /// `MaxLoop = (V_Final − V_Start) / ΔV_ISPP` (Eq. (1)). The default
    /// window is provisioned for the worst h-layer under worst-case aging,
    /// so `MaxLoop == base_lmax[6]`: the ramp always covers the full
    /// window, and shrinking the window is what removes loops (§4.1.2).
    pub max_loop: u8,
    /// Maximum total `V_Start`+`V_Final` adjustment the device accepts, mV.
    pub max_adjust_mv: f64,
}

impl Default for IsppModel {
    fn default() -> Self {
        IsppModel {
            delta_v_ispp_mv: 160.0,
            base_lmax: [3, 4, 6, 7, 9, 10, 11],
            base_spread: [1, 1, 1, 1, 2, 2, 2],
            max_loop: 11,
            max_adjust_mv: 320.0,
        }
    }
}

/// The reliability model: retention BER as a function of the WL's h-layer,
/// P/E cycles and retention time (paper §3, Figs. 5/6).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityParams {
    /// Base raw BER of the best h-layer of a fresh block (fraction of
    /// bits).
    pub base_ber: f64,
    /// Strength of the top-edge channel-hole widening (h-layer α region,
    /// Fig. 6(a)).
    pub top_edge_amp: f64,
    /// Decay length (in layers) of the top-edge effect.
    pub top_edge_decay: f64,
    /// Strength of the bottom-edge effect (h-layer ω region).
    pub bottom_edge_amp: f64,
    /// Decay length of the bottom-edge effect.
    pub bottom_edge_decay: f64,
    /// Amplitude of the mid-stack rugged-hole bump (h-layer κ region,
    /// caused by etchant fluid dynamics).
    pub mid_bump_amp: f64,
    /// Center of the mid-stack bump as a fraction of stack depth.
    pub mid_bump_center: f64,
    /// Width of the mid-stack bump as a fraction of stack depth.
    pub mid_bump_width: f64,
    /// P/E-cycling wear coefficient (BER multiplier at end of life).
    pub pe_wear: f64,
    /// Retention-loss coefficient at end of life (BER multiplier after
    /// 12 months at 2K P/E).
    pub retention_amp: f64,
    /// Sub-linear exponent of retention time (early charge loss makes
    /// retention BER grow fast initially, §1).
    pub retention_exp: f64,
    /// Cross term: how much *faster* unreliable layers age than reliable
    /// ones (drives ΔV growth from 1.6 fresh to 2.3 at 2K+1yr, Fig. 6).
    pub aging_cross: f64,
    /// 1-σ of the per-(block, layer) lognormal factor; drives the ±18%
    /// per-block ΔV spread of Fig. 6(d).
    pub block_sigma: f64,
    /// 1-σ of the per-WL random telegraph noise; footnote 2 bounds the
    /// intra-layer difference at <3%, so this is ≈1%.
    pub rtn_sigma: f64,
    /// ECC correction capability as a raw BER threshold (errors above
    /// this fraction per codeword are uncorrectable).
    pub ecc_capability_ber: f64,
}

impl Default for ReliabilityParams {
    fn default() -> Self {
        ReliabilityParams {
            base_ber: 2.0e-4,
            top_edge_amp: 0.40,
            top_edge_decay: 2.2,
            bottom_edge_amp: 0.50,
            bottom_edge_decay: 3.0,
            mid_bump_amp: 0.25,
            mid_bump_center: 0.62,
            mid_bump_width: 0.10,
            pe_wear: 1.4,
            retention_amp: 2.6,
            retention_exp: 0.45,
            aging_cross: 0.90,
            block_sigma: 0.055,
            rtn_sigma: 0.010,
            ecc_capability_ber: 1.2e-2,
        }
    }
}

/// The read-retry model (paper §2.3, §4.2 and Fig. 14).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryModel {
    /// Probability that a read at a given aging state fails at its
    /// starting references and enters the retry loop, for
    /// (fresh, 2K P/E + 1 month, 2K P/E + 1 year). §6.2: 0%, 30%, 90%.
    pub retry_need: [f64; 3],
    /// `V_th` shift per retention decade that one offset step compensates;
    /// controls how many retry steps the PS-unaware search needs.
    pub shift_per_step: f64,
    /// Probability per read that the environment (temperature excursion,
    /// extra retention) moved the optimum since it was last cached,
    /// causing a PS-aware misprediction (§4.2: "rarely mispredicted").
    pub misprediction_prob: f64,
    /// Probability per read that ambient temperature fluctuation shifts
    /// the effective optimum by ±1 step while data sits under retention.
    /// This is the residual retry cost even a PS-aware read pays, which
    /// keeps the average `NumRetry` reduction at the paper's 66% rather
    /// than 100% (Fig. 14).
    pub thermal_jitter_prob: f64,
}

impl Default for RetryModel {
    fn default() -> Self {
        RetryModel {
            retry_need: [0.0, 0.30, 0.90],
            shift_per_step: 1.0,
            misprediction_prob: 0.02,
            thermal_jitter_prob: 0.5,
        }
    }
}

/// All calibrated model constants with their paper anchors.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CalibratedModel {
    /// Operation timings.
    pub timing: NandTiming,
    /// ISPP window model.
    pub ispp: IsppModel,
    /// Reliability (BER) model.
    pub reliability: ReliabilityParams,
    /// Read-retry model.
    pub retry: RetryModel,
}

/// Full configuration of one NAND chip: geometry plus calibrated model.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct NandConfig {
    /// Chip dimensions.
    pub geometry: Geometry,
    /// Behavioural model constants.
    pub model: CalibratedModel,
}

impl NandConfig {
    /// The paper's evaluation-platform chip (§6.1).
    pub fn paper() -> Self {
        NandConfig {
            geometry: Geometry::paper(),
            model: CalibratedModel::default(),
        }
    }

    /// A small chip for tests and examples.
    pub fn small() -> Self {
        NandConfig {
            geometry: Geometry::small(),
            model: CalibratedModel::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_tprog_is_near_700us() {
        // Default program: `max_loop`... the *used* loops are
        // base_lmax[6] = 11 pulses, and the default verify schedule
        // performs sum(base_lmax) = 50 verifies (every state is verified
        // from loop 1 until its completion, §2.2).
        let m = CalibratedModel::default();
        let pulses = f64::from(m.ispp.base_lmax[6]);
        let verifies: f64 = m.ispp.base_lmax.iter().map(|&l| f64::from(l)).sum();
        let tprog = pulses * m.timing.t_pgm_us + verifies * m.timing.t_vfy_us;
        assert!(
            (650.0..750.0).contains(&tprog),
            "default tPROG = {tprog} µs, expected ≈700 µs (§5.1)"
        );
    }

    #[test]
    fn lmax_is_monotonic_and_within_max_loop() {
        let m = IsppModel::default();
        for w in m.base_lmax.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert!(m.base_lmax[6] <= m.max_loop);
        for (l, s) in m.base_lmax.iter().zip(m.base_spread.iter()) {
            assert!(s < l, "spread must leave L_min >= 1");
        }
    }

    #[test]
    fn adjustment_is_loop_quantized() {
        let m = IsppModel::default();
        // Fig. 11(b): a 320-mV total margin must remove exactly 2 loops.
        let loops = (320.0 / m.delta_v_ispp_mv).floor() as u32;
        assert_eq!(loops, 2);
    }

    #[test]
    fn retry_need_matches_paper_fractions() {
        let r = RetryModel::default();
        assert_eq!(r.retry_need, [0.0, 0.30, 0.90]);
    }

    #[test]
    fn config_implements_data_structure_traits() {
        fn assert_data<T: Clone + std::fmt::Debug + PartialEq + serde::Serialize>() {}
        assert_data::<NandConfig>();
        assert_data::<CalibratedModel>();
        assert_eq!(NandConfig::paper(), NandConfig::paper());
        assert_ne!(NandConfig::paper(), NandConfig::small());
    }
}
