//! The NAND chip command interface and multi-chip array.
//!
//! [`NandChip`] exposes the three NAND commands — erase, program (one WL
//! at a time, carrying its three TLC pages), and read (one page at a
//! time) — with full state tracking (a WL must be erased before it is
//! programmed; only programmed pages can be read). Each command returns a
//! report carrying its latency and, for programs, the run-time monitored
//! values (`[L_min, L_max]` per state, `BER_EP1`, post-program BER) that
//! PS-aware FTLs consume through the Set/Get-Features-style interface
//! (paper §4.1.4, §5.1).
//!
//! [`FlashArray`] groups several chips into the package the SSD simulator
//! drives.

use crate::config::NandConfig;
use crate::environment::{AgingState, Environment};
use crate::error::NandError;
use crate::faults::{FaultCounters, FaultInjector, FaultPlan, ProgramFault, ReadFaultKind};
use crate::geometry::{BlockId, Geometry, PageAddr, WlAddr};
use crate::ispp::{IsppEngine, LoopInterval, ProgramParams, NUM_PROGRAM_STATES};
use crate::process::ProcessModel;
use crate::read::{ReadParams, RetryEngine};
use crate::reliability::ReliabilityModel;
use serde::{Deserialize, Serialize};

/// Program state of one WL slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PageState {
    /// Erased and programmable.
    Free,
    /// Programmed with live data.
    Written,
    /// Torn by a sudden power-off: the ISPP sequence (or the enclosing
    /// block erase) was interrupted, leaving the cells partially
    /// programmed with elevated BER. The WL is neither readable nor
    /// programmable until its block is erased again.
    Partial,
}

/// Program-status tag carried in a WL's OOB spare area.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OobStatus {
    /// The program command ran to completion; the LPN tags are valid.
    Complete,
    /// The program was interrupted by a power cut; the data is suspect
    /// and recovery must quarantine the WL (§4.1.4 safety-check path).
    Torn,
}

/// Out-of-band (spare-area) metadata one WL program deposits alongside
/// its three pages: the logical page numbers, a monotonically increasing
/// FTL sequence number, and a program-status tag. Boot-time recovery
/// rebuilds the L2P map from these records alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WlOob {
    /// Logical tags of the three pages (`u64::MAX` = padding).
    pub lpns: [u64; 3],
    /// FTL-assigned sequence number of the program operation.
    pub seq: u64,
    /// Program-status tag.
    pub status: OobStatus,
}

impl WlOob {
    /// Size of the on-flash encoding in bytes.
    pub const ENCODED_LEN: usize = 33;

    /// Serializes the record into its on-flash byte layout: three
    /// little-endian u64 LPNs, a little-endian u64 sequence number, and
    /// one status byte (0 = complete, 1 = torn).
    pub fn encode(&self) -> [u8; Self::ENCODED_LEN] {
        let mut out = [0u8; Self::ENCODED_LEN];
        for (i, lpn) in self.lpns.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&lpn.to_le_bytes());
        }
        out[24..32].copy_from_slice(&self.seq.to_le_bytes());
        out[32] = match self.status {
            OobStatus::Complete => 0,
            OobStatus::Torn => 1,
        };
        out
    }

    /// Deserializes a record encoded by [`WlOob::encode`]. Returns `None`
    /// for a wrong-length slice or an unknown status byte.
    pub fn decode(bytes: &[u8]) -> Option<Self> {
        if bytes.len() != Self::ENCODED_LEN {
            return None;
        }
        let word = |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        let status = match bytes[32] {
            0 => OobStatus::Complete,
            1 => OobStatus::Torn,
            _ => return None,
        };
        Some(WlOob {
            lpns: [word(0), word(8), word(16)],
            seq: word(24),
            status,
        })
    }
}

/// The payload tag a WL program carries. The simulator does not move real
/// bytes; a [`WlData`] records what the three pages of the WL contain so
/// FTL bookkeeping can be validated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WlData {
    /// Logical tags of the three pages (e.g. logical page numbers), or
    /// `u64::MAX` for padding.
    pub pages: [u64; 3],
}

impl WlData {
    /// Tag used for padding/dummy pages.
    pub const PAD: u64 = u64::MAX;

    /// A WL filled with three consecutive tags starting at `first`.
    pub fn host(first: u64) -> Self {
        WlData {
            pages: [first, first + 1, first + 2],
        }
    }

    /// A WL with explicit page tags.
    pub fn from_pages(pages: [u64; 3]) -> Self {
        WlData { pages }
    }
}

/// Report of one WL program command.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProgramReport {
    /// Total command latency in µs.
    pub latency_us: f64,
    /// Monitored per-state loop intervals (Get-Features output the OPM
    /// records from leader-WL programs).
    pub loop_intervals: [LoopInterval; NUM_PROGRAM_STATES],
    /// Monitored `BER_EP1`.
    pub ber_ep1: f64,
    /// Post-program raw BER of the WL (§4.1.4 safety check input).
    pub post_ber: f64,
    /// Number of program pulses executed.
    pub pulses: u32,
    /// Number of verify steps executed.
    pub verifies: u32,
    /// Window shrink beyond the safe `MaxLoop` margin, in loops
    /// (under-margin exposure; 0 for safe parameters).
    pub margin_excess_loops: u32,
    /// Whether the program ran under a sudden ambient disturbance.
    pub disturbed: bool,
    /// Effective P/E cycles of the block at program time (Get-Features
    /// style metadata; FTLs track this anyway and the S_M conversion
    /// table of §4.1.2 is indexed by it).
    pub pe_cycles: u32,
    /// Whether the program was suspended/aborted (injected fault): the
    /// WL is still erased and carries no data; the FTL must re-issue the
    /// payload on another WL.
    pub aborted: bool,
}

/// Report of one page read command.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReadReport {
    /// Total command latency in µs.
    pub latency_us: f64,
    /// Number of read retries performed.
    pub retries: u32,
    /// Offset index that decoded the page (ORT update value).
    pub final_offset: u8,
    /// Logical tag stored in the page.
    pub data: u64,
    /// The injected read fault this command recovered from, if any.
    /// Recovery costs retries/latency but never corrupts `data`.
    pub fault: Option<ReadFaultKind>,
    /// Whether a hopeless retry chain was cut short (seeded walk
    /// abandoned for the default schedule, or a shortened full scan —
    /// see [`RetryOutcome::early_terminated`](crate::read::RetryOutcome)).
    pub early_terminated: bool,
}

/// One 3D TLC NAND chip.
///
/// # Example
///
/// ```
/// use nand3d::{NandChip, NandConfig, ProgramParams, ReadParams, WlData};
///
/// # fn main() -> Result<(), nand3d::NandError> {
/// let mut chip = NandChip::new(NandConfig::small(), 1);
/// let block = nand3d::BlockId(2);
/// chip.erase(block)?;
/// let wl = chip.geometry().wl_addr(block, 0, 0);
/// chip.program_wl(wl, WlData::host(100), &ProgramParams::default())?;
/// let page = chip.geometry().page_addr(block, 0, 0, 1);
/// let read = chip.read_page(page, ReadParams::default())?;
/// assert_eq!(read.data, 101);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct NandChip {
    config: NandConfig,
    process: ProcessModel,
    ispp: IsppEngine,
    retry: RetryEngine,
    reliability: ReliabilityModel,
    env: Environment,
    /// Installed fault injector, if a plan is active.
    faults: Option<FaultInjector>,
    /// Per-WL program state.
    wl_state: Vec<PageState>,
    /// Per-WL stored data tags.
    wl_data: Vec<WlData>,
    /// Per-WL post-program BER (set by the last program).
    wl_post_ber: Vec<f64>,
    /// Per-WL OOB spare-area metadata (set by [`NandChip::write_oob`]).
    wl_oob: Vec<Option<WlOob>>,
    /// Highest OOB sequence number deposited into each block since its
    /// last erase (conceptually the block's summary/metadata page).
    block_prog_seq: Vec<u64>,
    /// FTL sequence number stamped on each block's last tagged erase.
    block_erase_seq: Vec<u64>,
    /// Blocks whose erase pulse was cut short by a power loss: unusable
    /// until re-erased.
    erase_interrupted: Vec<bool>,
    erases: u64,
    programs: u64,
    reads: u64,
}

impl NandChip {
    /// Creates a chip with deterministic process variation derived from
    /// `seed`.
    pub fn new(config: NandConfig, seed: u64) -> Self {
        let process = ProcessModel::new(config.geometry, config.model.reliability, seed);
        let wls = (config.geometry.blocks_per_chip * config.geometry.wls_per_block()) as usize;
        NandChip {
            process,
            ispp: IsppEngine::new(config.model),
            retry: RetryEngine::new(config.model),
            reliability: ReliabilityModel::new(config.model.reliability),
            env: Environment::new(config.geometry.blocks_per_chip as usize, seed ^ 0xABCD),
            faults: None,
            wl_state: vec![PageState::Free; wls],
            wl_data: vec![
                WlData {
                    pages: [WlData::PAD; 3]
                };
                wls
            ],
            wl_post_ber: vec![0.0; wls],
            wl_oob: vec![None; wls],
            block_prog_seq: vec![0; config.geometry.blocks_per_chip as usize],
            block_erase_seq: vec![0; config.geometry.blocks_per_chip as usize],
            erase_interrupted: vec![false; config.geometry.blocks_per_chip as usize],
            erases: 0,
            programs: 0,
            reads: 0,
            config,
        }
    }

    /// The chip geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.config.geometry
    }

    /// The chip configuration.
    pub fn config(&self) -> &NandConfig {
        &self.config
    }

    /// The process-variation model of this chip.
    pub fn process(&self) -> &ProcessModel {
        &self.process
    }

    /// The ISPP engine (exposed for characterization experiments).
    pub fn ispp(&self) -> &IsppEngine {
        &self.ispp
    }

    /// The read-retry engine (exposed for characterization experiments).
    pub fn retry_engine(&self) -> &RetryEngine {
        &self.retry
    }

    /// Sets the retry-chain optimization switches (Park-et-al-style
    /// speculation, prediction and early termination).
    pub fn set_retry_opt(&mut self, opt: crate::read::RetryOptConfig) {
        self.retry.set_opt(opt);
    }

    /// The reliability model (exposed for characterization experiments).
    pub fn reliability(&self) -> &ReliabilityModel {
        &self.reliability
    }

    /// Mutable access to the operating environment (aging overrides,
    /// disturbance probability).
    pub fn env_mut(&mut self) -> &mut Environment {
        &mut self.env
    }

    /// The operating environment.
    pub fn env(&self) -> &Environment {
        &self.env
    }

    /// Pins the chip to one of the paper's aging states (§6.2).
    pub fn set_aging(&mut self, state: AgingState) {
        self.env.set_aging(state);
    }

    /// Installs a fault-injection plan, instantiated for `chip_index`
    /// (so each chip of an array draws a distinct fault stream). An
    /// inactive plan removes any installed injector.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan, chip_index: u64) {
        self.faults = plan
            .is_active()
            .then(|| FaultInjector::new(plan.clone(), chip_index));
    }

    /// Counts of faults injected into this chip so far (zero counters if
    /// no plan is installed).
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults
            .as_ref()
            .map(FaultInjector::counters)
            .unwrap_or_default()
    }

    /// Lifetime command counts `(erases, programs, reads)`.
    pub fn op_counts(&self) -> (u64, u64, u64) {
        (self.erases, self.programs, self.reads)
    }

    fn check_wl(&self, wl: WlAddr) -> Result<usize, NandError> {
        if !self.config.geometry.contains_wl(wl) {
            return Err(NandError::WlOutOfRange(wl));
        }
        Ok(self.config.geometry.wl_flat(wl))
    }

    /// Erases `block`, freeing all of its WLs and advancing its P/E
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::BlockOutOfRange`] for an invalid block.
    pub fn erase(&mut self, block: BlockId) -> Result<f64, NandError> {
        if !self.config.geometry.contains_block(block) {
            return Err(NandError::BlockOutOfRange(block));
        }
        let g = &self.config.geometry;
        let first = g.wl_flat(g.wl_addr(block, 0, 0));
        let count = g.wls_per_block() as usize;
        for i in first..first + count {
            self.wl_state[i] = PageState::Free;
            self.wl_data[i] = WlData {
                pages: [WlData::PAD; 3],
            };
            self.wl_post_ber[i] = 0.0;
            self.wl_oob[i] = None;
        }
        let b = block.0 as usize;
        self.block_prog_seq[b] = 0;
        self.erase_interrupted[b] = false;
        self.env.record_erase(b);
        self.erases += 1;
        Ok(self.config.model.timing.t_erase_us)
    }

    /// Erases `block` and stamps the FTL sequence number `seq` on its
    /// conceptual metadata page, so boot-time recovery can tell whether
    /// the block was erased after the last checkpoint (and must therefore
    /// drop the checkpoint's L2P entries pointing into it).
    ///
    /// # Errors
    ///
    /// Returns [`NandError::BlockOutOfRange`] for an invalid block.
    pub fn erase_tagged(&mut self, block: BlockId, seq: u64) -> Result<f64, NandError> {
        let t = self.erase(block)?;
        self.block_erase_seq[block.0 as usize] = seq;
        Ok(t)
    }

    /// Programs one WL (all three TLC pages at once) with `params`.
    ///
    /// Leader WLs are normally programmed with `ProgramParams::default()`
    /// so their monitored values are valid references for the followers
    /// (§5.1, footnote 4).
    ///
    /// # Errors
    ///
    /// * [`NandError::WlOutOfRange`] for an invalid address.
    /// * [`NandError::ProgramOnDirtyWl`] if the WL was already programmed
    ///   since the last erase of its block.
    /// * [`NandError::IllegalParameters`] if `params` exceeds device
    ///   limits.
    pub fn program_wl(
        &mut self,
        wl: WlAddr,
        data: WlData,
        params: &ProgramParams,
    ) -> Result<ProgramReport, NandError> {
        let idx = self.check_wl(wl)?;
        if self.wl_state[idx] != PageState::Free {
            return Err(NandError::ProgramOnDirtyWl(wl));
        }

        let fault = self.faults.as_mut().and_then(|f| f.on_program(wl));
        let disturbed = self.env.sample_disturbance();
        let mut shift: i8 = if disturbed { 2 } else { 0 };
        if let Some(ProgramFault::LoopOutlier(extra)) = fault {
            shift = shift.saturating_add(extra);
        }
        let chars = self.ispp.characterize(&self.process, wl, &self.env, shift);
        let mut outcome = self.ispp.program(&chars, params)?;
        if let Some(ProgramFault::BerSpike(factor)) = fault {
            outcome.apply_ber_spike(factor);
        }
        self.programs += 1;

        if matches!(fault, Some(ProgramFault::Abort)) {
            // Suspend/abort mid-ISPP: the WL stays erased, the command
            // still burned part of its pulse budget before aborting.
            return Ok(ProgramReport {
                latency_us: outcome.latency_us * 0.5,
                loop_intervals: outcome.observed_intervals,
                ber_ep1: outcome.ber_ep1,
                post_ber: outcome.post_ber,
                pulses: outcome.pulses / 2,
                verifies: outcome.verifies / 2,
                margin_excess_loops: outcome.margin_excess_loops,
                disturbed,
                pe_cycles: self.env.pe(wl.block.0 as usize),
                aborted: true,
            });
        }

        self.wl_state[idx] = PageState::Written;
        self.wl_data[idx] = data;
        self.wl_post_ber[idx] = outcome.post_ber;

        Ok(ProgramReport {
            latency_us: outcome.latency_us,
            loop_intervals: outcome.observed_intervals,
            ber_ep1: outcome.ber_ep1,
            post_ber: outcome.post_ber,
            pulses: outcome.pulses,
            verifies: outcome.verifies,
            margin_excess_loops: outcome.margin_excess_loops,
            disturbed,
            pe_cycles: self.env.pe(wl.block.0 as usize),
            aborted: false,
        })
    }

    /// Reads one page.
    ///
    /// # Errors
    ///
    /// * [`NandError::PageOutOfRange`] for an invalid address.
    /// * [`NandError::ReadUnwritten`] if the page's WL has not been
    ///   programmed since the last erase.
    pub fn read_page(
        &mut self,
        page: PageAddr,
        params: ReadParams,
    ) -> Result<ReadReport, NandError> {
        if !self.config.geometry.contains_page(page) {
            return Err(NandError::PageOutOfRange(page));
        }
        let idx = self.config.geometry.wl_flat(page.wl);
        if self.wl_state[idx] != PageState::Written {
            return Err(NandError::ReadUnwritten(page));
        }

        let block = page.wl.block.0 as usize;
        let mut fault = self.faults.as_mut().and_then(|f| f.on_read(page.wl));
        if matches!(fault, Some(ReadFaultKind::Uncorrectable)) && self.env.block_is_refreshed(block)
        {
            // Retention-driven charge loss is what pushes a page past the
            // ECC limit; data rewritten since the retention clock was
            // refreshed is still comfortably correctable.
            fault = None;
        }
        let needs_retry = self
            .retry
            .needs_retry_at_default(&self.process, page.wl, &mut self.env);
        let disturbed = self.env.sample_disturbance();
        let jitter = self.retry.sample_thermal_jitter(&mut self.env, block);
        let outcome = self.retry.read_faulted(
            &self.process,
            page.wl,
            &self.env,
            params,
            needs_retry,
            disturbed,
            jitter,
            fault,
        );
        self.reads += 1;

        Ok(ReadReport {
            latency_us: outcome.latency_us,
            retries: outcome.retries,
            final_offset: outcome.final_offset,
            data: self.wl_data[idx].pages[page.page.0 as usize],
            fault,
            early_terminated: outcome.early_terminated,
        })
    }

    /// Get-Features: the post-program BER of a written WL, used by the
    /// §4.1.4 safety check. Returns `None` for unwritten WLs.
    pub fn wl_post_ber(&self, wl: WlAddr) -> Option<f64> {
        let idx = self.config.geometry.wl_flat(wl);
        (self.wl_state[idx] == PageState::Written).then(|| self.wl_post_ber[idx])
    }

    /// Deposits OOB spare-area metadata on a written WL (the FTL calls
    /// this immediately after every successful program). Also advances
    /// the block's running max-program-sequence tracker.
    ///
    /// # Errors
    ///
    /// * [`NandError::WlOutOfRange`] for an invalid address.
    /// * [`NandError::ReadUnwritten`] if the WL holds no data (OOB rides
    ///   the data pages; there is nothing to attach it to).
    pub fn write_oob(&mut self, wl: WlAddr, oob: WlOob) -> Result<(), NandError> {
        let idx = self.check_wl(wl)?;
        if self.wl_state[idx] != PageState::Written {
            return Err(NandError::ReadUnwritten(PageAddr {
                wl,
                page: crate::geometry::PageIndex(0),
            }));
        }
        self.wl_oob[idx] = Some(oob);
        let b = wl.block.0 as usize;
        self.block_prog_seq[b] = self.block_prog_seq[b].max(oob.seq);
        Ok(())
    }

    /// Reads back a WL's OOB spare-area metadata, if any was deposited
    /// since the last erase. Torn WLs keep their (status-tagged) OOB.
    pub fn wl_oob(&self, wl: WlAddr) -> Option<WlOob> {
        self.wl_oob[self.config.geometry.wl_flat(wl)]
    }

    /// Highest OOB sequence number programmed into `block` since its
    /// last erase (0 if none) — the single metadata-page probe recovery
    /// uses to decide whether a block needs a full OOB scan.
    pub fn block_prog_seq(&self, block: BlockId) -> u64 {
        self.block_prog_seq[block.0 as usize]
    }

    /// FTL sequence number stamped on `block`'s last tagged erase (0 if
    /// never erase-tagged).
    pub fn block_erase_seq(&self, block: BlockId) -> u64 {
        self.block_erase_seq[block.0 as usize]
    }

    /// Whether `block`'s last erase pulse was interrupted by a power cut
    /// (the block must be re-erased before use).
    pub fn block_erase_interrupted(&self, block: BlockId) -> bool {
        self.erase_interrupted[block.0 as usize]
    }

    /// Models a sudden power-off cutting an in-flight ISPP sequence on
    /// `wl`: a written WL degrades to [`PageState::Partial`] with a
    /// sharply elevated BER, and its OOB record (if any) is re-tagged
    /// [`OobStatus::Torn`]. Returns `true` if the WL was written and is
    /// now torn; free WLs are untouched (nothing was in flight).
    pub fn interrupt_program(&mut self, wl: WlAddr) -> bool {
        let Ok(idx) = self.check_wl(wl) else {
            return false;
        };
        if self.wl_state[idx] != PageState::Written {
            return false;
        }
        self.wl_state[idx] = PageState::Partial;
        // An interrupted ISPP staircase leaves cells mid-distribution:
        // well past the 3x post-BER bar the §4.1.4 safety check applies.
        self.wl_post_ber[idx] = (self.wl_post_ber[idx] * 8.0).max(1e-3);
        if let Some(oob) = &mut self.wl_oob[idx] {
            oob.status = OobStatus::Torn;
        }
        true
    }

    /// Models a sudden power-off cutting an in-flight erase pulse on
    /// `block`: every WL is left in the partial state and the block is
    /// flagged unusable until re-erased. Only applies when the block is
    /// fully free (i.e. the erase had begun); returns whether it did.
    pub fn interrupt_erase(&mut self, block: BlockId) -> bool {
        if !self.config.geometry.contains_block(block) {
            return false;
        }
        let g = &self.config.geometry;
        let first = g.wl_flat(g.wl_addr(block, 0, 0));
        let count = g.wls_per_block() as usize;
        if self.wl_state[first..first + count]
            .iter()
            .any(|s| *s != PageState::Free)
        {
            return false;
        }
        for i in first..first + count {
            self.wl_state[i] = PageState::Partial;
        }
        self.erase_interrupted[block.0 as usize] = true;
        true
    }

    /// Program state of a WL.
    pub fn wl_state(&self, wl: WlAddr) -> PageState {
        self.wl_state[self.config.geometry.wl_flat(wl)]
    }

    /// Get-Features: the *current* raw BER a read of `wl` would see under
    /// the chip's present wear and retention age — what a background
    /// scrubber samples via a leader-WL read to decide whether the block
    /// needs refreshing. Pure query: no state change, no RNG draw.
    /// Returns `None` for unwritten WLs.
    pub fn wl_current_ber(&self, wl: WlAddr) -> Option<f64> {
        let idx = self.config.geometry.wl_flat(wl);
        (self.wl_state[idx] == PageState::Written).then(|| {
            let block = wl.block.0 as usize;
            self.reliability.ber(
                &self.process,
                wl,
                self.env.pe(block),
                self.env.effective_retention_months_of(block),
            )
        })
    }

    /// Retention age of `block`'s data in months (per-block when tracking
    /// is enabled, otherwise the global override).
    pub fn block_retention_months(&self, block: BlockId) -> f64 {
        self.env.retention_months_of(block.0 as usize)
    }

    /// Enables (or disables) per-block retention tracking. Blocks that
    /// hold no written WL at enable time are marked refreshed: they carry
    /// no pre-enable data, so whatever is written into them afterwards is
    /// young — only data present when tracking starts inherits the global
    /// retention age.
    pub fn set_block_retention_tracking(&mut self, on: bool) {
        self.env.set_block_retention_tracking(on);
        if !on {
            return;
        }
        let g = self.config.geometry;
        for b in 0..g.blocks_per_chip {
            let block = BlockId(b);
            let any_written = (0..g.hlayers_per_block).any(|h| {
                (0..g.wls_per_hlayer)
                    .any(|v| self.wl_state(g.wl_addr(block, h, v)) == PageState::Written)
            });
            if !any_written {
                self.env.mark_refreshed(b as usize);
            }
        }
    }
}

/// A package of NAND chips addressed by [`ChipId`](crate::ChipId) index.
///
/// The SSD simulator and FTLs use this as the physical storage substrate:
/// 8 chips of the paper geometry form the 32-GB evaluation SSD (§6.1).
#[derive(Debug)]
pub struct FlashArray {
    chips: Vec<NandChip>,
}

impl FlashArray {
    /// Creates `n` chips with per-chip process variation derived from
    /// `seed`.
    pub fn new(config: NandConfig, n: usize, seed: u64) -> Self {
        FlashArray {
            chips: (0..n)
                .map(|i| NandChip::new(config, seed.wrapping_add(i as u64 * 0x51ed)))
                .collect(),
        }
    }

    /// Number of chips.
    pub fn len(&self) -> usize {
        self.chips.len()
    }

    /// Whether the array has no chips.
    pub fn is_empty(&self) -> bool {
        self.chips.is_empty()
    }

    /// Shared access to chip `i`.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::ChipOutOfRange`] for an invalid index.
    pub fn chip(&self, i: usize) -> Result<&NandChip, NandError> {
        self.chips.get(i).ok_or(NandError::ChipOutOfRange(i))
    }

    /// Exclusive access to chip `i`.
    ///
    /// # Errors
    ///
    /// Returns [`NandError::ChipOutOfRange`] for an invalid index.
    pub fn chip_mut(&mut self, i: usize) -> Result<&mut NandChip, NandError> {
        self.chips.get_mut(i).ok_or(NandError::ChipOutOfRange(i))
    }

    /// Iterates over the chips.
    pub fn iter(&self) -> std::slice::Iter<'_, NandChip> {
        self.chips.iter()
    }

    /// Iterates mutably over the chips.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, NandChip> {
        self.chips.iter_mut()
    }

    /// Pins every chip to an aging state.
    pub fn set_aging(&mut self, state: AgingState) {
        for c in &mut self.chips {
            c.set_aging(state);
        }
    }

    /// Sets every chip's ambient-disturbance probability.
    pub fn set_disturbance_prob(&mut self, p: f64) {
        for c in &mut self.chips {
            c.env_mut().set_disturbance_prob(p);
        }
    }

    /// Sets every chip's ambient temperature in °C (retention loss
    /// scales with an Arrhenius law around the 30 °C reference).
    pub fn set_ambient_celsius(&mut self, celsius: f64) {
        for c in &mut self.chips {
            c.env_mut().set_ambient_celsius(celsius);
        }
    }

    /// Enables per-block retention tracking on every chip: erases reset a
    /// block's retention age, so background scrubbing actually rejuvenates
    /// data (see [`Environment::set_block_retention_tracking`]).
    pub fn set_block_retention_tracking(&mut self, on: bool) {
        for c in &mut self.chips {
            c.set_block_retention_tracking(on);
        }
    }

    /// Installs `plan` on every chip, each with its own fault stream
    /// derived from the plan seed and the chip index.
    pub fn set_fault_plan(&mut self, plan: &FaultPlan) {
        for (i, c) in self.chips.iter_mut().enumerate() {
            c.set_fault_plan(plan, i as u64);
        }
    }

    /// Array-wide totals of injected faults.
    pub fn fault_counters(&self) -> FaultCounters {
        self.chips.iter().fold(FaultCounters::default(), |acc, c| {
            acc.merged(&c.fault_counters())
        })
    }

    /// Registers every chip's lifetime command counts plus the array-wide
    /// injected-fault totals under `prefix` (e.g. `nand.chip0.programs`).
    pub fn register_metrics(&self, reg: &mut telemetry::MetricRegistry, prefix: &str) {
        for (i, c) in self.chips.iter().enumerate() {
            let (erases, programs, reads) = c.op_counts();
            reg.counter(&format!("{prefix}.chip{i}.erases"), erases);
            reg.counter(&format!("{prefix}.chip{i}.programs"), programs);
            reg.counter(&format!("{prefix}.chip{i}.reads"), reads);
        }
        self.fault_counters()
            .register_metrics(reg, &format!("{prefix}.faults"));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ispp::ProgramParams;

    fn chip() -> NandChip {
        NandChip::new(NandConfig::small(), 5)
    }

    #[test]
    fn erase_program_read_roundtrip() {
        let mut c = chip();
        let b = BlockId(1);
        c.erase(b).unwrap();
        let wl = c.geometry().wl_addr(b, 2, 1);
        c.program_wl(wl, WlData::from_pages([7, 8, 9]), &ProgramParams::default())
            .unwrap();
        for (i, expected) in [7u64, 8, 9].iter().enumerate() {
            let p = c.geometry().page_addr(b, 2, 1, i as u8);
            assert_eq!(
                c.read_page(p, ReadParams::default()).unwrap().data,
                *expected
            );
        }
    }

    #[test]
    fn double_program_rejected_until_erase() {
        let mut c = chip();
        let b = BlockId(0);
        c.erase(b).unwrap();
        let wl = c.geometry().wl_addr(b, 0, 0);
        c.program_wl(wl, WlData::host(0), &ProgramParams::default())
            .unwrap();
        let err = c
            .program_wl(wl, WlData::host(3), &ProgramParams::default())
            .unwrap_err();
        assert_eq!(err, NandError::ProgramOnDirtyWl(wl));
        c.erase(b).unwrap();
        c.program_wl(wl, WlData::host(3), &ProgramParams::default())
            .unwrap();
    }

    #[test]
    fn read_unwritten_rejected() {
        let mut c = chip();
        let p = c.geometry().page_addr(BlockId(0), 0, 0, 0);
        assert_eq!(
            c.read_page(p, ReadParams::default()).unwrap_err(),
            NandError::ReadUnwritten(p)
        );
    }

    #[test]
    fn out_of_range_addresses_rejected() {
        let mut c = chip();
        let g = *c.geometry();
        assert!(matches!(
            c.erase(BlockId(g.blocks_per_chip)),
            Err(NandError::BlockOutOfRange(_))
        ));
        let wl = g.wl_addr(BlockId(0), g.hlayers_per_block, 0);
        assert!(matches!(
            c.program_wl(wl, WlData::host(0), &ProgramParams::default()),
            Err(NandError::WlOutOfRange(_))
        ));
        let p = g.page_addr(BlockId(0), 0, 0, 3);
        assert!(matches!(
            c.read_page(p, ReadParams::default()),
            Err(NandError::PageOutOfRange(_))
        ));
    }

    #[test]
    fn erase_advances_pe_and_frees_wls() {
        let mut c = chip();
        let b = BlockId(3);
        c.erase(b).unwrap();
        let wl = c.geometry().wl_addr(b, 1, 1);
        c.program_wl(wl, WlData::host(0), &ProgramParams::default())
            .unwrap();
        assert_eq!(c.wl_state(wl), PageState::Written);
        assert!(c.wl_post_ber(wl).is_some());
        c.erase(b).unwrap();
        assert_eq!(c.wl_state(wl), PageState::Free);
        assert!(c.wl_post_ber(wl).is_none());
        assert_eq!(c.env().erase_count(3), 2);
    }

    #[test]
    fn program_reports_monitorable_values() {
        let mut c = chip();
        c.erase(BlockId(0)).unwrap();
        let wl = c.geometry().wl_addr(BlockId(0), 4, 0);
        let r = c
            .program_wl(wl, WlData::host(0), &ProgramParams::default())
            .unwrap();
        assert!(r.latency_us > 0.0);
        assert!(r.ber_ep1 > 0.0);
        assert!(r.post_ber > 0.0);
        assert!(r.pulses > 0);
        assert!(r.verifies > 0);
        for iv in r.loop_intervals {
            assert!(iv.lmin >= 1 && iv.lmin <= iv.lmax);
        }
    }

    #[test]
    fn follower_with_leader_params_is_faster_and_equally_reliable() {
        let mut c = chip();
        c.erase(BlockId(2)).unwrap();
        let leader = c.geometry().wl_addr(BlockId(2), 3, 0);
        let report = c
            .program_wl(leader, WlData::host(0), &ProgramParams::default())
            .unwrap();
        let mut params = ProgramParams::default();
        for (s, iv) in report.loop_intervals.iter().enumerate() {
            params.n_skip[s] = iv.safe_skip();
        }
        let follower = c.geometry().wl_addr(BlockId(2), 3, 1);
        let fr = c.program_wl(follower, WlData::host(3), &params).unwrap();
        assert!(fr.latency_us < report.latency_us);
        assert!((fr.post_ber - report.post_ber).abs() / report.post_ber < 0.05);
    }

    #[test]
    fn flash_array_addressing() {
        let mut arr = FlashArray::new(NandConfig::small(), 4, 9);
        assert_eq!(arr.len(), 4);
        assert!(!arr.is_empty());
        assert!(arr.chip(4).is_err());
        arr.chip_mut(0).unwrap().erase(BlockId(0)).unwrap();
        assert_eq!(arr.chip(0).unwrap().op_counts().0, 1);
        assert_eq!(arr.chip(1).unwrap().op_counts().0, 0);
    }

    #[test]
    fn oob_roundtrip_and_block_seq_tracking() {
        let mut c = chip();
        let b = BlockId(1);
        c.erase_tagged(b, 41).unwrap();
        assert_eq!(c.block_erase_seq(b), 41);
        assert_eq!(c.block_prog_seq(b), 0);
        let wl = c.geometry().wl_addr(b, 0, 0);
        // OOB on an unwritten WL is rejected.
        let oob = WlOob {
            lpns: [10, 11, WlData::PAD],
            seq: 42,
            status: OobStatus::Complete,
        };
        assert!(c.write_oob(wl, oob).is_err());
        c.program_wl(wl, WlData::host(10), &ProgramParams::default())
            .unwrap();
        c.write_oob(wl, oob).unwrap();
        assert_eq!(c.wl_oob(wl), Some(oob));
        assert_eq!(c.block_prog_seq(b), 42);
        // Erase clears OOB and the program-seq tracker.
        c.erase_tagged(b, 50).unwrap();
        assert_eq!(c.wl_oob(wl), None);
        assert_eq!(c.block_prog_seq(b), 0);
        assert_eq!(c.block_erase_seq(b), 50);
    }

    #[test]
    fn oob_encode_decode_roundtrip() {
        let oob = WlOob {
            lpns: [3, u64::MAX, 7_000_000_000],
            seq: 0x0123_4567_89ab_cdef,
            status: OobStatus::Torn,
        };
        let bytes = oob.encode();
        assert_eq!(WlOob::decode(&bytes), Some(oob));
        assert_eq!(WlOob::decode(&bytes[..32]), None);
        let mut bad = bytes;
        bad[32] = 9;
        assert_eq!(WlOob::decode(&bad), None);
    }

    #[test]
    fn interrupted_program_leaves_torn_unreadable_wl() {
        let mut c = chip();
        let b = BlockId(2);
        c.erase(b).unwrap();
        let wl = c.geometry().wl_addr(b, 1, 0);
        let report = c
            .program_wl(wl, WlData::host(30), &ProgramParams::default())
            .unwrap();
        c.write_oob(
            wl,
            WlOob {
                lpns: [30, 31, 32],
                seq: 7,
                status: OobStatus::Complete,
            },
        )
        .unwrap();
        assert!(c.interrupt_program(wl));
        assert_eq!(c.wl_state(wl), PageState::Partial);
        assert_eq!(c.wl_oob(wl).unwrap().status, OobStatus::Torn);
        // Partial WLs reject both reads and re-programs until erase.
        let p = c.geometry().page_addr(b, 1, 0, 0);
        assert!(matches!(
            c.read_page(p, ReadParams::default()),
            Err(NandError::ReadUnwritten(_))
        ));
        assert!(matches!(
            c.program_wl(wl, WlData::host(60), &ProgramParams::default()),
            Err(NandError::ProgramOnDirtyWl(_))
        ));
        // BER elevated well past the 3x safety-check bar.
        assert!(c.wl_post_ber(wl).is_none());
        // A free WL has nothing in flight to tear.
        let free_wl = c.geometry().wl_addr(b, 2, 0);
        assert!(!c.interrupt_program(free_wl));
        let _ = report;
        c.erase(b).unwrap();
        assert_eq!(c.wl_state(wl), PageState::Free);
        c.program_wl(wl, WlData::host(60), &ProgramParams::default())
            .unwrap();
    }

    #[test]
    fn interrupted_erase_blocks_use_until_reerase() {
        let mut c = chip();
        let b = BlockId(4);
        c.erase(b).unwrap();
        let wl = c.geometry().wl_addr(b, 0, 0);
        // A block with live data is not mid-erase; the guard refuses.
        c.program_wl(wl, WlData::host(0), &ProgramParams::default())
            .unwrap();
        assert!(!c.interrupt_erase(b));
        c.erase(b).unwrap();
        assert!(c.interrupt_erase(b));
        assert!(c.block_erase_interrupted(b));
        assert!(matches!(
            c.program_wl(wl, WlData::host(0), &ProgramParams::default()),
            Err(NandError::ProgramOnDirtyWl(_))
        ));
        c.erase(b).unwrap();
        assert!(!c.block_erase_interrupted(b));
        c.program_wl(wl, WlData::host(0), &ProgramParams::default())
            .unwrap();
    }

    #[test]
    fn chips_have_distinct_process_variation() {
        let arr = FlashArray::new(NandConfig::small(), 2, 9);
        let g = *arr.chip(0).unwrap().geometry();
        let wl = g.wl_addr(BlockId(0), 3, 0);
        let a = arr.chip(0).unwrap().process().wl_factor(wl);
        let b = arr.chip(1).unwrap().process().wl_factor(wl);
        assert_ne!(a, b);
    }
}
