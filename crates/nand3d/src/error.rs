//! Error types for NAND device operations.

use crate::geometry::{BlockId, PageAddr, WlAddr};
use std::error::Error;
use std::fmt;

/// Errors returned by [`NandChip`](crate::NandChip) command methods.
///
/// Every variant corresponds to a command-protocol violation: issuing an
/// operation on an address the device cannot legally service in its current
/// state (out-of-range addresses, programming a non-erased WL, reading an
/// unwritten page, and so on). Latency effects of *legal but degraded*
/// operations — over-programming, read retries — are not errors; they are
/// reported in [`ProgramReport`](crate::ProgramReport) and
/// [`ReadReport`](crate::ReadReport).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NandError {
    /// The block index exceeds the chip geometry.
    BlockOutOfRange(BlockId),
    /// The WL address exceeds the chip geometry.
    WlOutOfRange(WlAddr),
    /// The page address exceeds the chip geometry.
    PageOutOfRange(PageAddr),
    /// A WL was programmed without erasing its block first, or programmed
    /// twice since the last erase.
    ProgramOnDirtyWl(WlAddr),
    /// A read targeted a page that has not been programmed since the last
    /// erase of its block.
    ReadUnwritten(PageAddr),
    /// The chip index exceeds the array size.
    ChipOutOfRange(usize),
    /// A program was issued with parameters outside the device's legal
    /// range (e.g. a `V_Start`/`V_Final` adjustment larger than the whole
    /// program window).
    IllegalParameters(String),
}

impl fmt::Display for NandError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NandError::BlockOutOfRange(b) => write!(f, "block {} out of range", b.0),
            NandError::WlOutOfRange(wl) => write!(f, "word line {wl} out of range"),
            NandError::PageOutOfRange(p) => write!(f, "page {p} out of range"),
            NandError::ProgramOnDirtyWl(wl) => {
                write!(f, "program issued to non-erased word line {wl}")
            }
            NandError::ReadUnwritten(p) => write!(f, "read issued to unwritten page {p}"),
            NandError::ChipOutOfRange(c) => write!(f, "chip {c} out of range"),
            NandError::IllegalParameters(msg) => write!(f, "illegal operation parameters: {msg}"),
        }
    }
}

impl Error for NandError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{BlockId, Geometry};

    #[test]
    fn display_is_nonempty_and_lowercase() {
        let g = Geometry::paper();
        let errs = vec![
            NandError::BlockOutOfRange(BlockId(9999)),
            NandError::WlOutOfRange(g.wl_addr(BlockId(0), 0, 0)),
            NandError::PageOutOfRange(g.page_addr(BlockId(0), 0, 0, 0)),
            NandError::ProgramOnDirtyWl(g.wl_addr(BlockId(1), 2, 3)),
            NandError::ReadUnwritten(g.page_addr(BlockId(1), 2, 3, 1)),
            NandError::ChipOutOfRange(17),
            NandError::IllegalParameters("window collapsed".to_owned()),
        ];
        for e in errs {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(s.chars().next().unwrap().is_lowercase(), "{s}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NandError>();
    }
}
