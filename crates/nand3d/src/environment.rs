//! Operating conditions: P/E cycling, retention time and environmental
//! disturbances.
//!
//! The paper evaluates three aging states (§6.2): fresh (0K P/E, no
//! retention), 2K P/E + 1-month retention, and 2K P/E + 1-year retention.
//! [`AgingState`] names them; [`Environment`] tracks per-block P/E counts
//! and the retention clock, and models the *sudden operating-condition
//! changes* (e.g. temperature surges, §4.1.4) that can invalidate
//! monitored parameters and must be caught by the safety check.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The three evaluation aging states of §6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AgingState {
    /// 0K P/E cycles, no retention ("fresh").
    Fresh,
    /// 2K P/E cycles with 1-month retention.
    MidLife,
    /// 2K P/E cycles with 1-year retention (end of lifetime).
    EndOfLife,
}

impl AgingState {
    /// All three states in paper order (Fig. 17(a)–(c)).
    pub const ALL: [AgingState; 3] = [
        AgingState::Fresh,
        AgingState::MidLife,
        AgingState::EndOfLife,
    ];

    /// P/E cycles of this state.
    pub fn pe_cycles(self) -> u32 {
        match self {
            AgingState::Fresh => 0,
            AgingState::MidLife | AgingState::EndOfLife => 2000,
        }
    }

    /// Retention time in months.
    pub fn retention_months(self) -> f64 {
        match self {
            AgingState::Fresh => 0.0,
            AgingState::MidLife => 1.0,
            AgingState::EndOfLife => 12.0,
        }
    }

    /// Index into per-state lookup tables (e.g.
    /// [`RetryModel::retry_need`](crate::config::RetryModel::retry_need)).
    pub fn index(self) -> usize {
        match self {
            AgingState::Fresh => 0,
            AgingState::MidLife => 1,
            AgingState::EndOfLife => 2,
        }
    }

    /// Human-readable label used by the experiment harness.
    pub fn label(self) -> &'static str {
        match self {
            AgingState::Fresh => "0K P/E, no retention",
            AgingState::MidLife => "2K P/E, 1-month retention",
            AgingState::EndOfLife => "2K P/E, 1-year retention",
        }
    }
}

impl std::fmt::Display for AgingState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Reference ambient temperature of the paper's evaluation (§6.2: all
/// aging states are evaluated at 30 °C).
pub const REFERENCE_CELSIUS: f64 = 30.0;

/// Activation energy of charge loss used for Arrhenius scaling, eV
/// (typical for charge-trap retention; cf. HeatWatch \[40\]).
pub const ACTIVATION_ENERGY_EV: f64 = 1.1;

/// Boltzmann constant in eV/K.
const BOLTZMANN_EV_PER_K: f64 = 8.617e-5;

/// Per-block fast-forwarded age, maintained by the lifetime engine's
/// epoch barriers. Once present it is the authoritative source of
/// per-block retention age (replacing the global override + refreshed
/// marks), and its P/E leg adds on top of the live counters — so
/// blocks wear and age individually as a campaign advances.
#[derive(Debug, Clone)]
struct BlockAging {
    /// Fast-forwarded P/E cycles per block (on top of live erases and
    /// any global override).
    pe_add: Vec<u32>,
    /// Absolute retention age per block, months at reference
    /// temperature. Erasing (or scrub-refreshing) a block zeroes it.
    retention_months: Vec<f64>,
}

/// Mutable operating conditions of one chip.
///
/// During SSD simulation the P/E counters advance with erases; for
/// characterization experiments the whole environment can be pinned to an
/// [`AgingState`] with [`Environment::set_aging`], mirroring how the paper
/// pre-cycles blocks and bakes chips to emulate retention.
#[derive(Debug, Clone)]
pub struct Environment {
    /// Per-block program/erase cycle counts.
    pe_cycles: Vec<u32>,
    /// Global retention override in months (None → use per-WL program
    /// timestamps, which short simulations keep at ≈0).
    retention_override_months: Option<f64>,
    /// P/E override applied on top of the live counters (pre-cycling).
    pe_override: Option<u32>,
    /// Bernoulli process modelling sudden ambient changes: probability
    /// that a given operation happens under disturbed conditions.
    disturbance_prob: f64,
    /// Ambient temperature, °C. Retention loss accelerates above the
    /// 30 °C reference following an Arrhenius law.
    ambient_celsius: f64,
    /// When true, erases reset the block's retention clock: a refreshed
    /// block holds new data and no longer carries the override's baked-in
    /// retention age. Off by default so characterization experiments keep
    /// the paper's uniform aging states.
    track_block_retention: bool,
    /// Per-block "erased since retention tracking was enabled" marks.
    refreshed: Vec<bool>,
    /// Per-block fast-forwarded age (None until a lifetime campaign
    /// engages — the defaults-off path never allocates or consults it).
    lifetime: Option<BlockAging>,
    rng: StdRng,
}

impl Environment {
    /// A fresh environment for `blocks` blocks.
    pub fn new(blocks: usize, seed: u64) -> Self {
        Environment {
            pe_cycles: vec![0; blocks],
            retention_override_months: None,
            pe_override: None,
            disturbance_prob: 0.0,
            ambient_celsius: REFERENCE_CELSIUS,
            track_block_retention: false,
            refreshed: vec![false; blocks],
            lifetime: None,
            rng: StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Enables (or disables) per-block retention tracking: while enabled,
    /// erasing a block resets its retention age to zero until the next
    /// global aging override. Background scrubbing relies on this — moving
    /// data to a freshly erased block is what buys the reliability back.
    pub fn set_block_retention_tracking(&mut self, on: bool) {
        self.track_block_retention = on;
        if !on {
            self.refreshed.fill(false);
        }
    }

    /// Whether per-block retention tracking is enabled.
    #[inline]
    pub fn block_retention_tracking(&self) -> bool {
        self.track_block_retention
    }

    /// Whether `block` was erased (and thus retention-refreshed) since
    /// tracking was enabled.
    #[inline]
    pub fn block_is_refreshed(&self, block: usize) -> bool {
        self.track_block_retention && self.refreshed[block]
    }

    /// Marks `block` as retention-refreshed without an erase. Used when
    /// tracking is enabled on a chip with empty blocks: blocks holding no
    /// data cannot carry the global (pre-enable) retention age, so data
    /// written into them afterwards is young.
    pub fn mark_refreshed(&mut self, block: usize) {
        if self.track_block_retention {
            self.refreshed[block] = true;
        }
        if let Some(life) = &mut self.lifetime {
            life.retention_months[block] = 0.0;
        }
    }

    /// Pins the environment to one of the paper's aging states.
    pub fn set_aging(&mut self, state: AgingState) {
        self.pe_override = Some(state.pe_cycles());
        self.retention_override_months = Some(state.retention_months());
        self.refreshed.fill(false);
    }

    /// Pins raw P/E cycles and retention months (for sweeps).
    pub fn set_aging_raw(&mut self, pe: u32, retention_months: f64) {
        self.pe_override = Some(pe);
        self.retention_override_months = Some(retention_months);
        self.refreshed.fill(false);
    }

    /// Removes any aging override, returning to live accounting.
    pub fn clear_aging(&mut self) {
        self.pe_override = None;
        self.retention_override_months = None;
    }

    /// Engages per-block lifetime aging: every block's current
    /// retention age (global override respecting refreshed marks) is
    /// captured into a per-block vector that becomes authoritative, and
    /// a per-block P/E fast-forward vector starts at zero. Idempotent.
    /// From here on, epoch barriers advance individual blocks with
    /// [`Environment::advance_block_age`], and erases rejuvenate
    /// retention (but not wear) per block.
    pub fn enable_lifetime_aging(&mut self) {
        if self.lifetime.is_some() {
            return;
        }
        let blocks = self.pe_cycles.len();
        let retention = (0..blocks).map(|b| self.retention_months_of(b)).collect();
        self.lifetime = Some(BlockAging {
            pe_add: vec![0; blocks],
            retention_months: retention,
        });
    }

    /// Whether per-block lifetime aging is engaged.
    #[inline]
    pub fn lifetime_aging_enabled(&self) -> bool {
        self.lifetime.is_some()
    }

    /// Fast-forwards `block` by `pe_add` P/E cycles and `months_add`
    /// retention months (reference temperature).
    ///
    /// # Panics
    ///
    /// Panics unless [`Environment::enable_lifetime_aging`] ran first.
    pub fn advance_block_age(&mut self, block: usize, pe_add: u32, months_add: f64) {
        assert!(months_add >= 0.0, "aging cannot run backwards");
        let life = self
            .lifetime
            .as_mut()
            .expect("enable_lifetime_aging before advancing block age");
        life.pe_add[block] = life.pe_add[block].saturating_add(pe_add);
        life.retention_months[block] += months_add;
    }

    /// Fast-forwarded P/E cycles of `block` (0 when no campaign is
    /// engaged) — the lifetime component of [`Environment::pe`].
    #[inline]
    pub fn lifetime_pe_add(&self, block: usize) -> u32 {
        self.lifetime.as_ref().map_or(0, |life| life.pe_add[block])
    }

    /// Sets the probability that any one operation happens under suddenly
    /// changed ambient conditions (triggers §4.1.4 safety-check paths and
    /// §4.2 ORT mispredictions).
    pub fn set_disturbance_prob(&mut self, p: f64) {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.disturbance_prob = p;
    }

    /// Effective P/E cycles of `block`.
    #[inline]
    pub fn pe(&self, block: usize) -> u32 {
        let lifetime = self.lifetime.as_ref().map_or(0, |life| life.pe_add[block]);
        self.pe_override
            .unwrap_or(0)
            .saturating_add(self.pe_cycles[block])
            .saturating_add(lifetime)
    }

    /// Raw retention time in months at the reference temperature
    /// (global model; per-WL data age is negligible at simulation time
    /// scales).
    #[inline]
    pub fn retention_months(&self) -> f64 {
        self.retention_override_months.unwrap_or(0.0)
    }

    /// Retention time of `block`'s data in months. With a lifetime
    /// campaign engaged the per-block aging vector is authoritative;
    /// otherwise the global override applies, unless per-block tracking
    /// is on and the block was erased since — refreshed data is young
    /// regardless of how long the device sat.
    #[inline]
    pub fn retention_months_of(&self, block: usize) -> f64 {
        if let Some(life) = &self.lifetime {
            return life.retention_months[block];
        }
        if self.block_is_refreshed(block) {
            0.0
        } else {
            self.retention_months()
        }
    }

    /// Sets the ambient temperature in °C (default: the paper's 30 °C).
    ///
    /// # Panics
    ///
    /// Panics outside the plausible operating range −40..=125 °C.
    pub fn set_ambient_celsius(&mut self, celsius: f64) {
        assert!(
            (-40.0..=125.0).contains(&celsius),
            "temperature out of operating range"
        );
        self.ambient_celsius = celsius;
    }

    /// The ambient temperature, °C.
    #[inline]
    pub fn ambient_celsius(&self) -> f64 {
        self.ambient_celsius
    }

    /// Arrhenius acceleration factor of retention loss relative to the
    /// 30 °C reference: `exp(Ea/k · (1/T_ref − 1/T))`. Equals 1 at 30 °C,
    /// ≈4–5× at 55 °C, well below 1 in cold storage.
    pub fn retention_acceleration(&self) -> f64 {
        let t_ref = REFERENCE_CELSIUS + 273.15;
        let t = self.ambient_celsius + 273.15;
        (ACTIVATION_ENERGY_EV / BOLTZMANN_EV_PER_K * (1.0 / t_ref - 1.0 / t)).exp()
    }

    /// Temperature-adjusted retention time in months: the quantity the
    /// reliability and read-retry models consume.
    #[inline]
    pub fn effective_retention_months(&self) -> f64 {
        self.retention_months() * self.retention_acceleration()
    }

    /// Temperature-adjusted retention of `block`'s data (see
    /// [`Environment::retention_months_of`]).
    #[inline]
    pub fn effective_retention_months_of(&self, block: usize) -> f64 {
        self.retention_months_of(block) * self.retention_acceleration()
    }

    /// Records one erase of `block`. Under a lifetime campaign the
    /// erase zeroes the block's fast-forwarded retention age (new data
    /// is young) while its accumulated P/E wear stays.
    #[inline]
    pub fn record_erase(&mut self, block: usize) {
        self.pe_cycles[block] = self.pe_cycles[block].saturating_add(1);
        if self.track_block_retention {
            self.refreshed[block] = true;
        }
        if let Some(life) = &mut self.lifetime {
            life.retention_months[block] = 0.0;
        }
    }

    /// Live (non-overridden) erase count of `block`.
    #[inline]
    pub fn erase_count(&self, block: usize) -> u32 {
        self.pe_cycles[block]
    }

    /// Samples whether the next operation happens under disturbed ambient
    /// conditions.
    #[inline]
    pub fn sample_disturbance(&mut self) -> bool {
        self.disturbance_prob > 0.0 && self.rng.gen::<f64>() < self.disturbance_prob
    }

    /// Uniform sample in `[0, 1)` from the environment's RNG (used by the
    /// chip for per-operation stochastic decisions so that everything
    /// stays on one deterministic stream).
    #[inline]
    pub fn sample_uniform(&mut self) -> f64 {
        self.rng.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aging_state_values_match_paper() {
        assert_eq!(AgingState::Fresh.pe_cycles(), 0);
        assert_eq!(AgingState::MidLife.pe_cycles(), 2000);
        assert_eq!(AgingState::EndOfLife.pe_cycles(), 2000);
        assert_eq!(AgingState::Fresh.retention_months(), 0.0);
        assert_eq!(AgingState::MidLife.retention_months(), 1.0);
        assert_eq!(AgingState::EndOfLife.retention_months(), 12.0);
    }

    #[test]
    fn overrides_and_live_counts_compose() {
        let mut env = Environment::new(4, 1);
        assert_eq!(env.pe(0), 0);
        env.record_erase(0);
        env.record_erase(0);
        assert_eq!(env.erase_count(0), 2);
        assert_eq!(env.pe(0), 2, "live erases count toward effective P/E");
        env.set_aging(AgingState::EndOfLife);
        assert_eq!(env.pe(0), 2002);
        assert_eq!(env.retention_months(), 12.0);
        env.clear_aging();
        assert_eq!(env.retention_months(), 0.0);
    }

    #[test]
    fn block_retention_tracking_resets_age_on_erase() {
        let mut env = Environment::new(2, 1);
        env.set_aging(AgingState::EndOfLife);
        assert_eq!(env.retention_months_of(0), 12.0);

        // Without tracking, erases do not touch the retention clock.
        env.record_erase(0);
        assert_eq!(env.retention_months_of(0), 12.0);

        env.set_block_retention_tracking(true);
        env.record_erase(0);
        assert_eq!(env.retention_months_of(0), 0.0, "refreshed block is young");
        assert_eq!(env.effective_retention_months_of(0), 0.0);
        assert_eq!(env.retention_months_of(1), 12.0, "other block unaffected");
        assert!(env.block_is_refreshed(0));
        assert!(!env.block_is_refreshed(1));

        // A new global override re-bakes every block's age.
        env.set_aging(AgingState::EndOfLife);
        assert_eq!(env.retention_months_of(0), 12.0);

        // Disabling tracking clears the marks.
        env.record_erase(0);
        assert!(env.block_is_refreshed(0));
        env.set_block_retention_tracking(false);
        assert!(!env.block_is_refreshed(0));
    }

    #[test]
    fn lifetime_aging_layers_on_per_block() {
        let mut env = Environment::new(3, 1);
        env.set_aging(AgingState::MidLife);
        env.record_erase(0);
        assert!(!env.lifetime_aging_enabled());

        // Engagement captures the current per-block state and becomes
        // authoritative for retention.
        env.enable_lifetime_aging();
        assert!(env.lifetime_aging_enabled());
        assert_eq!(env.retention_months_of(0), 1.0);
        assert_eq!(
            env.pe(0),
            2001,
            "override + live erase, no fast-forward yet"
        );

        env.advance_block_age(0, 500, 3.0);
        env.advance_block_age(1, 250, 3.0);
        assert_eq!(env.pe(0), 2501);
        assert_eq!(env.pe(1), 2250);
        assert_eq!(env.pe(2), 2000, "untouched block keeps its age");
        assert_eq!(env.lifetime_pe_add(0), 500);
        assert_eq!(env.retention_months_of(0), 4.0);
        assert_eq!(env.retention_months_of(2), 1.0);

        // Erase rejuvenates retention but never wear.
        env.record_erase(0);
        assert_eq!(env.retention_months_of(0), 0.0);
        assert_eq!(env.pe(0), 2502, "erase adds wear on top of fast-forward");

        // mark_refreshed (scrub without erase) also zeroes retention.
        env.advance_block_age(1, 0, 2.0);
        env.mark_refreshed(1);
        assert_eq!(env.retention_months_of(1), 0.0);
        assert_eq!(env.pe(1), 2250);

        // Idempotent re-engagement keeps accumulated state.
        env.enable_lifetime_aging();
        assert_eq!(env.lifetime_pe_add(0), 500);
    }

    #[test]
    fn lifetime_engagement_respects_refreshed_marks() {
        let mut env = Environment::new(2, 1);
        env.set_aging(AgingState::EndOfLife);
        env.set_block_retention_tracking(true);
        env.record_erase(0);
        env.enable_lifetime_aging();
        assert_eq!(
            env.retention_months_of(0),
            0.0,
            "refreshed block engages young"
        );
        assert_eq!(env.retention_months_of(1), 12.0);
    }

    #[test]
    #[should_panic(expected = "enable_lifetime_aging")]
    fn advancing_without_engagement_panics() {
        Environment::new(1, 0).advance_block_age(0, 1, 0.0);
    }

    #[test]
    fn temperature_reference_is_neutral() {
        let env = Environment::new(1, 0);
        assert!((env.retention_acceleration() - 1.0).abs() < 1e-12);
        assert_eq!(env.ambient_celsius(), REFERENCE_CELSIUS);
    }

    #[test]
    fn heat_accelerates_and_cold_preserves() {
        let mut env = Environment::new(1, 0);
        env.set_aging_raw(2000, 6.0);
        env.set_ambient_celsius(55.0);
        let hot = env.effective_retention_months();
        assert!(
            hot > 6.0 * 3.0,
            "55°C should accelerate several-fold: {hot}"
        );
        env.set_ambient_celsius(5.0);
        let cold = env.effective_retention_months();
        assert!(cold < 6.0 * 0.1, "5°C should slow retention loss: {cold}");
    }

    #[test]
    #[should_panic(expected = "operating range")]
    fn absurd_temperature_rejected() {
        Environment::new(1, 0).set_ambient_celsius(400.0);
    }

    #[test]
    fn disturbance_rate_is_respected() {
        let mut env = Environment::new(1, 5);
        env.set_disturbance_prob(0.25);
        let n = 20_000;
        let hits = (0..n).filter(|_| env.sample_disturbance()).count();
        let rate = hits as f64 / n as f64;
        assert!((0.22..0.28).contains(&rate), "rate {rate}");
    }

    #[test]
    fn zero_disturbance_never_fires() {
        let mut env = Environment::new(1, 5);
        assert!((0..1000).all(|_| !env.sample_disturbance()));
    }

    #[test]
    #[should_panic(expected = "probability out of range")]
    fn disturbance_prob_validated() {
        Environment::new(1, 0).set_disturbance_prob(1.5);
    }
}
