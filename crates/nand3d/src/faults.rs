//! Deterministic fault injection for the NAND model.
//!
//! A [`FaultPlan`] describes anomalies to inject into chip operations —
//! either **targeted** at specific `(block, h-layer, v-layer)` WL
//! addresses (each fires exactly once per chip) or drawn at **seeded
//! random rates** per operation. The plan is pure data; each chip turns
//! it into a [`FaultInjector`] whose RNG stream is derived from the plan
//! seed and the chip index, *separate* from the chip's environment RNG —
//! so enabling faults perturbs only the faulted operations, and the same
//! plan + seed reproduces the identical fault sequence on every run.
//!
//! Five fault kinds model the §4.1.4 / §4.2 hazard space:
//!
//! * [`FaultKind::IsppLoopOutlier`] — a WL needs anomalously many ISPP
//!   loops (process outlier / ambient upset): injected as an extra
//!   disturbance shift into characterization, which moves the monitored
//!   loop intervals and inflates `BER_EP1`.
//! * [`FaultKind::BerSpike`] — a transient post-program raw-BER spike
//!   (program disturb burst); trips the §4.1.4 safety check when it
//!   exceeds the ×3 threshold.
//! * [`FaultKind::StuckRetry`] — the h-layer's cached `ΔV_Ref` has gone
//!   stale (reference drift between reads); the read must re-search and
//!   the FTL's ORT entry is refreshed by the outcome.
//! * [`FaultKind::UncorrectableRead`] — the first decode attempt fails
//!   even near the optimum; recovery is a full offset scan (max retry
//!   latency). Data is still recovered — injection may cost latency but
//!   never corrupts host data.
//! * [`FaultKind::ProgramAbort`] — a program-suspend/abort event: the
//!   WL is left unprogrammed (still erased) and the FTL must re-issue
//!   the data on the next WL.

use crate::geometry::WlAddr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The injectable fault kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Program: ISPP loop-count outlier (extra characterization shift).
    IsppLoopOutlier,
    /// Program: transient post-program BER spike.
    BerSpike,
    /// Read: stale cached `ΔV_Ref` (ORT entry no longer decodes).
    StuckRetry,
    /// Read: ECC-uncorrectable first attempt, full-scan recovery.
    UncorrectableRead,
    /// Program: suspend/abort — the WL stays erased.
    ProgramAbort,
}

impl FaultKind {
    /// All kinds, in a stable order.
    pub const ALL: [FaultKind; 5] = [
        FaultKind::IsppLoopOutlier,
        FaultKind::BerSpike,
        FaultKind::StuckRetry,
        FaultKind::UncorrectableRead,
        FaultKind::ProgramAbort,
    ];

    /// Whether the kind fires on program operations (else on reads).
    pub fn is_program_fault(self) -> bool {
        matches!(
            self,
            FaultKind::IsppLoopOutlier | FaultKind::BerSpike | FaultKind::ProgramAbort
        )
    }
}

/// A fault pinned to one WL address; fires once per chip when that WL
/// sees a matching operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetedFault {
    /// Block index.
    pub block: u32,
    /// Horizontal layer within the block.
    pub h: u16,
    /// Vertical (WL) index within the h-layer.
    pub v: u16,
    /// What to inject.
    pub kind: FaultKind,
}

/// A complete, seedable fault-injection plan.
///
/// `FaultPlan::default()` injects nothing. Rates are per matching
/// operation and must be `< 1.0` for program faults (an FTL cannot make
/// progress if *every* program attempt aborts).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed of the fault RNG stream (independent of the environment
    /// seed; per-chip streams are derived from it).
    pub seed: u64,
    /// Faults pinned to specific WL addresses (fire once per chip each).
    pub targeted: Vec<TargetedFault>,
    /// Per-program probability of an ISPP loop-count outlier.
    pub ispp_outlier_rate: f64,
    /// Per-program probability of a transient BER spike.
    pub ber_spike_rate: f64,
    /// Per-read probability of a stale cached `ΔV_Ref`.
    pub stuck_retry_rate: f64,
    /// Per-read probability of an uncorrectable first attempt.
    pub uncorrectable_rate: f64,
    /// Per-program probability of a suspend/abort event.
    pub abort_rate: f64,
    /// Multiplier applied to `post_ber` by a BER spike. The default 4.0
    /// clears the §4.1.4 ×3 safety threshold.
    pub ber_spike_factor: f64,
    /// Extra characterization shift of a loop outlier (steps). The
    /// default 3 exceeds the ambient-disturbance shift of 2.
    pub loop_outlier_shift: i8,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            seed: 0,
            targeted: Vec::new(),
            ispp_outlier_rate: 0.0,
            ber_spike_rate: 0.0,
            stuck_retry_rate: 0.0,
            uncorrectable_rate: 0.0,
            abort_rate: 0.0,
            ber_spike_factor: 4.0,
            loop_outlier_shift: 3,
        }
    }
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// An empty plan with the given RNG seed (add targets or rates).
    pub fn seeded(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Adds a targeted fault at `(block, h, v)`.
    #[must_use]
    pub fn with_target(mut self, block: u32, h: u16, v: u16, kind: FaultKind) -> Self {
        self.targeted.push(TargetedFault { block, h, v, kind });
        self
    }

    /// Sets the random-injection rate of one fault kind.
    #[must_use]
    pub fn with_rate(mut self, kind: FaultKind, rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        match kind {
            FaultKind::IsppLoopOutlier => self.ispp_outlier_rate = rate,
            FaultKind::BerSpike => self.ber_spike_rate = rate,
            FaultKind::StuckRetry => self.stuck_retry_rate = rate,
            FaultKind::UncorrectableRead => self.uncorrectable_rate = rate,
            FaultKind::ProgramAbort => self.abort_rate = rate,
        }
        self
    }

    /// Whether the plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        !self.targeted.is_empty()
            || self.ispp_outlier_rate > 0.0
            || self.ber_spike_rate > 0.0
            || self.stuck_retry_rate > 0.0
            || self.uncorrectable_rate > 0.0
            || self.abort_rate > 0.0
    }
}

/// A fault resolved against one program operation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ProgramFault {
    /// Add this many characterization shift steps.
    LoopOutlier(i8),
    /// Multiply the post-program BER by this factor.
    BerSpike(f64),
    /// Abort the program; the WL stays erased.
    Abort,
}

/// A fault resolved against one read operation. Carried on
/// [`ReadReport`](crate::chip::ReadReport) so the FTL can count its
/// recovery actions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReadFaultKind {
    /// Stale cached `ΔV_Ref`: forced re-search from the cached offset.
    StuckRetry,
    /// Uncorrectable first attempt: full offset-scan recovery.
    Uncorrectable,
}

/// Counts of injected faults (per chip; sum over the array for totals).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FaultCounters {
    /// ISPP loop-count outliers injected into programs.
    pub ispp_loop_outliers: u64,
    /// Post-program BER spikes injected.
    pub ber_spikes: u64,
    /// Program suspend/abort events injected.
    pub program_aborts: u64,
    /// Stale-`ΔV_Ref` reads injected.
    pub stuck_retries: u64,
    /// Uncorrectable first-attempt reads injected.
    pub uncorrectable_reads: u64,
}

impl FaultCounters {
    /// Total injected faults of all kinds.
    pub fn total(&self) -> u64 {
        self.ispp_loop_outliers
            + self.ber_spikes
            + self.program_aborts
            + self.stuck_retries
            + self.uncorrectable_reads
    }

    /// Registers every fault counter under `prefix` (e.g.
    /// `nand.faults.ber_spikes`).
    pub fn register_metrics(&self, reg: &mut telemetry::MetricRegistry, prefix: &str) {
        for (name, value) in [
            ("ispp_loop_outliers", self.ispp_loop_outliers),
            ("ber_spikes", self.ber_spikes),
            ("program_aborts", self.program_aborts),
            ("stuck_retries", self.stuck_retries),
            ("uncorrectable_reads", self.uncorrectable_reads),
        ] {
            reg.counter(&format!("{prefix}.{name}"), value);
        }
    }

    /// Element-wise sum (for array-level totals).
    #[must_use]
    pub fn merged(&self, other: &FaultCounters) -> FaultCounters {
        FaultCounters {
            ispp_loop_outliers: self.ispp_loop_outliers + other.ispp_loop_outliers,
            ber_spikes: self.ber_spikes + other.ber_spikes,
            program_aborts: self.program_aborts + other.program_aborts,
            stuck_retries: self.stuck_retries + other.stuck_retries,
            uncorrectable_reads: self.uncorrectable_reads + other.uncorrectable_reads,
        }
    }
}

/// The per-chip runtime state of a [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Fault RNG: a stream of its own, so plans never perturb the
    /// environment's draws (determinism of the un-faulted behaviour).
    rng: StdRng,
    /// Targeted faults not yet fired, keyed by WL address. Looked up by
    /// key only (never iterated), so map order cannot leak into results.
    pending: HashMap<(u32, u16, u16), Vec<FaultKind>>,
    counters: FaultCounters,
}

impl FaultInjector {
    /// Instantiates `plan` for the chip at `chip_index`.
    pub fn new(plan: FaultPlan, chip_index: u64) -> Self {
        let mut pending: HashMap<(u32, u16, u16), Vec<FaultKind>> = HashMap::new();
        for t in &plan.targeted {
            pending.entry((t.block, t.h, t.v)).or_default().push(t.kind);
        }
        let rng = StdRng::seed_from_u64(
            plan.seed ^ 0xFA17_0000_0000_0000u64 ^ chip_index.wrapping_mul(0x9e37_79b9),
        );
        FaultInjector {
            plan,
            rng,
            pending,
            counters: FaultCounters::default(),
        }
    }

    /// The plan this injector runs.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injected-fault counts so far.
    pub fn counters(&self) -> FaultCounters {
        self.counters
    }

    fn take_targeted(&mut self, wl: WlAddr, programs: bool) -> Option<FaultKind> {
        let key = (wl.block.0, wl.h.0, wl.v.0);
        let queue = self.pending.get_mut(&key)?;
        let pos = queue
            .iter()
            .position(|k| k.is_program_fault() == programs)?;
        let kind = queue.remove(pos);
        if queue.is_empty() {
            self.pending.remove(&key);
        }
        Some(kind)
    }

    /// Resolves the fault (if any) for a program of `wl`. At most one
    /// fault fires per operation; targeted faults take precedence over
    /// random draws.
    pub fn on_program(&mut self, wl: WlAddr) -> Option<ProgramFault> {
        let kind = self.take_targeted(wl, true).or_else(|| {
            // Draw in a fixed order; only kinds with nonzero rates touch
            // the RNG, so an all-zero plan leaves the stream untouched.
            if self.plan.abort_rate > 0.0 && self.rng.gen_bool(self.plan.abort_rate) {
                Some(FaultKind::ProgramAbort)
            } else if self.plan.ispp_outlier_rate > 0.0
                && self.rng.gen_bool(self.plan.ispp_outlier_rate)
            {
                Some(FaultKind::IsppLoopOutlier)
            } else if self.plan.ber_spike_rate > 0.0 && self.rng.gen_bool(self.plan.ber_spike_rate)
            {
                Some(FaultKind::BerSpike)
            } else {
                None
            }
        })?;
        Some(match kind {
            FaultKind::IsppLoopOutlier => {
                self.counters.ispp_loop_outliers += 1;
                ProgramFault::LoopOutlier(self.plan.loop_outlier_shift)
            }
            FaultKind::BerSpike => {
                self.counters.ber_spikes += 1;
                ProgramFault::BerSpike(self.plan.ber_spike_factor)
            }
            FaultKind::ProgramAbort => {
                self.counters.program_aborts += 1;
                ProgramFault::Abort
            }
            _ => unreachable!("take_targeted filters by operation kind"),
        })
    }

    /// Resolves the fault (if any) for a read of a page on `wl`.
    pub fn on_read(&mut self, wl: WlAddr) -> Option<ReadFaultKind> {
        let kind = self.take_targeted(wl, false).or_else(|| {
            if self.plan.stuck_retry_rate > 0.0 && self.rng.gen_bool(self.plan.stuck_retry_rate) {
                Some(FaultKind::StuckRetry)
            } else if self.plan.uncorrectable_rate > 0.0
                && self.rng.gen_bool(self.plan.uncorrectable_rate)
            {
                Some(FaultKind::UncorrectableRead)
            } else {
                None
            }
        })?;
        Some(match kind {
            FaultKind::StuckRetry => {
                self.counters.stuck_retries += 1;
                ReadFaultKind::StuckRetry
            }
            FaultKind::UncorrectableRead => {
                self.counters.uncorrectable_reads += 1;
                ReadFaultKind::Uncorrectable
            }
            _ => unreachable!("take_targeted filters by operation kind"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::{BlockId, HLayer, VLayer};

    fn wl(b: u32, h: u16, v: u16) -> WlAddr {
        WlAddr {
            block: BlockId(b),
            h: HLayer(h),
            v: VLayer(v),
        }
    }

    #[test]
    fn empty_plan_injects_nothing() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 0);
        for b in 0..4 {
            assert_eq!(inj.on_program(wl(b, 0, 0)), None);
            assert_eq!(inj.on_read(wl(b, 0, 0)), None);
        }
        assert_eq!(inj.counters().total(), 0);
        assert!(!FaultPlan::none().is_active());
    }

    #[test]
    fn targeted_fault_fires_exactly_once() {
        let plan = FaultPlan::seeded(1).with_target(2, 3, 1, FaultKind::ProgramAbort);
        assert!(plan.is_active());
        let mut inj = FaultInjector::new(plan, 0);
        assert_eq!(inj.on_program(wl(2, 3, 0)), None, "other WL untouched");
        assert_eq!(inj.on_program(wl(2, 3, 1)), Some(ProgramFault::Abort));
        assert_eq!(inj.on_program(wl(2, 3, 1)), None, "consumed");
        assert_eq!(inj.counters().program_aborts, 1);
    }

    #[test]
    fn targeted_read_and_program_faults_coexist_on_one_wl() {
        let plan = FaultPlan::seeded(1)
            .with_target(0, 0, 0, FaultKind::BerSpike)
            .with_target(0, 0, 0, FaultKind::StuckRetry);
        let mut inj = FaultInjector::new(plan, 0);
        assert_eq!(inj.on_read(wl(0, 0, 0)), Some(ReadFaultKind::StuckRetry));
        assert!(matches!(
            inj.on_program(wl(0, 0, 0)),
            Some(ProgramFault::BerSpike(f)) if f == 4.0
        ));
        assert_eq!(inj.on_read(wl(0, 0, 0)), None);
        assert_eq!(inj.on_program(wl(0, 0, 0)), None);
    }

    #[test]
    fn random_rates_hit_near_expectation_and_deterministically() {
        let plan = FaultPlan::seeded(77).with_rate(FaultKind::UncorrectableRead, 0.2);
        let mut a = FaultInjector::new(plan.clone(), 3);
        let mut b = FaultInjector::new(plan, 3);
        let n = 10_000;
        let mut hits = 0u64;
        for i in 0..n {
            let addr = wl(i % 8, (i % 6) as u16, (i % 4) as u16);
            let fa = a.on_read(addr);
            assert_eq!(fa, b.on_read(addr), "same plan+seed must agree");
            hits += u64::from(fa.is_some());
        }
        let rate = hits as f64 / f64::from(n);
        assert!((0.17..0.23).contains(&rate), "rate {rate}");
        assert_eq!(a.counters().uncorrectable_reads, hits);
    }

    #[test]
    fn chips_get_distinct_fault_streams() {
        let plan = FaultPlan::seeded(5).with_rate(FaultKind::BerSpike, 0.3);
        let mut a = FaultInjector::new(plan.clone(), 0);
        let mut b = FaultInjector::new(plan, 1);
        let pattern_a: Vec<bool> = (0..64)
            .map(|i| a.on_program(wl(i, 0, 0)).is_some())
            .collect();
        let pattern_b: Vec<bool> = (0..64)
            .map(|i| b.on_program(wl(i, 0, 0)).is_some())
            .collect();
        assert_ne!(pattern_a, pattern_b);
    }

    #[test]
    fn rate_builder_routes_to_the_right_field() {
        let plan = FaultPlan::seeded(0)
            .with_rate(FaultKind::IsppLoopOutlier, 0.1)
            .with_rate(FaultKind::BerSpike, 0.2)
            .with_rate(FaultKind::StuckRetry, 0.3)
            .with_rate(FaultKind::UncorrectableRead, 0.4)
            .with_rate(FaultKind::ProgramAbort, 0.5);
        assert_eq!(plan.ispp_outlier_rate, 0.1);
        assert_eq!(plan.ber_spike_rate, 0.2);
        assert_eq!(plan.stuck_retry_rate, 0.3);
        assert_eq!(plan.uncorrectable_rate, 0.4);
        assert_eq!(plan.abort_rate, 0.5);
    }
}
