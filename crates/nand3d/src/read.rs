//! The read operation and read-retry model.
//!
//! Retention and P/E cycling shift the Vth distributions, so reads at the
//! default read reference voltages (`V_Ref`) may contain more errors than
//! the ECC can correct (paper §2.3, Fig. 4). The controller then *retries*
//! with adjusted offsets `ΔV_Ref` until the page decodes; `tREAD` grows
//! linearly with the number of retries.
//!
//! The model quantizes the Vth shift of an h-layer into an **optimal
//! offset index** in `0..=`[`MAX_OFFSET_INDEX`]. A read started at offset
//! `o` succeeds when `|o − optimal|` is small enough for the ECC and
//! otherwise costs one retry per search step. Thanks to the horizontal
//! similarity, the optimum is a property of the *h-layer* (plus
//! conditions), so a PS-aware FTL can cache it per h-layer (§4.2).

use crate::config::CalibratedModel;
use crate::environment::Environment;
use crate::faults::ReadFaultKind;
use crate::geometry::WlAddr;
use crate::process::ProcessModel;
use serde::{Deserialize, Serialize};

/// The largest read-offset index (§5.1: three bits encode
/// `2^3 − 1 = 7` adjustment levels per reference).
pub const MAX_OFFSET_INDEX: u8 = 7;

/// Parameters of one page read.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ReadParams {
    /// Starting `ΔV_Ref` offset index. `0` is the device default;
    /// a PS-aware FTL passes its cached per-h-layer optimum (the ORT
    /// entry, §5.1).
    pub start_offset: u8,
    /// `true` when `start_offset` is a cross-block *cluster seed* rather
    /// than this block's own cached optimum. A seeded chain hedges: if
    /// walking from the seed turns out costlier than the plain
    /// default-start walk would have been, the chain abandons the seed
    /// (early termination) and pays the default cost instead — a seed
    /// can therefore never make a read slower than a cold start.
    pub seeded: bool,
}

impl ReadParams {
    /// A read starting from the cached offset `offset`.
    pub fn from_offset(offset: u8) -> Self {
        ReadParams {
            start_offset: offset,
            seeded: false,
        }
    }

    /// A read starting from a cluster-seeded offset (see
    /// [`ReadParams::seeded`]).
    pub fn seeded_from(offset: u8) -> Self {
        ReadParams {
            start_offset: offset,
            seeded: true,
        }
    }
}

/// Result of one page read.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryOutcome {
    /// Number of read retries performed (`NumRetry`).
    pub retries: u32,
    /// Read latency in µs, `t_read + retries · t_retry`.
    pub latency_us: f64,
    /// The offset index that finally decoded; the FTL stores this in its
    /// ORT for subsequent reads of the h-layer.
    pub final_offset: u8,
    /// Whether the starting offset already decoded (no retry needed).
    pub first_try: bool,
    /// Whether a hopeless retry chain was cut short: a cluster-seeded
    /// walk abandoned in favour of the default schedule, or a full
    /// offset scan stopped at the shortened budget (with
    /// [`RetryOptConfig::early_terminate`]).
    pub early_terminated: bool,
}

/// Park-et-al-style retry-chain optimizations (arXiv 2104.09611),
/// individually switchable. All off by default — the conservative
/// setting reproduces the unoptimized chain bit for bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RetryOptConfig {
    /// Cold reads (default start, no seed) jump to an offset predicted
    /// from the block's P/E count and retention age after the first
    /// failed sensing, instead of stepping one offset at a time.
    pub predict: bool,
    /// Retry steps speculate two offsets ahead per sensing, halving long
    /// walks (rounded up — the final fine-tune step still lands exactly).
    pub speculate: bool,
    /// Uncorrectable-fault full scans stop at half the offset budget
    /// (soft-decision sensing recognizes a hopeless chain early).
    pub early_terminate: bool,
}

impl RetryOptConfig {
    /// Every optimization enabled (`--retry-opt on`).
    pub fn on() -> Self {
        RetryOptConfig {
            predict: true,
            speculate: true,
            early_terminate: true,
        }
    }
}

/// The read-retry engine for one chip.
#[derive(Debug, Clone)]
pub struct RetryEngine {
    model: CalibratedModel,
    opt: RetryOptConfig,
}

impl RetryEngine {
    /// Creates an engine from the calibrated model, with every
    /// retry-chain optimization off.
    pub fn new(model: CalibratedModel) -> Self {
        RetryEngine {
            model,
            opt: RetryOptConfig::default(),
        }
    }

    /// Sets the retry-chain optimization switches.
    pub fn set_opt(&mut self, opt: RetryOptConfig) {
        self.opt = opt;
    }

    /// The current retry-chain optimization switches.
    pub fn opt(&self) -> RetryOptConfig {
        self.opt
    }

    /// The ground-truth optimal offset index of `wl`'s h-layer under the
    /// current conditions.
    ///
    /// The shift grows with retention time and P/E wear, scaled by the
    /// layer's aging sensitivity — so different h-layers of one block
    /// have different optima (§4.2: "each h-layer in a block has
    /// different D"), while WLs of one h-layer share one.
    pub fn optimal_offset(&self, process: &ProcessModel, wl: WlAddr, env: &Environment) -> u8 {
        let pe = env.pe(wl.block.0 as usize);
        let months = env.effective_retention_months_of(wl.block.0 as usize);
        let sens = process.aging_sensitivity(wl.block, wl.h.0);
        let factor = process.layer_factor(wl.block, wl.h.0);
        let x = f64::from(pe) / 2000.0;
        let t = (months / 12.0).max(0.0);
        // Retention dominates the shift; wear steepens it. The layer
        // factor spreads the optimum across h-layers.
        let shift = (2.1 * t.powf(0.3) * (0.25 + x) * sens * (0.6 + 0.4 * factor))
            / self.model.retry.shift_per_step;
        (shift.round() as i64).clamp(0, i64::from(MAX_OFFSET_INDEX)) as u8
    }

    /// Samples the ambient thermal jitter for one read: a ±1 step shift
    /// of the effective optimum that occurs with
    /// [`RetryModel::thermal_jitter_prob`](crate::config::RetryModel::thermal_jitter_prob)
    /// while data sits under retention. Returns 0 for fresh data
    /// (including blocks whose retention clock was reset by a scrub).
    pub fn sample_thermal_jitter(&self, env: &mut Environment, block: usize) -> i8 {
        if env.effective_retention_months_of(block) <= 0.0 {
            return 0;
        }
        let p = self.model.retry.thermal_jitter_prob;
        if env.sample_uniform() < p {
            if env.sample_uniform() < 0.5 {
                -1
            } else {
                1
            }
        } else {
            0
        }
    }

    /// Whether a read of `wl` at this aging state needs the retry path at
    /// all when started from the *device default* references.
    ///
    /// Matches the probabilistic model of §6.2: 0% of reads retry when
    /// fresh, 30% at 2K P/E + 1 month, 90% at 2K P/E + 1 year. The
    /// per-read draw comes from `env`'s deterministic RNG stream.
    pub fn needs_retry_at_default(
        &self,
        process: &ProcessModel,
        wl: WlAddr,
        env: &mut Environment,
    ) -> bool {
        let optimal = self.optimal_offset(process, wl, env);
        if optimal == 0 {
            return false;
        }
        let p = self.retry_need_probability(env, wl.block.0 as usize);
        env.sample_uniform() < p
    }

    /// The probability that a read of a page in `block` needs retries
    /// under the environment's aging condition (linear interpolation of
    /// the §6.2 anchors over retention time at 2K P/E).
    pub fn retry_need_probability(&self, env: &Environment, block: usize) -> f64 {
        let months = env.effective_retention_months_of(block);
        let pe_frac = (f64::from(env.pe(block)) / 2000.0).min(1.0);
        let need = &self.model.retry.retry_need;
        let by_retention = if months <= 0.0 {
            0.0
        } else if months <= 1.0 {
            need[1] * months
        } else {
            need[1] + (need[2] - need[1]) * ((months - 1.0) / 11.0).min(1.0)
        };
        by_retention * pe_frac
    }

    /// The offset a PS-*unaware* predictor would jump to for a cold read
    /// of `block`: the central shift under the block's P/E count and
    /// retention age, with neutral layer sensitivity (Luo et al., arXiv
    /// 1807.05140: condition the prediction on wear and retention).
    /// Deterministic — no RNG draw, so enabling prediction never
    /// perturbs the simulation's random stream.
    pub fn predicted_offset(&self, env: &Environment, block: usize) -> u8 {
        let pe = env.pe(block);
        let months = env.effective_retention_months_of(block);
        let x = f64::from(pe) / 2000.0;
        let t = (months / 12.0).max(0.0);
        // The optimal-offset formula with sens = 1 and the central layer
        // factor 0.5 — what is knowable without per-layer monitoring.
        let shift = (2.1 * t.powf(0.3) * (0.25 + x) * 0.8) / self.model.retry.shift_per_step;
        (shift.round() as i64).clamp(0, i64::from(MAX_OFFSET_INDEX)) as u8
    }

    /// The retry-chain cost of reaching `optimal` from `params`:
    /// `(retries, early_terminated)`.
    ///
    /// * Plain chain: one retry per offset step, `|start − optimal|`.
    /// * Seeded chain: the walk from the seed races the embedded default
    ///   schedule; when the default walk (`optimal` steps from offset 0)
    ///   is strictly shorter, the seed is abandoned — early termination
    ///   of a hopeless chain — and the default cost is paid. A seed can
    ///   never lose to a cold start.
    /// * `predict`: a cold read (default start, unseeded) spends one
    ///   retry jumping to [`RetryEngine::predicted_offset`], then walks
    ///   from there — taken only when it beats the plain walk.
    /// * `speculate`: chains longer than one step sense two offsets per
    ///   retry (rounded up).
    fn chain_cost(
        &self,
        params: ReadParams,
        optimal: u8,
        env: &Environment,
        block: usize,
    ) -> (u32, bool) {
        let walk = u32::from(params.start_offset.abs_diff(optimal));
        // Cost of the predicted jump (one retry to move there, then the
        // residual walk), when prediction is on and has something to say.
        let jump = self
            .opt
            .predict
            .then(|| self.predicted_offset(env, block))
            .filter(|&p| p > 0)
            .map(|p| 1 + u32::from(p.abs_diff(optimal)));
        let (mut cost, mut early_terminated) = if params.seeded {
            // The seed races every schedule the controller could have
            // used without it — the embedded default walk and, when
            // prediction is on, the predicted jump — so a seed can never
            // lose to a cold start, optimized or not.
            let mut fallback = u32::from(optimal);
            if let Some(j) = jump {
                fallback = fallback.min(j);
            }
            if fallback < walk {
                (fallback, true)
            } else {
                (walk, false)
            }
        } else {
            let mut c = walk;
            // Prediction applies to cold reads only: a warm non-default
            // start is already the block's own cached optimum.
            if params.start_offset == 0 {
                if let Some(j) = jump {
                    c = c.min(j);
                }
            }
            (c, false)
        };
        if self.opt.speculate && cost > 1 {
            cost = cost.div_ceil(2);
        }
        if cost == 0 {
            early_terminated = false;
        }
        (cost, early_terminated)
    }

    /// Executes one page read of `wl` starting from `params.start_offset`.
    ///
    /// `needs_retry` is the outcome of
    /// [`RetryEngine::needs_retry_at_default`] (sampled once per read by
    /// the chip); `disturbed` marks a sudden ambient change that moves the
    /// optimum by one step, modelling ORT mispredictions (§4.2);
    /// `thermal_jitter` is the per-read ±1 drift sampled by
    /// [`RetryEngine::sample_thermal_jitter`].
    #[allow(clippy::too_many_arguments)]
    pub fn read(
        &self,
        process: &ProcessModel,
        wl: WlAddr,
        env: &Environment,
        params: ReadParams,
        needs_retry: bool,
        disturbed: bool,
        thermal_jitter: i8,
    ) -> RetryOutcome {
        let base = self.optimal_offset(process, wl, env);
        let mut optimal = (i16::from(base) + i16::from(thermal_jitter))
            .clamp(0, i16::from(MAX_OFFSET_INDEX)) as u8;
        if disturbed {
            optimal = (optimal + 1).min(MAX_OFFSET_INDEX);
        }

        let t = &self.model.timing;
        if !needs_retry {
            // The page decodes at the starting references: either the
            // shift is benign at this aging state, or the cached offset
            // is already optimal. Starting *at* the optimum always
            // decodes first try.
            return RetryOutcome {
                retries: 0,
                latency_us: t.t_read_us,
                final_offset: if params.start_offset == optimal {
                    optimal
                } else {
                    params.start_offset
                },
                first_try: true,
                early_terminated: false,
            };
        }

        // The retry loop walks offsets away from the starting point until
        // it hits the optimum (Fig. 4: `V_Ref` is adjusted by one offset
        // per retry); seeding and the chain optimizations only shorten
        // that walk — the chain always ends decoding at the optimum.
        let (retries, early_terminated) =
            self.chain_cost(params, optimal, env, wl.block.0 as usize);
        RetryOutcome {
            retries,
            latency_us: t.t_read_us + f64::from(retries) * t.t_retry_us,
            final_offset: optimal,
            first_try: retries == 0,
            early_terminated,
        }
    }

    /// Fault-injection hook around [`RetryEngine::read`]: applies an
    /// injected read fault to the retry search.
    ///
    /// * [`ReadFaultKind::StuckRetry`] — the cached `ΔV_Ref` has drifted
    ///   stale: the effective optimum moves (+2 steps) and the retry path
    ///   is forced, so the read pays at least one corrective retry and
    ///   reports the refreshed working offset for the FTL's ORT.
    /// * [`ReadFaultKind::Uncorrectable`] — the first attempt fails even
    ///   near the optimum; the controller falls back to a full offset
    ///   scan (one retry per offset level) before the page decodes. Data
    ///   is always recovered — the fault costs latency, never integrity.
    #[allow(clippy::too_many_arguments)]
    pub fn read_faulted(
        &self,
        process: &ProcessModel,
        wl: WlAddr,
        env: &Environment,
        params: ReadParams,
        needs_retry: bool,
        disturbed: bool,
        thermal_jitter: i8,
        fault: Option<ReadFaultKind>,
    ) -> RetryOutcome {
        let t = &self.model.timing;
        match fault {
            None => self.read(
                process,
                wl,
                env,
                params,
                needs_retry,
                disturbed,
                thermal_jitter,
            ),
            Some(ReadFaultKind::StuckRetry) => {
                let stale_jitter = thermal_jitter.saturating_add(2);
                let mut out = self.read(process, wl, env, params, true, disturbed, stale_jitter);
                if out.retries == 0 {
                    // The drifted optimum collided with the cached offset;
                    // the stale entry still costs one corrective retry.
                    out.retries = 1;
                    out.latency_us += t.t_retry_us;
                    out.first_try = false;
                }
                out
            }
            Some(ReadFaultKind::Uncorrectable) => {
                let mut out = self.read(process, wl, env, params, true, disturbed, thermal_jitter);
                let full_scan = u32::from(MAX_OFFSET_INDEX) + 1;
                // With early termination on, soft-decision sensing stops
                // the hopeless scan at half the offset budget.
                let scan = if self.opt.early_terminate {
                    out.early_terminated = true;
                    full_scan / 2
                } else {
                    full_scan
                };
                out.retries = out.retries.max(scan);
                out.latency_us = t.t_read_us + f64::from(out.retries) * t.t_retry_us;
                out.first_try = false;
                out
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CalibratedModel;
    use crate::environment::AgingState;
    use crate::geometry::{BlockId, Geometry};

    fn setup() -> (RetryEngine, ProcessModel, Environment) {
        let model = CalibratedModel::default();
        let geometry = Geometry::paper();
        let process = ProcessModel::new(geometry, model.reliability, 7);
        let env = Environment::new(geometry.blocks_per_chip as usize, 3);
        (RetryEngine::new(model), process, env)
    }

    #[test]
    fn fresh_chips_never_retry() {
        let (engine, process, mut env) = setup();
        env.set_aging(AgingState::Fresh);
        let g = *process.geometry();
        for b in 0..8u32 {
            for h in (0..48u16).step_by(7) {
                let wl = g.wl_addr(BlockId(b), h, 0);
                assert_eq!(engine.optimal_offset(&process, wl, &env), 0);
                assert!(!engine.needs_retry_at_default(&process, wl, &mut env));
            }
        }
    }

    #[test]
    fn optimal_offset_shared_within_hlayer() {
        // §4.2: the optimum is an h-layer property.
        let (engine, process, mut env) = setup();
        env.set_aging(AgingState::EndOfLife);
        let g = *process.geometry();
        for h in [0u16, 15, 33, 47] {
            let offsets: Vec<u8> = (0..4u16)
                .map(|v| engine.optimal_offset(&process, g.wl_addr(BlockId(9), h, v), &env))
                .collect();
            assert!(offsets.windows(2).all(|w| w[0] == w[1]), "{offsets:?}");
        }
    }

    #[test]
    fn optimal_offsets_differ_across_hlayers() {
        let (engine, process, mut env) = setup();
        env.set_aging(AgingState::EndOfLife);
        let g = *process.geometry();
        let offsets: Vec<u8> = (0..48u16)
            .map(|h| engine.optimal_offset(&process, g.wl_addr(BlockId(9), h, 0), &env))
            .collect();
        let distinct: std::collections::HashSet<u8> = offsets.iter().copied().collect();
        assert!(
            distinct.len() >= 2,
            "all h-layers share one offset: {offsets:?}"
        );
    }

    #[test]
    fn offset_grows_with_aging() {
        let (engine, process, mut env) = setup();
        let wl = process.geometry().wl_addr(BlockId(4), 24, 0);
        env.set_aging(AgingState::Fresh);
        let fresh = engine.optimal_offset(&process, wl, &env);
        env.set_aging(AgingState::MidLife);
        let mid = engine.optimal_offset(&process, wl, &env);
        env.set_aging(AgingState::EndOfLife);
        let old = engine.optimal_offset(&process, wl, &env);
        assert!(fresh <= mid && mid <= old);
        assert!(old > fresh, "offsets must move over life");
    }

    #[test]
    fn retry_need_fractions_match_paper() {
        let (engine, _process, mut env) = setup();
        env.set_aging(AgingState::Fresh);
        assert_eq!(engine.retry_need_probability(&env, 0), 0.0);
        env.set_aging(AgingState::MidLife);
        assert!((engine.retry_need_probability(&env, 0) - 0.30).abs() < 1e-9);
        env.set_aging(AgingState::EndOfLife);
        assert!((engine.retry_need_probability(&env, 0) - 0.90).abs() < 1e-9);
    }

    #[test]
    fn unaware_read_pays_distance_aware_read_pays_zero() {
        let (engine, process, mut env) = setup();
        env.set_aging(AgingState::EndOfLife);
        let wl = process.geometry().wl_addr(BlockId(11), 40, 2);
        let optimal = engine.optimal_offset(&process, wl, &env);
        assert!(optimal > 0);

        let unaware = engine.read(&process, wl, &env, ReadParams::default(), true, false, 0);
        assert_eq!(unaware.retries, u32::from(optimal));
        assert!(!unaware.first_try);
        assert_eq!(unaware.final_offset, optimal);

        let aware = engine.read(
            &process,
            wl,
            &env,
            ReadParams::from_offset(optimal),
            true,
            false,
            0,
        );
        assert_eq!(aware.retries, 0);
        assert!(aware.first_try);
        assert!(aware.latency_us < unaware.latency_us);
    }

    #[test]
    fn disturbance_costs_one_retry_for_aware_reads() {
        let (engine, process, mut env) = setup();
        env.set_aging(AgingState::EndOfLife);
        let wl = process.geometry().wl_addr(BlockId(11), 20, 1);
        let optimal = engine.optimal_offset(&process, wl, &env);
        assert!(optimal < MAX_OFFSET_INDEX, "need headroom for the shift");
        let out = engine.read(
            &process,
            wl,
            &env,
            ReadParams::from_offset(optimal),
            true,
            true,
            0,
        );
        assert_eq!(out.retries, 1);
        assert_eq!(out.final_offset, optimal + 1);
    }

    #[test]
    fn latency_is_linear_in_retries() {
        let (engine, process, mut env) = setup();
        env.set_aging(AgingState::EndOfLife);
        let g = *process.geometry();
        let t = NandTimingRef(&engine);
        for h in 0..48u16 {
            let wl = g.wl_addr(BlockId(2), h, 0);
            let out = engine.read(&process, wl, &env, ReadParams::default(), true, false, 0);
            let expected =
                t.0.model.timing.t_read_us + f64::from(out.retries) * t.0.model.timing.t_retry_us;
            assert!((out.latency_us - expected).abs() < 1e-9);
        }
    }

    struct NandTimingRef<'a>(&'a RetryEngine);

    #[test]
    fn seeded_chain_never_loses_to_cold_start() {
        let (engine, process, mut env) = setup();
        env.set_aging(AgingState::EndOfLife);
        let g = *process.geometry();
        for h in 0..48u16 {
            let wl = g.wl_addr(BlockId(5), h, 0);
            for jitter in [-1i8, 0, 1] {
                let cold = engine.read(
                    &process,
                    wl,
                    &env,
                    ReadParams::default(),
                    true,
                    false,
                    jitter,
                );
                for seed in 0..=MAX_OFFSET_INDEX {
                    let seeded = engine.read(
                        &process,
                        wl,
                        &env,
                        ReadParams::seeded_from(seed),
                        true,
                        false,
                        jitter,
                    );
                    assert!(
                        seeded.retries <= cold.retries,
                        "seed {seed} at h {h} jitter {jitter}: {} > {}",
                        seeded.retries,
                        cold.retries
                    );
                    assert_eq!(seeded.final_offset, cold.final_offset);
                }
            }
        }
    }

    #[test]
    fn hopeless_seed_early_terminates_to_the_default_walk() {
        let (engine, process, mut env) = setup();
        env.set_aging(AgingState::MidLife);
        let g = *process.geometry();
        // Find an h-layer whose optimum is 1: a seed at MAX is hopeless
        // (walk 6+), the embedded default schedule wins in 1.
        let wl = (0..48u16)
            .map(|h| g.wl_addr(BlockId(3), h, 0))
            .find(|&wl| engine.optimal_offset(&process, wl, &env) == 1)
            .expect("some h-layer has optimum 1 at midlife");
        let out = engine.read(
            &process,
            wl,
            &env,
            ReadParams::seeded_from(MAX_OFFSET_INDEX),
            true,
            false,
            0,
        );
        assert_eq!(out.retries, 1, "pays the default walk, not the seed walk");
        assert!(
            out.early_terminated,
            "the hopeless seed chain was abandoned"
        );

        // A perfect seed decodes first-try and is not an early termination.
        let exact = engine.read(
            &process,
            wl,
            &env,
            ReadParams::seeded_from(1),
            true,
            false,
            0,
        );
        assert_eq!(exact.retries, 0);
        assert!(!exact.early_terminated);
    }

    #[test]
    fn prediction_shortcuts_cold_walks() {
        let (mut engine, process, mut env) = setup();
        env.set_aging(AgingState::EndOfLife);
        let g = *process.geometry();
        let wl = (0..48u16)
            .map(|h| g.wl_addr(BlockId(7), h, 0))
            .max_by_key(|&wl| engine.optimal_offset(&process, wl, &env))
            .unwrap();
        let optimal = engine.optimal_offset(&process, wl, &env);
        assert!(optimal >= 3, "need a long cold walk to shortcut");
        let plain = engine.read(&process, wl, &env, ReadParams::default(), true, false, 0);
        assert_eq!(plain.retries, u32::from(optimal));

        engine.set_opt(RetryOptConfig {
            predict: true,
            speculate: false,
            early_terminate: false,
        });
        let predicted = engine.read(&process, wl, &env, ReadParams::default(), true, false, 0);
        let p = engine.predicted_offset(&env, wl.block.0 as usize);
        assert!(p > 0, "aged block has a nonzero predicted shift");
        assert_eq!(
            predicted.retries,
            u32::from(optimal).min(1 + u32::from(p.abs_diff(optimal)))
        );
        assert!(predicted.retries < plain.retries);
        // Prediction never touches warm (nonzero-start) or seeded reads.
        let warm = engine.read(
            &process,
            wl,
            &env,
            ReadParams::from_offset(optimal),
            true,
            false,
            0,
        );
        assert_eq!(warm.retries, 0);
    }

    #[test]
    fn speculative_stepping_halves_long_chains() {
        let (mut engine, process, mut env) = setup();
        env.set_aging(AgingState::EndOfLife);
        let g = *process.geometry();
        let wl = (0..48u16)
            .map(|h| g.wl_addr(BlockId(7), h, 0))
            .max_by_key(|&wl| engine.optimal_offset(&process, wl, &env))
            .unwrap();
        let plain = engine.read(&process, wl, &env, ReadParams::default(), true, false, 0);
        assert!(plain.retries > 1);
        engine.set_opt(RetryOptConfig {
            predict: false,
            speculate: true,
            early_terminate: false,
        });
        let spec = engine.read(&process, wl, &env, ReadParams::default(), true, false, 0);
        assert_eq!(spec.retries, plain.retries.div_ceil(2));
        assert_eq!(spec.final_offset, plain.final_offset);
    }

    #[test]
    fn retry_opt_default_is_all_off() {
        let opt = RetryOptConfig::default();
        assert!(!opt.predict && !opt.speculate && !opt.early_terminate);
        let on = RetryOptConfig::on();
        assert!(on.predict && on.speculate && on.early_terminate);
    }
}
