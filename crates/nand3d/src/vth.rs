//! A physical threshold-voltage (Vth) distribution model.
//!
//! The behavioral engines ([`ispp`](crate::ispp), [`read`](crate::read))
//! are calibrated directly against the paper's reported statistics; this
//! module provides the *physical underpinning* those statistics come
//! from: eight Gaussian Vth states (E, P1..P7) whose means shift and
//! widths grow with retention and wear, separated by read reference
//! voltages (paper Fig. 4).
//!
//! It is used to
//!
//! * regenerate Fig. 4 (the optimal-read-reference illustration, see
//!   `bench --bin fig04`),
//! * cross-validate the behavioral models: the overlap-derived BER grows
//!   with aging like [`ReliabilityModel`](crate::ReliabilityModel), the
//!   overlap-minimizing reference offsets drift like
//!   [`RetryEngine::optimal_offset`](crate::RetryEngine::optimal_offset),
//!   and compressing the program window (§4.1.2) measurably increases
//!   state overlap — the physical reason window shrinking consumes the
//!   spare margin `S_M`.

use crate::config::IsppModel;
use serde::{Deserialize, Serialize};

/// Number of Vth states of a TLC cell (E plus P1..P7).
pub const NUM_STATES: usize = 8;

/// One Gaussian Vth state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VthState {
    /// Mean threshold voltage, volts.
    pub mean_v: f64,
    /// Standard deviation, volts.
    pub sigma_v: f64,
}

impl VthState {
    /// Probability that a cell of this state lies *above* `v` (upper
    /// Gaussian tail).
    pub fn tail_above(&self, v: f64) -> f64 {
        0.5 * erfc((v - self.mean_v) / (self.sigma_v * std::f64::consts::SQRT_2))
    }

    /// Probability that a cell of this state lies *below* `v`.
    pub fn tail_below(&self, v: f64) -> f64 {
        1.0 - self.tail_above(v)
    }
}

/// A full TLC Vth landscape: eight states and seven read references.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VthLandscape {
    /// The eight states, E first.
    pub states: [VthState; NUM_STATES],
    /// Default read reference voltages `V_Ref(1..7)`; `V_Ref(i)`
    /// separates `P(i-1)` from `Pi`.
    pub default_refs: [f64; NUM_STATES - 1],
    /// Voltage step of one `ΔV_Ref` retry offset.
    pub ref_step_v: f64,
}

/// Operating conditions the landscape is evaluated under.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VthConditions {
    /// Process factor of the WL's h-layer (≥ ~1, from
    /// [`ProcessModel`](crate::ProcessModel)).
    pub layer_factor: f64,
    /// P/E cycles.
    pub pe: u32,
    /// Retention months.
    pub retention_months: f64,
    /// Total `V_Start`/`V_Final` window compression applied at program
    /// time, mV (0 for the default window).
    pub window_shrink_mv: f64,
}

impl Default for VthConditions {
    fn default() -> Self {
        VthConditions {
            layer_factor: 1.0,
            pe: 0,
            retention_months: 0.0,
            window_shrink_mv: 0.0,
        }
    }
}

/// The Vth model: derives a [`VthLandscape`] for given conditions.
#[derive(Debug, Clone)]
pub struct VthModel {
    /// Erase-state mean, volts.
    erase_mean_v: f64,
    /// P1 mean under the default window, volts.
    p1_mean_v: f64,
    /// Spacing between adjacent programmed states, volts.
    state_gap_v: f64,
    /// Fresh per-state σ, volts.
    base_sigma_v: f64,
    /// Retention shift of the highest state after 12 months at 2K P/E,
    /// volts (higher states lose more charge).
    retention_shift_v: f64,
    /// σ growth at end of life (fraction).
    wear_sigma_growth: f64,
    ref_step_v: f64,
}

impl Default for VthModel {
    fn default() -> Self {
        VthModel {
            erase_mean_v: -2.0,
            p1_mean_v: 0.6,
            state_gap_v: 0.75,
            base_sigma_v: 0.100,
            retention_shift_v: 0.30,
            wear_sigma_growth: 0.30,
            ref_step_v: 0.06,
        }
    }
}

impl VthModel {
    /// A model whose reference step matches the ISPP window quantization
    /// (so offset indices here and in the retry engine are commensurate).
    pub fn from_ispp(_ispp: &IsppModel) -> Self {
        VthModel::default()
    }

    /// Derives the Vth landscape under `cond`.
    pub fn landscape(&self, cond: &VthConditions) -> VthLandscape {
        let x = f64::from(cond.pe) / 2000.0;
        let t = (cond.retention_months / 12.0).max(0.0);
        let shrink_v = cond.window_shrink_mv / 1000.0;

        // Window compression squeezes the programmed states together
        // (V_Start up pushes P1 higher, V_Final down pulls P7 lower).
        let p1 = self.p1_mean_v + shrink_v * 0.5 / 7.0;
        let gap = self.state_gap_v - shrink_v / 7.0;

        // Retention: higher states lose more charge (their floating
        // charge is larger), sub-linear in time (early charge loss);
        // wear steepens the loss and widens every state.
        let loss = self.retention_shift_v * t.powf(0.45) * (0.35 + x) * cond.layer_factor.sqrt();
        let sigma = self.base_sigma_v
            * (1.0 + self.wear_sigma_growth * x)
            * (0.8 + 0.2 * cond.layer_factor);

        let mut states = [VthState {
            mean_v: 0.0,
            sigma_v: sigma,
        }; NUM_STATES];
        states[0].mean_v = self.erase_mean_v + 0.15 * loss; // E drifts up slightly
        states[0].sigma_v = sigma * 1.5; // the erase state is broad
        for (i, state) in states.iter_mut().enumerate().skip(1) {
            let nominal = p1 + gap * (i as f64 - 1.0);
            let state_loss = loss * (i as f64 / 7.0);
            state.mean_v = nominal - state_loss;
        }

        // Default references sit midway between the *fresh* state means.
        let mut default_refs = [0.0; NUM_STATES - 1];
        for (i, r) in default_refs.iter_mut().enumerate() {
            let lo = if i == 0 {
                self.erase_mean_v
            } else {
                self.p1_mean_v + self.state_gap_v * (i as f64 - 1.0)
            };
            let hi = self.p1_mean_v + self.state_gap_v * i as f64;
            *r = (lo + hi) / 2.0;
        }

        VthLandscape {
            states,
            default_refs,
            ref_step_v: self.ref_step_v,
        }
    }
}

impl VthLandscape {
    /// Raw BER when reading with the retry table at `offset` steps (the
    /// mechanism of Fig. 4): one offset index selects a *coordinated*
    /// shift of all seven references, scaled per level because higher
    /// states lose more charge (this is how vendor retry tables — and
    /// the paper's `D` sets of seven `ΔV_Ref`s — are organized). The
    /// result is the adjacent-state overlap averaged over the seven
    /// boundaries.
    pub fn ber_at_offset(&self, offset: u8) -> f64 {
        let mut errors = 0.0;
        for i in 0..NUM_STATES - 1 {
            let level_scale = (i + 1) as f64 / (NUM_STATES - 1) as f64;
            let shift = f64::from(offset) * self.ref_step_v * level_scale;
            let r = self.default_refs[i] - shift;
            // Cells of the lower state read as the upper one and vice
            // versa.
            errors += self.states[i].tail_above(r);
            errors += self.states[i + 1].tail_below(r);
        }
        errors / (NUM_STATES - 1) as f64 / 2.0
    }

    /// The offset index minimizing the overlap BER (the ground truth the
    /// retry search of §2.3 converges to).
    pub fn optimal_offset(&self, max_offset: u8) -> u8 {
        (0..=max_offset)
            .min_by(|a, b| {
                self.ber_at_offset(*a)
                    .partial_cmp(&self.ber_at_offset(*b))
                    .expect("finite BER")
            })
            .unwrap_or(0)
    }

    /// The `BER_EP1` analogue: overlap between the erase state and P1 at
    /// the first reference.
    pub fn ber_ep1(&self) -> f64 {
        let r = self.default_refs[0];
        (self.states[0].tail_above(r) + self.states[1].tail_below(r)) / 2.0
    }
}

/// Complementary error function (Abramowitz–Stegun 7.1.26 rational
/// approximation; max absolute error ≈ 1.5e-7, ample for BER work).
pub fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let erfc_pos = poly * (-x * x).exp();
    if sign_negative {
        2.0 - erfc_pos
    } else {
        erfc_pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn landscape(pe: u32, months: f64) -> VthLandscape {
        VthModel::default().landscape(&VthConditions {
            layer_factor: 1.1,
            pe,
            retention_months: months,
            window_shrink_mv: 0.0,
        })
    }

    #[test]
    fn erfc_matches_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-5);
        assert!((erfc(-1.0) - 1.842_700_8).abs() < 1e-5);
        assert!(erfc(5.0) < 2e-12);
        assert!((erfc(-5.0) - 2.0).abs() < 2e-12);
    }

    #[test]
    fn states_are_ordered_and_separated_when_fresh() {
        let l = landscape(0, 0.0);
        for w in l.states.windows(2) {
            assert!(w[0].mean_v < w[1].mean_v, "states out of order");
            // At least 3σ of separation when fresh.
            assert!(w[1].mean_v - w[0].mean_v > 3.0 * w[0].sigma_v.min(w[1].sigma_v));
        }
    }

    #[test]
    fn fresh_ber_is_negligible_at_default_refs() {
        let l = landscape(0, 0.0);
        assert!(
            l.ber_at_offset(0) < 1e-3,
            "fresh BER {}",
            l.ber_at_offset(0)
        );
        assert_eq!(l.optimal_offset(7), 0, "fresh optimum is the default");
    }

    #[test]
    fn retention_shifts_the_optimum_like_the_retry_engine() {
        // The overlap-minimizing offset must drift up with retention,
        // the same qualitative behaviour the behavioral retry engine is
        // calibrated to.
        let fresh = landscape(2000, 0.0).optimal_offset(7);
        let month = landscape(2000, 1.0).optimal_offset(7);
        let year = landscape(2000, 12.0).optimal_offset(7);
        assert!(fresh <= month && month <= year);
        assert!(year >= 2, "1-year optimum {year} should be several steps");
    }

    #[test]
    fn reading_at_the_optimum_beats_the_default_when_aged() {
        let l = landscape(2000, 12.0);
        let opt = l.optimal_offset(7);
        assert!(opt > 0);
        assert!(
            l.ber_at_offset(opt) < 0.5 * l.ber_at_offset(0),
            "optimal {} vs default {}",
            l.ber_at_offset(opt),
            l.ber_at_offset(0)
        );
    }

    #[test]
    fn ber_grows_monotonically_with_aging() {
        let fresh = landscape(0, 0.0).ber_at_offset(0);
        let mid = landscape(2000, 1.0).ber_at_offset(0);
        let old = landscape(2000, 12.0).ber_at_offset(0);
        assert!(fresh < mid && mid < old);
    }

    #[test]
    fn window_compression_increases_overlap() {
        // The physical reason §4.1.2's adjustment consumes spare margin.
        let model = VthModel::default();
        let mut prev = 0.0;
        for shrink in [0.0, 160.0, 320.0, 480.0] {
            let l = model.landscape(&VthConditions {
                layer_factor: 1.0,
                pe: 2000,
                retention_months: 12.0,
                window_shrink_mv: shrink,
            });
            let ber = l.ber_at_offset(l.optimal_offset(7));
            assert!(ber >= prev, "shrink {shrink} reduced BER?");
            prev = ber;
        }
    }

    #[test]
    fn worse_layers_have_higher_overlap_ber() {
        let model = VthModel::default();
        let good = model.landscape(&VthConditions {
            layer_factor: 1.0,
            pe: 2000,
            retention_months: 12.0,
            window_shrink_mv: 0.0,
        });
        let bad = model.landscape(&VthConditions {
            layer_factor: 1.6,
            pe: 2000,
            retention_months: 12.0,
            window_shrink_mv: 0.0,
        });
        assert!(bad.ber_at_offset(0) > good.ber_at_offset(0));
    }

    #[test]
    fn ber_ep1_tracks_overall_health() {
        // Footnote 1: E↔P1 errors reflect the NAND health status.
        let fresh = landscape(0, 0.0).ber_ep1();
        let old = landscape(2000, 12.0).ber_ep1();
        assert!(old > fresh);
    }

    #[test]
    fn tails_are_complementary() {
        let s = VthState {
            mean_v: 1.0,
            sigma_v: 0.1,
        };
        for v in [0.5, 1.0, 1.5] {
            assert!((s.tail_above(v) + s.tail_below(v) - 1.0).abs() < 1e-12);
        }
        assert!((s.tail_above(1.0) - 0.5).abs() < 1e-9);
    }
}
