//! The manufacturing-process variation model.
//!
//! 3D NAND channel holes are etched in one pass from the top h-layer down
//! to the substrate (paper §2.1). The high aspect ratio of the holes makes
//! their diameter and shape vary with depth, which is the *root cause* of
//! both process characteristics:
//!
//! * all WLs of one h-layer are etched by the same step at the same time →
//!   **intra-layer similarity** (only RTN-scale noise remains), and
//! * different h-layers see different hole geometry → **inter-layer
//!   variability**, strongest at the block edges (α/ω layers) plus a
//!   mid-stack rugged-hole region (κ layers) caused by etchant fluid
//!   dynamics.
//!
//! [`ProcessModel`] deterministically derives, from a seed, a
//! *layer factor* ≥ 1 for every (block, h-layer) pair: the multiplier the
//! reliability model applies to the base BER. Within an h-layer only a
//! tiny per-WL RTN term differs.

use crate::config::ReliabilityParams;
use crate::geometry::{BlockId, Geometry, WlAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-chip process variation.
///
/// Construction samples every (block, h-layer) factor up front so that
/// lookups during simulation are branch-free array reads.
#[derive(Debug, Clone)]
pub struct ProcessModel {
    geometry: Geometry,
    /// `layer_factor[block * hlayers + h]` — the deterministic reliability
    /// multiplier shared by all WLs of that h-layer.
    layer_factor: Vec<f64>,
    /// Per-block global multiplier (physical location on the wafer/die).
    block_factor: Vec<f64>,
    /// RTN noise per WL, a multiplicative factor ≈ 1 ± 1%.
    rtn: Vec<f64>,
    /// Aging-sensitivity cross coefficient per (block, h-layer): less
    /// reliable layers age faster (paper §3.3).
    aging_sensitivity: Vec<f64>,
    params: ReliabilityParams,
}

impl ProcessModel {
    /// Samples a process model for one chip.
    ///
    /// The same `(geometry, params, seed)` triple always produces the same
    /// model, which keeps every experiment reproducible.
    pub fn new(geometry: Geometry, params: ReliabilityParams, seed: u64) -> Self {
        let hlayers = usize::from(geometry.hlayers_per_block);
        let blocks = geometry.blocks_per_chip as usize;
        let wls = blocks * hlayers * usize::from(geometry.wls_per_hlayer);

        let mut rng = StdRng::seed_from_u64(seed);
        let mut layer_factor = Vec::with_capacity(blocks * hlayers);
        let mut block_factor = Vec::with_capacity(blocks);
        let mut aging_sensitivity = Vec::with_capacity(blocks * hlayers);

        for _ in 0..blocks {
            // Lognormal-ish per-block multiplier: exp(N(0, σ)).
            let g: f64 = sample_gaussian(&mut rng);
            block_factor.push((params.block_sigma * g).exp());
            for h in 0..hlayers {
                let profile = etching_profile(h, hlayers, &params);
                // Small per-(block, layer) jitter so the *pattern* of
                // inter-layer variability differs between blocks
                // (Fig. 6(d)): the same layer is not equally bad in every
                // block.
                let jitter = (params.block_sigma * sample_gaussian(&mut rng)).exp();
                let factor = profile * jitter;
                layer_factor.push(factor);
                // Worse layers age disproportionately faster; add noise so
                // the aging pattern is "not easily predictable" (§1, §3.3).
                let sens = 1.0
                    + params.aging_cross * (factor - 1.0)
                    + 0.15 * sample_gaussian(&mut rng).abs();
                aging_sensitivity.push(sens.max(0.2));
            }
        }

        let rtn = (0..wls)
            .map(|_| (params.rtn_sigma * sample_gaussian(&mut rng)).exp())
            .collect();

        ProcessModel {
            geometry,
            layer_factor,
            block_factor,
            rtn,
            aging_sensitivity,
            params,
        }
    }

    /// The geometry this model was sampled for.
    pub fn geometry(&self) -> &Geometry {
        &self.geometry
    }

    /// The reliability parameters the model was sampled with.
    pub fn params(&self) -> &ReliabilityParams {
        &self.params
    }

    #[inline]
    fn layer_index(&self, block: BlockId, h: u16) -> usize {
        block.0 as usize * usize::from(self.geometry.hlayers_per_block) + usize::from(h)
    }

    /// The deterministic reliability multiplier of one h-layer of one
    /// block (≥ ~1; larger means less reliable). Identical for all WLs of
    /// the h-layer — this is the intra-layer similarity.
    #[inline]
    pub fn layer_factor(&self, block: BlockId, h: u16) -> f64 {
        self.layer_factor[self.layer_index(block, h)] * self.block_factor[block.0 as usize]
    }

    /// How much faster this h-layer degrades with P/E + retention than the
    /// nominal rate (≥ 0.2; 1.0 = nominal).
    #[inline]
    pub fn aging_sensitivity(&self, block: BlockId, h: u16) -> f64 {
        self.aging_sensitivity[self.layer_index(block, h)]
    }

    /// The full per-WL factor: layer factor times the WL's random
    /// telegraph noise. The RTN term is the *only* thing distinguishing
    /// WLs of the same h-layer (footnote 2 of the paper bounds it <3%).
    #[inline]
    pub fn wl_factor(&self, wl: WlAddr) -> f64 {
        self.layer_factor(wl.block, wl.h.0) * self.rtn[self.geometry.wl_flat(wl)]
    }

    /// The layer indices the paper uses as named exemplars, mapped onto
    /// this geometry: (α, β, κ, ω) = (top edge, most reliable, mid-stack
    /// rugged region, bottom edge).
    pub fn exemplar_layers(&self) -> [u16; 4] {
        let n = self.geometry.hlayers_per_block;
        let alpha = 0;
        let omega = n - 1;
        let kappa = ((f64::from(n) * self.params.mid_bump_center).round() as u16).min(n - 1);
        // β: the layer with the lowest average factor across blocks.
        let mut best = (f64::INFINITY, 0u16);
        for h in 0..n {
            let avg: f64 = (0..self.geometry.blocks_per_chip)
                .map(|b| self.layer_factor(BlockId(b), h))
                .sum::<f64>()
                / f64::from(self.geometry.blocks_per_chip);
            if avg < best.0 {
                best = (avg, h);
            }
        }
        [alpha, best.1, kappa, omega]
    }
}

/// The deterministic depth profile of the etching process: reliability
/// multiplier as a function of h-layer position.
///
/// Layer 0 is the topmost layer. Both edges are degraded (channel-hole
/// widening at the top, tapering and rugged shapes at the bottom,
/// Fig. 2(b)), with an additional mid-stack bump.
fn etching_profile(h: usize, hlayers: usize, p: &ReliabilityParams) -> f64 {
    let h = h as f64;
    let n = hlayers as f64;
    let top = p.top_edge_amp * (-h / p.top_edge_decay).exp();
    let bottom = p.bottom_edge_amp * (-(n - 1.0 - h) / p.bottom_edge_decay).exp();
    let x = h / (n - 1.0);
    let mid = p.mid_bump_amp * (-((x - p.mid_bump_center) / p.mid_bump_width).powi(2)).exp();
    1.0 + top + bottom + mid
}

/// Standard-normal sample via Box–Muller (avoids depending on
/// `rand_distr`).
fn sample_gaussian<R: Rng>(rng: &mut R) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Geometry;

    fn model(seed: u64) -> ProcessModel {
        ProcessModel::new(Geometry::paper(), ReliabilityParams::default(), seed)
    }

    #[test]
    fn deterministic_for_same_seed() {
        let a = model(7);
        let b = model(7);
        let wl = a.geometry().wl_addr(BlockId(3), 20, 2);
        assert_eq!(a.wl_factor(wl), b.wl_factor(wl));
        assert_eq!(
            a.layer_factor(BlockId(5), 40),
            b.layer_factor(BlockId(5), 40)
        );
    }

    #[test]
    fn different_seeds_differ() {
        let a = model(7);
        let b = model(8);
        let wl = a.geometry().wl_addr(BlockId(3), 20, 2);
        assert_ne!(a.wl_factor(wl), b.wl_factor(wl));
    }

    #[test]
    fn intra_layer_similarity_is_rtn_scale() {
        // Paper footnote 2: intra-layer differences are <3% (RTN only).
        let m = model(11);
        let g = *m.geometry();
        for b in [0u32, 100, 400] {
            for h in [0u16, 10, 24, 47] {
                let factors: Vec<f64> = (0..g.wls_per_hlayer)
                    .map(|v| m.wl_factor(g.wl_addr(BlockId(b), h, v)))
                    .collect();
                let max = factors.iter().cloned().fold(f64::MIN, f64::max);
                let min = factors.iter().cloned().fold(f64::MAX, f64::min);
                assert!(
                    max / min < 1.08,
                    "intra-layer spread {} at block {b} layer {h}",
                    max / min
                );
            }
        }
    }

    #[test]
    fn edge_layers_are_less_reliable() {
        // Fig. 6(a): α (top) and ω (bottom) layers have high BER.
        let m = model(13);
        let g = *m.geometry();
        let avg = |h: u16| -> f64 {
            (0..g.blocks_per_chip)
                .map(|b| m.layer_factor(BlockId(b), h))
                .sum::<f64>()
                / f64::from(g.blocks_per_chip)
        };
        let mid = avg(12); // a "good" region away from edges and κ bump
        assert!(avg(0) > 1.25 * mid, "top edge {} vs mid {}", avg(0), mid);
        assert!(
            avg(47) > 1.25 * mid,
            "bottom edge {} vs mid {}",
            avg(47),
            mid
        );
    }

    #[test]
    fn exemplar_layers_are_distinct_and_ordered() {
        let m = model(17);
        let [alpha, beta, kappa, omega] = m.exemplar_layers();
        assert_eq!(alpha, 0);
        assert_eq!(omega, 47);
        assert!(beta != alpha && beta != omega && beta != kappa);
        // β must be the most reliable of the four exemplars on average.
        let g = *m.geometry();
        let avg = |h: u16| -> f64 {
            (0..g.blocks_per_chip)
                .map(|b| m.layer_factor(BlockId(b), h))
                .sum::<f64>()
                / f64::from(g.blocks_per_chip)
        };
        for other in [alpha, kappa, omega] {
            assert!(avg(beta) < avg(other));
        }
    }

    #[test]
    fn blocks_differ_in_variability_pattern() {
        // Fig. 6(d): per-block differences exist.
        let m = model(19);
        let a: Vec<f64> = (0..48).map(|h| m.layer_factor(BlockId(0), h)).collect();
        let b: Vec<f64> = (0..48).map(|h| m.layer_factor(BlockId(1), h)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn aging_sensitivity_correlates_with_factor() {
        let m = model(23);
        // On average across many layers, a higher factor should mean a
        // higher aging sensitivity (worse layers age faster, §3.3).
        let mut hi = Vec::new();
        let mut lo = Vec::new();
        for b in 0..50u32 {
            for h in 0..48u16 {
                let f = m.layer_factor(BlockId(b), h);
                let s = m.aging_sensitivity(BlockId(b), h);
                if f > 1.5 {
                    hi.push(s);
                } else if f < 1.1 {
                    lo.push(s);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&hi) > mean(&lo));
    }
}
