//! Criterion micro-benchmarks of the ISPP program engine (the hot path
//! of every simulated WL program).

use criterion::{criterion_group, criterion_main, Criterion};
use nand3d::ispp::{margin_mv_for_spare, split_margin_mv};
use nand3d::{BlockId, Environment, IsppEngine, NandConfig, ProcessModel, ProgramParams};
use std::hint::black_box;

fn bench_ispp(c: &mut Criterion) {
    let config = NandConfig::paper();
    let engine = IsppEngine::new(config.model);
    let process = ProcessModel::new(config.geometry, config.model.reliability, 1);
    let env = Environment::new(config.geometry.blocks_per_chip as usize, 2);
    let wl = config.geometry.wl_addr(BlockId(7), 24, 1);

    c.bench_function("ispp/characterize", |b| {
        b.iter(|| engine.characterize(black_box(&process), black_box(wl), &env, 0))
    });

    let chars = engine.characterize(&process, wl, &env, 0);
    c.bench_function("ispp/program_default", |b| {
        b.iter(|| {
            engine
                .program(black_box(&chars), &ProgramParams::default())
                .unwrap()
        })
    });

    let mut follower = ProgramParams::default();
    for (s, iv) in chars.intervals.iter().enumerate() {
        follower.n_skip[s] = iv.safe_skip();
    }
    let (up, down) = split_margin_mv(chars.safe_margin_mv, engine.ispp_model());
    follower.v_start_up_mv = up;
    follower.v_final_down_mv = down;
    c.bench_function("ispp/program_follower", |b| {
        b.iter(|| {
            engine
                .program(black_box(&chars), black_box(&follower))
                .unwrap()
        })
    });

    c.bench_function("ispp/margin_table", |b| {
        b.iter(|| margin_mv_for_spare(black_box(1.7), engine.ispp_model()))
    });
}

criterion_group!(benches, bench_ispp);
criterion_main!(benches);
