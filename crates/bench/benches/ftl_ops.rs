//! Criterion benchmarks of FTL operations: sustained WL writes (with GC)
//! and page reads, per FTL variant.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use ftl::{Ftl, FtlConfig, FtlKind};
use ssdsim::{FtlDriver, HostContext};
use std::hint::black_box;

fn ctx() -> HostContext {
    HostContext {
        buffer_utilization: 0.95,
        now_us: 0.0,
    }
}

fn bench_ftl(c: &mut Criterion) {
    let cfg = FtlConfig::small();

    let mut group = c.benchmark_group("ftl/write_wl");
    for kind in FtlKind::ALL {
        group.bench_function(kind.name(), |b| {
            // Fresh FTL per batch so GC state stays comparable.
            b.iter_batched_ref(
                || (Ftl::new(kind, cfg), 0u64),
                |(ftl, lpn)| {
                    let lpns = [*lpn % 900, (*lpn + 1) % 900, (*lpn + 2) % 900];
                    *lpn += 3;
                    black_box(ftl.write_wl(0, lpns, &ctx()));
                },
                BatchSize::NumIterations(256),
            )
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ftl/read_page");
    for kind in [FtlKind::Page, FtlKind::Cube] {
        let mut ftl = Ftl::new(kind, cfg);
        for i in 0..300u64 {
            let lpns = [i * 3, i * 3 + 1, i * 3 + 2];
            ftl.write_wl((i % 2) as usize, lpns, &ctx());
        }
        ftl.set_aging(nand3d::AgingState::EndOfLife);
        let mut lpn = 0u64;
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                lpn = (lpn + 7) % 900;
                black_box(ftl.read_page(lpn, &ctx()))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ftl);
criterion_main!(benches);
