//! Criterion micro-benchmarks of the read-retry engine: PS-unaware
//! (default references) vs PS-aware (ORT offset) reads.

use criterion::{criterion_group, criterion_main, Criterion};
use nand3d::{AgingState, BlockId, Environment, NandConfig, ProcessModel, ReadParams, RetryEngine};
use std::hint::black_box;

fn bench_read(c: &mut Criterion) {
    let config = NandConfig::paper();
    let engine = RetryEngine::new(config.model);
    let process = ProcessModel::new(config.geometry, config.model.reliability, 1);
    let mut env = Environment::new(config.geometry.blocks_per_chip as usize, 2);
    env.set_aging(AgingState::EndOfLife);
    let wl = config.geometry.wl_addr(BlockId(7), 40, 2);

    c.bench_function("read/optimal_offset", |b| {
        b.iter(|| engine.optimal_offset(black_box(&process), black_box(wl), &env))
    });

    let optimal = engine.optimal_offset(&process, wl, &env);
    c.bench_function("read/ps_unaware", |b| {
        b.iter(|| {
            engine.read(
                &process,
                black_box(wl),
                &env,
                ReadParams::default(),
                true,
                false,
                0,
            )
        })
    });
    c.bench_function("read/ps_aware", |b| {
        b.iter(|| {
            engine.read(
                &process,
                black_box(wl),
                &env,
                ReadParams::from_offset(optimal),
                true,
                false,
                0,
            )
        })
    });
}

criterion_group!(benches, bench_read);
criterion_main!(benches);
