//! Criterion benchmark of the full pipeline: workload generator →
//! closed-loop simulator → FTL → NAND model. Measures simulator
//! throughput (simulated host requests per wall-clock second) for the
//! paper's headline comparison pair.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use cubeftl::harness::{run_eval, EvalConfig};
use cubeftl::{AgingState, FtlKind, StandardWorkload};
use std::hint::black_box;

fn bench_end_to_end(c: &mut Criterion) {
    let cfg = EvalConfig::smoke();

    let mut group = c.benchmark_group("sim/mail_fresh");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cfg.requests));
    for kind in [FtlKind::Page, FtlKind::Cube] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                black_box(run_eval(
                    kind,
                    StandardWorkload::Mail,
                    AgingState::Fresh,
                    &cfg,
                ))
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("sim/rocks_eol");
    group.sample_size(10);
    group.throughput(Throughput::Elements(cfg.requests));
    for kind in [FtlKind::Page, FtlKind::Cube] {
        group.bench_function(kind.name(), |b| {
            b.iter(|| {
                black_box(run_eval(
                    kind,
                    StandardWorkload::Rocks,
                    AgingState::EndOfLife,
                    &cfg,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_end_to_end);
criterion_main!(benches);
