//! Sensitivity sweep: active blocks per chip × workload (the §5.2
//! memory/availability trade-off, swept across write intensities — the
//! ROADMAP §5.4 gap).
//!
//! One active block serializes every program on the chip's single open
//! block; more active blocks widen WAM's placement choice at the cost of
//! controller DRAM for per-block write points. The paper settles on two
//! (§5.2) from OLTP alone — this sweep shows where that choice holds and
//! where it leaves throughput behind, per workload.
//!
//! Results are emitted through the telemetry metric registry as NDJSON
//! (`sweep.active{n}.{workload}.*`), not ad-hoc prints: pipe them into
//! the same tooling that consumes `cubeftl-sim --metrics-out`. A
//! human-readable table still goes to stderr for interactive runs.
//!
//! Run with: `cargo run --release -p bench --bin active_sweep`
//! (`--out PATH` writes the NDJSON to a file instead of stdout).

use bench::{banner_err, eval_config_from_args, write_bench_json, Table};
use cubeftl::harness::run_eval_custom;
use cubeftl::{AgingState, FtlKind, MetricRegistry, StandardWorkload};
use std::time::Instant;

fn main() {
    let wall = Instant::now();
    let args: Vec<String> = std::env::args().collect();
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned());
    let mut cfg = eval_config_from_args();
    cfg.requests = cfg.requests.min(40_000);

    banner_err("sensitivity — active blocks per chip × workload (cubeFTL, fresh)");
    let mut reg = MetricRegistry::new();
    let mut table = Table::new([
        "workload",
        "active blocks",
        "IOPS",
        "p90 write (ms)",
        "GC runs",
        "WA(t)",
    ]);
    let workloads = [
        ("mail", StandardWorkload::Mail),
        ("web", StandardWorkload::Web),
        ("oltp", StandardWorkload::Oltp),
        ("rocks", StandardWorkload::Rocks),
    ];
    for (name, workload) in workloads {
        for blocks in [1usize, 2, 4] {
            let mut ftl_cfg = cfg.ftl_config();
            ftl_cfg.active_blocks_per_chip = blocks;
            // GC must keep at least one free block per write point.
            ftl_cfg.gc_free_block_threshold = ftl_cfg.gc_free_block_threshold.max(blocks);
            let r = run_eval_custom(FtlKind::Cube, workload, AgingState::Fresh, &cfg, ftl_cfg);
            let prefix = format!("sweep.active{blocks}.{name}");
            reg.gauge(&format!("{prefix}.iops"), r.iops);
            reg.gauge(
                &format!("{prefix}.p90_write_us"),
                r.write_latency.percentile(90.0),
            );
            reg.gauge(
                &format!("{prefix}.p99_read_us"),
                r.read_latency.percentile(99.0),
            );
            reg.counter(&format!("{prefix}.gc_runs"), r.ftl.gc_runs);
            reg.gauge(&format!("{prefix}.wa_total"), r.wa_total().unwrap_or(0.0));
            table.row([
                name.to_owned(),
                blocks.to_string(),
                format!("{:.0}", r.iops),
                format!("{:.3}", r.write_latency.percentile(90.0) / 1000.0),
                r.ftl.gc_runs.to_string(),
                format!("{:.2}", r.wa_total().unwrap_or(0.0)),
            ]);
        }
    }
    eprint!("{}", table.render());
    eprintln!("(the paper's choice of two active blocks per chip is §5.2)");

    reg.gauge("bench.wall_ms", wall.elapsed().as_secs_f64() * 1000.0);
    write_bench_json("active_sweep", &mut reg);

    let ndjson = reg.to_ndjson();
    match &out {
        Some(path) => {
            if let Err(e) = std::fs::write(path, &ndjson) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(1);
            }
            eprintln!("metrics: {} entries -> {path}", reg.entries().len());
        }
        None => print!("{ndjson}"),
    }
}
