//! Extra experiment: IOPS across a *continuous* aging sweep.
//!
//! The paper evaluates three discrete aging states (fresh, 2K+1mo,
//! 2K+1yr). This sweep fills in the curve: cubeFTL's advantage over
//! pageFTL grows with retention as read retries start to dominate, while
//! vertFTL stays flat — making the crossover structure of Fig. 17
//! visible as a single trend line per FTL.
//!
//! Run with: `cargo run --release -p bench --bin sweep_aging`

use bench::{banner, eval_config_from_args, Table};
use cubeftl::{FtlKind, StandardWorkload};
use ftl::Ftl;
use ssdsim::SsdSim;

fn main() {
    let mut cfg = eval_config_from_args();
    cfg.requests = cfg.requests.min(30_000);

    banner("IOPS vs retention time at 2K P/E (Mail workload)");
    let mut t = Table::new([
        "retention (months)",
        "pageFTL",
        "vertFTL",
        "cubeFTL",
        "cube/page",
    ]);
    for months in [0.0f64, 0.5, 1.0, 3.0, 6.0, 9.0, 12.0] {
        let mut iops = Vec::new();
        for kind in [FtlKind::Page, FtlKind::Vert, FtlKind::Cube] {
            // Custom aging: pin raw (pe, months) rather than one of the
            // three named states.
            let ftl_cfg = cfg.ftl_config();
            let mut ftl = Ftl::new(kind, ftl_cfg);
            let mut sim = SsdSim::new(cfg.ssd);
            ftl.set_aging_raw(2000, months);
            let logical = ftl.logical_pages();
            let prefill = (logical as f64 * cfg.prefill_fraction) as u64;
            sim.prefill(&mut ftl, 0..prefill);
            ftl.set_disturbance_prob(cfg.disturbance_prob);
            ftl.reset_stats();
            let stream = StandardWorkload::Mail.build(prefill.max(1024), cfg.seed);
            let r = sim.run(&mut ftl, stream, cfg.requests);
            iops.push(r.iops);
        }
        t.row([
            format!("{months}"),
            format!("{:.0}", iops[0]),
            format!("{:.0}", iops[1]),
            format!("{:.0}", iops[2]),
            format!("{:.2}", iops[2] / iops[0]),
        ]);
    }
    t.print();
    println!("\n(the cube/page ratio rises with retention: program-side gains are flat,");
    println!(" read-retry elimination grows as more reads need retries)");
}
