//! Figure 5 — horizontal intra-layer similarity.
//!
//! (a,b) Normalized retention BER of the four WLs on four exemplar
//! h-layers under two aging conditions — the per-WL bars are equal
//! (ΔH = 1). (c) ΔH across blocks, P/E cycles and retention times.
//! (d) tPROG of each WL on the same h-layer.

use bench::{banner, exemplar_layers, f2, f3, paper_chip, Table};
use nand3d::{delta_h, BlockId};

fn main() {
    let chip = paper_chip();
    let g = *chip.geometry();
    let process = chip.process();
    let rel = chip.reliability();
    let block = BlockId(17);

    for (title, pe, months) in [
        (
            "Fig. 5(a) — normalized retention BER, 1K P/E + 6-month retention",
            1000u32,
            6.0,
        ),
        (
            "Fig. 5(b) — normalized retention BER, 2K P/E + 1-year retention",
            2000,
            12.0,
        ),
    ] {
        banner(title);
        // Normalize over the best h-layer's BER (as the paper does).
        let best = (0..g.hlayers_per_block)
            .map(|h| rel.ber(process, g.wl_addr(block, h, 0), pe, months))
            .fold(f64::MAX, f64::min);
        let mut t = Table::new(["h-layer", "WL1", "WL2", "WL3", "WL4", "ΔH"]);
        for (label, h) in exemplar_layers(&chip) {
            let bers: Vec<f64> = (0..4u16)
                .map(|v| rel.ber(process, g.wl_addr(block, h, v), pe, months))
                .collect();
            let dh = delta_h(&bers);
            let mut row: Vec<String> = vec![label.to_owned()];
            row.extend(bers.iter().map(|b| f2(b / best)));
            row.push(f3(dh));
            t.row(row);
        }
        t.print();
    }

    banner("Fig. 5(c) — ΔH across blocks, P/E cycles and retention times");
    let mut t = Table::new(["P/E", "retention (mo)", "blocks", "max ΔH", "mean ΔH"]);
    for (pe, months) in [
        (0u32, 0.0f64),
        (1000, 1.0),
        (1000, 12.0),
        (2000, 1.0),
        (2000, 12.0),
    ] {
        let mut max_dh: f64 = 0.0;
        let mut sum = 0.0;
        let mut n = 0.0;
        for b in (0..g.blocks_per_chip).step_by(4) {
            for h in 0..g.hlayers_per_block {
                let bers: Vec<f64> = (0..g.wls_per_hlayer)
                    .map(|v| rel.ber(process, g.wl_addr(BlockId(b), h, v), pe, months))
                    .collect();
                let dh = delta_h(&bers);
                max_dh = max_dh.max(dh);
                sum += dh;
                n += 1.0;
            }
        }
        t.row([
            pe.to_string(),
            format!("{months}"),
            (g.blocks_per_chip / 4).to_string(),
            f3(max_dh),
            f3(sum / n),
        ]);
    }
    t.print();
    println!("\n(paper: virtually all ΔH values are 1 regardless of aging)");

    banner("Fig. 5(d) — tPROG of the WLs on the same h-layer (µs)");
    let engine = chip.ispp();
    let env = chip.env();
    let mut t = Table::new(["h-layer", "WL1", "WL2", "WL3", "WL4", "equal"]);
    for (label, h) in exemplar_layers(&chip) {
        let tp: Vec<f64> = (0..4u16)
            .map(|v| {
                let chars = engine.characterize(process, g.wl_addr(block, h, v), env, 0);
                engine.default_tprog_us(&chars)
            })
            .collect();
        let equal = tp.windows(2).all(|w| w[0] == w[1]);
        let mut row: Vec<String> = vec![label.to_owned()];
        row.extend(tp.iter().map(|v| format!("{v:.1}")));
        row.push(equal.to_string());
        t.row(row);
    }
    t.print();
}
