//! Ablation studies of cubeFTL's design choices (the knobs DESIGN.md
//! calls out) plus the two §8 future-work extensions.
//!
//! 1. `μ_TH` — the WAM's burst threshold (§5.2).
//! 2. Active blocks per chip — the §5.2 memory/availability trade-off.
//! 3. Write-buffer size — the backpressure knee of Fig. 18(a).
//! 4. Ambient-disturbance rate — cost of the §4.1.4 safety path.
//! 5. PS-aware ECC decode-mode selection (extension, §8).
//! 6. Latency predictability (extension, §8).
//!
//! Run with: `cargo run --release -p bench --bin ablate`

use bench::{banner, eval_config_from_args, Table};
use cubeftl::harness::{run_eval, run_eval_custom};
use cubeftl::{AgingState, FtlKind, StandardWorkload};
use ftl::{Ftl, LatencyPredictor, Opm};
use nand3d::{BlockId, EccModel, NandChip, NandConfig, ProgramParams, WlData};

fn main() {
    let mut cfg = eval_config_from_args();
    cfg.requests = cfg.requests.min(40_000);

    // ---- 1. μ_TH sweep --------------------------------------------------
    banner("ablation 1 — WAM burst threshold μ_TH (Rocks, fresh)");
    let mut t = Table::new(["μ_TH", "IOPS", "p90 write (ms)", "follower share"]);
    for mu in [0.0, 0.5, 0.8, 0.9, 0.99] {
        let mut ftl_cfg = cfg.ftl_config();
        ftl_cfg.mu_threshold = mu;
        let r = run_eval_custom(
            FtlKind::Cube,
            StandardWorkload::Rocks,
            AgingState::Fresh,
            &cfg,
            ftl_cfg,
        );
        t.row([
            format!("{mu}"),
            format!("{:.0}", r.iops),
            format!("{:.3}", r.write_latency.percentile(90.0) / 1000.0),
            format!(
                "{:.2}",
                r.ftl.follower_wl_programs as f64 / r.ftl.host_wl_programs.max(1) as f64
            ),
        ]);
    }
    t.print();
    println!("(μ_TH = 0 spends followers immediately; μ_TH ≈ 1 never banks for bursts;");
    println!(" the paper's 0.9 balances burst absorption against leader availability)");

    // ---- 2. active blocks per chip --------------------------------------
    banner("ablation 2 — active blocks per chip (OLTP, fresh)");
    let mut t = Table::new(["active blocks", "IOPS", "p90 write (ms)"]);
    for blocks in [1usize, 2, 4] {
        let mut ftl_cfg = cfg.ftl_config();
        ftl_cfg.active_blocks_per_chip = blocks;
        ftl_cfg.gc_free_block_threshold = ftl_cfg.gc_free_block_threshold.max(blocks);
        let r = run_eval_custom(
            FtlKind::Cube,
            StandardWorkload::Oltp,
            AgingState::Fresh,
            &cfg,
            ftl_cfg,
        );
        t.row([
            blocks.to_string(),
            format!("{:.0}", r.iops),
            format!("{:.3}", r.write_latency.percentile(90.0) / 1000.0),
        ]);
    }
    t.print();
    println!("(the paper settles on two per chip, §5.2)");

    // ---- 3. write-buffer size --------------------------------------------
    banner("ablation 3 — write-buffer size (Rocks, fresh)");
    let mut t = Table::new(["buffer (pages)", "IOPS", "p50 write (ms)", "p90 write (ms)"]);
    for pages in [16usize, 48, 128, 256] {
        let mut c = cfg.clone();
        c.ssd.buffer_pages = pages;
        let r = run_eval(
            FtlKind::Cube,
            StandardWorkload::Rocks,
            AgingState::Fresh,
            &c,
        );
        t.row([
            pages.to_string(),
            format!("{:.0}", r.iops),
            format!("{:.3}", r.write_latency.percentile(50.0) / 1000.0),
            format!("{:.3}", r.write_latency.percentile(90.0) / 1000.0),
        ]);
    }
    t.print();

    // ---- 4. disturbance rate ---------------------------------------------
    banner("ablation 4 — ambient disturbance rate (Mail, mid-life)");
    let mut t = Table::new(["P(disturbance)", "IOPS", "safety re-programs"]);
    for p in [0.0, 0.002, 0.01, 0.05] {
        let mut c = cfg.clone();
        c.disturbance_prob = p;
        let r = run_eval(
            FtlKind::Cube,
            StandardWorkload::Mail,
            AgingState::MidLife,
            &c,
        );
        t.row([
            format!("{p}"),
            format!("{:.0}", r.iops),
            r.ftl.safety_reprograms.to_string(),
        ]);
    }
    t.print();
    println!("(the §4.1.4 safety check turns rare condition changes into re-programs");
    println!(" instead of reliability loss; its cost stays small at realistic rates)");

    // ---- 5. ambient temperature (extension; cf. HeatWatch [40]) ----------
    banner("extension — ambient temperature (Web, 2K P/E + 1-month retention)");
    let mut t = Table::new([
        "temperature (°C)",
        "pageFTL IOPS",
        "cubeFTL IOPS",
        "cube/page",
    ]);
    for celsius in [5.0, 30.0, 45.0, 55.0] {
        let mut iops = Vec::new();
        for kind in [FtlKind::Page, FtlKind::Cube] {
            let ftl_cfg = cfg.ftl_config();
            let mut ftl = Ftl::new(kind, ftl_cfg);
            let mut sim = ssdsim::SsdSim::new(cfg.ssd);
            ftl.set_aging(AgingState::MidLife);
            ftl.set_ambient_celsius(celsius);
            let logical = ftl.logical_pages();
            let prefill = (logical as f64 * cfg.prefill_fraction) as u64;
            sim.prefill(&mut ftl, 0..prefill);
            ftl.reset_stats();
            let stream = StandardWorkload::Web.build(prefill.max(1024), cfg.seed);
            iops.push(sim.run(&mut ftl, stream, cfg.requests).iops);
        }
        t.row([
            format!("{celsius}"),
            format!("{:.0}", iops[0]),
            format!("{:.0}", iops[1]),
            format!("{:.2}", iops[1] / iops[0]),
        ]);
    }
    t.print();
    println!("(heat accelerates retention loss (Arrhenius), pushing more reads into the");
    println!(" retry path — cubeFTL's ORT advantage widens with temperature)");

    // ---- 6. PS-aware ECC decode (extension) --------------------------------
    banner("extension — PS-aware LDPC decode-mode selection (§8)");
    let ecc = EccModel::ldpc();
    let chip = NandChip::new(NandConfig::paper(), 7);
    let g = *chip.geometry();
    let rel = chip.reliability();
    let mut t = Table::new([
        "aging",
        "escalating (µs/read)",
        "PS-predicted (µs/read)",
        "saving",
    ]);
    for (label, pe, months) in [
        ("fresh", 0u32, 0.0f64),
        ("2K + 1 month", 2000, 1.0),
        ("2K + 1 year", 2000, 12.0),
    ] {
        let mut unaware = 0.0;
        let mut aware = 0.0;
        let mut n = 0.0;
        for b in 0..16u32 {
            for h in 0..g.hlayers_per_block {
                let wl = g.wl_addr(BlockId(b), h, 1);
                let raw = rel.ber(chip.process(), wl, pe, months);
                // PS prediction: the leader WL of the same h-layer has
                // virtually the same BER (ΔH ≈ 1).
                let predicted = rel.ber(chip.process(), g.wl_addr(BlockId(b), h, 0), pe, months);
                unaware += ecc.decode_escalating_us(raw).unwrap_or(200.0);
                aware += ecc.decode_predicted_us(raw, predicted).unwrap_or(200.0);
                n += 1.0;
            }
        }
        t.row([
            label.to_owned(),
            format!("{:.1}", unaware / n),
            format!("{:.1}", aware / n),
            format!("{:.0}%", (1.0 - aware / unaware) * 100.0),
        ]);
    }
    t.print();

    // ---- 7. latency predictability (extension) ----------------------------
    banner("extension — deterministic latency via PS (§8)");
    let mut chip = NandChip::new(NandConfig::paper(), 13);
    let mut opm = Opm::new(&g, 1);
    let predictor = LatencyPredictor::new(chip.ispp());
    let mut exact = 0u32;
    let mut total = 0u32;
    let mut max_err: f64 = 0.0;
    for b in 0..8u32 {
        chip.erase(BlockId(b)).unwrap();
        for h in 0..g.hlayers_per_block {
            let leader = g.wl_addr(BlockId(b), h, 0);
            let report = chip
                .program_wl(leader, WlData::host(0), &ProgramParams::default())
                .unwrap();
            opm.record_leader(0, leader, &report, chip.ispp());
            for v in 1..g.wls_per_hlayer {
                let wl = g.wl_addr(BlockId(b), h, v);
                let forecast = predictor.follower_tprog(&opm, 0, wl);
                let params = opm.follower_params(0, wl).unwrap().to_program_params();
                let actual = chip.program_wl(wl, WlData::host(1), &params).unwrap();
                let err = LatencyPredictor::error_fraction(&forecast, &actual);
                max_err = max_err.max(err);
                exact += u32::from(err < 0.01);
                total += 1;
            }
        }
    }
    println!(
        "follower tPROG forecast: {exact}/{total} exact (<1% error), worst error {:.1}%",
        max_err * 100.0
    );
    println!("(PS makes per-WL response times predictable before issuing the command —");
    println!(" the paper's proposed answer to the SSD long-tail problem)");
    let _ = Ftl::cube; // keep the import obviously used across feature tweaks
}
