//! Figure 4 — finding the optimal read reference voltages via read
//! retries.
//!
//! Uses the physical Vth-distribution model: after long retention the
//! high states shift down and overlap the default references; the retry
//! mechanism walks the references down one `ΔV_Ref` offset at a time
//! until the overlap error rate drops under the ECC capability.

use bench::{banner, Table};
use nand3d::vth::{VthConditions, VthModel};
use nand3d::NandConfig;

fn main() {
    let model = VthModel::default();
    let ecc = NandConfig::paper().model.reliability.ecc_capability_ber;

    banner("Fig. 4 — Vth landscape after 2K P/E + 1-year retention");
    let aged = model.landscape(&VthConditions {
        layer_factor: 1.1,
        pe: 2000,
        retention_months: 12.0,
        window_shrink_mv: 0.0,
    });
    let fresh = model.landscape(&VthConditions::default());

    let mut t = Table::new([
        "state",
        "fresh mean (V)",
        "aged mean (V)",
        "shift (mV)",
        "σ aged (mV)",
    ]);
    let names = ["E", "P1", "P2", "P3", "P4", "P5", "P6", "P7"];
    for (i, name) in names.iter().enumerate() {
        t.row([
            (*name).to_owned(),
            format!("{:+.2}", fresh.states[i].mean_v),
            format!("{:+.2}", aged.states[i].mean_v),
            format!(
                "{:+.0}",
                (aged.states[i].mean_v - fresh.states[i].mean_v) * 1000.0
            ),
            format!("{:.0}", aged.states[i].sigma_v * 1000.0),
        ]);
    }
    t.print();
    println!("\n(higher states shift further down — the P3/V_Ref(3) overlap of Fig. 4)");

    banner("read-retry walk: raw BER vs ΔV_Ref offset");
    let mut t = Table::new(["offset", "raw BER", "decodes?"]);
    let optimal = aged.optimal_offset(7);
    for offset in 0..=7u8 {
        let ber = aged.ber_at_offset(offset);
        let marker = if offset == optimal { " <- optimal" } else { "" };
        t.row([
            format!("{offset}{marker}"),
            format!("{ber:.2e}"),
            (ber < ecc).to_string(),
        ]);
    }
    t.print();
    println!(
        "\nPS-unaware reads walk 0 -> {optimal} ({} retries); a PS-aware read starts at {optimal}",
        optimal
    );
}
