//! Background-maintenance effectiveness under a retention-heavy scenario.
//!
//! Runs the read-heavy Web workload at EndOfLife (2K P/E + 1-year
//! retention) with seeded uncorrectable-read injection, maintenance off
//! vs on. The scrubber refreshes aged blocks before their raw BER
//! escapes the retry window, so the "maint on" row must show fewer
//! uncorrectable recoveries and a lower mean retry count — the magnitude
//! of the reliability-for-bandwidth trade the maintenance subsystem
//! buys (the throughput and tail-latency columns show its price).
//!
//! Run with: `cargo run --release -p bench --bin maint`

use bench::{banner, eval_config_from_args, write_bench_json, Table};
use cubeftl::harness::run_eval;
use cubeftl::{
    AgingState, FaultKind, FaultPlan, FtlKind, MaintConfig, MetricRegistry, StandardWorkload,
};
use std::time::Instant;

fn main() {
    let bench_wall = Instant::now();
    let mut reg = MetricRegistry::new();
    let mut cfg = eval_config_from_args();
    cfg.requests = cfg.requests.min(30_000);
    cfg.faults = Some(
        FaultPlan::seeded(cfg.seed)
            .with_rate(FaultKind::UncorrectableRead, 0.02)
            .with_rate(FaultKind::StuckRetry, 0.01),
    );

    banner("background maintenance — retention-heavy scenario (Web, EndOfLife)");
    let mut t = Table::new([
        "maint",
        "IOPS",
        "p99 rd (ms)",
        "mean retries",
        "uncorrectable",
        "WA(h)",
        "WA(t)",
    ]);
    // "eager" trades host bandwidth for scrub coverage: a small
    // host-priority gap and a large migration batch, the settings the
    // reliability-direction e2e test uses.
    let mut eager = MaintConfig::default_on();
    eager.scrub_batch_pages = 96;
    let mut reports = Vec::new();
    for (label, maint, gap_us) in [
        ("off", None, 0.0),
        ("on", Some(MaintConfig::default_on()), 200.0),
        ("eager", Some(eager), 50.0),
    ] {
        cfg.maint = maint;
        cfg.ssd.maint.enabled = maint.is_some();
        cfg.ssd.maint.min_gap_us = gap_us;
        let r = run_eval(
            FtlKind::Cube,
            StandardWorkload::Web,
            AgingState::EndOfLife,
            &cfg,
        );
        t.row([
            label.to_owned(),
            format!("{:.0}", r.iops),
            format!("{:.3}", r.read_latency.percentile(99.0) / 1000.0),
            format!(
                "{:.3}",
                r.ftl.read_retries as f64 / r.ftl.nand_reads.max(1) as f64
            ),
            format!("{}", r.ftl.uncorrectable_recoveries),
            r.wa_host().map(|w| format!("{w:.2}")).unwrap_or_default(),
            r.wa_total().map(|w| format!("{w:.2}")).unwrap_or_default(),
        ]);
        let prefix = format!("maint.{label}");
        reg.gauge(&format!("{prefix}.iops"), r.iops);
        reg.gauge(
            &format!("{prefix}.read_p99_us"),
            r.read_latency.percentile(99.0),
        );
        reg.gauge(
            &format!("{prefix}.mean_retries"),
            r.ftl.read_retries as f64 / r.ftl.nand_reads.max(1) as f64,
        );
        reg.counter(
            &format!("{prefix}.uncorrectable"),
            r.ftl.uncorrectable_recoveries,
        );
        reg.counter(&format!("{prefix}.scrub_blocks"), r.ftl.scrub_blocks);
        reports.push(r);
    }
    t.print();

    for (label, r) in ["on", "eager"].iter().zip(&reports[1..]) {
        println!(
            "\nmaint-{label} background work: {} scrubs ({} page moves, {} sample reads),",
            r.ftl.scrub_blocks, r.ftl.scrub_page_moves, r.ftl.scrub_sample_reads
        );
        println!(
            " {} re-monitored layers, {} wear-level moves, {} maintenance-GC moves,",
            r.ftl.remonitored_layers, r.ftl.wear_level_moves, r.ftl.maint_gc_page_moves
        );
        println!(
            " {} background ops over {} chips (mean busy {:.1}%)",
            r.background_ops(),
            r.chip_stats.len(),
            r.mean_busy_fraction() * 100.0
        );
    }

    let (off, eager) = (&reports[0], &reports[2]);
    assert!(
        eager.ftl.uncorrectable_recoveries < off.ftl.uncorrectable_recoveries,
        "scrubbing must reduce uncorrectable recoveries ({} -> {})",
        off.ftl.uncorrectable_recoveries,
        eager.ftl.uncorrectable_recoveries
    );
    println!(
        "\n(eager scrubbing cut uncorrectable recoveries {} -> {};",
        off.ftl.uncorrectable_recoveries, eager.ftl.uncorrectable_recoveries
    );
    println!(" the default keeps host priority — gap 200 µs, batch 12 — and trades");
    println!(
        " coverage for tail latency: {} -> {})",
        off.ftl.uncorrectable_recoveries, reports[1].ftl.uncorrectable_recoveries
    );

    reg.gauge("bench.wall_ms", bench_wall.elapsed().as_secs_f64() * 1000.0);
    write_bench_json("maint", &mut reg);
}
